//! # lantern
//!
//! Top-level facade crate for the LANTERN reproduction: natural language
//! generation for query execution plans (SIGMOD 2021).
//!
//! This crate re-exports every subsystem so downstream users can depend
//! on a single crate:
//!
//! ```
//! use lantern::prelude::*;
//!
//! let catalog = tpch_catalog();
//! let db = Database::generate(&catalog, 0.01, 42);
//! let query = parse_sql("SELECT COUNT(*) FROM orders WHERE o_orderstatus = 'F'").unwrap();
//! let qep = Planner::new(&db).plan(&query).unwrap();
//! let store = PoemStore::with_default_pg_operators();
//! let narration = RuleLantern::new(&store).narrate(&qep.tree()).unwrap();
//! assert!(narration.text().contains("sequential scan"));
//! ```

pub use lantern_catalog as catalog;
pub use lantern_core as core;
pub use lantern_embed as embed;
pub use lantern_engine as engine;
pub use lantern_neural as neural;
pub use lantern_neuron as neuron;
pub use lantern_nn as nn;
pub use lantern_paraphrase as paraphrase;
pub use lantern_plan as plan;
pub use lantern_pool as pool;
pub use lantern_sql as sql;
pub use lantern_study as study;
pub use lantern_text as text;

/// Convenience re-exports of the most common entry points.
pub mod prelude {
    pub use lantern_catalog::{dblp_catalog, imdb_catalog, sdss_catalog, tpch_catalog, Catalog};
    pub use lantern_core::{Lantern, RuleLantern};
    pub use lantern_engine::{Database, ExplainFormat, Planner};
    pub use lantern_neural::NeuralLantern;
    pub use lantern_plan::{parse_pg_json_plan, parse_sqlserver_xml_plan, PlanTree};
    pub use lantern_pool::PoemStore;
    pub use lantern_sql::parse_sql;
}
