//! # lantern
//!
//! Top-level facade crate for the LANTERN reproduction: natural language
//! generation for query execution plans (SIGMOD 2021).
//!
//! ## Quickstart: the unified translator API
//!
//! Every backend — the POOL-driven rules (RULE-LANTERN), the trained
//! QEP2Seq model (NEURAL-LANTERN), and the NEURON baseline — serves the
//! same [`Translator`](lantern_core::Translator) interface. Configure a
//! service with [`LanternBuilder`], feed it
//! [`NarrationRequest`](lantern_core::NarrationRequest)s built from any
//! plan source (PostgreSQL JSON, SQL Server XML, or a parsed tree —
//! with format auto-detection), and get structured
//! [`NarrationResponse`](lantern_core::NarrationResponse)s back:
//!
//! ```
//! use lantern::prelude::*;
//!
//! let service = LanternBuilder::new().build().unwrap();
//! let doc = r#"{"Plan": {"Node Type": "Seq Scan", "Relation Name": "orders"}}"#;
//! let response = service.narrate(&NarrationRequest::auto(doc).unwrap()).unwrap();
//! assert_eq!(
//!     response.text,
//!     "1. perform sequential scan on orders to get the final results."
//! );
//! ```
//!
//! The internal planner plugs straight in. Narration runs against a
//! version-cached, indexed snapshot of the POEM store (assembled once
//! per catalog generation, lock-free lookups); batches pin one snapshot
//! for the whole batch and fan out across worker threads:
//!
//! ```
//! use lantern::prelude::*;
//!
//! let catalog = tpch_catalog();
//! let db = Database::generate(&catalog, 0.01, 42);
//! let query = parse_sql("SELECT COUNT(*) FROM orders WHERE o_orderstatus = 'F'").unwrap();
//! let qep = Planner::new(&db).plan(&query).unwrap();
//!
//! let service = LanternBuilder::new().build().unwrap();
//! let responses = service.narrate_batch(&[NarrationRequest::from(&qep)]);
//! assert!(responses[0].as_ref().unwrap().text.contains("sequential scan"));
//! ```
//!
//! ## Migrating from the pre-0.2 per-vendor entry points
//!
//! | Old call | New call |
//! |---|---|
//! | `Lantern::new(store).narrate_pg_json(doc)` | `LanternBuilder::new().store(store).build()?.narrate(&NarrationRequest::pg_json(doc))` |
//! | `Lantern::new(store).narrate_sqlserver_xml(doc)` | same, with `NarrationRequest::sqlserver_xml(doc)` (or `::auto(doc)`) |
//! | `RuleLantern::new(&store).narrate(&tree)` | `RuleTranslator::new(store).narrate(&NarrationRequest::from_tree(&tree))` |
//! | `NeuralLantern::describe_text(&tree)` | `LanternBuilder::new().neural_model(model).build()?.narrate(&NarrationRequest::from_tree(&tree))` |
//! | `neuron::Neuron::new().describe_text(&tree)` | `LanternBuilder::new().backend(Backend::Neuron).build()?.narrate(...)` |
//! | vendor-specific error strings | structured [`LanternError`](lantern_core::LanternError) variants |
//!
//! The old methods still compile (as deprecated thin wrappers) but emit
//! warnings; they will be removed in a future major release.
//!
//! This crate re-exports every subsystem so downstream users can depend
//! on a single crate.

pub mod builder;

pub use builder::{Backend, LanternBuilder, LanternService};

pub use lantern_cache as cache;
pub use lantern_catalog as catalog;
pub use lantern_cluster as cluster;
pub use lantern_core as core;
pub use lantern_diff as diff;
pub use lantern_embed as embed;
pub use lantern_engine as engine;
pub use lantern_gen as gen;
pub use lantern_neural as neural;
pub use lantern_neuron as neuron;
pub use lantern_nn as nn;
pub use lantern_paraphrase as paraphrase;
pub use lantern_plan as plan;
pub use lantern_pool as pool;
pub use lantern_serve as serve;
pub use lantern_sql as sql;
pub use lantern_study as study;
pub use lantern_text as text;

/// Convenience re-exports of the most common entry points.
pub mod prelude {
    pub use crate::builder::{Backend, LanternBuilder, LanternService};
    pub use lantern_cache::{CacheConfig, CacheControl, CacheStatsSnapshot, CachedTranslator};
    pub use lantern_catalog::{dblp_catalog, imdb_catalog, sdss_catalog, tpch_catalog, Catalog};
    pub use lantern_core::{
        DiffChange, DiffRequest, DiffResponse, DiffTranslator, Lantern, LanternError,
        NarrationRequest, NarrationResponse, PlanSource, RenderStyle, RuleLantern, RuleTranslator,
        Translator,
    };
    pub use lantern_diff::{diff_plans, PlanDiff, RuleDiffTranslator};
    pub use lantern_engine::{explain_source, Database, ExplainFormat, Planner};
    pub use lantern_gen::{ArtifactFormat, FormatMix, GenConfig, PlanGenerator};
    pub use lantern_neural::NeuralLantern;
    pub use lantern_neuron::Neuron;
    pub use lantern_paraphrase::ParaphrasedTranslator;
    pub use lantern_plan::{parse_pg_json_plan, parse_sqlserver_xml_plan, PlanTree};
    pub use lantern_pool::{PoemSnapshot, PoemStore};
    pub use lantern_serve::{HttpClient, ServeConfig, ServerHandle};
    pub use lantern_sql::parse_sql;
}
