//! `lantern-serve`: the long-lived narration server binary.
//!
//! Boots a [`LanternService`](lantern::LanternService) behind the
//! std-only HTTP server in `lantern-serve` and runs until killed.
//! `docs/SERVING.md` documents the endpoints; try:
//!
//! ```bash
//! cargo run --bin lantern-serve -- --addr 127.0.0.1:8080 &
//! curl -s http://127.0.0.1:8080/healthz
//! curl -s -X POST --data-binary \
//!   '{"Plan": {"Node Type": "Seq Scan", "Relation Name": "orders"}}' \
//!   http://127.0.0.1:8080/narrate
//! ```

use lantern::builder::{Backend, LanternBuilder};
use lantern::cache::CacheConfig;
use lantern::cluster::{serve_cluster, ClusterConfig};
use lantern::core::RenderStyle;
use lantern::gen::{FormatMix, GenConfig, PlanGenerator};
use lantern::serve::soak::{run_soak, SoakConfig};
use lantern::serve::ServeConfig;
use lantern::text::json::JsonValue;
use std::net::ToSocketAddrs;
use std::time::Duration;

const USAGE: &str = "\
lantern-serve — HTTP narration service over the LANTERN translators

USAGE:
    lantern-serve [OPTIONS]
    lantern-serve soak [SOAK OPTIONS]
    lantern-serve cluster [CLUSTER OPTIONS]

OPTIONS:
    --addr <HOST:PORT>    Listen address [default: 127.0.0.1:8080]
    --backend <NAME>      rule | neuron [default: rule]
                          (the neural backend needs a trained model;
                          embed it via LanternBuilder::neural_model)
    --style <NAME>        numbered | bulleted | paragraph
                          [default: numbered]
    --paraphrase          Enable the paraphrase output layer
    --workers <N>         Worker threads (0 = one per core) [default: 0]
    --max-conns <N>       Open connections the event loop holds at once;
                          arrivals past the cap are closed [default: 4096]
    --queue-cap <N>       Dispatch-queue slots; requests arriving with the
                          queue full are shed with 503 + Retry-After
                          [default: 64]
    --legacy-blocking     Serve on the original thread-per-connection
                          blocking path instead of the event-driven
                          readiness loop
    --no-cache            Disable the plan-fingerprint narration cache
                          (on by default: repeated plans answer from a
                          sharded LRU; see docs/SERVING.md)
    --cache-entries <N>   Narration cache capacity, entries [default: 4096]
    --cache-mb <N>        Narration cache capacity, MiB [default: 32]
    --cache-strict        Fingerprint cardinality/cost estimates too
    --metrics-off         Disable /metrics and per-stage tracing
                          (on by default; see docs/OBSERVABILITY.md)
    --slow-log-ms <N>     Capture requests at least this slow in the
                          /debug/slow ring (0 = capture every request)
                          [default: 0]
    --help                Print this help

SOAK OPTIONS (load a running server with generated plans):
    --addr <HOST:PORT>    Server to load [default: 127.0.0.1:8080]
    --requests <N>        Total requests to send [default: 1000]
    --clients <N>         Concurrent client connections [default: 4]
    --pipeline <N>        Requests each client keeps in flight on its
                          connection (HTTP/1.1 pipelining) [default: 1]
    --dup-rate <0..1>     Fraction of requests replaying an earlier
                          artifact verbatim (cache-hit pressure)
                          [default: 0.75]
    --mutate-rate <0..1>  Fraction of the remainder sending a
                          near-duplicate mutant [default: 0]
    --format <NAME>       pg-json | mssql-xml | mixed [default: mixed]
    --seed <N>            Generator seed [default: 2647]
    --report <PATH>       Write the JSON report here (also printed to
                          stdout when omitted)

CLUSTER OPTIONS (coordinator fronting N running replicas):
    --addr <HOST:PORT>    Coordinator listen address
                          [default: 127.0.0.1:8070]
    --replica <HOST:PORT> A replica to front; repeat once per replica
                          (at least one required)
    --vnodes <N>          Virtual nodes per replica on the hash ring
                          [default: 64]
    --workers <N>         Coordinator worker threads (0 = one per core)
                          [default: 0]
    --connect-timeout-ms <N>
                          TCP connect bound per forwarding attempt
                          [default: 500]
    --read-timeout-ms <N> Read bound per forwarding attempt (failover
                          trigger for a stalled replica) [default: 5000]
    --retry-backoff-ms <N>
                          Sleep between failover attempts [default: 25]
    --max-attempts <N>    Forwarding attempts per request (owner +
                          ring successors) [default: 3]
    --probe-ms <N>        Health/catalog probe period [default: 500]
    --metrics-off         Disable /metrics and request tracing on the
                          coordinator (replica scrapes stop too)
    --slow-log-ms <N>     Coordinator /debug/slow capture threshold
                          (0 = capture every request) [default: 0]
";

struct Args {
    addr: String,
    backend: Backend,
    style: RenderStyle,
    paraphrase: bool,
    workers: usize,
    max_conns: usize,
    queue_cap: usize,
    legacy_blocking: bool,
    cache_config: CacheConfig,
    no_cache: bool,
    metrics: bool,
    slow_log_ms: u64,
}

impl Args {
    /// The effective cache setting: `--no-cache` wins regardless of
    /// where it appears relative to the `--cache-*` sizing flags.
    fn cache(&self) -> Option<CacheConfig> {
        if self.no_cache {
            None
        } else {
            Some(self.cache_config)
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:8080".to_string(),
        backend: Backend::Rule,
        style: RenderStyle::Numbered,
        paraphrase: false,
        workers: 0,
        max_conns: 4096,
        queue_cap: 64,
        legacy_blocking: false,
        // The classroom workload is exactly what the cache exists for;
        // the binary serves cached unless told otherwise.
        cache_config: CacheConfig::default(),
        no_cache: false,
        metrics: true,
        slow_log_ms: 0,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| {
            argv.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--backend" => {
                args.backend = match value("--backend")?.as_str() {
                    "rule" => Backend::Rule,
                    "neuron" => Backend::Neuron,
                    other => return Err(format!("unknown backend {other:?}")),
                }
            }
            "--style" => {
                args.style = match value("--style")?.as_str() {
                    "numbered" => RenderStyle::Numbered,
                    "bulleted" => RenderStyle::Bulleted,
                    "paragraph" => RenderStyle::Paragraph,
                    other => return Err(format!("unknown style {other:?}")),
                }
            }
            "--paraphrase" => args.paraphrase = true,
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--max-conns" => {
                args.max_conns = value("--max-conns")?
                    .parse()
                    .map_err(|e| format!("--max-conns: {e}"))?
            }
            "--queue-cap" => {
                args.queue_cap = value("--queue-cap")?
                    .parse()
                    .map_err(|e| format!("--queue-cap: {e}"))?
            }
            "--legacy-blocking" => args.legacy_blocking = true,
            "--no-cache" => args.no_cache = true,
            "--cache-entries" => {
                args.cache_config.max_entries = value("--cache-entries")?
                    .parse()
                    .map_err(|e| format!("--cache-entries: {e}"))?;
            }
            "--cache-mb" => {
                let mib: u64 = value("--cache-mb")?
                    .parse()
                    .map_err(|e| format!("--cache-mb: {e}"))?;
                args.cache_config.max_bytes = mib * 1024 * 1024;
            }
            "--cache-strict" => args.cache_config.strict = true,
            "--metrics-off" => args.metrics = false,
            "--slow-log-ms" => {
                args.slow_log_ms = value("--slow-log-ms")?
                    .parse()
                    .map_err(|e| format!("--slow-log-ms: {e}"))?
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

/// Everything `lantern-serve soak` needs: a workload spec and a target.
struct SoakArgs {
    addr: String,
    requests: usize,
    clients: usize,
    pipeline: usize,
    dup_rate: f64,
    mutate_rate: f64,
    format: FormatMix,
    seed: u64,
    report: Option<String>,
}

fn parse_soak_args(argv: impl Iterator<Item = String>) -> Result<SoakArgs, String> {
    let mut args = SoakArgs {
        addr: "127.0.0.1:8080".to_string(),
        requests: 1000,
        clients: 4,
        pipeline: 1,
        dup_rate: 0.75,
        mutate_rate: 0.0,
        format: FormatMix::Mixed,
        seed: 2647,
        report: None,
    };
    let mut argv = argv.peekable();
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| {
            argv.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--requests" => {
                args.requests = value("--requests")?
                    .parse()
                    .map_err(|e| format!("--requests: {e}"))?
            }
            "--clients" => {
                args.clients = value("--clients")?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?
            }
            "--pipeline" => {
                args.pipeline = value("--pipeline")?
                    .parse()
                    .map_err(|e| format!("--pipeline: {e}"))?
            }
            "--dup-rate" => {
                args.dup_rate = parse_rate("--dup-rate", &value("--dup-rate")?)?;
            }
            "--mutate-rate" => {
                args.mutate_rate = parse_rate("--mutate-rate", &value("--mutate-rate")?)?;
            }
            "--format" => {
                args.format = match value("--format")?.as_str() {
                    "pg-json" => FormatMix::PgJson,
                    "mssql-xml" => FormatMix::SqlServerXml,
                    "mixed" => FormatMix::Mixed,
                    other => return Err(format!("unknown format {other:?}")),
                }
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--report" => args.report = Some(value("--report")?),
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown soak flag {other:?}")),
        }
    }
    Ok(args)
}

/// Everything `lantern-serve cluster` needs: a listen address and the
/// replica fleet, plus the forwarding/probing knobs.
struct ClusterArgs {
    addr: String,
    replicas: Vec<String>,
    vnodes: usize,
    workers: usize,
    connect_timeout_ms: u64,
    read_timeout_ms: u64,
    retry_backoff_ms: u64,
    max_attempts: usize,
    probe_ms: u64,
    metrics: bool,
    slow_log_ms: u64,
}

fn parse_cluster_args(argv: impl Iterator<Item = String>) -> Result<ClusterArgs, String> {
    let mut args = ClusterArgs {
        addr: "127.0.0.1:8070".to_string(),
        replicas: Vec::new(),
        vnodes: 64,
        workers: 0,
        connect_timeout_ms: 500,
        read_timeout_ms: 5000,
        retry_backoff_ms: 25,
        max_attempts: 3,
        probe_ms: 500,
        metrics: true,
        slow_log_ms: 0,
    };
    let mut argv = argv.peekable();
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| {
            argv.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--replica" => args.replicas.push(value("--replica")?),
            "--vnodes" => {
                args.vnodes = value("--vnodes")?
                    .parse()
                    .map_err(|e| format!("--vnodes: {e}"))?
            }
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--connect-timeout-ms" => {
                args.connect_timeout_ms = value("--connect-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--connect-timeout-ms: {e}"))?
            }
            "--read-timeout-ms" => {
                args.read_timeout_ms = value("--read-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--read-timeout-ms: {e}"))?
            }
            "--retry-backoff-ms" => {
                args.retry_backoff_ms = value("--retry-backoff-ms")?
                    .parse()
                    .map_err(|e| format!("--retry-backoff-ms: {e}"))?
            }
            "--max-attempts" => {
                args.max_attempts = value("--max-attempts")?
                    .parse()
                    .map_err(|e| format!("--max-attempts: {e}"))?
            }
            "--probe-ms" => {
                args.probe_ms = value("--probe-ms")?
                    .parse()
                    .map_err(|e| format!("--probe-ms: {e}"))?
            }
            "--metrics-off" => args.metrics = false,
            "--slow-log-ms" => {
                args.slow_log_ms = value("--slow-log-ms")?
                    .parse()
                    .map_err(|e| format!("--slow-log-ms: {e}"))?
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown cluster flag {other:?}")),
        }
    }
    if args.replicas.is_empty() {
        return Err("cluster mode needs at least one --replica HOST:PORT".to_string());
    }
    Ok(args)
}

/// Resolve the replica fleet, boot the coordinator, and serve forever.
fn cluster_main(args: &ClusterArgs) -> Result<(), String> {
    let mut replicas = Vec::with_capacity(args.replicas.len());
    for raw in &args.replicas {
        let addr = raw
            .to_socket_addrs()
            .map_err(|e| format!("cannot resolve replica {raw}: {e}"))?
            .next()
            .ok_or_else(|| format!("replica {raw} resolves to no address"))?;
        replicas.push(addr);
    }
    let config = ClusterConfig {
        replicas,
        virtual_nodes: args.vnodes,
        workers: args.workers,
        connect_timeout: Duration::from_millis(args.connect_timeout_ms),
        read_timeout: Duration::from_millis(args.read_timeout_ms),
        retry_backoff: Duration::from_millis(args.retry_backoff_ms),
        max_attempts: args.max_attempts,
        probe_interval: Duration::from_millis(args.probe_ms),
        metrics: args.metrics,
        slow_log_ms: args.slow_log_ms,
        ..ClusterConfig::default()
    };
    let handle = serve_cluster(config, args.addr.as_str())
        .map_err(|e| format!("failed to bind {}: {e}", args.addr))?;
    // The smoke-test lane greps for this exact line before curling.
    println!(
        "lantern-serve cluster listening on http://{}",
        handle.addr()
    );
    println!(
        "fronting {} replica(s): {}",
        args.replicas.len(),
        args.replicas.join(", ")
    );
    println!(
        "endpoints: POST /narrate, POST /narrate/batch, POST /narrate/diff, POST /narrate/diff/batch, GET /healthz, GET /stats, GET /metrics, GET /debug/slow, GET /catalog, POST /catalog/apply, POST /cache/clear (see docs/SERVING.md)"
    );
    // Serve until the process is killed; the worker pool does the work.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

fn parse_rate(name: &str, raw: &str) -> Result<f64, String> {
    let rate: f64 = raw.parse().map_err(|e| format!("{name}: {e}"))?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!("{name} must be within 0..=1, got {rate}"));
    }
    Ok(rate)
}

/// Generate the schedule, run the soak, merge the workload description
/// into the report, and write it out.
fn soak_main(args: &SoakArgs) -> Result<(), String> {
    let addr = args
        .addr
        .to_socket_addrs()
        .map_err(|e| format!("cannot resolve {}: {e}", args.addr))?
        .next()
        .ok_or_else(|| format!("{} resolves to no address", args.addr))?;

    let config = GenConfig::default()
        .with_seed(args.seed)
        .with_duplicate_rate(args.dup_rate)
        .with_mutate_rate(args.mutate_rate)
        .with_format(args.format);
    let docs: Vec<String> = PlanGenerator::new(config)
        .generate(args.requests)
        .into_iter()
        .map(|item| item.doc)
        .collect();
    eprintln!(
        "soaking {} with {} requests ({} clients, pipeline {}, dup rate {})",
        addr, args.requests, args.clients, args.pipeline, args.dup_rate
    );

    let report = run_soak(
        addr,
        &docs,
        &SoakConfig {
            clients: args.clients,
            pipeline: args.pipeline,
        },
    )
    .map_err(|e| format!("soak against {addr} failed: {e}"))?;

    let mut json = report.to_json_value();
    if let JsonValue::Object(obj) = &mut json {
        let mut workload = std::collections::BTreeMap::new();
        workload.insert(
            "generator".to_string(),
            JsonValue::String("lantern-gen".into()),
        );
        workload.insert("seed".to_string(), JsonValue::Number(args.seed as f64));
        workload.insert("dup_rate".to_string(), JsonValue::Number(args.dup_rate));
        workload.insert(
            "mutate_rate".to_string(),
            JsonValue::Number(args.mutate_rate),
        );
        workload.insert(
            "format".to_string(),
            JsonValue::String(
                match args.format {
                    FormatMix::PgJson => "pg-json",
                    FormatMix::SqlServerXml => "mssql-xml",
                    FormatMix::Mixed => "mixed",
                }
                .to_string(),
            ),
        );
        obj.insert("workload".to_string(), JsonValue::Object(workload));
    }
    let rendered = json.to_string_pretty();

    eprintln!(
        "done: {}/{} ok in {:.0} ms (p50 {} us, p99 {} us, shed {}{})",
        report.ok,
        report.requests,
        report.duration_ms,
        report.latency.p50_us,
        report.latency.p99_us,
        report.shed,
        match &report.cache {
            Some(cache) => format!(", cache hit ratio {:.3}", cache.hit_ratio),
            None => ", no cache".to_string(),
        }
    );
    match &args.report {
        Some(path) => {
            std::fs::write(path, rendered.as_bytes())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("report written to {path}");
        }
        None => println!("{rendered}"),
    }
    if report.ok == 0 {
        return Err("no request succeeded".to_string());
    }
    Ok(())
}

fn main() {
    let mut argv = std::env::args().skip(1).peekable();
    if argv.peek().map(String::as_str) == Some("soak") {
        argv.next();
        let outcome = parse_soak_args(argv).and_then(|args| soak_main(&args));
        if let Err(message) = outcome {
            eprintln!("error: {message}");
            std::process::exit(1);
        }
        return;
    }
    if argv.peek().map(String::as_str) == Some("cluster") {
        argv.next();
        let outcome = parse_cluster_args(argv).and_then(|args| cluster_main(&args));
        if let Err(message) = outcome {
            eprintln!("error: {message}");
            std::process::exit(1);
        }
        return;
    }
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("error: {message}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let mut builder = LanternBuilder::new()
        .backend(args.backend)
        .style(args.style)
        .paraphrase(args.paraphrase);
    if let Some(cache) = args.cache() {
        builder = builder.cache(cache);
    }
    let handle = builder
        .build()
        .expect("assemble service")
        .serve(
            &args.addr,
            ServeConfig {
                workers: args.workers,
                max_conns: args.max_conns,
                queue_depth: args.queue_cap,
                legacy_blocking: args.legacy_blocking,
                metrics: args.metrics,
                slow_log_ms: args.slow_log_ms,
                ..ServeConfig::default()
            },
        )
        .unwrap_or_else(|e| {
            eprintln!("error: failed to bind {}: {e}", args.addr);
            std::process::exit(1);
        });
    // The smoke-test lane greps for this exact line before curling.
    println!("lantern-serve listening on http://{}", handle.addr());
    println!(
        "endpoints: POST /narrate, POST /narrate/batch, POST /narrate/diff, POST /narrate/diff/batch, GET /healthz, GET /stats, GET /metrics, GET /debug/slow, POST /cache/clear (see docs/SERVING.md)"
    );
    // Serve until the process is killed; the worker pool does the work.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
