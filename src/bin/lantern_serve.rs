//! `lantern-serve`: the long-lived narration server binary.
//!
//! Boots a [`LanternService`](lantern::LanternService) behind the
//! std-only HTTP server in `lantern-serve` and runs until killed.
//! `docs/SERVING.md` documents the endpoints; try:
//!
//! ```bash
//! cargo run --bin lantern-serve -- --addr 127.0.0.1:8080 &
//! curl -s http://127.0.0.1:8080/healthz
//! curl -s -X POST --data-binary \
//!   '{"Plan": {"Node Type": "Seq Scan", "Relation Name": "orders"}}' \
//!   http://127.0.0.1:8080/narrate
//! ```

use lantern::builder::{Backend, LanternBuilder};
use lantern::cache::CacheConfig;
use lantern::core::RenderStyle;
use lantern::serve::ServeConfig;
use std::time::Duration;

const USAGE: &str = "\
lantern-serve — HTTP narration service over the LANTERN translators

USAGE:
    lantern-serve [OPTIONS]

OPTIONS:
    --addr <HOST:PORT>    Listen address [default: 127.0.0.1:8080]
    --backend <NAME>      rule | neuron [default: rule]
                          (the neural backend needs a trained model;
                          embed it via LanternBuilder::neural_model)
    --style <NAME>        numbered | bulleted | paragraph
                          [default: numbered]
    --paraphrase          Enable the paraphrase output layer
    --workers <N>         Worker threads (0 = one per core) [default: 0]
    --no-cache            Disable the plan-fingerprint narration cache
                          (on by default: repeated plans answer from a
                          sharded LRU; see docs/SERVING.md)
    --cache-entries <N>   Narration cache capacity, entries [default: 4096]
    --cache-mb <N>        Narration cache capacity, MiB [default: 32]
    --cache-strict        Fingerprint cardinality/cost estimates too
    --help                Print this help
";

struct Args {
    addr: String,
    backend: Backend,
    style: RenderStyle,
    paraphrase: bool,
    workers: usize,
    cache_config: CacheConfig,
    no_cache: bool,
}

impl Args {
    /// The effective cache setting: `--no-cache` wins regardless of
    /// where it appears relative to the `--cache-*` sizing flags.
    fn cache(&self) -> Option<CacheConfig> {
        if self.no_cache {
            None
        } else {
            Some(self.cache_config)
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:8080".to_string(),
        backend: Backend::Rule,
        style: RenderStyle::Numbered,
        paraphrase: false,
        workers: 0,
        // The classroom workload is exactly what the cache exists for;
        // the binary serves cached unless told otherwise.
        cache_config: CacheConfig::default(),
        no_cache: false,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| {
            argv.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--backend" => {
                args.backend = match value("--backend")?.as_str() {
                    "rule" => Backend::Rule,
                    "neuron" => Backend::Neuron,
                    other => return Err(format!("unknown backend {other:?}")),
                }
            }
            "--style" => {
                args.style = match value("--style")?.as_str() {
                    "numbered" => RenderStyle::Numbered,
                    "bulleted" => RenderStyle::Bulleted,
                    "paragraph" => RenderStyle::Paragraph,
                    other => return Err(format!("unknown style {other:?}")),
                }
            }
            "--paraphrase" => args.paraphrase = true,
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--no-cache" => args.no_cache = true,
            "--cache-entries" => {
                args.cache_config.max_entries = value("--cache-entries")?
                    .parse()
                    .map_err(|e| format!("--cache-entries: {e}"))?;
            }
            "--cache-mb" => {
                let mib: u64 = value("--cache-mb")?
                    .parse()
                    .map_err(|e| format!("--cache-mb: {e}"))?;
                args.cache_config.max_bytes = mib * 1024 * 1024;
            }
            "--cache-strict" => args.cache_config.strict = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("error: {message}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let mut builder = LanternBuilder::new()
        .backend(args.backend)
        .style(args.style)
        .paraphrase(args.paraphrase);
    if let Some(cache) = args.cache() {
        builder = builder.cache(cache);
    }
    let handle = builder
        .build()
        .expect("assemble service")
        .serve(
            &args.addr,
            ServeConfig {
                workers: args.workers,
                ..ServeConfig::default()
            },
        )
        .unwrap_or_else(|e| {
            eprintln!("error: failed to bind {}: {e}", args.addr);
            std::process::exit(1);
        });
    // The smoke-test lane greps for this exact line before curling.
    println!("lantern-serve listening on http://{}", handle.addr());
    println!(
        "endpoints: POST /narrate, POST /narrate/batch, GET /healthz, GET /stats, POST /cache/clear (see docs/SERVING.md)"
    );
    // Serve until the process is killed; the worker pool does the work.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
