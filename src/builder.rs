//! [`LanternBuilder`]: one configuration surface for the whole
//! translation service — backend choice (rule / neural / NEURON
//! baseline), POEM store, paraphrase layer, rendering style — producing
//! a [`LanternService`] that serves the unified
//! [`lantern_core::Translator`] API.
//!
//! ```
//! use lantern::builder::LanternBuilder;
//! use lantern_core::{NarrationRequest, Translator};
//!
//! let service = LanternBuilder::new().build().unwrap();
//! let doc = r#"{"Plan": {"Node Type": "Seq Scan", "Relation Name": "orders"}}"#;
//! let response = service.narrate(&NarrationRequest::auto(doc).unwrap()).unwrap();
//! assert_eq!(
//!     response.text,
//!     "1. perform sequential scan on orders to get the final results."
//! );
//! ```

use lantern_cache::{
    fingerprint_tree, CacheConfig, CacheControl, CacheStatsSnapshot, CachedTranslator,
    FingerprintOptions, Hasher128, LruStats, ShardedLru,
};
use lantern_core::{
    DiffRequest, DiffResponse, DiffTranslator, LanternError, NarrationRequest, NarrationResponse,
    RenderStyle, RuleTranslator, Translator,
};
use lantern_diff::RuleDiffTranslator;
use lantern_neural::NeuralLantern;
use lantern_neuron::Neuron;
use lantern_paraphrase::ParaphrasedTranslator;
use lantern_plan::PlanTree;
use lantern_pool::{default_mssql_store, PoemStore};
use lantern_serve::{CatalogApplied, CatalogApplyError, CatalogControl, ServeConfig, ServerHandle};
use std::net::ToSocketAddrs;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Which translation backend a [`LanternService`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// RULE-LANTERN: POOL-driven rule translation (the default).
    #[default]
    Rule,
    /// NEURAL-LANTERN: the trained QEP2Seq model (requires
    /// [`LanternBuilder::neural_model`]).
    Neural,
    /// The NEURON baseline: hard-coded PostgreSQL rules, no POEM store.
    Neuron,
}

/// Builder for a [`LanternService`].
///
/// Defaults: rule backend, the combined `pg` + `mssql` operator
/// catalog, paraphrasing off, numbered-document rendering.
#[derive(Default)]
pub struct LanternBuilder {
    backend: Backend,
    store: Option<PoemStore>,
    neural: Option<NeuralLantern>,
    paraphrase: bool,
    style: RenderStyle,
    cache: Option<CacheConfig>,
}

impl LanternBuilder {
    /// Start from the defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Select the backend.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Use this POEM store instead of the default combined catalog.
    /// (Ignored by the NEURON baseline, which has no store — that is
    /// its defining limitation.)
    pub fn store(mut self, store: PoemStore) -> Self {
        self.store = Some(store);
        self
    }

    /// Provide a trained NEURAL-LANTERN and select the neural backend.
    pub fn neural_model(mut self, model: NeuralLantern) -> Self {
        self.neural = Some(model);
        self.backend = Backend::Neural;
        self
    }

    /// Toggle the paraphrase output layer (off by default).
    pub fn paraphrase(mut self, on: bool) -> Self {
        self.paraphrase = on;
        self
    }

    /// Default rendering style for responses (requests may override
    /// per-call).
    pub fn style(mut self, style: RenderStyle) -> Self {
        self.style = style;
        self
    }

    /// Put a plan-fingerprint narration cache (`lantern-cache`) in
    /// front of the selected backend: repeated plans — the classroom
    /// pattern — are answered from a sharded LRU keyed by a canonical
    /// fingerprint (invariant to JSON key order, whitespace, and
    /// cost-estimate jitter), with single-flight coalescing of
    /// concurrent identical misses and in-batch dedup. The cache is
    /// keyed by the POEM catalog generation, so POOL mutations
    /// invalidate it implicitly. Off by default; a cache-less service
    /// behaves byte-identically to one built before this option
    /// existed.
    pub fn cache(mut self, config: CacheConfig) -> Self {
        self.cache = Some(config);
        self
    }

    /// Assemble the service.
    ///
    /// Fails with [`LanternError::Config`] when the neural backend is
    /// selected without a model.
    pub fn build(self) -> Result<LanternService, LanternError> {
        let store = self.store.unwrap_or_else(default_mssql_store);
        // Backends that accept a default style render the configured
        // one natively; `needs_restyle` marks the style-less ones
        // (neuron, neural), whose responses the service re-renders.
        let mut needs_restyle = false;
        let inner: Box<dyn Translator + Send + Sync> = match self.backend {
            Backend::Rule => Box::new(RuleTranslator::new(store.clone()).with_style(self.style)),
            Backend::Neuron => {
                needs_restyle = true;
                Box::new(Neuron::new())
            }
            Backend::Neural => {
                needs_restyle = true;
                Box::new(self.neural.ok_or_else(|| {
                    LanternError::Config {
                        message: "neural backend selected but no model was provided \
                          (call LanternBuilder::neural_model)"
                            .to_string(),
                    }
                })?)
            }
        };
        let translator: Box<dyn Translator + Send + Sync> = if self.paraphrase {
            // The paraphrase layer re-renders anyway; give it the
            // configured style and drop the service-level re-render.
            needs_restyle = false;
            Box::new(ParaphrasedTranslator::new(inner).with_style(self.style))
        } else {
            inner
        };
        // The cache decorates the *complete* chain (backend [+
        // paraphrase]) so a hit skips every layer below it; keys fold
        // in the store's catalog generation so POOL mutations
        // invalidate implicitly. When caching is on, diff comparisons
        // get their own LRU keyed by the strict fingerprint pair (same
        // bounds, same generation folding).
        let mut diff_cache = None;
        let translator = match self.cache {
            Some(config) => {
                let generation_store = store.clone();
                diff_cache = Some(ShardedLru::new(
                    config.shards,
                    config.max_entries,
                    config.max_bytes,
                ));
                ServiceCore::Cached(Arc::new(
                    CachedTranslator::new(translator, config)
                        .with_generation(move || generation_store.version()),
                ))
            }
            None => ServiceCore::Plain(translator),
        };
        Ok(LanternService {
            translator,
            diff: RuleDiffTranslator::new(store.clone()).with_style(self.style),
            diff_cache,
            store,
            style: self.style,
            needs_restyle,
            catalog_seq: AtomicU64::new(0),
            catalog_lock: Mutex::new(()),
        })
    }

    /// Assemble the service and boot an HTTP narration server on
    /// `addr` with the default [`ServeConfig`] — the one-call path from
    /// a builder to a live endpoint:
    ///
    /// ```
    /// use lantern::builder::LanternBuilder;
    /// use lantern::serve::HttpClient;
    ///
    /// let handle = LanternBuilder::new().serve("127.0.0.1:0").unwrap();
    /// let mut client = HttpClient::connect(handle.addr()).unwrap();
    /// let resp = client
    ///     .post("/narrate", r#"{"Plan": {"Node Type": "Seq Scan", "Relation Name": "orders"}}"#)
    ///     .unwrap();
    /// assert_eq!(resp.status, 200);
    /// assert!(resp.body.contains("sequential scan on orders"));
    /// drop(client);
    /// handle.shutdown().unwrap();
    /// ```
    ///
    /// Bind failures surface as [`LanternError::Config`]; use
    /// [`LanternService::serve`] to pass a custom [`ServeConfig`] or
    /// keep the `std::io::Error`.
    pub fn serve(self, addr: impl ToSocketAddrs) -> Result<ServerHandle, LanternError> {
        let service = self.build()?;
        service
            .serve(addr, ServeConfig::default())
            .map_err(|e| LanternError::Config {
                message: format!("failed to start narration server: {e}"),
            })
    }
}

/// The assembled translator chain: bare, or fronted by the narration
/// cache (kept concrete — not type-erased — so the service can still
/// reach the cache's admin surface).
enum ServiceCore {
    Plain(Box<dyn Translator + Send + Sync>),
    Cached(Arc<CachedTranslator<Box<dyn Translator + Send + Sync>>>),
}

impl ServiceCore {
    fn translator(&self) -> &(dyn Translator + Send + Sync) {
        match self {
            ServiceCore::Plain(t) => t,
            ServiceCore::Cached(c) => c.as_ref(),
        }
    }
}

/// A configured translation service: the product of
/// [`LanternBuilder::build`], serving the unified [`Translator`] API
/// over whichever backend was selected.
pub struct LanternService {
    translator: ServiceCore,
    /// The plan-diff backend, always present: compare-and-narrate is a
    /// capability of every service, whichever narration backend runs.
    diff: RuleDiffTranslator,
    /// Diff results keyed by (generation, base strict fingerprint, alt
    /// strict fingerprint, style); `Some` exactly when the narration
    /// cache is on.
    diff_cache: Option<ShardedLru<DiffResponse>>,
    store: PoemStore,
    style: RenderStyle,
    /// True when the inner backend cannot be configured with a style
    /// (it renders its own numbered default) and the service must
    /// re-render responses into the configured style.
    needs_restyle: bool,
    /// Highest cluster-broadcast sequence number applied to `store`
    /// (see [`CatalogControl`]); `0` until a coordinator first pushes.
    catalog_seq: AtomicU64,
    /// Serializes [`CatalogControl::catalog_apply`] calls so statement
    /// order (and therefore the resulting store version) is identical
    /// on every replica even under concurrent broadcast + replay.
    catalog_lock: Mutex<()>,
}

impl std::fmt::Debug for LanternService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LanternService")
            .field("backend", &self.translator.translator().backend())
            .field("style", &self.style)
            .field("cached", &self.has_cache())
            .finish_non_exhaustive()
    }
}

impl LanternService {
    /// The POEM store handle the service was built with (e.g. to run
    /// POOL statements against a live service).
    pub fn store(&self) -> &PoemStore {
        &self.store
    }

    /// The configured default rendering style.
    pub fn style(&self) -> RenderStyle {
        self.style
    }

    /// Whether the service was built with a narration cache
    /// ([`LanternBuilder::cache`]).
    pub fn has_cache(&self) -> bool {
        matches!(self.translator, ServiceCore::Cached(_))
    }

    /// Narration-cache counter snapshot; `None` without a cache.
    pub fn cache_stats(&self) -> Option<CacheStatsSnapshot> {
        match &self.translator {
            ServiceCore::Cached(c) => Some(c.cache().stats()),
            ServiceCore::Plain(_) => None,
        }
    }

    /// Diff-cache counter snapshot; `None` without a cache.
    pub fn diff_cache_stats(&self) -> Option<LruStats> {
        self.diff_cache.as_ref().map(ShardedLru::stats)
    }

    /// Convenience: diff two serialized plan documents (formats
    /// auto-detected independently) and narrate the comparison.
    pub fn diff_documents(&self, base: &str, alt: &str) -> Result<DiffResponse, LanternError> {
        self.narrate_diff(&DiffRequest::auto(base, alt)?)
    }

    /// Convenience: narrate a serialized plan document, auto-detecting
    /// the vendor format.
    pub fn narrate_document(&self, doc: &str) -> Result<NarrationResponse, LanternError> {
        self.narrate(&NarrationRequest::auto(doc)?)
    }

    /// Boot an HTTP narration server over this service (consuming it —
    /// the server's worker pool owns the service from here on). See
    /// [`lantern_serve::serve`] for the endpoint set and semantics.
    /// When the service carries a narration cache, the server's router
    /// additionally honours `?nocache=1`, routes `POST /cache/clear`,
    /// and merges cache counters into `GET /stats`.
    pub fn serve(
        self,
        addr: impl ToSocketAddrs,
        config: ServeConfig,
    ) -> std::io::Result<ServerHandle> {
        let has_cache = self.has_cache();
        let service = Arc::new(self);
        let cache: Option<Arc<dyn CacheControl + Send + Sync>> = if has_cache {
            Some(Arc::clone(&service) as _)
        } else {
            None
        };
        let diff: Arc<dyn DiffTranslator + Send + Sync> = Arc::clone(&service) as _;
        let catalog: Arc<dyn CatalogControl + Send + Sync> = Arc::clone(&service) as _;
        lantern_serve::serve_node(service, cache, Some(diff), Some(catalog), addr, config)
    }

    /// [`LanternService::serve`] over a listener the caller already
    /// bound (typically through [`lantern_serve::reusable_listener`],
    /// so a restarted replica can reclaim its old port while prior
    /// connections sit in `TIME_WAIT`).
    pub fn serve_on_listener(
        self,
        listener: std::net::TcpListener,
        config: ServeConfig,
    ) -> std::io::Result<ServerHandle> {
        let has_cache = self.has_cache();
        let service = Arc::new(self);
        let cache: Option<Arc<dyn CacheControl + Send + Sync>> = if has_cache {
            Some(Arc::clone(&service) as _)
        } else {
            None
        };
        let diff: Arc<dyn DiffTranslator + Send + Sync> = Arc::clone(&service) as _;
        let catalog: Arc<dyn CatalogControl + Send + Sync> = Arc::clone(&service) as _;
        lantern_serve::serve_on_listener(
            service,
            cache,
            Some(diff),
            Some(catalog),
            listener,
            config,
        )
    }

    /// Apply the service's configured style to a response from a
    /// style-less backend when the request didn't override it —
    /// requests are never cloned on the way in, and style-aware
    /// backends already rendered the configured style natively.
    fn restyle(&self, req: &NarrationRequest, resp: &mut NarrationResponse) {
        if self.needs_restyle && req.style.is_none() && self.style != RenderStyle::default() {
            resp.text = resp.narration.render(self.style);
        }
    }
}

impl Translator for LanternService {
    fn backend(&self) -> &str {
        self.translator.translator().backend()
    }

    fn narrate(&self, req: &NarrationRequest) -> Result<NarrationResponse, LanternError> {
        let mut resp = self.translator.translator().narrate(req)?;
        self.restyle(req, &mut resp);
        Ok(resp)
    }

    fn narrate_batch(
        &self,
        reqs: &[NarrationRequest],
    ) -> Vec<Result<NarrationResponse, LanternError>> {
        let mut out = self.translator.translator().narrate_batch(reqs);
        for (result, req) in out.iter_mut().zip(reqs) {
            if let Ok(resp) = result {
                self.restyle(req, resp);
            }
        }
        out
    }
}

/// The cache admin surface, restyle-aware: `?nocache=1` responses must
/// be byte-identical to cached ones, so the bypass path applies the
/// same service-level re-rendering the normal path does. On a
/// cache-less service the bypass degrades to the normal path and the
/// counters are all zero.
impl CacheControl for LanternService {
    fn narrate_uncached(&self, req: &NarrationRequest) -> Result<NarrationResponse, LanternError> {
        let mut resp = match &self.translator {
            ServiceCore::Cached(c) => c.narrate_uncached(req)?,
            ServiceCore::Plain(t) => t.narrate(req)?,
        };
        self.restyle(req, &mut resp);
        Ok(resp)
    }

    fn narrate_batch_uncached(
        &self,
        reqs: &[NarrationRequest],
    ) -> Vec<Result<NarrationResponse, LanternError>> {
        let mut out = match &self.translator {
            ServiceCore::Cached(c) => c.narrate_batch_uncached(reqs),
            ServiceCore::Plain(t) => t.narrate_batch(reqs),
        };
        for (result, req) in out.iter_mut().zip(reqs) {
            if let Ok(resp) = result {
                self.restyle(req, resp);
            }
        }
        out
    }

    fn cache_stats(&self) -> CacheStatsSnapshot {
        LanternService::cache_stats(self).unwrap_or_default()
    }

    fn clear_cache(&self) -> u64 {
        let narrations = match &self.translator {
            ServiceCore::Cached(c) => c.clear_cache(),
            ServiceCore::Plain(_) => 0,
        };
        let diffs = self.diff_cache.as_ref().map_or(0, ShardedLru::clear);
        narrations + diffs
    }
}

/// The diff surface: compare a base plan against an alternative and
/// narrate the difference, with results cached by the strict
/// fingerprint pair when the service carries a cache. The key folds in
/// the POEM catalog generation, so POOL mutations invalidate diff
/// narrations the same way they invalidate step narrations.
impl DiffTranslator for LanternService {
    fn diff_backend(&self) -> &str {
        self.diff.diff_backend()
    }

    fn narrate_diff(&self, req: &DiffRequest) -> Result<DiffResponse, LanternError> {
        let base = req.base.resolve()?;
        let alt = req.alt.resolve()?;
        let style = req.effective_style(self.style);
        let Some(cache) = &self.diff_cache else {
            return Ok(self.diff.narrate_trees(&base, &alt, Some(style)));
        };
        let key = self.diff_key(&base, &alt, style);
        if let Some(resp) = cache.get(key) {
            return Ok(resp);
        }
        let resp = self.diff.narrate_trees(&base, &alt, Some(style));
        cache.insert(key, resp.clone(), diff_bytes(&resp));
        Ok(resp)
    }
}

/// The cluster catalog surface: ordered, idempotent application of
/// POOL statements broadcast by a coordinator. Execution against the
/// POEM store is deterministic, so every replica that applies the same
/// statement log from the same base store lands on the same
/// [`PoemStore::version`] — including replicas that restarted and
/// caught up through a replay. Version bumps implicitly roll the
/// narration- and diff-cache keys over (both fold the generation in),
/// so a broadcast mutation cold-misses exactly once per plan per
/// replica.
impl CatalogControl for LanternService {
    fn catalog_version(&self) -> u64 {
        self.store.version()
    }

    fn catalog_seq(&self) -> u64 {
        self.catalog_seq.load(Ordering::SeqCst)
    }

    fn catalog_apply(
        &self,
        from_seq: u64,
        statements: &[String],
    ) -> Result<CatalogApplied, CatalogApplyError> {
        let _guard = self
            .catalog_lock
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let mut seq = self.catalog_seq.load(Ordering::SeqCst);
        if from_seq > seq + 1 {
            return Err(CatalogApplyError::SequenceGap {
                expected: seq + 1,
                got: from_seq,
            });
        }
        let mut applied = 0u64;
        let mut skipped = 0u64;
        let mut errors = Vec::new();
        for (offset, statement) in statements.iter().enumerate() {
            let statement_seq = from_seq + offset as u64;
            if statement_seq <= seq {
                skipped += 1;
                continue;
            }
            // A failing statement still consumes its sequence number:
            // execution is deterministic, so every replica fails it the
            // same way, and skipping it would wedge the log forever.
            if let Err(e) = lantern_pool::execute(statement, &self.store) {
                errors.push(format!("seq {statement_seq}: {e}"));
            }
            seq = statement_seq;
            applied += 1;
        }
        self.catalog_seq.store(seq, Ordering::SeqCst);
        Ok(CatalogApplied {
            applied,
            skipped,
            applied_seq: seq,
            version: self.store.version(),
            errors,
        })
    }
}

impl LanternService {
    /// The diff-cache key: catalog generation + strict fingerprints of
    /// both trees (strict, so estimate changes — a reportable diff —
    /// never collide with their unjittered originals) + render style.
    fn diff_key(
        &self,
        base: &PlanTree,
        alt: &PlanTree,
        style: RenderStyle,
    ) -> lantern_cache::Fingerprint {
        let strict = FingerprintOptions::strict();
        let mut h = Hasher128::new("lantern/diff-key/v1");
        h.write_u64(self.store.version());
        h.write(&fingerprint_tree(base, strict).0.to_le_bytes());
        h.write(&fingerprint_tree(alt, strict).0.to_le_bytes());
        h.write_u8(match style {
            RenderStyle::Numbered => 0,
            RenderStyle::Paragraph => 1,
            RenderStyle::Bulleted => 2,
        });
        h.finish()
    }
}

/// Approximate resident size of a cached diff response.
fn diff_bytes(resp: &DiffResponse) -> u64 {
    let changes: usize = resp
        .changes
        .iter()
        .map(|c| c.kind.len() + c.path.len() + c.op.len() + c.detail.len() + 48)
        .sum();
    // The narration's steps carry the same sentences again (text +
    // tagged), so count the change text roughly three times over.
    (resp.text.len() + 3 * changes + 128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use lantern_pool::default_pg_store;

    const PG_DOC: &str = r#"[{"Plan": {"Node Type": "Seq Scan", "Relation Name": "orders"}}]"#;
    const XML_DOC: &str = r#"<ShowPlanXML><BatchSequence><Batch><Statements><StmtSimple>
        <QueryPlan><RelOp PhysicalOp="Table Scan"><Object Table="photoobj"/></RelOp></QueryPlan>
        </StmtSimple></Statements></Batch></BatchSequence></ShowPlanXML>"#;

    #[test]
    fn default_service_narrates_both_vendors() {
        let service = LanternBuilder::new().build().unwrap();
        assert_eq!(service.backend(), "rule");
        let pg = service.narrate_document(PG_DOC).unwrap();
        assert!(pg.text.contains("sequential scan on orders"));
        // The default store carries the mssql catalog too.
        let ms = service.narrate_document(XML_DOC).unwrap();
        assert!(ms.text.contains("table scan on photoobj"));
    }

    #[test]
    fn neuron_backend_via_builder() {
        let service = LanternBuilder::new()
            .backend(Backend::Neuron)
            .build()
            .unwrap();
        assert_eq!(service.backend(), "neuron");
        let pg = service.narrate_document(PG_DOC).unwrap();
        assert!(pg.text.contains("perform sequential scan on orders"));
        // And the US 5 failure mode is structured.
        let err = service.narrate_document(XML_DOC).unwrap_err();
        assert!(matches!(err, LanternError::Backend { .. }));
    }

    #[test]
    fn neural_backend_without_model_is_a_config_error() {
        let err = LanternBuilder::new()
            .backend(Backend::Neural)
            .build()
            .unwrap_err();
        assert!(matches!(err, LanternError::Config { .. }));
    }

    #[test]
    fn builder_style_applies_and_request_overrides() {
        let service = LanternBuilder::new()
            .style(RenderStyle::Bulleted)
            .build()
            .unwrap();
        let resp = service.narrate_document(PG_DOC).unwrap();
        assert!(resp.text.starts_with("- "), "{}", resp.text);
        let numbered = service
            .narrate(
                &NarrationRequest::auto(PG_DOC)
                    .unwrap()
                    .with_style(RenderStyle::Numbered),
            )
            .unwrap();
        assert!(numbered.text.starts_with("1. "));
    }

    #[test]
    fn builder_style_applies_to_style_less_backends() {
        // Neuron renders its own numbered default; the service
        // re-renders into the configured style.
        let service = LanternBuilder::new()
            .backend(Backend::Neuron)
            .style(RenderStyle::Bulleted)
            .build()
            .unwrap();
        let resp = service.narrate_document(PG_DOC).unwrap();
        assert!(resp.text.starts_with("- "), "{}", resp.text);
    }

    #[test]
    fn paraphrase_layer_composes_with_rule_backend() {
        let plain = LanternBuilder::new().build().unwrap();
        let varied = LanternBuilder::new().paraphrase(true).build().unwrap();
        assert_eq!(varied.backend(), "rule+paraphrase");
        let doc = r#"[{"Plan": {"Node Type": "Hash Join",
            "Hash Cond": "((a.x) = (b.y))",
            "Plans": [
              {"Node Type": "Seq Scan", "Relation Name": "a"},
              {"Node Type": "Hash",
               "Plans": [{"Node Type": "Seq Scan", "Relation Name": "b"}]}
            ]}}]"#;
        let a = plain.narrate_document(doc).unwrap();
        let b = varied.narrate_document(doc).unwrap();
        assert_ne!(a.text, b.text);
    }

    #[test]
    fn custom_store_is_honoured() {
        let service = LanternBuilder::new()
            .store(default_pg_store())
            .build()
            .unwrap();
        // pg-only store: the mssql plan now fails with a structured
        // unknown-operator error.
        let err = service.narrate_document(XML_DOC).unwrap_err();
        assert!(matches!(err, LanternError::UnknownOperator { .. }));
    }

    #[test]
    fn cached_service_is_byte_identical_to_plain() {
        // The acceptance bar for the cache layer: with the cache on,
        // cold responses, warm responses, and `nocache` responses are
        // all byte-identical to a cache-less service's — across
        // backends, styles, and both vendors.
        let docs = [PG_DOC, XML_DOC];
        for backend in [Backend::Rule, Backend::Neuron] {
            for style in [RenderStyle::Numbered, RenderStyle::Bulleted] {
                let plain = LanternBuilder::new()
                    .backend(backend)
                    .style(style)
                    .build()
                    .unwrap();
                let cached = LanternBuilder::new()
                    .backend(backend)
                    .style(style)
                    .cache(lantern_cache::CacheConfig::default())
                    .build()
                    .unwrap();
                for doc in docs {
                    let expected = plain.narrate_document(doc);
                    let cold = cached.narrate_document(doc);
                    let warm = cached.narrate_document(doc);
                    let bypass = NarrationRequest::auto(doc)
                        .ok()
                        .map(|r| CacheControl::narrate_uncached(&cached, &r));
                    match expected {
                        Ok(expected) => {
                            assert_eq!(cold.as_ref().unwrap(), &expected);
                            assert_eq!(warm.as_ref().unwrap(), &expected);
                            assert_eq!(bypass.unwrap().as_ref().unwrap(), &expected);
                        }
                        Err(expected) => {
                            assert_eq!(cold.unwrap_err(), expected);
                            assert_eq!(warm.unwrap_err(), expected);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn cached_service_reports_hits_and_clears() {
        let service = LanternBuilder::new()
            .cache(lantern_cache::CacheConfig::default())
            .build()
            .unwrap();
        assert!(service.has_cache());
        service.narrate_document(PG_DOC).unwrap();
        service.narrate_document(PG_DOC).unwrap();
        let stats = service.cache_stats().unwrap();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.entries, 1);
        assert_eq!(CacheControl::clear_cache(&service), 1);
        assert_eq!(service.cache_stats().unwrap().entries, 0);
    }

    #[test]
    fn pool_mutation_invalidates_cached_narrations() {
        use lantern_pool::OperatorArity;
        let service = LanternBuilder::new()
            .cache(lantern_cache::CacheConfig::default())
            .build()
            .unwrap();
        let before = service.narrate_document(PG_DOC).unwrap();
        service.narrate_document(PG_DOC).unwrap(); // warm
        assert_eq!(service.cache_stats().unwrap().hits, 1);
        // A POOL mutation bumps the catalog generation: the next
        // narration misses (fresh key) instead of serving stale prose.
        service.store().create(
            "pg",
            "Seq Scan",
            None,
            OperatorArity::Unary,
            Some("re-read {rel} end to end"),
            &["re-read {rel} end to end"],
            false,
            None,
        );
        let after = service.narrate_document(PG_DOC).unwrap();
        let stats = service.cache_stats().unwrap();
        assert_eq!(stats.hits, 1, "generation change must miss");
        assert_eq!(stats.entries, 2, "old and new generations coexist");
        // (The default store already had a Seq Scan entry, so the
        // narration itself is unchanged — the point is the key.)
        assert_eq!(before.backend, after.backend);
    }

    #[test]
    fn plain_service_has_no_cache_surface() {
        let service = LanternBuilder::new().build().unwrap();
        assert!(!service.has_cache());
        assert!(service.cache_stats().is_none());
        assert_eq!(CacheControl::clear_cache(&service), 0);
        // The trait's bypass path still narrates.
        let resp =
            CacheControl::narrate_uncached(&service, &NarrationRequest::auto(PG_DOC).unwrap())
                .unwrap();
        assert!(resp.text.contains("sequential scan on orders"));
    }

    const PG_ALT: &str = r#"[{"Plan": {"Node Type": "Index Scan", "Relation Name": "orders", "Index Name": "orders_pkey"}}]"#;

    #[test]
    fn every_service_diffs_plans() {
        // The diff surface is always on, whichever narration backend.
        for backend in [Backend::Rule, Backend::Neuron] {
            let service = LanternBuilder::new().backend(backend).build().unwrap();
            assert_eq!(service.diff_backend(), "rule-diff");
            let resp = service.diff_documents(PG_DOC, PG_ALT).unwrap();
            assert!(!resp.is_identical());
            assert_eq!(resp.changes[0].kind, "operator-substitution");
            let same = service.diff_documents(PG_DOC, PG_DOC).unwrap();
            assert!(same.is_identical());
            assert_eq!(same.score, 0.0);
        }
    }

    #[test]
    fn diff_respects_configured_and_overridden_style() {
        let service = LanternBuilder::new()
            .style(RenderStyle::Bulleted)
            .build()
            .unwrap();
        let resp = service.diff_documents(PG_DOC, PG_ALT).unwrap();
        assert!(resp.text.starts_with("- "), "{}", resp.text);
        let numbered = service
            .narrate_diff(
                &DiffRequest::auto(PG_DOC, PG_ALT)
                    .unwrap()
                    .with_style(RenderStyle::Numbered),
            )
            .unwrap();
        assert!(numbered.text.starts_with("1. "), "{}", numbered.text);
    }

    #[test]
    fn cached_diffs_are_byte_identical_and_hit_the_cache() {
        let plain = LanternBuilder::new().build().unwrap();
        let cached = LanternBuilder::new()
            .cache(lantern_cache::CacheConfig::default())
            .build()
            .unwrap();
        assert!(plain.diff_cache_stats().is_none());
        let expected = plain.diff_documents(PG_DOC, PG_ALT).unwrap();
        let cold = cached.diff_documents(PG_DOC, PG_ALT).unwrap();
        let warm = cached.diff_documents(PG_DOC, PG_ALT).unwrap();
        assert_eq!(cold, expected);
        assert_eq!(warm, expected);
        let stats = cached.diff_cache_stats().unwrap();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.entries, 1);
        // Style is part of the key: a restyled diff is a fresh entry,
        // not a stale hit rendered in the wrong style.
        let bulleted = cached
            .narrate_diff(
                &DiffRequest::auto(PG_DOC, PG_ALT)
                    .unwrap()
                    .with_style(RenderStyle::Bulleted),
            )
            .unwrap();
        assert!(bulleted.text.starts_with("- "));
        assert_eq!(cached.diff_cache_stats().unwrap().entries, 2);
        // `/cache/clear` semantics drop diffs along with narrations.
        cached.narrate_document(PG_DOC).unwrap();
        assert_eq!(CacheControl::clear_cache(&cached), 3);
        assert_eq!(cached.diff_cache_stats().unwrap().entries, 0);
    }

    #[test]
    fn pool_mutation_invalidates_cached_diffs() {
        use lantern_pool::OperatorArity;
        let service = LanternBuilder::new()
            .cache(lantern_cache::CacheConfig::default())
            .build()
            .unwrap();
        service.diff_documents(PG_DOC, PG_ALT).unwrap();
        service.diff_documents(PG_DOC, PG_ALT).unwrap();
        assert_eq!(service.diff_cache_stats().unwrap().hits, 1);
        // A POOL mutation bumps the generation: the next diff misses.
        service.store().create(
            "pg",
            "Index Scan",
            None,
            OperatorArity::Unary,
            Some("look up {rel} rows through an index"),
            &["look up {rel} rows through an index"],
            false,
            None,
        );
        service.diff_documents(PG_DOC, PG_ALT).unwrap();
        let stats = service.diff_cache_stats().unwrap();
        assert_eq!(stats.hits, 1, "generation change must miss");
        assert_eq!(stats.entries, 2, "old and new generations coexist");
    }

    #[test]
    fn service_batches() {
        let service = LanternBuilder::new().build().unwrap();
        let reqs = vec![
            NarrationRequest::auto(PG_DOC).unwrap(),
            NarrationRequest::auto(XML_DOC).unwrap(),
        ];
        let out = service.narrate_batch(&reqs);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(Result::is_ok));
    }
}
