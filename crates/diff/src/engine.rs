//! Subtree matching and edit classification.
//!
//! The matcher is anchored on per-subtree 128-bit fingerprints (the
//! same canonical encoding the narration cache keys on, under its own
//! `lantern/subtree-fp/v1` domain). Two digests per subtree carry the
//! whole comparison:
//!
//! * **strict** (estimates included) — equal digests mean the subtrees
//!   are identical, so the walk prunes there;
//! * **lax** (estimates ignored) — equal-lax-but-unequal-strict means
//!   the subtrees differ *only* in optimizer estimates, so the walk
//!   degenerates to a lockstep pass emitting one
//!   [`EditKind::EstimateDelta`] per drifted node.
//!
//! Only when the lax digests disagree does real structural
//! classification happen: operator substitution at the node, per-field
//! predicate changes, a cross-match test for swapped join inputs, and
//! greedy child alignment whose leftovers become subtree
//! inserts/deletes.

use lantern_cache::{fingerprint_subtree, Fingerprint, FingerprintOptions};
use lantern_plan::{PlanNode, PlanTree};

use crate::score::{score_edit, ESTIMATE_TOTAL_CAP};

/// Tuning knobs for [`diff_plans_with`].
#[derive(Debug, Clone, Copy)]
pub struct DiffOptions {
    /// Relative tolerance under which two estimates count as equal
    /// (guards float noise from re-serialized documents; the default is
    /// effectively exact comparison of parsed values).
    pub estimate_epsilon: f64,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            estimate_epsilon: 1e-9,
        }
    }
}

/// Which scalar field a [`EditKind::PredicateChange`] touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChangedField {
    /// `relation` — the scanned table changed.
    Relation,
    /// `alias` — the query-side alias changed.
    Alias,
    /// `index_name` — a different (or no) index access path.
    IndexName,
    /// `filter` — the filter predicate text.
    Filter,
    /// `join_cond` — the join condition text.
    JoinCond,
    /// `sort_keys` — the sort key list.
    SortKeys,
    /// `group_keys` — the grouping key list.
    GroupKeys,
    /// `strategy` — the aggregate strategy (`Sorted`/`Hashed`).
    Strategy,
}

impl ChangedField {
    /// Stable field slug for wire output.
    pub fn name(self) -> &'static str {
        match self {
            ChangedField::Relation => "relation",
            ChangedField::Alias => "alias",
            ChangedField::IndexName => "index",
            ChangedField::Filter => "filter",
            ChangedField::JoinCond => "join-condition",
            ChangedField::SortKeys => "sort-keys",
            ChangedField::GroupKeys => "group-keys",
            ChangedField::Strategy => "strategy",
        }
    }
}

/// A classified difference between matched base/alternative subtrees.
#[derive(Debug, Clone, PartialEq)]
pub enum EditKind {
    /// The operator itself changed (e.g. `Nested Loop` → `Hash Join`):
    /// the optimizer chose a different algorithm for the same slot.
    OperatorSubstitution {
        /// Base-plan operator name.
        before: String,
        /// Alternative-plan operator name.
        after: String,
    },
    /// The two inputs of a binary operator traded places (outer/inner
    /// or build/probe side swap) with both subtrees otherwise intact.
    JoinInputSwap {
        /// The binary operator whose inputs swapped.
        op: String,
    },
    /// Structure identical, optimizer estimates drifted.
    EstimateDelta {
        /// Operator at the drifted node.
        op: String,
        /// Base cardinality estimate.
        rows_before: f64,
        /// Alternative cardinality estimate.
        rows_after: f64,
        /// Base cost estimate.
        cost_before: f64,
        /// Alternative cost estimate.
        cost_after: f64,
    },
    /// A scalar field of the node changed (filter text, join condition,
    /// index choice, sort/group keys, …).
    PredicateChange {
        /// Operator at the changed node.
        op: String,
        /// Which field changed.
        field: ChangedField,
        /// Base value (`None` when the field was absent).
        before: Option<String>,
        /// Alternative value (`None` when the field is absent).
        after: Option<String>,
    },
    /// The alternative plan grew a subtree the base plan lacks.
    SubtreeInsert {
        /// Root operator of the inserted subtree.
        op: String,
        /// Operator count of the inserted subtree.
        size: usize,
        /// Cardinality estimate at its root.
        rows: f64,
    },
    /// The alternative plan dropped a subtree the base plan has.
    SubtreeDelete {
        /// Root operator of the dropped subtree.
        op: String,
        /// Operator count of the dropped subtree.
        size: usize,
        /// Cardinality estimate at its root.
        rows: f64,
    },
}

impl EditKind {
    /// Stable change-kind slug (mirrored into
    /// [`DiffChange::kind`](lantern_core::DiffChange); add new ones,
    /// never rename).
    pub fn kind_name(&self) -> &'static str {
        match self {
            EditKind::OperatorSubstitution { .. } => "operator-substitution",
            EditKind::JoinInputSwap { .. } => "join-input-swap",
            EditKind::EstimateDelta { .. } => "estimate-delta",
            EditKind::PredicateChange { .. } => "predicate-change",
            EditKind::SubtreeInsert { .. } => "subtree-insert",
            EditKind::SubtreeDelete { .. } => "subtree-delete",
        }
    }

    /// The anchor operator name (base side where both exist).
    pub fn op(&self) -> &str {
        match self {
            EditKind::OperatorSubstitution { before, .. } => before,
            EditKind::JoinInputSwap { op }
            | EditKind::EstimateDelta { op, .. }
            | EditKind::PredicateChange { op, .. }
            | EditKind::SubtreeInsert { op, .. }
            | EditKind::SubtreeDelete { op, .. } => op,
        }
    }
}

/// One edit, anchored at a node path, with its scoring weight.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanEdit {
    /// Child-index path from the root of the *base* tree (empty = the
    /// root itself; inserts use the position the new subtree takes in
    /// the alternative).
    pub path: Vec<usize>,
    /// What changed.
    pub kind: EditKind,
    /// This edit's contribution to [`PlanDiff::score`] (structural
    /// weight; estimate deltas are capped in aggregate).
    pub weight: f64,
}

impl PlanEdit {
    /// Dotted display form of the path: `"root"`, `"root.0.1"`.
    pub fn path_string(&self) -> String {
        let mut s = String::from("root");
        for i in &self.path {
            s.push('.');
            s.push_str(&i.to_string());
        }
        s
    }
}

/// The result of comparing two plans: classified edits (base-tree
/// pre-order) plus an informativeness score for ranking alternatives.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanDiff {
    /// Classified edits; empty iff the plans are strictly identical.
    pub edits: Vec<PlanEdit>,
    /// Informativeness: the sum of edit weights, amplified by the
    /// estimated-cost delta between the two roots. See
    /// [`informativeness`](crate::score::informativeness).
    pub score: f64,
    /// Root cost estimate of the base plan.
    pub base_cost: f64,
    /// Root cost estimate of the alternative plan.
    pub alt_cost: f64,
}

impl PlanDiff {
    /// Whether the plans were identical (estimates included).
    pub fn is_empty(&self) -> bool {
        self.edits.is_empty()
    }

    /// The distinct change-kind slugs present, in first-seen order
    /// (what property tests assert against).
    pub fn kind_names(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = Vec::new();
        for e in &self.edits {
            let n = e.kind.kind_name();
            if !names.contains(&n) {
                names.push(n);
            }
        }
        names
    }
}

/// Diff two plans with default options.
pub fn diff_plans(base: &PlanTree, alt: &PlanTree) -> PlanDiff {
    diff_plans_with(base, alt, DiffOptions::default())
}

/// Diff two plans: fingerprint-anchored matching, edit classification,
/// and informativeness scoring.
pub fn diff_plans_with(base: &PlanTree, alt: &PlanTree, opts: DiffOptions) -> PlanDiff {
    let mut edits = Vec::new();
    let mut path = Vec::new();
    diff_nodes(&base.root, &alt.root, &mut path, &mut edits, opts);
    for e in &mut edits {
        e.weight = score_edit(&e.kind);
    }
    // Cap the *aggregate* estimate-jitter contribution so a plan that
    // drifted a little everywhere never outranks a single structural
    // change; the cap is redistributed pro-rata so each edit's weight
    // still states its true contribution to the score.
    let estimate_total: f64 = edits
        .iter()
        .filter(|e| matches!(e.kind, EditKind::EstimateDelta { .. }))
        .map(|e| e.weight)
        .sum();
    if estimate_total > ESTIMATE_TOTAL_CAP {
        let scale = ESTIMATE_TOTAL_CAP / estimate_total;
        for e in &mut edits {
            if matches!(e.kind, EditKind::EstimateDelta { .. }) {
                e.weight *= scale;
            }
        }
    }
    let score =
        crate::score::informativeness(&edits, base.root.estimated_cost, alt.root.estimated_cost);
    PlanDiff {
        edits,
        score,
        base_cost: base.root.estimated_cost,
        alt_cost: alt.root.estimated_cost,
    }
}

fn strict_fp(n: &PlanNode) -> Fingerprint {
    fingerprint_subtree(n, FingerprintOptions::strict())
}

fn lax_fp(n: &PlanNode) -> Fingerprint {
    fingerprint_subtree(n, FingerprintOptions::default())
}

fn subtree_size(n: &PlanNode) -> usize {
    1 + n.children.iter().map(subtree_size).sum::<usize>()
}

fn diff_nodes(
    a: &PlanNode,
    b: &PlanNode,
    path: &mut Vec<usize>,
    edits: &mut Vec<PlanEdit>,
    opts: DiffOptions,
) {
    if strict_fp(a) == strict_fp(b) {
        return;
    }
    if lax_fp(a) == lax_fp(b) {
        collect_estimate_deltas(a, b, path, edits, opts);
        return;
    }
    compare_node(a, b, path, edits, opts);
    align_children(a, b, path, edits, opts);
}

/// Node-local comparisons: operator substitution, per-field predicate
/// changes, and an estimate delta when the numbers moved too.
fn compare_node(
    a: &PlanNode,
    b: &PlanNode,
    path: &[usize],
    edits: &mut Vec<PlanEdit>,
    opts: DiffOptions,
) {
    let mut push = |kind: EditKind| {
        edits.push(PlanEdit {
            path: path.to_vec(),
            kind,
            weight: 0.0,
        });
    };
    if a.op != b.op {
        push(EditKind::OperatorSubstitution {
            before: a.op.clone(),
            after: b.op.clone(),
        });
    }
    let fields: [(ChangedField, &Option<String>, &Option<String>); 6] = [
        (ChangedField::Relation, &a.relation, &b.relation),
        (ChangedField::Alias, &a.alias, &b.alias),
        (ChangedField::IndexName, &a.index_name, &b.index_name),
        (ChangedField::Filter, &a.filter, &b.filter),
        (ChangedField::JoinCond, &a.join_cond, &b.join_cond),
        (ChangedField::Strategy, &a.strategy, &b.strategy),
    ];
    for (field, before, after) in fields {
        if before != after {
            push(EditKind::PredicateChange {
                op: a.op.clone(),
                field,
                before: (*before).clone(),
                after: (*after).clone(),
            });
        }
    }
    let keys = [
        (ChangedField::SortKeys, &a.sort_keys, &b.sort_keys),
        (ChangedField::GroupKeys, &a.group_keys, &b.group_keys),
    ];
    for (field, before, after) in keys {
        if before != after {
            push(EditKind::PredicateChange {
                op: a.op.clone(),
                field,
                before: (!before.is_empty()).then(|| before.join(", ")),
                after: (!after.is_empty()).then(|| after.join(", ")),
            });
        }
    }
    if estimates_differ(a, b, opts) {
        push(EditKind::EstimateDelta {
            op: a.op.clone(),
            rows_before: a.estimated_rows,
            rows_after: b.estimated_rows,
            cost_before: a.estimated_cost,
            cost_after: b.estimated_cost,
        });
    }
}

/// Lockstep walk over two lax-identical subtrees: same shape
/// guaranteed, only the estimates can differ.
fn collect_estimate_deltas(
    a: &PlanNode,
    b: &PlanNode,
    path: &mut Vec<usize>,
    edits: &mut Vec<PlanEdit>,
    opts: DiffOptions,
) {
    if estimates_differ(a, b, opts) {
        edits.push(PlanEdit {
            path: path.clone(),
            kind: EditKind::EstimateDelta {
                op: a.op.clone(),
                rows_before: a.estimated_rows,
                rows_after: b.estimated_rows,
                cost_before: a.estimated_cost,
                cost_after: b.estimated_cost,
            },
            weight: 0.0,
        });
    }
    for (i, (ca, cb)) in a.children.iter().zip(&b.children).enumerate() {
        path.push(i);
        collect_estimate_deltas(ca, cb, path, edits, opts);
        path.pop();
    }
}

/// Pair children across the two nodes and recurse into the pairs.
///
/// Swapped join inputs are detected first: exactly two children on
/// both sides whose lax fingerprints match crosswise but not straight.
/// Otherwise alignment is greedy — equal lax fingerprint, then equal
/// operator name, then position — and leftovers become subtree
/// deletes (base side) / inserts (alternative side).
fn align_children(
    a: &PlanNode,
    b: &PlanNode,
    path: &mut Vec<usize>,
    edits: &mut Vec<PlanEdit>,
    opts: DiffOptions,
) {
    let ac = &a.children;
    let bc = &b.children;
    if ac.is_empty() && bc.is_empty() {
        return;
    }
    let af: Vec<Fingerprint> = ac.iter().map(lax_fp).collect();
    let bf: Vec<Fingerprint> = bc.iter().map(lax_fp).collect();
    if ac.len() == 2 && bc.len() == 2 {
        let straight = af[0] == bf[0] && af[1] == bf[1];
        let crossed = af[0] == bf[1] && af[1] == bf[0];
        if crossed && !straight {
            edits.push(PlanEdit {
                path: path.clone(),
                kind: EditKind::JoinInputSwap { op: a.op.clone() },
                weight: 0.0,
            });
            // Recurse the crossed pairs: lax-equal, so at most
            // estimate deltas remain inside.
            path.push(0);
            diff_nodes(&ac[0], &bc[1], path, edits, opts);
            path.pop();
            path.push(1);
            diff_nodes(&ac[1], &bc[0], path, edits, opts);
            path.pop();
            return;
        }
    }
    let mut pair: Vec<Option<usize>> = vec![None; ac.len()];
    let mut used = vec![false; bc.len()];
    for (i, fp) in af.iter().enumerate() {
        if let Some(j) = (0..bc.len()).find(|&j| !used[j] && bf[j] == *fp) {
            pair[i] = Some(j);
            used[j] = true;
        }
    }
    for (i, slot) in pair.iter_mut().enumerate() {
        if slot.is_none() {
            if let Some(j) = (0..bc.len()).find(|&j| !used[j] && bc[j].op == ac[i].op) {
                *slot = Some(j);
                used[j] = true;
            }
        }
    }
    for slot in pair.iter_mut() {
        if slot.is_none() {
            if let Some(j) = (0..bc.len()).find(|&j| !used[j]) {
                *slot = Some(j);
                used[j] = true;
            }
        }
    }
    for (i, slot) in pair.iter().enumerate() {
        path.push(i);
        match slot {
            Some(j) => diff_nodes(&ac[i], &bc[*j], path, edits, opts),
            None => edits.push(PlanEdit {
                path: path.clone(),
                kind: EditKind::SubtreeDelete {
                    op: ac[i].op.clone(),
                    size: subtree_size(&ac[i]),
                    rows: ac[i].estimated_rows,
                },
                weight: 0.0,
            }),
        }
        path.pop();
    }
    for (j, child) in bc.iter().enumerate() {
        if !used[j] {
            path.push(j);
            edits.push(PlanEdit {
                path: path.clone(),
                kind: EditKind::SubtreeInsert {
                    op: child.op.clone(),
                    size: subtree_size(child),
                    rows: child.estimated_rows,
                },
                weight: 0.0,
            });
            path.pop();
        }
    }
}

fn estimates_differ(a: &PlanNode, b: &PlanNode, opts: DiffOptions) -> bool {
    !nearly_equal(a.estimated_rows, b.estimated_rows, opts.estimate_epsilon)
        || !nearly_equal(a.estimated_cost, b.estimated_cost, opts.estimate_epsilon)
}

fn nearly_equal(x: f64, y: f64, eps: f64) -> bool {
    (x - y).abs() <= eps * x.abs().max(y.abs()).max(1.0)
}
