//! [`RuleDiffTranslator`]: the [`DiffTranslator`] backend over the
//! structural engine — resolve both sources, diff, and narrate against
//! a POEM store snapshot. The root crate's `LanternService` wraps this
//! (adding the fingerprint-pair diff cache); `lantern-serve` routes to
//! it behind `POST /narrate/diff`.

use lantern_core::{DiffRequest, DiffResponse, DiffTranslator, LanternError, RenderStyle};
use lantern_plan::PlanTree;
use lantern_pool::PoemStore;

use crate::engine::diff_plans;
use crate::narrate::{render_diff_with, DiffTemplates};

/// The rule-based diff backend: POEM display names, the default
/// [`DiffTemplates`], and a configurable default rendering style.
#[derive(Debug, Clone)]
pub struct RuleDiffTranslator {
    store: PoemStore,
    style: RenderStyle,
    templates: DiffTemplates,
}

impl RuleDiffTranslator {
    /// A diff backend over the given store, rendering numbered
    /// documents by default.
    pub fn new(store: PoemStore) -> Self {
        RuleDiffTranslator {
            store,
            style: RenderStyle::default(),
            templates: DiffTemplates::default(),
        }
    }

    /// Change the default rendering style.
    pub fn with_style(mut self, style: RenderStyle) -> Self {
        self.style = style;
        self
    }

    /// Replace the diff sentence frames.
    pub fn with_templates(mut self, templates: DiffTemplates) -> Self {
        self.templates = templates;
        self
    }

    /// The underlying store handle.
    pub fn store(&self) -> &PoemStore {
        &self.store
    }

    /// Diff and narrate two already-parsed trees (what a caching layer
    /// calls after it has resolved the trees to fingerprint them —
    /// resolving twice would double the parse cost).
    pub fn narrate_trees(
        &self,
        base: &PlanTree,
        alt: &PlanTree,
        style: Option<RenderStyle>,
    ) -> DiffResponse {
        let diff = diff_plans(base, alt);
        let snapshot = self.store.snapshot();
        let (changes, narration) = render_diff_with(base, alt, &diff, &snapshot, &self.templates);
        let text = narration.render(style.unwrap_or(self.style));
        DiffResponse {
            backend: "rule-diff".to_string(),
            score: diff.score,
            changes,
            narration,
            text,
        }
    }
}

impl DiffTranslator for RuleDiffTranslator {
    fn diff_backend(&self) -> &str {
        "rule-diff"
    }

    fn narrate_diff(&self, req: &DiffRequest) -> Result<DiffResponse, LanternError> {
        let base = req.base.resolve()?;
        let alt = req.alt.resolve()?;
        Ok(self.narrate_trees(&base, &alt, req.style))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lantern_pool::default_mssql_store;

    const BASE: &str = r#"{"Plan": {"Node Type": "Nested Loop", "Total Cost": 500.0,
        "Plans": [{"Node Type": "Seq Scan", "Relation Name": "orders", "Plan Rows": 1000},
                  {"Node Type": "Seq Scan", "Relation Name": "customers", "Plan Rows": 200}]}}"#;
    const ALT: &str = r#"{"Plan": {"Node Type": "Hash Join", "Total Cost": 120.0,
        "Plans": [{"Node Type": "Seq Scan", "Relation Name": "orders", "Plan Rows": 1000},
                  {"Node Type": "Seq Scan", "Relation Name": "customers", "Plan Rows": 200}]}}"#;

    #[test]
    fn end_to_end_over_documents() {
        let t = RuleDiffTranslator::new(default_mssql_store());
        let resp = t
            .narrate_diff(&DiffRequest::auto(BASE, ALT).unwrap())
            .unwrap();
        assert_eq!(resp.backend, "rule-diff");
        assert!(!resp.is_identical());
        assert!(resp.score > 0.0);
        assert_eq!(resp.changes[0].kind, "operator-substitution");
        assert!(resp.text.contains("hash join"), "{}", resp.text);
    }

    #[test]
    fn self_diff_reports_identical() {
        let t = RuleDiffTranslator::new(default_mssql_store());
        let resp = t
            .narrate_diff(&DiffRequest::auto(BASE, BASE).unwrap())
            .unwrap();
        assert!(resp.is_identical());
        assert_eq!(resp.score, 0.0);
        assert!(resp.changes.is_empty());
        assert!(resp.text.contains("identical"));
    }

    #[test]
    fn batch_default_ranks_by_caller() {
        use lantern_core::PlanSource;
        let t = RuleDiffTranslator::new(default_mssql_store());
        let base = PlanSource::auto(BASE).unwrap();
        let alts = vec![
            PlanSource::auto(BASE).unwrap(),
            PlanSource::auto(ALT).unwrap(),
        ];
        let out = t.narrate_diff_batch(&base, &alts, None);
        assert_eq!(out.len(), 2);
        let scores: Vec<f64> = out.iter().map(|r| r.as_ref().unwrap().score).collect();
        assert_eq!(scores[0], 0.0);
        assert!(scores[1] > 0.0);
    }

    #[test]
    fn style_override_changes_rendering() {
        let t = RuleDiffTranslator::new(default_mssql_store());
        let req = DiffRequest::auto(BASE, ALT)
            .unwrap()
            .with_style(RenderStyle::Bulleted);
        let resp = t.narrate_diff(&req).unwrap();
        assert!(resp.text.starts_with("- "), "{}", resp.text);
    }
}
