//! Informativeness scoring: how much is an alternative plan worth
//! showing?
//!
//! Each edit carries a structural weight; the diff's score is the
//! weight sum amplified by how far the estimated total cost moved.
//! The weights are ordered so that what a student should look at first
//! ranks first: a different join algorithm (operator substitution)
//! outranks a join-order change, which outranks a predicate tweak —
//! and estimate jitter, which changes nothing about how the query
//! runs, is capped in aggregate *below every structural weight*, so a
//! plan that drifted a little everywhere still ranks last.

use crate::engine::{EditKind, PlanEdit};

/// Weight of an [`EditKind::OperatorSubstitution`] — the optimizer
/// picked a different algorithm; the most instructive kind of change.
pub const W_OPERATOR_SUBSTITUTION: f64 = 10.0;

/// Base weight of a subtree insert/delete, before the per-operator
/// size bonus.
pub const W_SUBTREE_BASE: f64 = 8.0;

/// Per-operator size bonus for subtree inserts/deletes.
pub const W_SUBTREE_PER_OP: f64 = 2.0;

/// Weight of an [`EditKind::JoinInputSwap`] — same operators, the
/// build/probe (or outer/inner) sides traded places.
pub const W_JOIN_INPUT_SWAP: f64 = 6.0;

/// Weight of an [`EditKind::PredicateChange`].
pub const W_PREDICATE_CHANGE: f64 = 4.0;

/// Aggregate cap on estimate-delta weight per diff: strictly below
/// every structural weight, so pure jitter never outranks a structural
/// change no matter how many nodes drifted.
pub const ESTIMATE_TOTAL_CAP: f64 = 3.0;

/// `|log2(after/before)|`, the symmetric magnitude of a ratio change;
/// `0` when both sides are non-positive or non-finite (estimates from
/// real plans are positive, so this only guards degenerate input).
pub fn log2_ratio(before: f64, after: f64) -> f64 {
    if before <= 0.0 || after <= 0.0 || !before.is_finite() || !after.is_finite() {
        return if before == after { 0.0 } else { 1.0 };
    }
    (after / before).log2().abs()
}

/// Structural weight of one edit. Estimate deltas weigh in by the
/// log-magnitude of the drift (a 2× cardinality miss weighs 1.0, the
/// ±10% jitter a re-`ANALYZE` produces weighs ≈ 0.3), capped per edit.
pub fn score_edit(kind: &EditKind) -> f64 {
    match kind {
        EditKind::OperatorSubstitution { .. } => W_OPERATOR_SUBSTITUTION,
        EditKind::JoinInputSwap { .. } => W_JOIN_INPUT_SWAP,
        EditKind::PredicateChange { .. } => W_PREDICATE_CHANGE,
        EditKind::SubtreeInsert { size, .. } | EditKind::SubtreeDelete { size, .. } => {
            W_SUBTREE_BASE + W_SUBTREE_PER_OP * (*size as f64)
        }
        EditKind::EstimateDelta {
            rows_before,
            rows_after,
            cost_before,
            cost_after,
            ..
        } => {
            (log2_ratio(*rows_before, *rows_after) + log2_ratio(*cost_before, *cost_after)).min(2.0)
        }
    }
}

/// The diff's informativeness: the sum of edit weights, amplified by
/// how far the estimated total cost moved between the two roots
/// (`1 + |log2(alt/base)|`, capped). Two alternatives with the same
/// structural change rank by how much the optimizer thinks the change
/// matters; `0.0` iff there are no edits at all.
pub fn informativeness(edits: &[PlanEdit], base_cost: f64, alt_cost: f64) -> f64 {
    let magnitude: f64 = edits.iter().map(|e| e.weight).sum();
    if magnitude == 0.0 {
        return 0.0;
    }
    magnitude * (1.0 + log2_ratio(base_cost, alt_cost).min(6.0))
}
