//! Render a [`PlanDiff`] as learner-facing prose.
//!
//! Operator names go through the POEM store ([`PoemLookup`]) so the
//! narration says what the rule backend says — `hash join`, not
//! `Hash Join` — and predicates go through the same
//! [`humanize_predicate`] pass the step narrator uses. The sentence
//! frames themselves are a small diff-specific template set
//! ([`DiffTemplates`]) with `{placeholder}` substitution, overridable
//! the same way POEM description templates are.

use lantern_core::narrate::humanize_predicate;
use lantern_core::{DiffChange, Narration, NarrationStep, TagBinding};
use lantern_plan::PlanTree;
use lantern_pool::PoemLookup;

use crate::engine::{ChangedField, EditKind, PlanDiff};

/// The diff sentence frames. Placeholders in `{braces}` are
/// substituted; unknown placeholders pass through untouched.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffTemplates {
    /// Whole-diff sentence when there are no edits.
    pub identical: String,
    /// Leading summary step: `{count}`, `{places}`, `{cost_clause}`.
    pub summary: String,
    /// Appended to the summary when the root cost moved: `{before}`,
    /// `{after}`.
    pub cost_clause: String,
    /// Operator substitution: `{path}`, `{before}`, `{after}` (both
    /// operator names arrive with an indefinite article — "an index
    /// scan", "a hash join").
    pub operator_substitution: String,
    /// Join-input swap: `{path}`, `{op}`.
    pub join_input_swap: String,
    /// Estimate drift: `{path}`, `{op}`, `{rows_before}`,
    /// `{rows_after}`, `{cost_before}`, `{cost_after}`.
    pub estimate_delta: String,
    /// Field changed on both sides: `{path}`, `{op}`, `{field}`,
    /// `{before}`, `{after}`.
    pub predicate_change: String,
    /// Field present only in the alternative: `{path}`, `{op}`,
    /// `{field}` (with indefinite article, absent on plural fields),
    /// `{after}`.
    pub predicate_add: String,
    /// Field present only in the base: `{path}`, `{op}`, `{field}`,
    /// `{before}`.
    pub predicate_drop: String,
    /// Inserted subtree: `{path}`, `{op}` (with indefinite article),
    /// `{size}`, `{operators}`, `{rows}`.
    pub subtree_insert: String,
    /// Dropped subtree: `{path}`, `{op}`, `{size}`, `{operators}`.
    pub subtree_delete: String,
}

impl Default for DiffTemplates {
    fn default() -> Self {
        DiffTemplates {
            identical: "the alternative plan is identical to the base plan.".into(),
            summary: "the alternative plan differs from the base plan in {count} \
                      {places}{cost_clause}."
                .into(),
            cost_clause: ", moving the estimated total cost from {before} to {after}".into(),
            operator_substitution: "at {path}, the alternative performs {after} where the \
                                    base plan performs {before}."
                .into(),
            join_input_swap: "at {path}, the two inputs of the {op} trade places: the base \
                              plan's outer input becomes the alternative's inner input."
                .into(),
            estimate_delta: "at {path}, the optimizer now expects {rows_after} rows at cost \
                             {cost_after} for the {op} (was {rows_before} rows at cost \
                             {cost_before})."
                .into(),
            predicate_change: "at {path}, the {field} on the {op} changes from {before} to \
                               {after}."
                .into(),
            predicate_add: "at {path}, the {op} gains {field}: {after}.".into(),
            predicate_drop: "at {path}, the {op} drops its {field} ({before}).".into(),
            subtree_insert: "at {path}, the alternative adds {op} subtree of {size} \
                             {operators} producing about {rows} rows."
                .into(),
            subtree_delete: "at {path}, the alternative drops the base plan's {op} subtree \
                             of {size} {operators}."
                .into(),
        }
    }
}

/// Render `diff` with the default templates: the wire-form change
/// list and the step narration (summary step first, then one step per
/// edit, in base-tree pre-order).
pub fn render_diff<L: PoemLookup>(
    base: &PlanTree,
    alt: &PlanTree,
    diff: &PlanDiff,
    lookup: &L,
) -> (Vec<DiffChange>, Narration) {
    render_diff_with(base, alt, diff, lookup, &DiffTemplates::default())
}

/// Render `diff` with a caller-supplied template set.
pub fn render_diff_with<L: PoemLookup>(
    base: &PlanTree,
    alt: &PlanTree,
    diff: &PlanDiff,
    lookup: &L,
    templates: &DiffTemplates,
) -> (Vec<DiffChange>, Narration) {
    let mut changes = Vec::with_capacity(diff.edits.len());
    let mut steps = Vec::with_capacity(diff.edits.len() + 1);
    steps.push(step(1, Vec::new(), summary_text(diff, templates)));
    for edit in &diff.edits {
        let path = edit.path_string();
        let (ops, text) = sentence(edit.kind.clone(), &path, base, alt, lookup, templates);
        changes.push(DiffChange {
            kind: edit.kind.kind_name().into(),
            path,
            op: edit.kind.op().into(),
            detail: text.clone(),
            weight: edit.weight,
        });
        steps.push(step(steps.len() + 1, ops, text));
    }
    (changes, Narration::from_steps(steps))
}

fn summary_text(diff: &PlanDiff, templates: &DiffTemplates) -> String {
    if diff.edits.is_empty() {
        return templates.identical.clone();
    }
    let cost_clause = if format_cost(diff.base_cost) == format_cost(diff.alt_cost) {
        String::new()
    } else {
        fill(
            &templates.cost_clause,
            &[
                ("before", format_cost(diff.base_cost)),
                ("after", format_cost(diff.alt_cost)),
            ],
        )
    };
    fill(
        &templates.summary,
        &[
            ("count", diff.edits.len().to_string()),
            ("places", plural(diff.edits.len(), "place", "places").into()),
            ("cost_clause", cost_clause),
        ],
    )
}

fn sentence<L: PoemLookup>(
    kind: EditKind,
    path: &str,
    base: &PlanTree,
    alt: &PlanTree,
    lookup: &L,
    templates: &DiffTemplates,
) -> (Vec<String>, String) {
    let name = |op: &str| display_op(lookup, &base.source, &alt.source, op);
    match kind {
        EditKind::OperatorSubstitution { before, after } => {
            let text = fill(
                &templates.operator_substitution,
                &[
                    ("path", path.into()),
                    ("before", indefinite(&name(&before))),
                    (
                        "after",
                        indefinite(&display_op(lookup, &alt.source, &base.source, &after)),
                    ),
                ],
            );
            (vec![before, after], text)
        }
        EditKind::JoinInputSwap { op } => {
            let text = fill(
                &templates.join_input_swap,
                &[("path", path.into()), ("op", name(&op))],
            );
            (vec![op], text)
        }
        EditKind::EstimateDelta {
            op,
            rows_before,
            rows_after,
            cost_before,
            cost_after,
        } => {
            let text = fill(
                &templates.estimate_delta,
                &[
                    ("path", path.into()),
                    ("op", name(&op)),
                    ("rows_before", format_rows(rows_before)),
                    ("rows_after", format_rows(rows_after)),
                    ("cost_before", format_cost(cost_before)),
                    ("cost_after", format_cost(cost_after)),
                ],
            );
            (vec![op], text)
        }
        EditKind::PredicateChange {
            op,
            field,
            before,
            after,
        } => {
            let before = before.map(|v| field_value(field, &v));
            let after = after.map(|v| field_value(field, &v));
            let (template, added, vars): (&str, bool, Vec<(&str, String)>) = match (before, after) {
                (Some(b), Some(a)) => (
                    &templates.predicate_change,
                    false,
                    vec![("before", b), ("after", a)],
                ),
                (None, Some(a)) => (&templates.predicate_add, true, vec![("after", a)]),
                (Some(b), None) => (&templates.predicate_drop, false, vec![("before", b)]),
                // Both sides absent never happens (the engine only
                // emits the edit when the values differ).
                (None, None) => (&templates.predicate_change, false, Vec::new()),
            };
            let field_name = field_display(field);
            // The "gains" sentence needs an article ("gains an index")
            // except on the plural key-list fields ("gains sort keys").
            let field_phrase =
                if added && !matches!(field, ChangedField::SortKeys | ChangedField::GroupKeys) {
                    indefinite(field_name)
                } else {
                    field_name.to_string()
                };
            let mut vars = vars;
            vars.push(("path", path.into()));
            vars.push(("op", name(&op)));
            vars.push(("field", field_phrase));
            let text = fill(template, &vars);
            (vec![op], text)
        }
        EditKind::SubtreeInsert { op, size, rows } => {
            let text = fill(
                &templates.subtree_insert,
                &[
                    ("path", path.into()),
                    (
                        "op",
                        indefinite(&display_op(lookup, &alt.source, &base.source, &op)),
                    ),
                    ("size", size.to_string()),
                    ("operators", plural(size, "operator", "operators").into()),
                    ("rows", format_rows(rows)),
                ],
            );
            (vec![op], text)
        }
        EditKind::SubtreeDelete { op, size, .. } => {
            let text = fill(
                &templates.subtree_delete,
                &[
                    ("path", path.into()),
                    ("op", name(&op)),
                    ("size", size.to_string()),
                    ("operators", plural(size, "operator", "operators").into()),
                ],
            );
            (vec![op], text)
        }
    }
}

/// POEM display name for an operator, trying the primary source first
/// (both, because the base and alternative may come from different
/// vendors); unknown operators fall back to the lowercased vendor
/// name.
fn display_op<L: PoemLookup>(lookup: &L, primary: &str, secondary: &str, op: &str) -> String {
    lookup
        .find(primary, op)
        .or_else(|| lookup.find(secondary, op))
        .map(|o| o.display_name().to_string())
        .unwrap_or_else(|| op.to_lowercase())
}

/// Human phrase for a changed field.
fn field_display(field: ChangedField) -> &'static str {
    match field {
        ChangedField::Relation => "scanned relation",
        ChangedField::Alias => "alias",
        ChangedField::IndexName => "index",
        ChangedField::Filter => "filter",
        ChangedField::JoinCond => "join condition",
        ChangedField::SortKeys => "sort keys",
        ChangedField::GroupKeys => "grouping keys",
        ChangedField::Strategy => "aggregate strategy",
    }
}

/// Predicate-bearing fields read through the same humanizer the step
/// narrator uses; the rest render verbatim.
fn field_value(field: ChangedField, value: &str) -> String {
    match field {
        ChangedField::Filter | ChangedField::JoinCond => humanize_predicate(value),
        _ => value.to_string(),
    }
}

fn step(index: usize, ops: Vec<String>, text: String) -> NarrationStep {
    NarrationStep {
        index,
        ops,
        tagged: text.clone(),
        text,
        bindings: TagBinding::new(),
    }
}

fn fill(template: &str, vars: &[(&str, String)]) -> String {
    let mut out = template.to_string();
    for (key, value) in vars {
        out = out.replace(&format!("{{{key}}}"), value);
    }
    out
}

/// Prepend the right indefinite article: "an index scan", "a hash
/// join". Vowel-initial names take "an" except the few operator words
/// pronounced with a leading consonant ("unique" → "a unique").
fn indefinite(name: &str) -> String {
    let lower = name.to_lowercase();
    let an = lower.starts_with(['a', 'e', 'i', 'o', 'u'])
        && !lower.starts_with("uni")
        && !lower.starts_with("use")
        && !lower.starts_with("one");
    if an {
        format!("an {name}")
    } else {
        format!("a {name}")
    }
}

fn plural(n: usize, one: &'static str, many: &'static str) -> &'static str {
    if n == 1 {
        one
    } else {
        many
    }
}

fn format_rows(rows: f64) -> String {
    if rows.fract() == 0.0 && rows.abs() < 1e15 {
        format!("{rows:.0}")
    } else {
        format!("{rows:.1}")
    }
}

fn format_cost(cost: f64) -> String {
    format!("{cost:.2}")
}
