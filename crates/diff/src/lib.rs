//! # lantern-diff
//!
//! A structural diff engine over parsed query plans: compare a base
//! plan against an alternative, classify what changed, score how
//! *informative* the alternative is, and narrate the comparison in
//! the same learner-facing voice as the step narration.
//!
//! The paper's setting is database education: a student asks not just
//! "what does my plan do?" but "why this plan and not that one?" —
//! the same query after an index is added, a rewritten predicate, a
//! forced join order. This crate answers the second question:
//!
//! * [`engine`] — subtree matching anchored on per-subtree 128-bit
//!   fingerprints (the narration cache's canonical encoding, under its
//!   own digest domain), with edit classification: operator
//!   substitution, join-input swap, estimate drift, predicate change,
//!   subtree insert/delete.
//! * [`score`] — informativeness: structural-change magnitude
//!   amplified by the estimated-cost delta, weighted so a
//!   join-algorithm change always outranks cardinality jitter.
//! * [`narrate`] — the diff rendered as a [`Narration`] through POEM
//!   display names and a diff-specific template set.
//!
//! ## Quick start
//!
//! ```
//! use lantern_diff::{diff_plans, render_diff};
//! use lantern_plan::parse_pg_json_plan;
//! use lantern_pool::default_pg_store;
//!
//! let base = parse_pg_json_plan(
//!     r#"{"Plan": {"Node Type": "Seq Scan", "Relation Name": "orders",
//!         "Filter": "o.total > 41"}}"#,
//! )
//! .unwrap();
//! let alt = parse_pg_json_plan(
//!     r#"{"Plan": {"Node Type": "Seq Scan", "Relation Name": "orders",
//!         "Filter": "o.total > 42"}}"#,
//! )
//! .unwrap();
//!
//! let diff = diff_plans(&base, &alt);
//! assert_eq!(diff.kind_names(), ["predicate-change"]);
//! let (changes, narration) = render_diff(&base, &alt, &diff, &default_pg_store());
//! assert_eq!(changes.len(), 1);
//! assert!(narration.text().contains("filter"));
//! ```
//!
//! The root crate's `LanternService` implements the
//! [`DiffTranslator`](lantern_core::DiffTranslator) trait on top of
//! this engine (with diff results cached by fingerprint pair), and
//! `lantern-serve` exposes it as `POST /narrate/diff` and
//! `POST /narrate/diff/batch` (alternatives ranked by
//! informativeness).

pub mod engine;
pub mod narrate;
pub mod score;
pub mod translator;

pub use engine::{
    diff_plans, diff_plans_with, ChangedField, DiffOptions, EditKind, PlanDiff, PlanEdit,
};
pub use narrate::{render_diff, render_diff_with, DiffTemplates};
pub use score::{informativeness, log2_ratio, score_edit};
pub use translator::RuleDiffTranslator;

use lantern_core::{DiffChange, Narration};
use lantern_plan::PlanTree;
use lantern_pool::PoemLookup;

/// One-call convenience: diff two plans and render the result with
/// default options and templates.
pub fn diff_and_narrate<L: PoemLookup>(
    base: &PlanTree,
    alt: &PlanTree,
    lookup: &L,
) -> (PlanDiff, Vec<DiffChange>, Narration) {
    let diff = diff_plans(base, alt);
    let (changes, narration) = render_diff(base, alt, &diff, lookup);
    (diff, changes, narration)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lantern_plan::{PlanNode, PlanTree};
    use lantern_pool::default_pg_store;

    fn scan(rel: &str, alias: &str, rows: f64) -> PlanNode {
        let mut n = PlanNode::new("Seq Scan");
        n.relation = Some(rel.into());
        n.alias = Some(alias.into());
        n.estimated_rows = rows;
        n.estimated_cost = rows * 0.1;
        n
    }

    fn join(op: &str, left: PlanNode, right: PlanNode) -> PlanNode {
        let mut n = PlanNode::new(op);
        n.join_cond = Some("(a.id) = (b.id)".into());
        n.estimated_rows = 100.0;
        n.estimated_cost = 250.0;
        n.children = vec![left, right];
        n
    }

    fn tree(root: PlanNode) -> PlanTree {
        PlanTree::new("pg", root)
    }

    #[test]
    fn self_diff_is_empty_and_scores_zero() {
        let t = tree(join(
            "Hash Join",
            scan("orders", "o", 1000.0),
            scan("customers", "c", 200.0),
        ));
        let diff = diff_plans(&t, &t);
        assert!(diff.is_empty());
        assert_eq!(diff.score, 0.0);
        let (changes, narration) = render_diff(&t, &t, &diff, &default_pg_store());
        assert!(changes.is_empty());
        assert!(narration.text().contains("identical"));
    }

    #[test]
    fn operator_substitution_is_classified() {
        let base = tree(join(
            "Nested Loop",
            scan("orders", "o", 1000.0),
            scan("customers", "c", 200.0),
        ));
        let mut alt = base.clone();
        alt.root.op = "Hash Join".into();
        let diff = diff_plans(&base, &alt);
        assert_eq!(diff.kind_names(), ["operator-substitution"]);
        assert_eq!(diff.edits[0].path_string(), "root");
        let (changes, narration) = render_diff(&base, &alt, &diff, &default_pg_store());
        assert_eq!(changes[0].kind, "operator-substitution");
        // POEM display names, not vendor names.
        assert!(
            narration.text().contains("hash join"),
            "{}",
            narration.text()
        );
        assert!(
            narration.text().contains("nested loop"),
            "{}",
            narration.text()
        );
    }

    #[test]
    fn join_input_swap_is_one_edit_not_two_subtree_moves() {
        let base = tree(join(
            "Hash Join",
            scan("orders", "o", 1000.0),
            scan("customers", "c", 200.0),
        ));
        let mut alt = base.clone();
        alt.root.children.swap(0, 1);
        let diff = diff_plans(&base, &alt);
        assert_eq!(diff.kind_names(), ["join-input-swap"]);
        assert_eq!(diff.edits.len(), 1);
        let (changes, _) = render_diff(&base, &alt, &diff, &default_pg_store());
        assert_eq!(changes[0].path, "root");
    }

    #[test]
    fn estimate_jitter_scores_below_any_structural_change() {
        let base = tree(join(
            "Hash Join",
            scan("orders", "o", 1000.0),
            scan("customers", "c", 200.0),
        ));
        // Jitter every estimate by ~10%.
        let mut jittered = base.clone();
        fn bump(n: &mut PlanNode) {
            n.estimated_rows = (n.estimated_rows * 1.1).round();
            n.estimated_cost *= 1.1;
            n.children.iter_mut().for_each(bump);
        }
        bump(&mut jittered.root);
        let mut swapped = base.clone();
        swapped.root.children.swap(0, 1);

        let jitter_diff = diff_plans(&base, &jittered);
        let swap_diff = diff_plans(&base, &swapped);
        assert_eq!(jitter_diff.kind_names(), ["estimate-delta"]);
        assert!(jitter_diff.score > 0.0);
        assert!(
            jitter_diff.score < swap_diff.score,
            "jitter {} must rank below a join-order change {}",
            jitter_diff.score,
            swap_diff.score
        );
    }

    #[test]
    fn inserted_subtree_is_reported_with_its_size() {
        let mut base_root = PlanNode::new("Append");
        base_root.children = vec![scan("orders", "o", 1000.0)];
        let mut alt_root = base_root.clone();
        alt_root.children.push(join(
            "Hash Join",
            scan("lineitem", "l", 5000.0),
            scan("part", "p", 100.0),
        ));
        let base = tree(base_root);
        let alt = tree(alt_root);
        let diff = diff_plans(&base, &alt);
        assert_eq!(diff.kind_names(), ["subtree-insert"]);
        match &diff.edits[0].kind {
            EditKind::SubtreeInsert { op, size, .. } => {
                assert_eq!(op, "Hash Join");
                assert_eq!(*size, 3);
            }
            other => panic!("unexpected edit {other:?}"),
        }
        let reverse = diff_plans(&alt, &base);
        assert_eq!(reverse.kind_names(), ["subtree-delete"]);
    }

    #[test]
    fn filter_tweak_is_a_predicate_change_at_the_leaf() {
        let mut base_leaf = scan("orders", "o", 1000.0);
        base_leaf.filter = Some("o.total > 41".into());
        let base = tree(join(
            "Hash Join",
            base_leaf.clone(),
            scan("customers", "c", 200.0),
        ));
        let mut alt = base.clone();
        alt.root.children[0].filter = Some("o.total > 42".into());
        let diff = diff_plans(&base, &alt);
        assert_eq!(diff.kind_names(), ["predicate-change"]);
        assert_eq!(diff.edits[0].path_string(), "root.0");
        let (changes, _) = render_diff(&base, &alt, &diff, &default_pg_store());
        assert!(
            changes[0].detail.contains("o.total > 42"),
            "{}",
            changes[0].detail
        );
    }

    #[test]
    fn generated_mutants_are_identified_by_kind() {
        use lantern_gen::{GenConfig, Mutation, PlanGenerator};
        let mut gen = PlanGenerator::new(
            GenConfig::default()
                .with_seed(31)
                .with_ops(2, 4)
                .with_serial_stamps(false),
        );
        let mut seen = [0usize; 3];
        for _ in 0..60 {
            let base = gen.next_tree();
            for (i, kind) in Mutation::ALL.into_iter().enumerate() {
                let Some(mutant) = gen.mutate_as(&base, kind) else {
                    continue;
                };
                seen[i] += 1;
                let diff = diff_plans(&base, &mutant);
                let expected = match kind {
                    Mutation::SwapJoinInputs => "join-input-swap",
                    Mutation::JitterEstimates => "estimate-delta",
                    Mutation::TweakFilterConstant => "predicate-change",
                };
                assert_eq!(
                    diff.kind_names(),
                    [expected],
                    "mutation {} misclassified",
                    kind.name()
                );
            }
        }
        assert!(seen.iter().all(|&n| n > 0), "all kinds exercised: {seen:?}");
    }

    #[test]
    fn informativeness_ranks_algorithm_change_above_everything() {
        let base = tree(join(
            "Nested Loop",
            scan("orders", "o", 1000.0),
            scan("customers", "c", 200.0),
        ));
        let mut algo = base.clone();
        algo.root.op = "Hash Join".into();
        let mut swap = base.clone();
        swap.root.children.swap(0, 1);
        let mut pred = base.clone();
        pred.root.join_cond = Some("(a.id) = (c.id)".into());
        let s_algo = diff_plans(&base, &algo).score;
        let s_swap = diff_plans(&base, &swap).score;
        let s_pred = diff_plans(&base, &pred).score;
        assert!(
            s_algo > s_swap && s_swap > s_pred,
            "{s_algo} {s_swap} {s_pred}"
        );
    }
}
