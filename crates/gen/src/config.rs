//! Generator tuning knobs: depth, operator mix, filter/index rates,
//! duplicate/mutation rates, and output-format mix.

/// Which wire format a generated artifact is rendered in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArtifactFormat {
    /// PostgreSQL `EXPLAIN (FORMAT JSON)` document.
    PgJson,
    /// SQL Server `ShowPlanXML` document.
    SqlServerXml,
}

impl ArtifactFormat {
    /// Short human name (`pg-json` / `mssql-xml`), used in reports.
    pub fn name(self) -> &'static str {
        match self {
            ArtifactFormat::PgJson => "pg-json",
            ArtifactFormat::SqlServerXml => "mssql-xml",
        }
    }
}

/// How the stream picks formats for fresh artifacts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FormatMix {
    /// Every artifact is PostgreSQL JSON.
    PgJson,
    /// Every artifact is SQL Server XML.
    SqlServerXml,
    /// Each fresh artifact picks one of the two uniformly at random.
    Mixed,
}

/// Tuning knobs for [`PlanGenerator`](crate::PlanGenerator).
///
/// Every distribution is driven by the single `seed`, so the same
/// config always produces the byte-identical artifact stream — that
/// determinism is what makes generated workloads reproducible across
/// the bench harness, the soak driver, and CI.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// RNG seed; same seed + same config ⇒ same stream.
    pub seed: u64,
    /// Minimum internal-operator budget per plan (≥ 0; 0 allows bare
    /// scans).
    pub min_ops: usize,
    /// Maximum internal-operator budget per plan.
    pub max_ops: usize,
    /// Relative weight of join operators (Hash/Merge/Nested Loop) in
    /// the internal-operator mix.
    pub join_weight: u32,
    /// Relative weight of aggregation operators (Sorted aggregate /
    /// HashAggregate).
    pub aggregate_weight: u32,
    /// Relative weight of shaping operators (Sort, Unique, Limit,
    /// Materialize, Gather).
    pub shaper_weight: u32,
    /// Probability a scan leaf carries a filter predicate.
    pub filter_rate: f64,
    /// Probability a scan leaf uses an index access path when the
    /// chosen table has an indexed column.
    pub index_rate: f64,
    /// Probability a stream item re-emits a previously generated
    /// artifact verbatim (what exercises the narration cache).
    pub duplicate_rate: f64,
    /// Probability a stream item is a near-duplicate: a previously
    /// generated plan with one [`Mutation`](crate::Mutation) applied.
    pub mutate_rate: f64,
    /// Output-format mix for fresh artifacts.
    pub format: FormatMix,
    /// How many recent fresh artifacts the duplicate/mutant ring
    /// remembers.
    pub history: usize,
    /// Stamp each fresh plan with a serial-bearing leaf predicate (on
    /// by default — the stamp is what keeps fresh artifacts pairwise
    /// distinct). Turn it off when a mutant must differ from its base
    /// by *only* the injected mutation, e.g. for precise plan-diff
    /// assertions.
    pub stamp_serials: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            seed: 0xA57,
            min_ops: 1,
            max_ops: 4,
            join_weight: 5,
            aggregate_weight: 3,
            shaper_weight: 3,
            filter_rate: 0.45,
            index_rate: 0.35,
            duplicate_rate: 0.0,
            mutate_rate: 0.0,
            format: FormatMix::Mixed,
            history: 64,
            stamp_serials: true,
        }
    }
}

impl GenConfig {
    /// Builder: set the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: set the duplicate rate (panics if outside `[0, 1]`).
    pub fn with_duplicate_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "duplicate_rate out of [0,1]");
        self.duplicate_rate = rate;
        self
    }

    /// Builder: set the mutation rate (panics if outside `[0, 1]`).
    pub fn with_mutate_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "mutate_rate out of [0,1]");
        self.mutate_rate = rate;
        self
    }

    /// Builder: set the output format mix.
    pub fn with_format(mut self, format: FormatMix) -> Self {
        self.format = format;
        self
    }

    /// Builder: set the internal-operator budget range.
    pub fn with_ops(mut self, min_ops: usize, max_ops: usize) -> Self {
        assert!(min_ops <= max_ops, "min_ops > max_ops");
        self.min_ops = min_ops;
        self.max_ops = max_ops;
        self
    }

    /// Builder: enable or disable serial-stamping of fresh plans. With
    /// stamping off, fresh artifacts are no longer guaranteed pairwise
    /// distinct — but a mutant differs from its base by exactly the
    /// injected mutation, which is what plan-diff assertions need.
    pub fn with_serial_stamps(mut self, on: bool) -> Self {
        self.stamp_serials = on;
        self
    }
}
