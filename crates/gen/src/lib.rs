//! # lantern-gen
//!
//! Seeded, deterministic generator of random-but-valid `EXPLAIN`
//! artifacts: the workload source for load testing, soak testing, and
//! parser fuzzing.
//!
//! The bundled fixtures are a few dozen artifacts; a classroom is
//! thousands of students pasting plans all day. This crate closes that
//! gap by synthesizing realistic operator trees over the bundled
//! benchmark catalogs (TPC-H, SDSS, IMDB, DBLP) and rendering them in
//! both wire formats the system parses — PostgreSQL `EXPLAIN (FORMAT
//! JSON)` and SQL Server `ShowPlanXML` — with tunable depth, operator
//! mix, and duplicate rate. Duplicates are what exercise the narration
//! cache; [`Mutation`]s produce *nearly identical* plans (swapped join
//! inputs, jittered estimates, tweaked filter constants) that probe
//! the fingerprint boundary.
//!
//! Everything derives from one seed: the same [`GenConfig`] always
//! yields the byte-identical artifact stream, so a workload quoted in
//! a bench report can be regenerated exactly, anywhere.
//!
//! ```
//! use lantern_gen::{ArtifactFormat, GenConfig, PlanGenerator, StreamKind};
//!
//! let mut gen = PlanGenerator::new(GenConfig::default().with_duplicate_rate(0.5));
//! let items = gen.generate(100);
//! assert_eq!(items.len(), 100);
//! assert!(items.iter().any(|p| p.format == ArtifactFormat::PgJson));
//! assert!(items.iter().any(|p| matches!(p.kind, StreamKind::Duplicate { .. })));
//! ```
//!
//! Every generated artifact round-trips `PlanSource::detect` → parse →
//! narrate (property-tested in `tests/gen_narrate.rs` at the workspace
//! root), which makes the generator double as a fuzzer for the plan
//! parsers.

pub mod config;
pub mod generator;
pub mod mutate;

pub use config::{ArtifactFormat, FormatMix, GenConfig};
pub use generator::{GeneratedPlan, PlanGenerator, StreamKind, TableInfo};
pub use mutate::{apply_mutation, mutate_tree, Mutation};

/// Alias for [`Mutation`] under the name downstream diff tooling uses.
pub type MutationKind = Mutation;

#[cfg(test)]
mod tests {
    use super::*;
    use lantern_plan::{parse_pg_json_plan, parse_sqlserver_xml_plan};

    #[test]
    fn same_seed_same_config_is_byte_identical() {
        let mk = || {
            PlanGenerator::new(
                GenConfig::default()
                    .with_seed(77)
                    .with_duplicate_rate(0.3)
                    .with_mutate_rate(0.2),
            )
        };
        let a: Vec<_> = mk().generate(500);
        let b: Vec<_> = mk().generate(500);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.doc, y.doc);
            assert_eq!(x.format, y.format);
            assert_eq!(x.kind, y.kind);
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let a = PlanGenerator::new(GenConfig::default().with_seed(1)).next_fresh();
        let b = PlanGenerator::new(GenConfig::default().with_seed(2)).next_fresh();
        assert_ne!(a.doc, b.doc);
    }

    #[test]
    fn fresh_artifacts_are_pairwise_distinct() {
        let mut gen = PlanGenerator::new(GenConfig::default().with_seed(5));
        let docs: Vec<String> = (0..1000).map(|_| gen.next_fresh().doc).collect();
        let mut unique: Vec<&String> = docs.iter().collect();
        unique.sort();
        unique.dedup();
        assert_eq!(
            unique.len(),
            docs.len(),
            "serial stamping must keep fresh artifacts distinct"
        );
    }

    #[test]
    fn both_formats_parse_back() {
        let mut gen = PlanGenerator::new(GenConfig::default().with_seed(9));
        for _ in 0..200 {
            let tree = gen.next_tree();
            let json = PlanGenerator::render(&tree, ArtifactFormat::PgJson);
            let back = parse_pg_json_plan(&json).expect("pg json parses");
            assert_eq!(back, tree, "pg json round-trips losslessly");
            let xml = PlanGenerator::render(&tree, ArtifactFormat::SqlServerXml);
            let ms = parse_sqlserver_xml_plan(&xml).expect("showplan parses");
            assert_eq!(ms.size(), tree.size(), "xml keeps every operator");
        }
    }

    #[test]
    fn duplicate_rate_is_respected() {
        let mut gen =
            PlanGenerator::new(GenConfig::default().with_seed(11).with_duplicate_rate(0.75));
        let items = gen.generate(2000);
        let dups = items
            .iter()
            .filter(|p| matches!(p.kind, StreamKind::Duplicate { .. }))
            .count();
        let rate = dups as f64 / items.len() as f64;
        assert!(
            (rate - 0.75).abs() < 0.05,
            "observed duplicate rate {rate} too far from configured 0.75"
        );
    }

    #[test]
    fn duplicates_replay_verbatim() {
        let mut gen =
            PlanGenerator::new(GenConfig::default().with_seed(13).with_duplicate_rate(0.5));
        let items = gen.generate(500);
        for item in &items {
            if let StreamKind::Duplicate { of } = item.kind {
                let original = items
                    .iter()
                    .find(|p| p.kind == StreamKind::Fresh && p.serial == of)
                    .expect("duplicate refers to an earlier fresh artifact");
                assert_eq!(item.doc, original.doc);
            }
        }
    }

    #[test]
    fn mutants_differ_from_their_parent() {
        let mut gen = PlanGenerator::new(GenConfig::default().with_seed(17).with_mutate_rate(0.5));
        let items = gen.generate(500);
        let mut saw_mutant = false;
        for item in &items {
            if let StreamKind::Mutant { of, .. } = item.kind {
                saw_mutant = true;
                let original = items
                    .iter()
                    .find(|p| p.kind == StreamKind::Fresh && p.serial == of)
                    .expect("mutant refers to an earlier fresh artifact");
                assert_ne!(
                    item.doc, original.doc,
                    "a mutant must not be byte-identical"
                );
            }
        }
        assert!(saw_mutant);
    }

    #[test]
    fn serial_stamps_can_be_suppressed() {
        // Same seed, stamping on vs off: the only difference between
        // the streams is the stamped leaf filter — RNG consumption is
        // identical, so tree shapes match pairwise.
        let mut stamped = PlanGenerator::new(GenConfig::default().with_seed(21));
        let mut bare =
            PlanGenerator::new(GenConfig::default().with_seed(21).with_serial_stamps(false));
        for _ in 0..50 {
            let mut a = stamped.next_tree();
            let mut b = bare.next_tree();
            assert_eq!(a.size(), b.size(), "stamping must not change shape");
            // Clearing the first leaf filter on both sides removes the
            // stamp (and whatever filter it replaced): the trees must
            // then be identical — the flag gates only the stamp.
            strip_first_leaf_filter(&mut a.root);
            strip_first_leaf_filter(&mut b.root);
            assert_eq!(a, b);
        }
    }

    fn strip_first_leaf_filter(node: &mut lantern_plan::PlanNode) -> bool {
        if node.children.is_empty() {
            if node.relation.is_some() {
                node.filter = None;
                return true;
            }
            return false;
        }
        node.children.iter_mut().any(strip_first_leaf_filter)
    }

    #[test]
    fn targeted_mutations_apply_exactly_one_kind() {
        let mut gen = PlanGenerator::new(
            GenConfig::default()
                .with_seed(23)
                .with_ops(2, 4)
                .with_serial_stamps(false),
        );
        let mut applied = [0usize; 3];
        for _ in 0..100 {
            let tree = gen.next_tree();
            for (i, kind) in Mutation::ALL.into_iter().enumerate() {
                let Some(mutant) = gen.mutate_as(&tree, kind) else {
                    continue;
                };
                applied[i] += 1;
                assert_ne!(mutant, tree, "{} must change the tree", kind.name());
            }
            // The untargeted path reports which kind it injected.
            let (mutant, kind) = gen.mutate(&tree);
            assert_ne!(mutant, tree, "{}", kind.name());
        }
        // Jitter always applies; the structural kinds apply often on
        // multi-op plans.
        assert_eq!(applied[1], 100);
        assert!(applied[0] > 0, "no swappable join seen in 100 plans");
        assert!(applied[2] > 0, "no tweakable filter seen in 100 plans");
    }

    #[test]
    fn single_catalog_generator_scans_only_that_catalog() {
        let catalog = lantern_catalog::tpch_catalog();
        let names: Vec<String> = catalog.tables().iter().map(|t| t.name.clone()).collect();
        let mut gen = PlanGenerator::from_catalog(&catalog, GenConfig::default());
        for _ in 0..50 {
            let tree = gen.next_tree();
            for rel in tree.root.relations() {
                assert!(names.iter().any(|n| n == rel), "unknown relation {rel}");
            }
        }
    }

    #[test]
    fn ops_budget_bounds_plan_size() {
        let mut gen = PlanGenerator::new(GenConfig::default().with_seed(3).with_ops(0, 0));
        for _ in 0..20 {
            let tree = gen.next_tree();
            // Budget 0 is a bare scan leaf.
            assert_eq!(tree.size(), 1);
        }
    }
}
