//! The seeded plan generator: random-but-valid operator trees over the
//! bundled benchmark catalogs, rendered as PostgreSQL JSON or SQL
//! Server XML artifacts.
//!
//! Validity is by construction: every emitted shape mirrors what the
//! engine's own planner produces — `Hash Join` always hashes its build
//! side through an auxiliary `Hash`, merge inputs are `Sort`-wrapped,
//! a `Sorted` aggregate sits on a `Sort` that shares its grouping
//! keys — so the auxiliary/critical clustering step never sees an
//! auxiliary operator without a child, and every operator name is in
//! the POEM vocabulary of both dialects.

use crate::config::{ArtifactFormat, FormatMix, GenConfig};
use crate::mutate::{mutate_tree, Mutation};
use lantern_catalog::{dblp_catalog, imdb_catalog, sdss_catalog, tpch_catalog, Catalog};
use lantern_plan::{plan_to_pg_json, plan_to_sqlserver_xml, PlanNode, PlanTree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A table the generator can scan: name, column names, and which of
/// those columns carry a secondary index.
#[derive(Debug, Clone)]
pub struct TableInfo {
    pub name: String,
    pub columns: Vec<String>,
    pub indexed: Vec<String>,
    pub base_rows: f64,
}

impl TableInfo {
    fn from_catalog(catalog: &Catalog) -> Vec<TableInfo> {
        catalog
            .tables()
            .iter()
            .filter(|t| !t.columns.is_empty())
            .map(|t| TableInfo {
                name: t.name.clone(),
                columns: t.columns.iter().map(|c| c.name.clone()).collect(),
                indexed: t
                    .columns
                    .iter()
                    .filter(|c| c.indexed)
                    .map(|c| c.name.clone())
                    .collect(),
                base_rows: t.base_rows as f64,
            })
            .collect()
    }
}

/// Why a stream item looks the way it does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamKind {
    /// A brand-new plan, distinct from every earlier artifact.
    Fresh,
    /// A verbatim re-emission of fresh artifact `of` (a cache hit when
    /// replayed against a caching server).
    Duplicate { of: u64 },
    /// A near-duplicate of fresh artifact `of` with one mutation
    /// applied.
    Mutant { of: u64, mutation: Mutation },
}

/// One generated artifact: the wire document plus its provenance.
#[derive(Debug, Clone)]
pub struct GeneratedPlan {
    /// Serial number of the underlying fresh plan (stamped into a leaf
    /// filter, which is what makes fresh artifacts pairwise distinct).
    pub serial: u64,
    /// Wire format of `doc`.
    pub format: ArtifactFormat,
    /// The rendered artifact — ready to POST to `/narrate`.
    pub doc: String,
    /// Fresh / duplicate / mutant provenance.
    pub kind: StreamKind,
}

/// One remembered fresh artifact (the duplicate/mutant ring entry).
#[derive(Clone)]
struct HistoryEntry {
    serial: u64,
    format: ArtifactFormat,
    doc: String,
    tree: PlanTree,
}

/// Per-plan construction context: alias numbering plus the leaves seen
/// so far (join conditions and grouping keys draw from them).
struct PlanCtx {
    next_alias: usize,
}

/// A leaf reference carried up the recursion so internal operators can
/// build conditions over columns that actually exist below them.
#[derive(Clone)]
struct LeafRef {
    alias: String,
    table: usize,
}

/// The seeded artifact generator. Also an [`Iterator`] over
/// [`GeneratedPlan`]s, applying the configured duplicate/mutation
/// rates — `generator.take(n)` is a workload.
pub struct PlanGenerator {
    config: GenConfig,
    rng: StdRng,
    tables: Vec<TableInfo>,
    serial: u64,
    history: Vec<HistoryEntry>,
}

impl PlanGenerator {
    /// Generator over the four bundled benchmark catalogs (TPC-H,
    /// SDSS, IMDB, DBLP) — the same relation and column names the
    /// paper's workloads scan.
    pub fn new(config: GenConfig) -> Self {
        let mut tables = Vec::new();
        for catalog in [
            tpch_catalog(),
            sdss_catalog(),
            imdb_catalog(),
            dblp_catalog(),
        ] {
            tables.extend(TableInfo::from_catalog(&catalog));
        }
        Self::with_tables(config, tables)
    }

    /// Generator over a single catalog.
    pub fn from_catalog(catalog: &Catalog, config: GenConfig) -> Self {
        Self::with_tables(config, TableInfo::from_catalog(catalog))
    }

    /// Generator over an explicit table list.
    pub fn with_tables(config: GenConfig, tables: Vec<TableInfo>) -> Self {
        assert!(!tables.is_empty(), "generator needs at least one table");
        let rng = StdRng::seed_from_u64(config.seed);
        PlanGenerator {
            config,
            rng,
            tables,
            serial: 0,
            history: Vec::new(),
        }
    }

    /// Render a tree in the requested wire format.
    pub fn render(tree: &PlanTree, format: ArtifactFormat) -> String {
        match format {
            ArtifactFormat::PgJson => plan_to_pg_json(tree),
            ArtifactFormat::SqlServerXml => plan_to_sqlserver_xml(tree),
        }
    }

    /// Generate the next *fresh* plan tree (always pg-vocabulary; the
    /// XML renderer translates operator names on export). Each tree is
    /// stamped with a unique serial in a leaf filter, so no two fresh
    /// trees — and no two rendered artifacts — are ever identical.
    pub fn next_tree(&mut self) -> PlanTree {
        self.serial += 1;
        let budget = self
            .rng
            .gen_range(self.config.min_ops..=self.config.max_ops);
        let mut ctx = PlanCtx { next_alias: 0 };
        let (mut root, leaves) = self.build(budget, &mut ctx);
        // Stamp: a serial-bearing predicate on the first leaf makes the
        // artifact distinct from every other fresh artifact, under both
        // the byte comparison and the cache fingerprint (which keys the
        // filter text). `stamp_serials: false` skips it so a mutant can
        // differ from its base by exactly one injected mutation.
        if self.config.stamp_serials {
            let stamp_leaf = &leaves[0];
            let column = self.tables[stamp_leaf.table].columns[0].clone();
            let stamp = format!("{}.{} > {}", stamp_leaf.alias, column, self.serial);
            stamp_first_leaf(&mut root, &stamp);
        }
        PlanTree::new("pg", root)
    }

    /// Apply one randomly chosen mutation to `tree` using this
    /// generator's RNG, returning the mutant *and* which
    /// [`Mutation`] was injected — so callers (diff property tests,
    /// benches) can assert on the exact mutation kind instead of
    /// guessing from the stream.
    pub fn mutate(&mut self, tree: &PlanTree) -> (PlanTree, Mutation) {
        mutate_tree(tree, &mut self.rng)
    }

    /// Apply a *specific* mutation kind to `tree` using this
    /// generator's RNG; `None` when the kind is inapplicable (no
    /// binary join to swap, no filter constant to tweak).
    pub fn mutate_as(&mut self, tree: &PlanTree, kind: Mutation) -> Option<PlanTree> {
        crate::mutate::apply_mutation(tree, kind, &mut self.rng)
    }

    /// Generate the next fresh artifact (no duplicate/mutant mixing),
    /// picking a format per the configured mix.
    pub fn next_fresh(&mut self) -> GeneratedPlan {
        let format = match self.config.format {
            FormatMix::PgJson => ArtifactFormat::PgJson,
            FormatMix::SqlServerXml => ArtifactFormat::SqlServerXml,
            FormatMix::Mixed => {
                if self.rng.gen_bool(0.5) {
                    ArtifactFormat::PgJson
                } else {
                    ArtifactFormat::SqlServerXml
                }
            }
        };
        let tree = self.next_tree();
        let doc = Self::render(&tree, format);
        self.remember(HistoryEntry {
            serial: self.serial,
            format,
            doc: doc.clone(),
            tree,
        });
        GeneratedPlan {
            serial: self.serial,
            format,
            doc,
            kind: StreamKind::Fresh,
        }
    }

    /// Generate `n` stream items (fresh/duplicate/mutant per the
    /// configured rates).
    pub fn generate(&mut self, n: usize) -> Vec<GeneratedPlan> {
        (0..n).map(|_| self.next_item()).collect()
    }

    /// The next stream item: with probability `duplicate_rate` a
    /// verbatim replay of a remembered artifact, else with probability
    /// `mutate_rate` a mutated near-duplicate, else fresh.
    pub fn next_item(&mut self) -> GeneratedPlan {
        if !self.history.is_empty() && self.rng.gen_bool(self.config.duplicate_rate) {
            let entry = &self.history[self.rng.gen_range(0..self.history.len())];
            return GeneratedPlan {
                serial: entry.serial,
                format: entry.format,
                doc: entry.doc.clone(),
                kind: StreamKind::Duplicate { of: entry.serial },
            };
        }
        if !self.history.is_empty() && self.rng.gen_bool(self.config.mutate_rate) {
            let idx = self.rng.gen_range(0..self.history.len());
            let (of, format, tree) = {
                let entry = &self.history[idx];
                (entry.serial, entry.format, entry.tree.clone())
            };
            let (mutated, mutation) = mutate_tree(&tree, &mut self.rng);
            return GeneratedPlan {
                serial: of,
                format,
                doc: Self::render(&mutated, format),
                kind: StreamKind::Mutant { of, mutation },
            };
        }
        self.next_fresh()
    }

    fn remember(&mut self, entry: HistoryEntry) {
        if self.config.history == 0 {
            return;
        }
        if self.history.len() == self.config.history {
            // Overwrite round-robin; a Vec-as-ring keeps indexing cheap.
            let slot = (self.serial as usize) % self.config.history;
            self.history[slot] = entry;
        } else {
            self.history.push(entry);
        }
    }

    /// Build a subtree with `budget` internal operators to spend;
    /// returns the node plus the scan leaves under it.
    fn build(&mut self, budget: usize, ctx: &mut PlanCtx) -> (PlanNode, Vec<LeafRef>) {
        if budget == 0 {
            let (leaf, leaf_ref) = self.gen_leaf(ctx);
            return (leaf, vec![leaf_ref]);
        }
        let total =
            self.config.join_weight + self.config.aggregate_weight + self.config.shaper_weight;
        assert!(total > 0, "all operator weights are zero");
        let pick = self.rng.gen_range(0..total);
        if pick < self.config.join_weight {
            self.gen_join(budget, ctx)
        } else if pick < self.config.join_weight + self.config.aggregate_weight {
            self.gen_aggregate(budget, ctx)
        } else {
            self.gen_shaper(budget, ctx)
        }
    }

    /// A scan leaf over a random catalog table.
    fn gen_leaf(&mut self, ctx: &mut PlanCtx) -> (PlanNode, LeafRef) {
        let table_idx = self.rng.gen_range(0..self.tables.len());
        let table = &self.tables[table_idx];
        ctx.next_alias += 1;
        let alias = format!(
            "{}{}",
            table.name.chars().next().unwrap_or('t'),
            ctx.next_alias
        );
        let indexed = !table.indexed.is_empty() && self.rng.gen_bool(self.config.index_rate);
        let mut node = if indexed {
            let column = table.indexed[self.rng.gen_range(0..table.indexed.len())].clone();
            let mut n = if self.rng.gen_bool(0.25) {
                PlanNode::new("Bitmap Heap Scan")
            } else {
                PlanNode::new("Index Scan")
            };
            n.index_name = Some(format!("{}_{}_idx", table.name, column));
            n
        } else {
            PlanNode::new("Seq Scan")
        };
        node.relation = Some(table.name.clone());
        node.alias = Some(alias.clone());
        if self.rng.gen_bool(self.config.filter_rate) {
            let column = &table.columns[self.rng.gen_range(0..table.columns.len())];
            let constant = self.rng.gen_range(1..10_000u32);
            node.filter = Some(format!("{alias}.{column} > {constant}"));
        }
        node.estimated_rows = (table.base_rows * self.rng.gen_range(0.001..0.2_f64))
            .max(1.0)
            .round();
        node.estimated_cost = node.estimated_rows * self.rng.gen_range(0.01..0.12_f64);
        round_cost(&mut node);
        (
            node,
            LeafRef {
                alias,
                table: table_idx,
            },
        )
    }

    /// A join over two subtrees, with the auxiliary structure each
    /// algorithm requires (Hash build side; Sort-wrapped merge inputs).
    fn gen_join(&mut self, budget: usize, ctx: &mut PlanCtx) -> (PlanNode, Vec<LeafRef>) {
        // Split the remaining budget between the inputs, biased left —
        // realistic plans are left-deep.
        let right_budget = if budget > 1 {
            self.rng.gen_range(0..(budget - 1).min(2) + 1)
        } else {
            0
        };
        let left_budget = budget - 1 - right_budget;
        let (left, left_leaves) = self.build(left_budget, ctx);
        let (right, right_leaves) = self.build(right_budget, ctx);
        let cond = self.join_condition(&left_leaves, &right_leaves);
        let out_rows = ((left.estimated_rows * right.estimated_rows).sqrt()
            * self.rng.gen_range(0.1..2.0_f64))
        .max(1.0)
        .round();
        let in_cost = left.estimated_cost + right.estimated_cost;
        let mut node = match self.rng.gen_range(0..3u32) {
            0 => {
                // Hash Join: hash the (right) build side first.
                let mut hash = PlanNode::new("Hash").with_child(right);
                hash.estimated_rows = hash.children[0].estimated_rows;
                hash.estimated_cost = hash.children[0].estimated_cost * 1.1;
                round_cost(&mut hash);
                PlanNode::new("Hash Join")
                    .with_join_cond(cond)
                    .with_child(left)
                    .with_child(hash)
            }
            1 => {
                // Merge Join over Sort-wrapped inputs; the sorts order
                // by each side's join column.
                let (lkey, rkey) = split_condition(&cond);
                let mut lsort = PlanNode::new("Sort").with_child(left);
                lsort.sort_keys = vec![lkey];
                inherit_estimates(&mut lsort, 1.2);
                let mut rsort = PlanNode::new("Sort").with_child(right);
                rsort.sort_keys = vec![rkey];
                inherit_estimates(&mut rsort, 1.2);
                PlanNode::new("Merge Join")
                    .with_join_cond(cond)
                    .with_child(lsort)
                    .with_child(rsort)
            }
            _ => PlanNode::new("Nested Loop")
                .with_join_cond(cond)
                .with_child(left)
                .with_child(right),
        };
        node.estimated_rows = out_rows;
        node.estimated_cost = in_cost + out_rows * 0.05;
        round_cost(&mut node);
        let mut leaves = left_leaves;
        leaves.extend(right_leaves);
        (node, leaves)
    }

    /// An aggregation over one subtree: `Sorted` strategy sits on a
    /// `Sort` sharing its grouping keys; otherwise a `HashAggregate`.
    fn gen_aggregate(&mut self, budget: usize, ctx: &mut PlanCtx) -> (PlanNode, Vec<LeafRef>) {
        let (child, leaves) = self.build(budget - 1, ctx);
        let group_key = self.leaf_column(&leaves);
        let out_rows = (child.estimated_rows * self.rng.gen_range(0.01..0.3_f64))
            .max(1.0)
            .round();
        let mut node = if self.rng.gen_bool(0.5) {
            let mut sort = PlanNode::new("Sort").with_child(child);
            sort.sort_keys = vec![group_key.clone()];
            inherit_estimates(&mut sort, 1.25);
            let mut agg = PlanNode::new("Aggregate").with_child(sort);
            agg.strategy = Some("Sorted".to_string());
            agg
        } else {
            let mut agg = PlanNode::new("HashAggregate").with_child(child);
            agg.strategy = Some("Hashed".to_string());
            agg
        };
        node.group_keys = vec![group_key];
        node.estimated_rows = out_rows;
        node.estimated_cost = node.children[0].estimated_cost + out_rows * 0.02;
        round_cost(&mut node);
        (node, leaves)
    }

    /// A unary shaping operator over one subtree.
    fn gen_shaper(&mut self, budget: usize, ctx: &mut PlanCtx) -> (PlanNode, Vec<LeafRef>) {
        let (child, leaves) = self.build(budget - 1, ctx);
        let mut node = match self.rng.gen_range(0..5u32) {
            0 => {
                // Unique over a Sort on the deduplicated column.
                let key = self.leaf_column(&leaves);
                let mut sort = PlanNode::new("Sort").with_child(child);
                sort.sort_keys = vec![key];
                inherit_estimates(&mut sort, 1.2);
                let mut unique = PlanNode::new("Unique").with_child(sort);
                unique.estimated_rows = (unique.children[0].estimated_rows * 0.6).max(1.0).round();
                unique
            }
            1 => {
                let mut limit = PlanNode::new("Limit").with_child(child);
                let n = self.rng.gen_range(1..500u32);
                limit.estimated_rows = f64::from(n).min(limit.children[0].estimated_rows);
                limit
            }
            2 => {
                let mut sort = PlanNode::new("Sort").with_child(child);
                let descending = self.rng.gen_bool(0.4);
                let key = self.leaf_column(&leaves);
                sort.sort_keys = vec![if descending {
                    format!("{key} DESC")
                } else {
                    key
                }];
                inherit_estimates(&mut sort, 1.3);
                sort
            }
            3 => {
                let mut mat = PlanNode::new("Materialize").with_child(child);
                inherit_estimates(&mut mat, 1.02);
                mat
            }
            _ => {
                let mut gather = PlanNode::new("Gather").with_child(child);
                inherit_estimates(&mut gather, 1.05);
                gather
            }
        };
        if node.estimated_rows == 0.0 {
            node.estimated_rows = node.children[0].estimated_rows;
        }
        if node.estimated_cost == 0.0 {
            node.estimated_cost = node.children[0].estimated_cost + node.estimated_rows * 0.01;
        }
        round_cost(&mut node);
        (node, leaves)
    }

    /// An equi-join condition over one leaf column from each side.
    fn join_condition(&mut self, left: &[LeafRef], right: &[LeafRef]) -> String {
        let l = &left[self.rng.gen_range(0..left.len())];
        let r = &right[self.rng.gen_range(0..right.len())];
        let lcol = self.column_of(l);
        let rcol = self.column_of(r);
        format!("(({}.{}) = ({}.{}))", l.alias, lcol, r.alias, rcol)
    }

    /// A qualified `alias.column` drawn from a random leaf in scope.
    fn leaf_column(&mut self, leaves: &[LeafRef]) -> String {
        let leaf = &leaves[self.rng.gen_range(0..leaves.len())];
        let column = self.column_of(leaf);
        format!("{}.{}", leaf.alias, column)
    }

    fn column_of(&mut self, leaf: &LeafRef) -> String {
        let columns = &self.tables[leaf.table].columns;
        columns[self.rng.gen_range(0..columns.len())].clone()
    }
}

impl Iterator for PlanGenerator {
    type Item = GeneratedPlan;

    fn next(&mut self) -> Option<GeneratedPlan> {
        Some(self.next_item())
    }
}

/// Set estimates from the single child, scaled by a cost factor.
fn inherit_estimates(node: &mut PlanNode, cost_factor: f64) {
    node.estimated_rows = node.children[0].estimated_rows;
    node.estimated_cost = node.children[0].estimated_cost * cost_factor;
    round_cost(node);
}

/// Keep estimates short and stable when printed (`{}` on f64), so the
/// byte-identical-stream determinism guarantee survives formatting.
fn round_cost(node: &mut PlanNode) {
    node.estimated_cost = (node.estimated_cost * 100.0).round() / 100.0;
    node.estimated_rows = node.estimated_rows.round();
}

/// Replace the filter on the first (leftmost) scan leaf.
fn stamp_first_leaf(node: &mut PlanNode, stamp: &str) -> bool {
    if node.children.is_empty() {
        if node.relation.is_some() {
            node.filter = Some(stamp.to_string());
            return true;
        }
        return false;
    }
    for child in &mut node.children {
        if stamp_first_leaf(child, stamp) {
            return true;
        }
    }
    false
}

/// Split `((a.x) = (b.y))` into its two sides (best-effort; falls back
/// to the whole string).
fn split_condition(cond: &str) -> (String, String) {
    let trimmed = cond
        .strip_prefix('(')
        .and_then(|s| s.strip_suffix(')'))
        .unwrap_or(cond);
    match trimmed.split_once(" = ") {
        Some((l, r)) => (
            l.trim_matches(|c| c == '(' || c == ')').to_string(),
            r.trim_matches(|c| c == '(' || c == ')').to_string(),
        ),
        None => (trimmed.to_string(), trimmed.to_string()),
    }
}
