//! Near-duplicate plan mutations (the `mutate()` mode): swapped join
//! inputs, jittered cardinality/cost estimates, tweaked filter
//! constants. These seed future subtree-caching work — a mutant shares
//! almost all of its structure with its parent artifact, so a
//! fingerprint that keys logical structure (not estimates) will hit on
//! some mutants and miss on others, exactly the gradient a cache needs
//! to be tested against.

use lantern_plan::{PlanNode, PlanTree};
use rand::rngs::StdRng;
use rand::Rng;

/// Which near-duplicate transformation was applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Swap the two inputs of one join operator. Changes the logical
    /// structure, so the cache fingerprint changes too (a miss).
    SwapJoinInputs,
    /// Multiply every cardinality/cost estimate by a factor in
    /// `[0.9, 1.1]`. The default (non-strict) cache fingerprint ignores
    /// estimates, so this mutant still *hits* the narration cache even
    /// though the document bytes differ.
    JitterEstimates,
    /// Increment the numeric constant in one filter predicate — the
    /// same query shape probing a different value (a fingerprint miss).
    TweakFilterConstant,
}

impl Mutation {
    /// Every mutation kind, in a stable order — what a property test
    /// iterates to cover all three `mutate()` variants.
    pub const ALL: [Mutation; 3] = [
        Mutation::SwapJoinInputs,
        Mutation::JitterEstimates,
        Mutation::TweakFilterConstant,
    ];

    /// Short machine name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Mutation::SwapJoinInputs => "swap-join-inputs",
            Mutation::JitterEstimates => "jitter-estimates",
            Mutation::TweakFilterConstant => "tweak-filter-constant",
        }
    }
}

/// Apply one randomly chosen, applicable mutation to a copy of `tree`.
/// `JitterEstimates` is always applicable, so this never fails.
pub fn mutate_tree(tree: &PlanTree, rng: &mut StdRng) -> (PlanTree, Mutation) {
    let kind = match rng.gen_range(0..3u32) {
        0 => Mutation::SwapJoinInputs,
        1 => Mutation::TweakFilterConstant,
        _ => Mutation::JitterEstimates,
    };
    match apply_mutation(tree, kind, rng) {
        Some(out) => (out, kind),
        // The chosen structural mutation did not apply (no join to
        // swap / no filter constant); fall back to jitter, which
        // always does. The RNG stream matches the pre-refactor code:
        // inapplicable structural mutations consume nothing.
        None => {
            let out = apply_mutation(tree, Mutation::JitterEstimates, rng)
                .expect("jitter is always applicable");
            (out, Mutation::JitterEstimates)
        }
    }
}

/// Apply one *specific* mutation kind to a copy of `tree`. Returns
/// `None` when the kind is inapplicable — the plan has no binary join
/// to swap, or no filter with a trailing integer constant to tweak.
/// `JitterEstimates` always applies.
pub fn apply_mutation(tree: &PlanTree, kind: Mutation, rng: &mut StdRng) -> Option<PlanTree> {
    let mut out = tree.clone();
    let applied = match kind {
        Mutation::SwapJoinInputs => swap_first_join(&mut out.root),
        Mutation::TweakFilterConstant => tweak_first_filter(&mut out.root),
        Mutation::JitterEstimates => {
            jitter(&mut out.root, rng);
            if out == *tree {
                // Tiny plans can round the jitter away; nudge the root
                // cost so a mutant is never byte-identical.
                out.root.estimated_cost =
                    ((out.root.estimated_cost + 0.01) * 100.0).round() / 100.0;
            }
            true
        }
    };
    applied.then_some(out)
}

/// Swap the inputs of the first binary join found (pre-order). The
/// auxiliary `Hash` moves with its side, which keeps the shape valid —
/// clustering scans children in order and still finds the `Hash`.
fn swap_first_join(node: &mut PlanNode) -> bool {
    if node.children.len() == 2
        && matches!(node.op.as_str(), "Hash Join" | "Merge Join" | "Nested Loop")
    {
        node.children.swap(0, 1);
        return true;
    }
    node.children.iter_mut().any(swap_first_join)
}

/// Increment the trailing integer of the first filter found.
fn tweak_first_filter(node: &mut PlanNode) -> bool {
    if let Some(filter) = &node.filter {
        if let Some(tweaked) = increment_trailing_int(filter) {
            node.filter = Some(tweaked);
            return true;
        }
    }
    node.children.iter_mut().any(tweak_first_filter)
}

/// `"a.b > 41"` → `"a.b > 42"`; `None` when the string has no trailing
/// integer.
fn increment_trailing_int(s: &str) -> Option<String> {
    let digits = s.len() - s.trim_end_matches(|c: char| c.is_ascii_digit()).len();
    if digits == 0 {
        return None;
    }
    let (head, tail) = s.split_at(s.len() - digits);
    let n: u64 = tail.parse().ok()?;
    Some(format!("{head}{}", n + 1))
}

fn jitter(node: &mut PlanNode, rng: &mut StdRng) {
    node.estimated_rows = (node.estimated_rows * rng.gen_range(0.9..1.1_f64))
        .max(1.0)
        .round();
    node.estimated_cost =
        (node.estimated_cost * rng.gen_range(0.9..1.1_f64) * 100.0).round() / 100.0;
    for child in &mut node.children {
        jitter(child, rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trailing_int_increments() {
        assert_eq!(
            increment_trailing_int("o.total > 41").as_deref(),
            Some("o.total > 42")
        );
        assert_eq!(increment_trailing_int("no digits"), None);
    }
}
