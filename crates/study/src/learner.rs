//! The simulated learner model.
//!
//! Grounded in the psychology the paper builds on:
//!
//! * **Habituation** (O'Hanlon \[41\]; Cacioppo & Petty \[20\]): arousal
//!   decrements with repeated exposure to *similar* stimuli. We measure
//!   stimulus similarity as the BLEU of a new narration against the
//!   learner's recent reading history, and decrement arousal
//!   proportionally.
//! * **Dishabituation through variation** (Harrison & Crandall \[26\];
//!   Schumann et al. \[47\]): novel stimuli partially restore arousal.
//! * **Format affinity**: learners prefer textbook-style narrative
//!   (natural language) over visual trees over vendor JSON/XML — the
//!   regularity behind Figure 3 — with individual variation.
//!
//! All behaviour is sampled deterministically per learner seed; nothing
//! in the harnesses hard-codes the paper's percentages.

use lantern_text::{bleu, tokenize, BleuConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How strongly one repetition of a near-identical stimulus decrements
/// arousal.
const HABITUATION_RATE: f64 = 0.5;
/// Spontaneous recovery per exposure.
const RECOVERY_RATE: f64 = 0.05;
/// How much novelty (1 - similarity) restores arousal.
const DISHABITUATION_RATE: f64 = 0.4;
/// Reading-history window used for similarity.
const HISTORY_WINDOW: usize = 8;

/// The presentation format a stimulus arrives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Format {
    /// Vendor JSON/XML text.
    Json,
    /// Visual operator tree.
    VisualTree,
    /// Natural-language narration.
    NaturalLanguage,
}

/// One simulated learner.
#[derive(Debug, Clone)]
pub struct Learner {
    /// Database expertise in `[0, 1]` (affects JSON comprehension).
    pub expertise: f64,
    /// Per-format comprehension affinity in `[0, 1]`.
    affinity_json: f64,
    affinity_tree: f64,
    affinity_nl: f64,
    /// Current arousal in `[0, 1]` (1 = fully engaged).
    pub arousal: f64,
    history: Vec<Vec<String>>,
    rng: StdRng,
}

impl Learner {
    /// Sample a learner. Affinity means reflect the cognitive-load
    /// argument of the paper's introduction: NL ≈ 0.75, tree ≈ 0.55,
    /// JSON ≈ 0.3 (+ expertise), each with individual spread.
    pub fn sample(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let expertise = rng.gen_range(0.0..0.6); // undergraduates
        Learner {
            expertise,
            affinity_json: (0.30 + 0.5 * expertise + rng.gen_range(-0.1..0.1_f64)).clamp(0.0, 1.0),
            affinity_tree: (0.55 + rng.gen_range(-0.15..0.15_f64)).clamp(0.0, 1.0),
            affinity_nl: (0.75 + rng.gen_range(-0.15..0.15_f64)).clamp(0.0, 1.0),
            arousal: 1.0,
            history: Vec::new(),
            rng,
        }
    }

    /// Affinity for a format.
    pub fn affinity(&self, format: Format) -> f64 {
        match format {
            Format::Json => self.affinity_json,
            Format::VisualTree => self.affinity_tree,
            Format::NaturalLanguage => self.affinity_nl,
        }
    }

    /// Read one narration; updates the habituation state and returns
    /// the *similarity* this stimulus had to recent reading.
    ///
    /// Similarity is the mean BLEU against the reading window — a
    /// stream that repeats one phrasing saturates it, while a stream
    /// that rotates phrasings stays in the mid range even when an
    /// individual variant recurs occasionally.
    pub fn read(&mut self, narration: &str) -> f64 {
        let tokens = tokenize(narration);
        let similarity = if self.history.is_empty() {
            0.0
        } else {
            self.history
                .iter()
                .map(|h| bleu(&tokens, &[h.as_slice()], BleuConfig::default()))
                .sum::<f64>()
                / self.history.len() as f64
        };
        // Habituation: similar stimuli decrement arousal; novel ones
        // partially restore it; plus small spontaneous recovery.
        self.arousal -= HABITUATION_RATE * similarity * self.arousal;
        self.arousal += DISHABITUATION_RATE * (1.0 - similarity) * (1.0 - self.arousal);
        self.arousal += RECOVERY_RATE * (1.0 - self.arousal);
        self.arousal = self.arousal.clamp(0.0, 1.0);
        self.history.push(tokens);
        if self.history.len() > HISTORY_WINDOW {
            self.history.remove(0);
        }
        similarity
    }

    /// Uniform learner noise in `[-scale, scale]` (individual
    /// idiosyncrasy in judgements).
    pub fn noise(&mut self, scale: f64) -> f64 {
        self.rng.gen_range(-scale..scale)
    }

    /// Sample a Likert rating (1–5) centred on `quality` in `[0, 1]`
    /// with learner noise.
    pub fn likert(&mut self, quality: f64) -> u8 {
        let noisy: f64 = quality + self.rng.gen_range(-0.15..0.15);
        (1.0 + (noisy.clamp(0.0, 1.0) * 4.0).round()) as u8
    }

    /// Boredom index (1 = not boring, 5 = extremely boring), driven by
    /// the inverse of current arousal.
    pub fn boredom_index(&mut self) -> u8 {
        let boredom = 1.0 - self.arousal;
        let noisy: f64 = boredom + self.rng.gen_range(-0.12..0.12);
        (1.0 + (noisy.clamp(0.0, 1.0) * 4.0).round()) as u8
    }

    /// Reset the habituation state (between study conditions).
    pub fn reset(&mut self) {
        self.arousal = 1.0;
        self.history.clear();
    }
}

/// A deterministic population of learners.
#[derive(Debug, Clone)]
pub struct Population {
    /// The learners.
    pub learners: Vec<Learner>,
}

impl Population {
    /// Sample `n` learners from `seed`.
    pub fn sample(n: usize, seed: u64) -> Self {
        Population {
            learners: (0..n)
                .map(|i| Learner::sample(seed.wrapping_add(i as u64 * 7919)))
                .collect(),
        }
    }

    /// Number of learners.
    pub fn len(&self) -> usize {
        self.learners.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.learners.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affinities_order_nl_over_tree_over_json_on_average() {
        let pop = Population::sample(200, 1);
        let mean =
            |f: Format| pop.learners.iter().map(|l| l.affinity(f)).sum::<f64>() / pop.len() as f64;
        assert!(mean(Format::NaturalLanguage) > mean(Format::VisualTree));
        assert!(mean(Format::VisualTree) > mean(Format::Json));
    }

    #[test]
    fn repeated_identical_text_habituates() {
        let mut l = Learner::sample(3);
        let text = "perform hash join on a and b to get the final results.";
        for _ in 0..10 {
            l.read(text);
        }
        assert!(l.arousal < 0.5, "arousal {} should have decayed", l.arousal);
    }

    #[test]
    fn diverse_texts_keep_arousal_high() {
        let mut same = Learner::sample(4);
        let mut varied = Learner::sample(4);
        let base = "perform hash join on a and b to get the final results.";
        let variants = [
            "perform hash join on a and b to get the final results.",
            "execute a combine of a with b producing the conclusive outcome.",
            "the rows of b are matched against a by hashing to give the answer.",
            "a hash table over b is probed with a yielding the final answer.",
            "join a and b through hashing and return the outcome.",
        ];
        for i in 0..10 {
            same.read(base);
            varied.read(variants[i % variants.len()]);
        }
        assert!(
            varied.arousal > same.arousal + 0.15,
            "varied {} vs same {}",
            varied.arousal,
            same.arousal
        );
    }

    #[test]
    fn similarity_returned_is_monotone() {
        let mut l = Learner::sample(5);
        let first = l.read("perform sequential scan on orders.");
        let repeat = l.read("perform sequential scan on orders.");
        let novel = l.read("completely different words appear here now.");
        assert_eq!(first, 0.0);
        assert!(repeat > 0.9);
        assert!(novel < 0.2);
    }

    #[test]
    fn likert_in_range_and_tracks_quality() {
        let mut l = Learner::sample(6);
        for _ in 0..50 {
            let low = l.likert(0.1);
            let high = l.likert(0.95);
            assert!((1..=5).contains(&low));
            assert!((1..=5).contains(&high));
        }
        let mean_low: f64 = (0..40).map(|_| l.likert(0.15) as f64).sum::<f64>() / 40.0;
        let mean_high: f64 = (0..40).map(|_| l.likert(0.9) as f64).sum::<f64>() / 40.0;
        assert!(mean_high > mean_low + 1.0);
    }

    #[test]
    fn boredom_rises_with_habituation() {
        let mut l = Learner::sample(7);
        let fresh: f64 = (0..30)
            .map(|_| {
                let mut l2 = Learner::sample(100);
                l2.boredom_index() as f64
            })
            .sum::<f64>()
            / 30.0;
        for _ in 0..12 {
            l.read("perform hash join on x and y to get the final results.");
        }
        let bored: f64 = (0..30).map(|_| l.boredom_index() as f64).sum::<f64>() / 30.0;
        assert!(bored > fresh, "bored {bored} vs fresh {fresh}");
    }

    #[test]
    fn population_deterministic() {
        let a = Population::sample(10, 9);
        let b = Population::sample(10, 9);
        assert_eq!(a.learners.len(), b.learners.len());
        for (x, y) in a.learners.iter().zip(&b.learners) {
            assert_eq!(x.expertise, y.expertise);
        }
    }

    #[test]
    fn reset_restores_engagement() {
        let mut l = Learner::sample(11);
        for _ in 0..10 {
            l.read("same text again and again and again.");
        }
        l.reset();
        assert_eq!(l.arousal, 1.0);
    }
}
