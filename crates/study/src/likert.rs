//! Likert-scale (1–5) histograms, the unit every survey figure reports.

use std::fmt;

/// Counts of responses 1..=5.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LikertHistogram {
    counts: [usize; 5],
}

impl LikertHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a rating (clamped to 1..=5).
    pub fn push(&mut self, rating: u8) {
        let r = rating.clamp(1, 5) as usize;
        self.counts[r - 1] += 1;
    }

    /// Count of a specific rating.
    pub fn count(&self, rating: u8) -> usize {
        self.counts[(rating.clamp(1, 5) - 1) as usize]
    }

    /// Total responses.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Fraction of ratings strictly above 3 (the paper's "ratings
    /// above 3" statistic).
    pub fn fraction_above_3(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.counts[3] + self.counts[4]) as f64 / self.total() as f64
    }

    /// Mean rating.
    pub fn mean(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        let sum: usize = self
            .counts
            .iter()
            .enumerate()
            .map(|(i, c)| (i + 1) * c)
            .sum();
        sum as f64 / self.total() as f64
    }

    /// The raw `[1, 2, 3, 4, 5]` counts row (Table 7 format).
    pub fn row(&self) -> [usize; 5] {
        self.counts
    }
}

impl fmt::Display for LikertHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "1:{} 2:{} 3:{} 4:{} 5:{}",
            self.counts[0], self.counts[1], self.counts[2], self.counts[3], self.counts[4]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_count() {
        let mut h = LikertHistogram::new();
        for r in [1, 3, 3, 5, 4] {
            h.push(r);
        }
        assert_eq!(h.total(), 5);
        assert_eq!(h.count(3), 2);
        assert_eq!(h.row(), [1, 0, 2, 1, 1]);
    }

    #[test]
    fn fraction_above_3() {
        let mut h = LikertHistogram::new();
        for r in [4, 5, 2, 3] {
            h.push(r);
        }
        assert!((h.fraction_above_3() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mean() {
        let mut h = LikertHistogram::new();
        for r in [1, 5] {
            h.push(r);
        }
        assert_eq!(h.mean(), 3.0);
    }

    #[test]
    fn out_of_range_clamped() {
        let mut h = LikertHistogram::new();
        h.push(0);
        h.push(9);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(5), 1);
    }

    #[test]
    fn empty_is_safe() {
        let h = LikertHistogram::new();
        assert_eq!(h.fraction_above_3(), 0.0);
        assert_eq!(h.mean(), 0.0);
    }
}
