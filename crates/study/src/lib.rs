//! # lantern-study
//!
//! A psychology-grounded simulated user study, standing in for the
//! paper's 43/62 human volunteers (see DESIGN.md substitution table).
//!
//! The simulation is built on the habituation literature the paper
//! cites: repeated exposure to near-identical stimuli decrements
//! arousal (O'Hanlon \[41\]; Cacioppo & Petty \[20\]), which manifests as
//! boredom, skipping, and lower ratings; message *variation* slows the
//! decrement (Schumann et al. \[47\]). [`Learner`]s carry a habituation
//! state keyed on the similarity of successive narrations (measured
//! with Self-BLEU against their recent reading history), plus a
//! format-affinity profile; Likert answers are sampled from those
//! latent states.
//!
//! Harnesses reproduce Figure 3, Figures 8(b)–(d), Figures 9(a)–(c),
//! Table 7, and user studies US 2–US 6.
//!
//! # Example
//!
//! A miniature Table-7-style run: a sampled population reads two
//! narration streams — one repetitive, one varied — and the repetitive
//! stream bores more learners:
//!
//! ```
//! use lantern_study::{boredom_study, Population};
//!
//! let repetitive = vec!["perform scan on t.".to_string(); 12];
//! let varied: Vec<String> =
//!     (0..12).map(|i| format!("step {i}: scan table t{i} and join.")).collect();
//! let conditions = vec![
//!     ("repetitive".to_string(), repetitive),
//!     ("varied".to_string(), varied),
//! ];
//! let report = boredom_study(&mut Population::sample(20, 7), &conditions);
//! assert!(report.bored_count("repetitive") >= report.bored_count("varied"));
//! ```

pub mod boredom;
pub mod learner;
pub mod likert;
pub mod surveys;

pub use boredom::{boredom_study, mixed_stream_study, BoredomReport};
pub use learner::Format;
pub use learner::{Learner, Population};
pub use likert::LikertHistogram;
pub use surveys::{
    format_preference_survey, q1_ease_survey, q2_quality_survey, q3_preference_survey,
    us6_presentation_survey, FormatKind, SurveyReport,
};
