//! Survey harnesses reproducing Figure 3, Figures 8(b)–(d), Figure 9,
//! and US 6. Each takes *actual narration texts* produced by the
//! systems under study; the learners' responses emerge from the
//! habituation/affinity model.

use crate::learner::{Format, Population};
use crate::likert::LikertHistogram;

/// The four presentation conditions of Figures 8(b)–(d).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FormatKind {
    /// Vendor JSON (PostgreSQL) / XML (SQL Server).
    Json,
    /// Visual operator tree.
    VisualTree,
    /// RULE-LANTERN natural language.
    RuleLantern,
    /// NEURAL-LANTERN natural language.
    NeuralLantern,
}

impl FormatKind {
    fn base_format(self) -> Format {
        match self {
            FormatKind::Json => Format::Json,
            FormatKind::VisualTree => Format::VisualTree,
            FormatKind::RuleLantern | FormatKind::NeuralLantern => Format::NaturalLanguage,
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            FormatKind::Json => "JSON",
            FormatKind::VisualTree => "Visual tree",
            FormatKind::RuleLantern => "RULE-LANTERN",
            FormatKind::NeuralLantern => "NEURAL-LANTERN",
        }
    }
}

/// Generic survey result: one Likert histogram per condition.
#[derive(Debug, Clone)]
pub struct SurveyReport {
    /// `(condition label, histogram)` rows.
    pub rows: Vec<(String, LikertHistogram)>,
}

impl SurveyReport {
    /// Histogram for a labelled row.
    pub fn row(&self, label: &str) -> Option<&LikertHistogram> {
        self.rows.iter().find(|(l, _)| l == label).map(|(_, h)| h)
    }
}

/// Figure 3: preferred QEP format among JSON text, visual tree, and NL
/// description (the paper's 62-volunteer pre-study). Returns
/// `(json, tree, nl)` vote counts.
pub fn format_preference_survey(population: &mut Population, seed: u64) -> (usize, usize, usize) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut votes = (0usize, 0usize, 0usize);
    for learner in &mut population.learners {
        // Wide per-choice noise: preference is a single forced choice,
        // which amplifies idiosyncrasy relative to Likert ratings.
        let j = learner.affinity(Format::Json) + rng.gen_range(-0.22..0.22);
        let t = learner.affinity(Format::VisualTree) + rng.gen_range(-0.22..0.22);
        let n = learner.affinity(Format::NaturalLanguage) + rng.gen_range(-0.22..0.22);
        if n >= t && n >= j {
            votes.2 += 1;
        } else if t >= j {
            votes.1 += 1;
        } else {
            votes.0 += 1;
        }
    }
    votes
}

/// Q1 (Figure 8(b)): "How easy is it to understand the query plan
/// presented using each approach?" — each learner reads the supplied
/// narrations in each format and rates ease ~ affinity × engagement.
pub fn q1_ease_survey(
    population: &mut Population,
    rule_narrations: &[String],
    neural_narrations: &[String],
) -> SurveyReport {
    let conditions = [
        (FormatKind::Json, None),
        (FormatKind::VisualTree, None),
        (FormatKind::RuleLantern, Some(rule_narrations)),
        (FormatKind::NeuralLantern, Some(neural_narrations)),
    ];
    let mut rows = Vec::new();
    for (kind, narrations) in conditions {
        let mut hist = LikertHistogram::new();
        for learner in &mut population.learners {
            learner.reset();
            if let Some(texts) = narrations {
                for t in texts {
                    learner.read(t);
                }
            }
            let quality = learner.affinity(kind.base_format()) * (0.6 + 0.4 * learner.arousal);
            hist.push(learner.likert(quality));
        }
        rows.push((kind.label().to_string(), hist));
    }
    SurveyReport { rows }
}

/// Q2 (Figure 8(c) / Figure 9(a)(b)(c)): "How well does the system
/// describe the query plans?" — a per-plan judgement made right after
/// reading, so it is dominated by the system's *accuracy* (fraction of
/// correct tokens; rule = 1.0, neural < 1.0 from Exp 5) plus the
/// learner's NL affinity. Boredom from prolonged exposure is measured
/// separately (US 3 / Table 7).
pub fn q2_quality_survey(
    population: &mut Population,
    conditions: &[(String, Vec<String>, f64)], // (label, narrations, accuracy)
) -> SurveyReport {
    let mut rows = Vec::new();
    for (label, narrations, accuracy) in conditions {
        let mut hist = LikertHistogram::new();
        for learner in &mut population.learners {
            learner.reset();
            // Brief familiarization with the condition's output style.
            for t in narrations.iter().take(3) {
                learner.read(t);
            }
            let quality = 0.75 * accuracy + 0.25 * learner.affinity(Format::NaturalLanguage);
            hist.push(learner.likert(quality));
        }
        rows.push((label.clone(), hist));
    }
    SurveyReport { rows }
}

/// Q3 (Figure 8(d)): most-preferred format among the four conditions.
/// Returns counts in `[json, tree, rule, neural]` order.
pub fn q3_preference_survey(
    population: &mut Population,
    rule_narrations: &[String],
    neural_narrations: &[String],
) -> [usize; 4] {
    let mut counts = [0usize; 4];
    for learner in &mut population.learners {
        // Engagement after reading each NL condition.
        learner.reset();
        for t in rule_narrations {
            learner.read(t);
        }
        let rule_engagement = learner.arousal;
        learner.reset();
        for t in neural_narrations {
            learner.read(t);
        }
        let neural_engagement = learner.arousal;
        let scores = [
            learner.affinity(Format::Json) + learner.noise(0.12),
            learner.affinity(Format::VisualTree) + learner.noise(0.12),
            learner.affinity(Format::NaturalLanguage) * (0.6 + 0.4 * rule_engagement)
                + learner.noise(0.12),
            learner.affinity(Format::NaturalLanguage) * (0.6 + 0.4 * neural_engagement)
                + learner.noise(0.12),
        ];
        let best = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        counts[best] += 1;
    }
    counts
}

/// US 6: document-style text vs visual-tree-annotated NL presentation.
/// First-time learners prefer linear, textbook-style reading; the
/// annotated tree costs integration effort proportional to (1 -
/// expertise). Returns `(document_votes, annotated_tree_votes)`.
pub fn us6_presentation_survey(population: &mut Population) -> (usize, usize) {
    let mut doc = 0;
    let mut tree = 0;
    for learner in &mut population.learners {
        // Integration overhead of clicking through per-node
        // annotations; experts mind it less.
        let tree_score = learner.affinity(Format::VisualTree) * (0.75 + 0.25 * learner.expertise)
            + learner.noise(0.2);
        let doc_score = learner.affinity(Format::NaturalLanguage) * 0.95 + learner.noise(0.2);
        if doc_score >= tree_score {
            doc += 1;
        } else {
            tree += 1;
        }
    }
    (doc, tree)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule_texts() -> Vec<String> {
        (0..12)
            .map(|i| {
                format!(
                    "hash T{i} and perform hash join on orders and T{i} on condition \
                     ((a.x) = (b.y)) to get the intermediate relation T{}.",
                    i + 1
                )
            })
            .collect()
    }

    fn neural_texts() -> Vec<String> {
        let variants = [
            "hash {t} and execute hash join on orders and {t} under the stated condition yielding {u}.",
            "build a hash table over {t}; then combine orders with {t} to produce {u}.",
            "a hash join of orders and {t} is performed on the given condition to obtain {u}.",
            "combine {t} with orders by hashing on the join keys, producing the relation {u}.",
        ];
        (0..12)
            .map(|i| {
                variants[i % variants.len()]
                    .replace("{t}", &format!("T{i}"))
                    .replace("{u}", &format!("T{}", i + 1))
            })
            .collect()
    }

    #[test]
    fn figure_3_shape_nl_most_preferred() {
        let mut pop = Population::sample(62, 42);
        let (json, tree, nl) = format_preference_survey(&mut pop, 1);
        assert_eq!(json + tree + nl, 62);
        assert!(nl > tree, "nl {nl} tree {tree}");
        assert!(tree > json, "tree {tree} json {json}");
    }

    #[test]
    fn q1_nl_easier_than_json() {
        let mut pop = Population::sample(43, 7);
        let r = q1_ease_survey(&mut pop, &rule_texts(), &neural_texts());
        let nl = r.row("RULE-LANTERN").unwrap().fraction_above_3();
        let json = r.row("JSON").unwrap().fraction_above_3();
        assert!(nl > json, "nl {nl} vs json {json}");
    }

    #[test]
    fn q2_rule_slightly_better_due_to_accuracy() {
        let mut pop = Population::sample(43, 7);
        let conditions = vec![
            ("RULE-LANTERN".to_string(), rule_texts(), 1.0),
            ("NEURAL-LANTERN".to_string(), neural_texts(), 0.96),
        ];
        let r = q2_quality_survey(&mut pop, &conditions);
        let rule = r.row("RULE-LANTERN").unwrap().fraction_above_3();
        let neural = r.row("NEURAL-LANTERN").unwrap().fraction_above_3();
        // Paper: 86% vs 81.4% — rule a bit higher, both high.
        assert!(rule >= neural, "rule {rule} vs neural {neural}");
        assert!(neural > 0.5);
    }

    #[test]
    fn q3_nl_formats_dominate() {
        let mut pop = Population::sample(43, 9);
        let counts = q3_preference_survey(&mut pop, &rule_texts(), &neural_texts());
        let total: usize = counts.iter().sum();
        assert_eq!(total, 43);
        // NL formats together beat JSON by a wide margin.
        assert!(counts[2] + counts[3] > counts[0] * 2, "{counts:?}");
    }

    #[test]
    fn us6_document_style_preferred_by_novices() {
        let mut pop = Population::sample(43, 11);
        let (doc, tree) = us6_presentation_survey(&mut pop);
        assert_eq!(doc + tree, 43);
        assert!(doc > tree, "doc {doc} tree {tree}");
    }
}
