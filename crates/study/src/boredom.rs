//! The boredom studies: Table 7 (boredom index per system) and US 3's
//! mixed-stream experiment (rule/neural narrations interleaved, paper
//! §7.3).

use crate::learner::Population;
use crate::likert::LikertHistogram;

/// Result of a boredom study.
#[derive(Debug, Clone)]
pub struct BoredomReport {
    /// `(system label, Likert-histogram of boredom indices)`.
    pub rows: Vec<(String, LikertHistogram)>,
}

impl BoredomReport {
    /// Histogram for a labelled row.
    pub fn row(&self, label: &str) -> Option<&LikertHistogram> {
        self.rows.iter().find(|(l, _)| l == label).map(|(_, h)| h)
    }

    /// Learners who scored a condition above 3 ("felt bored").
    pub fn bored_count(&self, label: &str) -> usize {
        self.row(label)
            .map(|h| h.count(4) + h.count(5))
            .unwrap_or(0)
    }
}

/// Table 7: every learner reads each system's narration stream (in
/// fresh state) and reports a boredom index afterwards.
pub fn boredom_study(
    population: &mut Population,
    conditions: &[(String, Vec<String>)],
) -> BoredomReport {
    let mut rows = Vec::new();
    for (label, narrations) in conditions {
        let mut hist = LikertHistogram::new();
        for learner in &mut population.learners {
            learner.reset();
            for text in narrations {
                learner.read(text);
            }
            hist.push(learner.boredom_index());
        }
        rows.push((label.clone(), hist));
    }
    BoredomReport { rows }
}

/// US 3's second experiment: a mixed stream (mostly rule narrations
/// with neural ones interleaved). Learners mark outputs that bore them
/// and outputs that arouse interest. Returns, per system:
/// `(marked_boring, aroused_interest)`.
pub fn mixed_stream_study(
    population: &mut Population,
    stream: &[(String, bool)], // (text, is_neural)
) -> ((usize, usize), (usize, usize)) {
    let mut rule_boring = 0usize;
    let mut rule_interest = 0usize;
    let mut neural_boring = 0usize;
    let mut neural_interest = 0usize;
    for learner in &mut population.learners {
        learner.reset();
        for (text, is_neural) in stream {
            let similarity = learner.read(text);
            // A reader marks an item boring when it reads like the
            // recent window *and* they are already disengaging;
            // interesting when it is novel while they were disengaging.
            let boring = similarity > 0.45 && learner.arousal < 0.6;
            let interesting = similarity < 0.3 && learner.arousal < 0.9;
            if *is_neural {
                if boring {
                    neural_boring += 1;
                }
                if interesting {
                    neural_interest += 1;
                }
            } else {
                if boring {
                    rule_boring += 1;
                }
                if interesting {
                    rule_interest += 1;
                }
            }
        }
    }
    (
        (rule_boring, rule_interest),
        (neural_boring, neural_interest),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repetitive_stream(n: usize) -> Vec<String> {
        (0..n)
            .map(|i| {
                format!(
                    "hash T{i} and perform hash join on orders and T{i} on condition \
                     ((a.x) = (b.y)) to get the intermediate relation T{}.",
                    i + 1
                )
            })
            .collect()
    }

    fn diverse_stream(n: usize) -> Vec<String> {
        let variants = [
            "hash {t} and execute hash join on orders and {t} under the stated condition yielding {u}.",
            "build a hash table over {t}; then combine orders with {t} to produce {u}.",
            "a hash join of orders and {t} is performed on the given condition to obtain {u}.",
            "combine {t} with orders by hashing on the join keys, producing the relation {u}.",
            "probe the hashed rows of {t} with orders and keep the matches as {u}.",
        ];
        (0..n)
            .map(|i| {
                variants[i % variants.len()]
                    .replace("{t}", &format!("T{i}"))
                    .replace("{u}", &format!("T{}", i + 1))
            })
            .collect()
    }

    #[test]
    fn table_7_shape_rule_more_boring_than_neural() {
        let mut pop = Population::sample(43, 21);
        let conditions = vec![
            ("rule-lantern".to_string(), repetitive_stream(20)),
            ("neural-lantern".to_string(), diverse_stream(20)),
        ];
        let report = boredom_study(&mut pop, &conditions);
        let rule_bored = report.bored_count("rule-lantern");
        let neural_bored = report.bored_count("neural-lantern");
        // Paper Table 7: 15/43 bored by rule, 4/43 by neural.
        assert!(
            rule_bored > neural_bored * 2,
            "rule {rule_bored} vs neural {neural_bored}"
        );
        assert_eq!(report.row("rule-lantern").unwrap().total(), 43);
    }

    #[test]
    fn mixed_stream_neural_arouses_interest() {
        let mut pop = Population::sample(43, 23);
        // 36 rule + 14 neural interleaved (paper's 4+f() schedule).
        let rule = repetitive_stream(36);
        let neural = diverse_stream(14);
        let mut stream = Vec::new();
        let mut ni = 0;
        for (i, r) in rule.iter().enumerate() {
            stream.push((r.clone(), false));
            if i % 3 == 2 && ni < neural.len() {
                stream.push((neural[ni].clone(), true));
                ni += 1;
            }
        }
        let ((rule_boring, rule_interest), (neural_boring, neural_interest)) =
            mixed_stream_study(&mut pop, &stream);
        // Shape: rule narrations bore more; neural ones arouse more
        // interest relative to their count.
        assert!(
            rule_boring > neural_boring,
            "{rule_boring} vs {neural_boring}"
        );
        let rule_rate = rule_interest as f64 / 36.0;
        let neural_rate = neural_interest as f64 / 14.0;
        assert!(neural_rate > rule_rate, "{neural_rate} vs {rule_rate}");
    }

    #[test]
    fn boredom_study_is_deterministic() {
        let conditions = vec![("x".to_string(), repetitive_stream(10))];
        let r1 = boredom_study(&mut Population::sample(20, 5), &conditions);
        let r2 = boredom_study(&mut Population::sample(20, 5), &conditions);
        assert_eq!(r1.rows[0].1, r2.rows[0].1);
    }
}
