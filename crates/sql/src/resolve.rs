//! Semantic analysis: bind table and column references against a
//! catalog, producing the binding maps the logical planner consumes.

use crate::ast::{Expr, Query, SelectItem};
use crate::lexer::SqlError;
use lantern_catalog::Catalog;
use std::collections::HashMap;

/// A fully resolved column reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedColumn {
    /// The *visible* (aliased) table name in the query.
    pub table_visible: String,
    /// The underlying catalog table name.
    pub table: String,
    /// Column name.
    pub column: String,
    /// Column ordinal within the catalog table.
    pub index: usize,
}

/// A query together with its name bindings.
#[derive(Debug, Clone)]
pub struct ResolvedQuery {
    /// The original AST.
    pub query: Query,
    /// visible name -> catalog table name.
    pub tables: HashMap<String, String>,
    /// Deterministic visible-name order (FROM order, then JOINs).
    pub table_order: Vec<String>,
}

impl ResolvedQuery {
    /// Resolve a column expression to its owning table. Unqualified
    /// names are matched against all bound tables and must be unique.
    pub fn resolve_column(
        &self,
        catalog: &Catalog,
        qualifier: &Option<String>,
        name: &str,
    ) -> Result<ResolvedColumn, SqlError> {
        if let Some(q) = qualifier {
            let visible = self
                .tables
                .keys()
                .find(|v| v.eq_ignore_ascii_case(q))
                .ok_or_else(|| err(format!("unknown table qualifier '{q}'")))?;
            let table_name = &self.tables[visible];
            let table = catalog
                .table(table_name)
                .ok_or_else(|| err(format!("table '{table_name}' not in catalog")))?;
            let index = table
                .column_index(name)
                .ok_or_else(|| err(format!("column '{name}' not in table '{table_name}'")))?;
            return Ok(ResolvedColumn {
                table_visible: visible.clone(),
                table: table_name.clone(),
                column: name.to_string(),
                index,
            });
        }
        let mut hit: Option<ResolvedColumn> = None;
        for visible in &self.table_order {
            let table_name = &self.tables[visible];
            let Some(table) = catalog.table(table_name) else {
                continue;
            };
            if let Some(index) = table.column_index(name) {
                if hit.is_some() {
                    return Err(err(format!("ambiguous column '{name}'")));
                }
                hit = Some(ResolvedColumn {
                    table_visible: visible.clone(),
                    table: table_name.clone(),
                    column: name.to_string(),
                    index,
                });
            }
        }
        hit.ok_or_else(|| err(format!("unknown column '{name}'")))
    }
}

fn err(message: String) -> SqlError {
    SqlError {
        position: 0,
        message,
    }
}

/// Resolve `query` against `catalog`: check every table exists, every
/// column reference binds, and aliases are unambiguous.
pub fn resolve(query: &Query, catalog: &Catalog) -> Result<ResolvedQuery, SqlError> {
    let mut tables = HashMap::new();
    let mut table_order = Vec::new();
    for tref in query.all_tables() {
        if catalog.table(&tref.table).is_none() {
            return Err(err(format!("unknown table '{}'", tref.table)));
        }
        let visible = tref.visible_name().to_string();
        if tables.contains_key(&visible) {
            return Err(err(format!("duplicate table name/alias '{visible}'")));
        }
        tables.insert(visible.clone(), tref.table.clone());
        table_order.push(visible);
    }
    let resolved = ResolvedQuery {
        query: query.clone(),
        tables,
        table_order,
    };
    // Validate every column reference in every clause.
    let mut exprs: Vec<&Expr> = Vec::new();
    for item in &query.select {
        if let SelectItem::Expr { expr, .. } = item {
            exprs.push(expr);
        }
    }
    for j in &query.joins {
        exprs.push(&j.on);
    }
    if let Some(w) = &query.where_clause {
        exprs.push(w);
    }
    exprs.extend(query.group_by.iter());
    if let Some(h) = &query.having {
        exprs.push(h);
    }
    for e in exprs {
        for (qual, name) in e.columns() {
            resolved.resolve_column(catalog, qual, name)?;
        }
    }
    // ORDER BY may additionally reference select-list aliases.
    let aliases: Vec<&str> = query
        .select
        .iter()
        .filter_map(|s| match s {
            SelectItem::Expr { alias: Some(a), .. } => Some(a.as_str()),
            _ => None,
        })
        .collect();
    for o in &query.order_by {
        for (qual, name) in o.expr.columns() {
            if qual.is_none() && aliases.contains(&name) {
                continue;
            }
            resolved.resolve_column(catalog, qual, name)?;
        }
    }
    Ok(resolved)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_sql;
    use lantern_catalog::{dblp_catalog, tpch_catalog};

    #[test]
    fn resolves_paper_example() {
        let cat = dblp_catalog();
        let q = parse_sql(
            "SELECT DISTINCT(I.proceeding_key) FROM inproceedings I, publication P \
             WHERE I.proceeding_key = P.pub_key AND P.title LIKE '%July%' \
             GROUP BY I.proceeding_key HAVING COUNT(*) > 200",
        )
        .unwrap();
        let r = resolve(&q, &cat).unwrap();
        assert_eq!(r.tables["I"], "inproceedings");
        let c = r.resolve_column(&cat, &Some("P".into()), "title").unwrap();
        assert_eq!(c.table, "publication");
        assert_eq!(c.index, 1);
    }

    #[test]
    fn unqualified_unique_column_resolves() {
        let cat = tpch_catalog();
        let q = parse_sql("SELECT o_totalprice FROM orders").unwrap();
        let r = resolve(&q, &cat).unwrap();
        let c = r.resolve_column(&cat, &None, "o_totalprice").unwrap();
        assert_eq!(c.table, "orders");
    }

    #[test]
    fn unknown_table_rejected() {
        let cat = tpch_catalog();
        let q = parse_sql("SELECT x FROM nonexistent").unwrap();
        assert!(resolve(&q, &cat).is_err());
    }

    #[test]
    fn unknown_column_rejected() {
        let cat = tpch_catalog();
        let q = parse_sql("SELECT nope FROM orders").unwrap();
        assert!(resolve(&q, &cat).is_err());
    }

    #[test]
    fn duplicate_alias_rejected() {
        let cat = tpch_catalog();
        let q = parse_sql("SELECT 1 FROM orders o, customer o").unwrap();
        assert!(resolve(&q, &cat).is_err());
    }

    #[test]
    fn wrong_qualifier_rejected() {
        let cat = tpch_catalog();
        let q = parse_sql("SELECT z.o_totalprice FROM orders o").unwrap();
        assert!(resolve(&q, &cat).is_err());
    }

    #[test]
    fn qualifier_case_insensitive() {
        let cat = dblp_catalog();
        let q =
            parse_sql("SELECT I.proceeding_key FROM inproceedings I WHERE i.proceeding_key > 0")
                .unwrap();
        assert!(resolve(&q, &cat).is_ok());
    }
}
