//! SQL lexer: keywords, identifiers, literals, operators, punctuation.

use std::fmt;

/// Lexing/parsing error with character position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlError {
    /// Character offset in the input.
    pub position: usize,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SQL error at position {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for SqlError {}

/// Token kinds. Keywords are case-insensitive and carried as
/// `Keyword(UPPERCASE)`.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    Keyword(String),
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    /// `= <> != < <= > >=`
    Op(String),
    Comma,
    Dot,
    LParen,
    RParen,
    Star,
    Plus,
    Minus,
    Slash,
    Semicolon,
    Eof,
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub position: usize,
}

const KEYWORDS: &[&str] = &[
    "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT", "AS", "AND",
    "OR", "NOT", "IN", "LIKE", "BETWEEN", "IS", "NULL", "JOIN", "INNER", "LEFT", "RIGHT", "ON",
    "ASC", "DESC", "COUNT", "SUM", "AVG", "MIN", "MAX", "ALL", "TRUE", "FALSE",
];

/// The SQL lexer.
pub struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    source: &'a str,
}

impl<'a> Lexer<'a> {
    /// Create a lexer over `source`.
    pub fn new(source: &'a str) -> Self {
        Lexer {
            chars: source.chars().collect(),
            pos: 0,
            source,
        }
    }

    /// Original source text.
    pub fn source(&self) -> &str {
        self.source
    }

    /// Lex the entire input into tokens (terminated by `Eof`).
    pub fn tokenize(mut self) -> Result<Vec<Token>, SqlError> {
        let mut tokens = Vec::new();
        loop {
            let t = self.next_token()?;
            let done = t.kind == TokenKind::Eof;
            tokens.push(t);
            if done {
                return Ok(tokens);
            }
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn next_token(&mut self) -> Result<Token, SqlError> {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
        // Line comments.
        if self.peek() == Some('-') && self.peek2() == Some('-') {
            while self.peek().is_some() && self.peek() != Some('\n') {
                self.pos += 1;
            }
            return self.next_token();
        }
        let position = self.pos;
        let Some(c) = self.peek() else {
            return Ok(Token {
                kind: TokenKind::Eof,
                position,
            });
        };
        let kind = match c {
            ',' => {
                self.pos += 1;
                TokenKind::Comma
            }
            '.' => {
                self.pos += 1;
                TokenKind::Dot
            }
            '(' => {
                self.pos += 1;
                TokenKind::LParen
            }
            ')' => {
                self.pos += 1;
                TokenKind::RParen
            }
            '*' => {
                self.pos += 1;
                TokenKind::Star
            }
            '+' => {
                self.pos += 1;
                TokenKind::Plus
            }
            '-' => {
                self.pos += 1;
                TokenKind::Minus
            }
            '/' => {
                self.pos += 1;
                TokenKind::Slash
            }
            ';' => {
                self.pos += 1;
                TokenKind::Semicolon
            }
            '=' => {
                self.pos += 1;
                TokenKind::Op("=".into())
            }
            '<' => {
                self.pos += 1;
                match self.peek() {
                    Some('=') => {
                        self.pos += 1;
                        TokenKind::Op("<=".into())
                    }
                    Some('>') => {
                        self.pos += 1;
                        TokenKind::Op("<>".into())
                    }
                    _ => TokenKind::Op("<".into()),
                }
            }
            '>' => {
                self.pos += 1;
                if self.peek() == Some('=') {
                    self.pos += 1;
                    TokenKind::Op(">=".into())
                } else {
                    TokenKind::Op(">".into())
                }
            }
            '!' => {
                self.pos += 1;
                if self.peek() == Some('=') {
                    self.pos += 1;
                    TokenKind::Op("<>".into())
                } else {
                    return Err(SqlError {
                        position,
                        message: "expected '=' after '!'".into(),
                    });
                }
            }
            '\'' => {
                self.pos += 1;
                let mut s = String::new();
                loop {
                    match self.peek() {
                        Some('\'') if self.peek2() == Some('\'') => {
                            s.push('\'');
                            self.pos += 2;
                        }
                        Some('\'') => {
                            self.pos += 1;
                            break;
                        }
                        Some(ch) => {
                            s.push(ch);
                            self.pos += 1;
                        }
                        None => {
                            return Err(SqlError {
                                position,
                                message: "unterminated string literal".into(),
                            })
                        }
                    }
                }
                TokenKind::Str(s)
            }
            c if c.is_ascii_digit() => {
                let start = self.pos;
                while matches!(self.peek(), Some(d) if d.is_ascii_digit()) {
                    self.pos += 1;
                }
                let mut is_float = false;
                if self.peek() == Some('.') && matches!(self.peek2(), Some(d) if d.is_ascii_digit())
                {
                    is_float = true;
                    self.pos += 1;
                    while matches!(self.peek(), Some(d) if d.is_ascii_digit()) {
                        self.pos += 1;
                    }
                }
                let text: String = self.chars[start..self.pos].iter().collect();
                if is_float {
                    TokenKind::Float(text.parse().map_err(|_| SqlError {
                        position,
                        message: format!("invalid float literal {text}"),
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|_| SqlError {
                        position,
                        message: format!("invalid int literal {text}"),
                    })?)
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = self.pos;
                while matches!(self.peek(), Some(d) if d.is_alphanumeric() || d == '_') {
                    self.pos += 1;
                }
                let text: String = self.chars[start..self.pos].iter().collect();
                let upper = text.to_ascii_uppercase();
                if KEYWORDS.contains(&upper.as_str()) {
                    TokenKind::Keyword(upper)
                } else {
                    TokenKind::Ident(text)
                }
            }
            other => {
                return Err(SqlError {
                    position,
                    message: format!("unexpected character '{other}'"),
                })
            }
        };
        Ok(Token { kind, position })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        Lexer::new(sql)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn keywords_case_insensitive() {
        let ks = kinds("select FROM Where");
        assert_eq!(
            ks[..3],
            [
                TokenKind::Keyword("SELECT".into()),
                TokenKind::Keyword("FROM".into()),
                TokenKind::Keyword("WHERE".into())
            ]
        );
    }

    #[test]
    fn identifiers_preserve_case() {
        let ks = kinds("Orders o_orderkey");
        assert_eq!(ks[0], TokenKind::Ident("Orders".into()));
        assert_eq!(ks[1], TokenKind::Ident("o_orderkey".into()));
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42")[0], TokenKind::Int(42));
        assert_eq!(kinds("3.25")[0], TokenKind::Float(3.25));
    }

    #[test]
    fn string_with_escaped_quote() {
        assert_eq!(kinds("'O''Brien'")[0], TokenKind::Str("O'Brien".into()));
    }

    #[test]
    fn operators() {
        let ks = kinds("= <> != <= >= < >");
        let ops: Vec<&str> = ks
            .iter()
            .filter_map(|k| match k {
                TokenKind::Op(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(ops, ["=", "<>", "<>", "<=", ">=", "<", ">"]);
    }

    #[test]
    fn comments_skipped() {
        let ks = kinds("SELECT -- comment here\n 1");
        assert_eq!(ks[1], TokenKind::Int(1));
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(Lexer::new("'abc").tokenize().is_err());
    }

    #[test]
    fn bang_without_equals_errors() {
        assert!(Lexer::new("a ! b").tokenize().is_err());
    }

    #[test]
    fn eof_is_last() {
        let ks = kinds("a");
        assert_eq!(*ks.last().unwrap(), TokenKind::Eof);
    }
}
