//! SQL AST and pretty-printer.

use std::fmt;

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        };
        write!(f, "{s}")
    }
}

/// Binary operators (comparisons, boolean connectives, arithmetic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
    Like,
    Add,
    Sub,
    Mul,
    Div,
}

impl BinaryOp {
    /// True for comparison operators usable in join/filter conditions.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
        )
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::Like => "LIKE",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
        };
        write!(f, "{s}")
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    Not,
    Neg,
    IsNull,
    IsNotNull,
}

/// Scalar / boolean expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference, optionally qualified: `o.orderkey`, `title`.
    Column {
        qualifier: Option<String>,
        name: String,
    },
    IntLit(i64),
    FloatLit(f64),
    StrLit(String),
    BoolLit(bool),
    Null,
    Binary {
        op: BinaryOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    Unary {
        op: UnaryOp,
        expr: Box<Expr>,
    },
    /// Aggregate call; `distinct` covers `COUNT(DISTINCT x)`; `arg`
    /// `None` means `COUNT(*)` (also printed as `count(all)` by the
    /// narration layer, matching the paper).
    Agg {
        func: AggFunc,
        distinct: bool,
        arg: Option<Box<Expr>>,
    },
    /// `expr IN (v1, v2, ...)`.
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    /// `expr BETWEEN lo AND hi`.
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
}

impl Expr {
    /// Convenience column constructor.
    pub fn col(qualifier: Option<&str>, name: &str) -> Expr {
        Expr::Column {
            qualifier: qualifier.map(str::to_string),
            name: name.to_string(),
        }
    }

    /// Does this expression (transitively) contain an aggregate?
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Agg { .. } => true,
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::Unary { expr, .. } => expr.contains_aggregate(),
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::Between {
                expr, low, high, ..
            } => expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate(),
            _ => false,
        }
    }

    /// Collect all column references in this expression.
    pub fn columns(&self) -> Vec<(&Option<String>, &str)> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<(&'a Option<String>, &'a str)>) {
        match self {
            Expr::Column { qualifier, name } => out.push((qualifier, name)),
            Expr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::Unary { expr, .. } => expr.collect_columns(out),
            Expr::Agg { arg: Some(a), .. } => a.collect_columns(out),
            Expr::InList { expr, list, .. } => {
                expr.collect_columns(out);
                for e in list {
                    e.collect_columns(out);
                }
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.collect_columns(out);
                low.collect_columns(out);
                high.collect_columns(out);
            }
            _ => {}
        }
    }

    /// Split a conjunctive expression into its AND-ed conjuncts.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        self.collect_conjuncts(&mut out);
        out
    }

    fn collect_conjuncts<'a>(&'a self, out: &mut Vec<&'a Expr>) {
        if let Expr::Binary {
            op: BinaryOp::And,
            left,
            right,
        } = self
        {
            left.collect_conjuncts(out);
            right.collect_conjuncts(out);
        } else {
            out.push(self);
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column {
                qualifier: Some(q),
                name,
            } => write!(f, "{q}.{name}"),
            Expr::Column {
                qualifier: None,
                name,
            } => write!(f, "{name}"),
            Expr::IntLit(i) => write!(f, "{i}"),
            Expr::FloatLit(x) => write!(f, "{x}"),
            Expr::StrLit(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Expr::BoolLit(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Expr::Null => write!(f, "NULL"),
            Expr::Binary { op, left, right } => match op {
                BinaryOp::And | BinaryOp::Or => write!(f, "({left} {op} {right})"),
                _ => write!(f, "{left} {op} {right}"),
            },
            Expr::Unary { op, expr } => match op {
                UnaryOp::Not => write!(f, "NOT ({expr})"),
                UnaryOp::Neg => write!(f, "-{expr}"),
                UnaryOp::IsNull => write!(f, "{expr} IS NULL"),
                UnaryOp::IsNotNull => write!(f, "{expr} IS NOT NULL"),
            },
            Expr::Agg {
                func,
                distinct,
                arg,
            } => match arg {
                None => write!(f, "{func}(*)"),
                Some(a) if *distinct => write!(f, "{func}(DISTINCT {a})"),
                Some(a) => write!(f, "{func}({a})"),
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "{expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                write!(
                    f,
                    "{expr} {}BETWEEN {low} AND {high}",
                    if *negated { "NOT " } else { "" }
                )
            }
        }
    }
}

/// A select-list item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// expression with optional alias
    Expr { expr: Expr, alias: Option<String> },
}

/// A base table reference with optional alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    pub table: String,
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this table is visible as (alias if present).
    pub fn visible_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

/// An explicit `JOIN ... ON` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    pub table: TableRef,
    pub on: Expr,
}

/// `ORDER BY` item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    pub expr: Expr,
    pub descending: bool,
}

/// A parsed `SELECT` query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub distinct: bool,
    pub select: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    pub joins: Vec<JoinClause>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<u64>,
}

impl Query {
    /// All table references including explicit joins.
    pub fn all_tables(&self) -> impl Iterator<Item = &TableRef> {
        self.from.iter().chain(self.joins.iter().map(|j| &j.table))
    }

    /// True if the select list or HAVING uses aggregation, or a GROUP
    /// BY is present.
    pub fn is_aggregating(&self) -> bool {
        !self.group_by.is_empty()
            || self.having.is_some()
            || self.select.iter().any(|s| match s {
                SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
                SelectItem::Wildcard => false,
            })
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        for (i, item) in self.select.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match item {
                SelectItem::Wildcard => write!(f, "*")?,
                SelectItem::Expr {
                    expr,
                    alias: Some(a),
                } => write!(f, "{expr} AS {a}")?,
                SelectItem::Expr { expr, alias: None } => write!(f, "{expr}")?,
            }
        }
        write!(f, " FROM ")?;
        for (i, t) in self.from.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match &t.alias {
                Some(a) => write!(f, "{} {a}", t.table)?,
                None => write!(f, "{}", t.table)?,
            }
        }
        for j in &self.joins {
            write!(f, " JOIN {}", j.table.table)?;
            if let Some(a) = &j.table.alias {
                write!(f, " {a}")?;
            }
            write!(f, " ON {}", j.on)?;
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", o.expr)?;
                if o.descending {
                    write!(f, " DESC")?;
                }
            }
        }
        if let Some(l) = self.limit {
            write!(f, " LIMIT {l}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjunct_splitting() {
        let e = Expr::Binary {
            op: BinaryOp::And,
            left: Box::new(Expr::Binary {
                op: BinaryOp::And,
                left: Box::new(Expr::col(None, "a")),
                right: Box::new(Expr::col(None, "b")),
            }),
            right: Box::new(Expr::col(None, "c")),
        };
        assert_eq!(e.conjuncts().len(), 3);
    }

    #[test]
    fn aggregate_detection() {
        let agg = Expr::Agg {
            func: AggFunc::Count,
            distinct: false,
            arg: None,
        };
        assert!(agg.contains_aggregate());
        let wrapped = Expr::Binary {
            op: BinaryOp::Gt,
            left: Box::new(agg),
            right: Box::new(Expr::IntLit(200)),
        };
        assert!(wrapped.contains_aggregate());
        assert!(!Expr::col(None, "x").contains_aggregate());
    }

    #[test]
    fn column_collection() {
        let e = Expr::Binary {
            op: BinaryOp::Eq,
            left: Box::new(Expr::col(Some("i"), "proceeding_key")),
            right: Box::new(Expr::col(Some("p"), "pub_key")),
        };
        let cols = e.columns();
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[0].1, "proceeding_key");
    }

    #[test]
    fn display_between_and_in() {
        let b = Expr::Between {
            expr: Box::new(Expr::col(None, "x")),
            low: Box::new(Expr::IntLit(1)),
            high: Box::new(Expr::IntLit(9)),
            negated: false,
        };
        assert_eq!(b.to_string(), "x BETWEEN 1 AND 9");
        let i = Expr::InList {
            expr: Box::new(Expr::col(None, "m")),
            list: vec![Expr::StrLit("AIR".into()), Expr::StrLit("FOB".into())],
            negated: true,
        };
        assert_eq!(i.to_string(), "m NOT IN ('AIR', 'FOB')");
    }

    #[test]
    fn visible_name_prefers_alias() {
        let t = TableRef {
            table: "orders".into(),
            alias: Some("o".into()),
        };
        assert_eq!(t.visible_name(), "o");
        let t2 = TableRef {
            table: "orders".into(),
            alias: None,
        };
        assert_eq!(t2.visible_name(), "orders");
    }
}
