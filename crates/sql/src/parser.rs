//! Recursive-descent SQL parser.

use crate::ast::{
    AggFunc, BinaryOp, Expr, JoinClause, OrderItem, Query, SelectItem, TableRef, UnaryOp,
};
use crate::lexer::{Lexer, SqlError, Token, TokenKind};

/// Parse a single `SELECT` statement (an optional trailing `;` is
/// accepted).
///
/// ```
/// use lantern_sql::parse_sql;
/// let q = parse_sql("SELECT COUNT(*) FROM orders WHERE o_totalprice > 100").unwrap();
/// assert!(q.is_aggregating());
/// ```
pub fn parse_sql(sql: &str) -> Result<Query, SqlError> {
    let tokens = Lexer::new(sql).tokenize()?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    p.accept_kind(&TokenKind::Semicolon);
    p.expect_eof()?;
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn position(&self) -> usize {
        self.tokens[self.pos].position
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        k
    }

    fn err(&self, msg: impl Into<String>) -> SqlError {
        SqlError {
            position: self.position(),
            message: msg.into(),
        }
    }

    fn accept_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), TokenKind::Keyword(k) if k == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.accept_keyword(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kw}")))
        }
    }

    fn accept_kind(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kind(&mut self, kind: &TokenKind, what: &str) -> Result<(), SqlError> {
        if self.accept_kind(kind) {
            Ok(())
        } else {
            Err(self.err(format!("expected {what}")))
        }
    }

    fn expect_eof(&self) -> Result<(), SqlError> {
        if *self.peek() == TokenKind::Eof {
            Ok(())
        } else {
            Err(self.err("unexpected trailing tokens"))
        }
    }

    fn ident(&mut self) -> Result<String, SqlError> {
        match self.bump() {
            TokenKind::Ident(s) => Ok(s),
            other => Err(SqlError {
                position: self.tokens[self.pos.saturating_sub(1)].position,
                message: format!("expected identifier, found {other:?}"),
            }),
        }
    }

    fn query(&mut self) -> Result<Query, SqlError> {
        self.expect_keyword("SELECT")?;
        let distinct = self.accept_keyword("DISTINCT");
        let select = self.select_list()?;
        self.expect_keyword("FROM")?;
        let mut from = vec![self.table_ref()?];
        while self.accept_kind(&TokenKind::Comma) {
            from.push(self.table_ref()?);
        }
        let mut joins = Vec::new();
        loop {
            let inner = self.accept_keyword("INNER");
            if self.accept_keyword("JOIN") {
                let table = self.table_ref()?;
                self.expect_keyword("ON")?;
                let on = self.expr()?;
                joins.push(JoinClause { table, on });
            } else if inner {
                return Err(self.err("expected JOIN after INNER"));
            } else {
                break;
            }
        }
        let where_clause = if self.accept_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.accept_keyword("GROUP") {
            self.expect_keyword("BY")?;
            group_by.push(self.expr()?);
            while self.accept_kind(&TokenKind::Comma) {
                group_by.push(self.expr()?);
            }
        }
        let having = if self.accept_keyword("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.accept_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let expr = self.expr()?;
                let descending = if self.accept_keyword("DESC") {
                    true
                } else {
                    self.accept_keyword("ASC");
                    false
                };
                order_by.push(OrderItem { expr, descending });
                if !self.accept_kind(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let limit = if self.accept_keyword("LIMIT") {
            match self.bump() {
                TokenKind::Int(n) if n >= 0 => Some(n as u64),
                _ => return Err(self.err("expected non-negative integer after LIMIT")),
            }
        } else {
            None
        };
        Ok(Query {
            distinct,
            select,
            from,
            joins,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn select_list(&mut self) -> Result<Vec<SelectItem>, SqlError> {
        let mut items = Vec::new();
        loop {
            if self.accept_kind(&TokenKind::Star) {
                items.push(SelectItem::Wildcard);
            } else {
                let expr = self.expr()?;
                let alias = if self.accept_keyword("AS") {
                    Some(self.ident()?)
                } else if let TokenKind::Ident(_) = self.peek() {
                    // Bare alias: `SELECT o_totalprice price`.
                    Some(self.ident()?)
                } else {
                    None
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.accept_kind(&TokenKind::Comma) {
                return Ok(items);
            }
        }
    }

    fn table_ref(&mut self) -> Result<TableRef, SqlError> {
        let table = self.ident()?;
        let alias = if self.accept_keyword("AS") {
            Some(self.ident()?)
        } else if let TokenKind::Ident(_) = self.peek() {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(TableRef { table, alias })
    }

    /// expr := or_expr
    fn expr(&mut self) -> Result<Expr, SqlError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.and_expr()?;
        while self.accept_keyword("OR") {
            let right = self.and_expr()?;
            left = Expr::Binary {
                op: BinaryOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.not_expr()?;
        while self.accept_keyword("AND") {
            let right = self.not_expr()?;
            left = Expr::Binary {
                op: BinaryOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr, SqlError> {
        if self.accept_keyword("NOT") {
            let inner = self.not_expr()?;
            Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner),
            })
        } else {
            self.predicate()
        }
    }

    /// predicate := additive [ (cmp additive | LIKE str | IN (...) |
    /// BETWEEN a AND b | IS [NOT] NULL) ]
    fn predicate(&mut self) -> Result<Expr, SqlError> {
        let left = self.additive()?;
        if let TokenKind::Op(op) = self.peek() {
            let op = match op.as_str() {
                "=" => BinaryOp::Eq,
                "<>" => BinaryOp::NotEq,
                "<" => BinaryOp::Lt,
                "<=" => BinaryOp::LtEq,
                ">" => BinaryOp::Gt,
                ">=" => BinaryOp::GtEq,
                other => return Err(self.err(format!("unknown operator {other}"))),
            };
            self.bump();
            let right = self.additive()?;
            return Ok(Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            });
        }
        let negated = {
            // Look ahead for NOT LIKE / NOT IN / NOT BETWEEN.
            if matches!(self.peek(), TokenKind::Keyword(k) if k == "NOT") {
                let next = self.tokens.get(self.pos + 1).map(|t| &t.kind);
                if matches!(next, Some(TokenKind::Keyword(k)) if k == "LIKE" || k == "IN" || k == "BETWEEN")
                {
                    self.bump();
                    true
                } else {
                    false
                }
            } else {
                false
            }
        };
        if self.accept_keyword("LIKE") {
            let right = self.additive()?;
            let like = Expr::Binary {
                op: BinaryOp::Like,
                left: Box::new(left),
                right: Box::new(right),
            };
            return Ok(if negated {
                Expr::Unary {
                    op: UnaryOp::Not,
                    expr: Box::new(like),
                }
            } else {
                like
            });
        }
        if self.accept_keyword("IN") {
            self.expect_kind(&TokenKind::LParen, "'('")?;
            let mut list = vec![self.additive()?];
            while self.accept_kind(&TokenKind::Comma) {
                list.push(self.additive()?);
            }
            self.expect_kind(&TokenKind::RParen, "')'")?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.accept_keyword("BETWEEN") {
            let low = self.additive()?;
            self.expect_keyword("AND")?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.accept_keyword("IS") {
            let not = self.accept_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(Expr::Unary {
                op: if not {
                    UnaryOp::IsNotNull
                } else {
                    UnaryOp::IsNull
                },
                expr: Box::new(left),
            });
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinaryOp::Add,
                TokenKind::Minus => BinaryOp::Sub,
                _ => return Ok(left),
            };
            self.bump();
            let right = self.multiplicative()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
    }

    fn multiplicative(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinaryOp::Mul,
                TokenKind::Slash => BinaryOp::Div,
                _ => return Ok(left),
            };
            self.bump();
            let right = self.unary()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
    }

    fn unary(&mut self) -> Result<Expr, SqlError> {
        if self.accept_kind(&TokenKind::Minus) {
            let inner = self.unary()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(inner),
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, SqlError> {
        match self.peek().clone() {
            TokenKind::Int(i) => {
                self.bump();
                Ok(Expr::IntLit(i))
            }
            TokenKind::Float(x) => {
                self.bump();
                Ok(Expr::FloatLit(x))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::StrLit(s))
            }
            TokenKind::Keyword(k) if k == "NULL" => {
                self.bump();
                Ok(Expr::Null)
            }
            TokenKind::Keyword(k) if k == "TRUE" => {
                self.bump();
                Ok(Expr::BoolLit(true))
            }
            TokenKind::Keyword(k) if k == "FALSE" => {
                self.bump();
                Ok(Expr::BoolLit(false))
            }
            TokenKind::Keyword(k)
                if matches!(k.as_str(), "COUNT" | "SUM" | "AVG" | "MIN" | "MAX") =>
            {
                self.bump();
                let func = match k.as_str() {
                    "COUNT" => AggFunc::Count,
                    "SUM" => AggFunc::Sum,
                    "AVG" => AggFunc::Avg,
                    "MIN" => AggFunc::Min,
                    _ => AggFunc::Max,
                };
                self.expect_kind(&TokenKind::LParen, "'('")?;
                if self.accept_kind(&TokenKind::Star) {
                    self.expect_kind(&TokenKind::RParen, "')'")?;
                    if func != AggFunc::Count {
                        return Err(self.err("only COUNT accepts *"));
                    }
                    return Ok(Expr::Agg {
                        func,
                        distinct: false,
                        arg: None,
                    });
                }
                if self.accept_keyword("ALL") {
                    self.expect_kind(&TokenKind::RParen, "')'")?;
                    if func != AggFunc::Count {
                        return Err(self.err("only COUNT accepts ALL"));
                    }
                    return Ok(Expr::Agg {
                        func,
                        distinct: false,
                        arg: None,
                    });
                }
                let distinct = self.accept_keyword("DISTINCT");
                let arg = self.expr()?;
                self.expect_kind(&TokenKind::RParen, "')'")?;
                Ok(Expr::Agg {
                    func,
                    distinct,
                    arg: Some(Box::new(arg)),
                })
            }
            TokenKind::Keyword(k) if k == "DISTINCT" => {
                // `SELECT DISTINCT(col)` style (paper's Example 3.1) —
                // treated as a plain column reference inside a DISTINCT
                // query.
                self.bump();
                self.expect_kind(&TokenKind::LParen, "'('")?;
                let inner = self.expr()?;
                self.expect_kind(&TokenKind::RParen, "')'")?;
                Ok(inner)
            }
            TokenKind::LParen => {
                self.bump();
                let inner = self.expr()?;
                self.expect_kind(&TokenKind::RParen, "')'")?;
                Ok(inner)
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.accept_kind(&TokenKind::Dot) {
                    let col = self.ident()?;
                    Ok(Expr::Column {
                        qualifier: Some(name),
                        name: col,
                    })
                } else {
                    Ok(Expr::Column {
                        qualifier: None,
                        name,
                    })
                }
            }
            other => Err(self.err(format!("unexpected token {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_example_3_1() {
        let sql = "SELECT DISTINCT(I.proceeding_key) \
                   FROM inproceedings I, publication P \
                   WHERE (I.proceeding_key = P.pub_key AND P.title like '%July%') \
                   GROUP BY I.proceeding_key \
                   HAVING COUNT (*) > 200;";
        let q = parse_sql(sql).unwrap();
        assert!(q.distinct);
        assert_eq!(q.from.len(), 2);
        assert_eq!(q.from[0].alias.as_deref(), Some("I"));
        assert_eq!(q.group_by.len(), 1);
        assert!(q.having.is_some());
        let conjuncts = q.where_clause.as_ref().unwrap().conjuncts();
        assert_eq!(conjuncts.len(), 2);
    }

    #[test]
    fn parses_explicit_join() {
        let q =
            parse_sql("SELECT c.c_name FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey")
                .unwrap();
        assert_eq!(q.joins.len(), 1);
        assert_eq!(q.joins[0].table.visible_name(), "o");
    }

    #[test]
    fn parses_order_and_limit() {
        let q = parse_sql("SELECT a FROM t ORDER BY a DESC, b LIMIT 10").unwrap();
        assert_eq!(q.order_by.len(), 2);
        assert!(q.order_by[0].descending);
        assert!(!q.order_by[1].descending);
        assert_eq!(q.limit, Some(10));
    }

    #[test]
    fn parses_aggregates() {
        let q = parse_sql(
            "SELECT COUNT(*), SUM(l_extendedprice * (1 - l_discount)) AS revenue FROM lineitem",
        )
        .unwrap();
        assert!(q.is_aggregating());
        assert_eq!(q.select.len(), 2);
    }

    #[test]
    fn parses_count_distinct() {
        let q = parse_sql("SELECT COUNT(DISTINCT o_custkey) FROM orders").unwrap();
        match &q.select[0] {
            SelectItem::Expr {
                expr: Expr::Agg { distinct, .. },
                ..
            } => assert!(*distinct),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_in_between_isnull() {
        let q = parse_sql(
            "SELECT * FROM lineitem WHERE l_shipmode IN ('AIR','FOB') \
             AND l_quantity BETWEEN 5 AND 15 AND l_comment IS NOT NULL",
        )
        .unwrap();
        let w = q.where_clause.unwrap();
        assert_eq!(w.conjuncts().len(), 3);
    }

    #[test]
    fn parses_not_variants() {
        let q =
            parse_sql("SELECT * FROM t WHERE a NOT IN (1,2) AND b NOT LIKE '%x%' AND NOT c = 3")
                .unwrap();
        assert_eq!(q.where_clause.unwrap().conjuncts().len(), 3);
    }

    #[test]
    fn operator_precedence_and_over_or() {
        let q = parse_sql("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3").unwrap();
        match q.where_clause.unwrap() {
            Expr::Binary {
                op: BinaryOp::Or, ..
            } => {}
            other => panic!("expected OR at root, got {other:?}"),
        }
    }

    #[test]
    fn arithmetic_precedence() {
        let q = parse_sql("SELECT a + b * c FROM t").unwrap();
        match &q.select[0] {
            SelectItem::Expr {
                expr:
                    Expr::Binary {
                        op: BinaryOp::Add,
                        right,
                        ..
                    },
                ..
            } => {
                assert!(matches!(
                    **right,
                    Expr::Binary {
                        op: BinaryOp::Mul,
                        ..
                    }
                ));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_sql("SELECT a FROM t WHERE").is_err());
        assert!(parse_sql("SELECT a FROM t xyzzy plugh").is_err());
    }

    #[test]
    fn rejects_sum_star() {
        assert!(parse_sql("SELECT SUM(*) FROM t").is_err());
    }

    #[test]
    fn round_trips_through_display() {
        let sql = "SELECT DISTINCT c.c_name AS name FROM customer c \
                   JOIN orders o ON c.c_custkey = o.o_custkey \
                   WHERE o.o_totalprice > 1000 GROUP BY c.c_name \
                   HAVING COUNT(*) > 2 ORDER BY c.c_name DESC LIMIT 5";
        let q1 = parse_sql(sql).unwrap();
        let q2 = parse_sql(&q1.to_string()).unwrap();
        assert_eq!(q1, q2);
    }

    #[test]
    fn count_all_is_count_star() {
        let q = parse_sql("SELECT COUNT(ALL) FROM t").unwrap();
        match &q.select[0] {
            SelectItem::Expr {
                expr: Expr::Agg { arg: None, .. },
                ..
            } => {}
            other => panic!("{other:?}"),
        }
    }
}
