//! # lantern-sql
//!
//! A SQL subset front-end for the mini relational engine: lexer,
//! recursive-descent parser, AST, pretty-printer, and a semantic
//! resolver that binds names against a `lantern-catalog` schema.
//!
//! The subset covers what the paper's workloads need: `SELECT
//! [DISTINCT]` with aggregates, multi-table `FROM` (comma or explicit
//! `JOIN ... ON`), `WHERE` with comparison/`LIKE`/`IN`/`BETWEEN`/`IS
//! NULL` predicates and `AND`/`OR`/`NOT`, `GROUP BY`, `HAVING`,
//! `ORDER BY`, `LIMIT`, and arithmetic expressions.

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod resolve;

pub use ast::{
    AggFunc, BinaryOp, Expr, JoinClause, OrderItem, Query, SelectItem, TableRef, UnaryOp,
};
pub use lexer::{Lexer, SqlError, Token, TokenKind};
pub use parser::parse_sql;
pub use resolve::{resolve, ResolvedQuery};
