//! The three paraphrase engines standing in for the paper's web tools
//! \[8,9,10\]. Each has a distinct character so a group of outputs is
//! genuinely diverse (Table 4), and each is deterministic given the
//! input and variant index.

use crate::lexicon::{substitute_all, substitute_one, IMPERFECT, SYNONYMS};

/// A paraphrasing tool: text in, variant text out (`None` when the
/// engine cannot produce a changed, valid output).
pub trait Paraphraser {
    /// Tool name (for reports).
    fn name(&self) -> &'static str;

    /// Produce variant number `variant` of `text`.
    fn paraphrase(&self, text: &str, variant: usize) -> Option<String>;
}

/// Engine 1: conservative synonym substitution (one phrase changed).
#[derive(Debug, Clone, Default)]
pub struct SynonymParaphraser;

impl Paraphraser for SynonymParaphraser {
    fn name(&self) -> &'static str {
        "synonym"
    }

    fn paraphrase(&self, text: &str, variant: usize) -> Option<String> {
        let out = substitute_one(text, SYNONYMS, variant)?;
        (out != text).then_some(out)
    }
}

/// Engine 2: clause restructuring — rewrites connectives and reorders
/// trailing purpose clauses ("X to get Y." -> "To get Y, X.").
#[derive(Debug, Clone, Default)]
pub struct RestructureParaphraser;

impl Paraphraser for RestructureParaphraser {
    fn name(&self) -> &'static str {
        "restructure"
    }

    fn paraphrase(&self, text: &str, variant: usize) -> Option<String> {
        let text = text.trim_end_matches('.');
        let out = match variant % 3 {
            0 => {
                // Front the purpose clause.
                let marker = " to get ";
                let pos = text.rfind(marker)?;
                let (head, tail) = text.split_at(pos);
                let tail = &tail[marker.len()..];
                format!("To get {tail}, {head}.")
            }
            1 => {
                // "X and Y" -> "X; then Y".
                let pos = text.find(" and ")?;
                let (a, b) = text.split_at(pos);
                format!("{a}; then {}.", &b[" and ".len()..])
            }
            _ => {
                // Passive-ish reframe of the leading verb.
                let rest = text.strip_prefix("perform ")?;
                format!("a {rest} is performed.")
            }
        };
        (out != text).then_some(out)
    }
}

/// Engine 3: aggressive combined rewriting — applies every synonym it
/// can *and* draws from the imperfect lexicon, reproducing the paper's
/// noisy-token behaviour (Table 2, sentences 1–3).
#[derive(Debug, Clone, Default)]
pub struct AggressiveParaphraser;

impl Paraphraser for AggressiveParaphraser {
    fn name(&self) -> &'static str {
        "aggressive"
    }

    fn paraphrase(&self, text: &str, variant: usize) -> Option<String> {
        // Even variants rewrite through the imperfect lexicon (Table 2
        // sentences 1–3); odd variants rewrite every synonym at once.
        let out = if variant.is_multiple_of(2) {
            substitute_all(text, IMPERFECT, variant / 2)
        } else {
            substitute_all(text, SYNONYMS, variant)
        };
        (out != text).then_some(out)
    }
}

/// Validity filter (the paper manually eliminated invalid tool
/// outputs): a paraphrase is kept only if it preserves every special
/// tag and placeholder token and stays non-empty.
pub fn is_valid_paraphrase(original: &str, candidate: &str) -> bool {
    if candidate.trim().is_empty() {
        return false;
    }
    // Every tag-like token of the original must survive with equal
    // multiplicity. "Tag-like" = Table-1 tags, template placeholders,
    // and intermediate-relation identifiers (T1, T2, ...) — but not
    // ordinary words that happen to start with 'T'.
    let is_t_identifier = |tok: &str| {
        tok.len() >= 2 && tok.starts_with('T') && tok[1..].chars().all(|c| c.is_ascii_digit())
    };
    let count_tags = |s: &str| {
        let mut counts = std::collections::HashMap::new();
        for tok in lantern_text::tokenize(s) {
            if tok.starts_with('<') || tok.starts_with('$') || is_t_identifier(&tok) {
                *counts.entry(tok).or_insert(0usize) += 1;
            }
        }
        counts
    };
    count_tags(original) == count_tags(candidate)
}

#[cfg(test)]
mod tests {
    use super::*;

    const RULE_SENTENCE: &str =
        "perform sequential scan on user and filtering on (age > 10) to get the final results.";

    #[test]
    fn synonym_engine_changes_one_phrase() {
        let p = SynonymParaphraser.paraphrase(RULE_SENTENCE, 0).unwrap();
        assert_ne!(p, RULE_SENTENCE);
        assert!(
            p.contains("sequential scan"),
            "only one phrase changes: {p}"
        );
    }

    #[test]
    fn restructure_fronts_purpose_clause() {
        let s = "hash T1 and perform hash join on a and T1 to get the intermediate relation T2.";
        let p = RestructureParaphraser.paraphrase(s, 0).unwrap();
        assert!(p.starts_with("To get the intermediate relation T2,"), "{p}");
    }

    #[test]
    fn restructure_then_variant() {
        let s = "hash T1 and perform hash join on a and T1.";
        let p = RestructureParaphraser.paraphrase(s, 1).unwrap();
        assert!(p.contains("; then "), "{p}");
    }

    #[test]
    fn aggressive_reproduces_paper_table_2() {
        let p = AggressiveParaphraser.paraphrase(RULE_SENTENCE, 0).unwrap();
        // Paper Table 2 synonymous sentence 2: "execute sequential scan
        // on user and separating on age > 10 to get the conclusive
        // outcome."
        assert!(p.contains("separating on"), "{p}");
        assert!(p.contains("conclusive outcome"), "{p}");
        assert!(p.starts_with("execute"), "{p}");
    }

    #[test]
    fn engines_disagree_with_each_other() {
        let a = SynonymParaphraser.paraphrase(RULE_SENTENCE, 0).unwrap();
        let b = RestructureParaphraser.paraphrase(RULE_SENTENCE, 0).unwrap();
        let c = AggressiveParaphraser.paraphrase(RULE_SENTENCE, 0).unwrap();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn validity_filter_checks_tags() {
        assert!(is_valid_paraphrase(
            "scan <T> to get <TN>.",
            "execute a scan over <T> yielding <TN>."
        ));
        assert!(!is_valid_paraphrase(
            "scan <T> to get <TN>.",
            "execute a scan yielding <TN>."
        ));
        assert!(!is_valid_paraphrase("scan T1.", "scan it."));
        assert!(!is_valid_paraphrase("scan <T>.", "   "));
    }

    #[test]
    fn unchanged_output_is_rejected() {
        assert!(SynonymParaphraser
            .paraphrase("no matching words here", 0)
            .is_none());
        assert!(RestructureParaphraser
            .paraphrase("nothing restructurable", 0)
            .is_none());
    }
}
