//! A [`Translator`] decorator that paraphrases narration steps on the
//! way out — the "paraphrase on/off" switch of the unified pipeline.
//!
//! Wraps any backend. Each step is rewritten by the first paraphrase
//! engine that produces a *valid* variant (same validity filter as
//! training-set expansion, §6.3), with the engine choice rotating by
//! step index so consecutive steps don't all receive the same
//! transformation. Steps no engine can rewrite pass through verbatim.
//! Rewriting is deterministic for a given narration.
//!
//! Only the concrete learner-facing `text` is rewritten; the
//! tag-abstracted rendering and its bindings are preserved as produced
//! by the backend, since they are the machine-facing contract.

use crate::engines::{
    is_valid_paraphrase, AggressiveParaphraser, Paraphraser, RestructureParaphraser,
    SynonymParaphraser,
};
use lantern_core::{
    LanternError, Narration, NarrationRequest, NarrationResponse, RenderStyle, Translator,
};

/// Paraphrasing wrapper around an inner [`Translator`].
pub struct ParaphrasedTranslator<T> {
    inner: T,
    backend: String,
    style: RenderStyle,
}

impl<T: Translator> ParaphrasedTranslator<T> {
    /// Wrap `inner`; the reported backend name gains a `+paraphrase`
    /// suffix so responses stay attributable.
    pub fn new(inner: T) -> Self {
        let backend = format!("{}+paraphrase", inner.backend());
        ParaphrasedTranslator {
            inner,
            backend,
            style: RenderStyle::default(),
        }
    }

    /// Default rendering style for re-rendered (paraphrased) text.
    pub fn with_style(mut self, style: RenderStyle) -> Self {
        self.style = style;
        self
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    fn rewrite(&self, narration: Narration) -> Narration {
        let engines: [&dyn Paraphraser; 3] = [
            &SynonymParaphraser,
            &RestructureParaphraser,
            &AggressiveParaphraser,
        ];
        let mut steps = narration.steps().to_vec();
        for (i, step) in steps.iter_mut().enumerate() {
            // Rotate the starting engine by step index; fall through to
            // the others so every step gets its best chance.
            let variant = (0..engines.len()).find_map(|k| {
                let engine = engines[(i + k) % engines.len()];
                engine
                    .paraphrase(&step.text, i)
                    .filter(|c| is_valid_paraphrase(&step.text, c))
            });
            if let Some(text) = variant {
                step.text = text;
            }
        }
        Narration::from_steps(steps)
    }
}

impl<T: Translator> Translator for ParaphrasedTranslator<T> {
    fn backend(&self) -> &str {
        &self.backend
    }

    fn narrate(&self, req: &NarrationRequest) -> Result<NarrationResponse, LanternError> {
        let resp = self.inner.narrate(req)?;
        let narration = self.rewrite(resp.narration);
        Ok(NarrationResponse::new(
            self.backend(),
            narration,
            req.effective_style(self.style),
        ))
    }

    fn narrate_batch(
        &self,
        reqs: &[NarrationRequest],
    ) -> Vec<Result<NarrationResponse, LanternError>> {
        // Let the inner backend batch (snapshot sharing, fan-out), then
        // paraphrase each response.
        self.inner
            .narrate_batch(reqs)
            .into_iter()
            .enumerate()
            .map(|(i, result)| {
                result.map(|resp| {
                    let narration = self.rewrite(resp.narration);
                    NarrationResponse::new(
                        self.backend(),
                        narration,
                        reqs[i].effective_style(self.style),
                    )
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lantern_core::RuleTranslator;
    use lantern_pool::default_pg_store;

    const PG_DOC: &str = r#"[{"Plan": {"Node Type": "Hash Join",
        "Hash Cond": "((a.x) = (b.y))",
        "Plans": [
          {"Node Type": "Seq Scan", "Relation Name": "a"},
          {"Node Type": "Hash",
           "Plans": [{"Node Type": "Seq Scan", "Relation Name": "b"}]}
        ]}}]"#;

    #[test]
    fn paraphrases_at_least_one_step() {
        let plain = RuleTranslator::new(default_pg_store());
        let wrapped = ParaphrasedTranslator::new(RuleTranslator::new(default_pg_store()));
        let req = NarrationRequest::auto(PG_DOC).unwrap();
        let original = plain.narrate(&req).unwrap();
        let varied = wrapped.narrate(&req).unwrap();
        assert_eq!(varied.backend, "rule+paraphrase");
        assert_eq!(
            varied.narration.steps().len(),
            original.narration.steps().len()
        );
        assert_ne!(varied.text, original.text, "no step was rewritten");
    }

    #[test]
    fn rewriting_is_deterministic() {
        let wrapped = ParaphrasedTranslator::new(RuleTranslator::new(default_pg_store()));
        let req = NarrationRequest::auto(PG_DOC).unwrap();
        let a = wrapped.narrate(&req).unwrap();
        let b = wrapped.narrate(&req).unwrap();
        assert_eq!(a.text, b.text);
    }

    #[test]
    fn batch_paraphrases_every_response() {
        let wrapped = ParaphrasedTranslator::new(RuleTranslator::new(default_pg_store()));
        let reqs = vec![
            NarrationRequest::auto(PG_DOC).unwrap(),
            NarrationRequest::pg_json("garbage"),
        ];
        let out = wrapped.narrate_batch(&reqs);
        assert_eq!(out[0].as_ref().unwrap().backend, "rule+paraphrase");
        assert!(out[1].is_err());
    }

    #[test]
    fn errors_pass_through_untouched() {
        let wrapped = ParaphrasedTranslator::new(RuleTranslator::new(default_pg_store()));
        let err = wrapped
            .narrate(&NarrationRequest::pg_json("nope"))
            .unwrap_err();
        assert!(matches!(err, LanternError::Parse { .. }));
    }
}
