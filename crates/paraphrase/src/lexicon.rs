//! Synonym lexicon shared by the paraphrase engines. Pairs are
//! phrase-level (longest-match first) and tuned to the RULE-LANTERN
//! output vocabulary; the `IMPERFECT` set reproduces the paper's
//! observation (Table 2) that web paraphrasers occasionally pick
//! slightly-wrong words ("separating" for "filtering") — which the
//! user study found did not hinder and sometimes *aroused* interest.

/// Conservative, meaning-preserving substitutions: `(phrase,
/// alternatives...)`.
pub const SYNONYMS: &[(&str, &[&str])] = &[
    ("perform", &["execute", "carry out", "run"]),
    ("sequential scan", &["full table scan", "sequential read"]),
    (
        "to get the final results",
        &[
            "to obtain the final results",
            "to get the conclusive outcome",
            "to produce the final answer",
        ],
    ),
    (
        "to get the intermediate relation",
        &[
            "to obtain the intermediate relation",
            "to produce the intermediate relation",
            "yielding the intermediate relation",
        ],
    ),
    (
        "filtering on",
        &["keeping only rows satisfying", "selecting on"],
    ),
    ("hash", &["build a hash table over", "hash the rows of"]),
    ("sort", &["order", "arrange"]),
    (
        "duplicate removal",
        &["removal of duplicates", "elimination of duplicate rows"],
    ),
    (
        "on condition",
        &["under the condition", "with the join condition"],
    ),
    (
        "with grouping on attribute",
        &["grouping by attribute", "with groups formed on attribute"],
    ),
    (
        "perform aggregate",
        &["compute the aggregate", "evaluate the aggregate"],
    ),
    ("join", &["combine"]),
];

/// Noisier substitutions used only by the aggressive engine —
/// plausible but imperfect word choices, per the paper's Table 2.
pub const IMPERFECT: &[(&str, &[&str])] = &[
    ("filtering on", &["separating on"]),
    ("perform", &["execute"]),
    ("scan", &["scan output"]),
    (
        "to get the final results",
        &["and to get the conclusive outcome"],
    ),
    ("intermediate relation", &["temporary relation"]),
];

/// Apply the first matching substitution of `lexicon` whose phrase
/// occurs in `text`, choosing alternative `pick % len`. Returns `None`
/// when nothing matches.
pub fn substitute_one(text: &str, lexicon: &[(&str, &[&str])], pick: usize) -> Option<String> {
    for (phrase, alts) in lexicon {
        if let Some(pos) = text.find(phrase) {
            let alt = alts[pick % alts.len()];
            let mut out = String::with_capacity(text.len() + alt.len());
            out.push_str(&text[..pos]);
            out.push_str(alt);
            out.push_str(&text[pos + phrase.len()..]);
            return Some(out);
        }
    }
    None
}

/// Apply every matching substitution (each phrase at most once),
/// choosing alternatives by `pick`.
pub fn substitute_all(text: &str, lexicon: &[(&str, &[&str])], pick: usize) -> String {
    let mut out = text.to_string();
    for (i, (phrase, alts)) in lexicon.iter().enumerate() {
        if let Some(pos) = out.find(phrase) {
            let alt = alts[(pick + i) % alts.len()];
            out.replace_range(pos..pos + phrase.len(), alt);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn substitute_one_replaces_first_match() {
        let s = substitute_one("perform hash join now", SYNONYMS, 0).unwrap();
        assert_eq!(s, "execute hash join now");
    }

    #[test]
    fn substitute_one_none_when_no_match() {
        assert!(substitute_one("zzz qqq", SYNONYMS, 0).is_none());
    }

    #[test]
    fn pick_selects_alternative() {
        let a = substitute_one("perform it", SYNONYMS, 0).unwrap();
        let b = substitute_one("perform it", SYNONYMS, 1).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn substitute_all_hits_multiple_phrases() {
        let s = substitute_all(
            "perform sequential scan on t and filtering on (x > 1) to get the final results.",
            SYNONYMS,
            0,
        );
        assert!(!s.contains("perform sequential scan"), "{s}");
        assert!(!s.contains("to get the final results"), "{s}");
    }

    #[test]
    fn imperfect_lexicon_produces_paper_example() {
        // Table 2: "filtering" becomes "separating".
        let s = substitute_one("... and filtering on age > 10 ...", IMPERFECT, 0).unwrap();
        assert!(s.contains("separating on"), "{s}");
    }
}
