//! # lantern-paraphrase
//!
//! Synonymous-sentence generation (paper §6.3, refs \[8,9,10\]).
//!
//! The paper expands each RULE-LANTERN training sentence ~3x using
//! three web paraphrasing tools; we implement three independent
//! rule-driven engines with distinct behaviours:
//!
//! * [`SynonymParaphraser`] — conservative synonym-lexicon
//!   substitution ("perform" → "execute", "final results" →
//!   "conclusive outcome"),
//! * [`RestructureParaphraser`] — clause reordering and connective
//!   rewriting,
//! * [`AggressiveParaphraser`] — combined rewriting that occasionally
//!   picks *imperfect* words (the paper's observed "separating" for
//!   "filtering", Table 2) — deliberately, to reproduce the noisy-token
//!   phenomenon studied in Exp 5 / US 4.
//!
//! [`expand_group`] applies all three, removes duplicates, and filters
//! invalid outputs, forming the *groups* whose Self-BLEU Table 4
//! reports.

//! [`ParaphrasedTranslator`] additionally plugs the engines into the
//! unified [`lantern_core::Translator`] pipeline as an output layer
//! (the `LanternBuilder` paraphrase switch).

pub mod engines;
pub mod expand;
pub mod lexicon;
pub mod translate;

pub use engines::{AggressiveParaphraser, Paraphraser, RestructureParaphraser, SynonymParaphraser};
pub use expand::{expand_group, ExpansionStats};
pub use lexicon::SYNONYMS;
pub use translate::ParaphrasedTranslator;
