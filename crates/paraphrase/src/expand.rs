//! Group expansion (paper §6.3): apply all three tools to each
//! RULE-LANTERN sentence, collect the synonymous set, remove
//! duplicates, and filter invalid outputs — enlarging the training set
//! ~3x. The original + its variants form a *group*, the unit whose
//! Self-BLEU Table 4 measures.

use crate::engines::{
    is_valid_paraphrase, AggressiveParaphraser, Paraphraser, RestructureParaphraser,
    SynonymParaphraser,
};

/// Expansion statistics (Table 4 bookkeeping).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExpansionStats {
    /// Groups processed.
    pub groups: usize,
    /// Candidates produced by the engines before filtering.
    pub candidates: usize,
    /// Candidates dropped as duplicates.
    pub duplicates_removed: usize,
    /// Candidates dropped by the validity filter.
    pub invalid_removed: usize,
}

/// Expand one sentence into its group: `[original, variants...]`.
/// `per_engine` controls how many variant indices each engine is asked
/// for (the paper uses one output per tool → groups of ≤ 4).
pub fn expand_group(sentence: &str, per_engine: usize) -> (Vec<String>, ExpansionStats) {
    let engines: [&dyn Paraphraser; 3] = [
        &SynonymParaphraser,
        &RestructureParaphraser,
        &AggressiveParaphraser,
    ];
    let mut group = vec![sentence.to_string()];
    let mut stats = ExpansionStats {
        groups: 1,
        ..Default::default()
    };
    for engine in engines {
        for variant in 0..per_engine {
            let Some(candidate) = engine.paraphrase(sentence, variant) else {
                continue;
            };
            stats.candidates += 1;
            if group.contains(&candidate) {
                stats.duplicates_removed += 1;
                continue;
            }
            if !is_valid_paraphrase(sentence, &candidate) {
                stats.invalid_removed += 1;
                continue;
            }
            group.push(candidate);
        }
    }
    (group, stats)
}

/// Expand a whole corpus of rule sentences; returns `(groups, stats)`.
pub fn expand_corpus(
    sentences: &[String],
    per_engine: usize,
) -> (Vec<Vec<String>>, ExpansionStats) {
    let mut groups = Vec::with_capacity(sentences.len());
    let mut stats = ExpansionStats::default();
    for s in sentences {
        let (g, st) = expand_group(s, per_engine);
        stats.groups += 1;
        stats.candidates += st.candidates;
        stats.duplicates_removed += st.duplicates_removed;
        stats.invalid_removed += st.invalid_removed;
        groups.push(g);
    }
    (groups, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lantern_text::{self_bleu, tokenize, BleuConfig};

    const RULE: &str = "perform sequential scan on <T> and filtering on <F> \
                        to get the intermediate relation <TN>.";

    #[test]
    fn group_is_expanded_roughly_3x() {
        let (group, _) = expand_group(RULE, 1);
        // Paper: "we enlarge the number of training samples ... by
        // approximately 3 times" — original + up to 3 variants.
        assert!(group.len() >= 3, "{group:?}");
        assert!(group.len() <= 4);
        assert_eq!(group[0], RULE);
    }

    #[test]
    fn variants_preserve_tags() {
        let (group, _) = expand_group(RULE, 2);
        for g in &group {
            for tag in ["<T>", "<F>", "<TN>"] {
                assert!(g.contains(tag), "{g}");
            }
        }
    }

    #[test]
    fn no_duplicates_in_group() {
        let (group, _) = expand_group(RULE, 3);
        let set: std::collections::HashSet<&String> = group.iter().collect();
        assert_eq!(set.len(), group.len());
    }

    #[test]
    fn expansion_lowers_self_bleu() {
        // Table 4's headline: paraphrasing makes groups diverse
        // (Self-BLEU well below the 1.0 of an unexpanded sample).
        let (group, _) = expand_group(RULE, 1);
        let tokenized: Vec<Vec<String>> = group.iter().map(|s| tokenize(s)).collect();
        let sb = self_bleu(&tokenized, BleuConfig::default());
        assert!(sb < 0.8, "self-bleu {sb}");
        assert!(sb > 0.0);
    }

    #[test]
    fn corpus_expansion_accumulates_stats() {
        let sentences = vec![RULE.to_string(); 5];
        let (groups, stats) = expand_corpus(&sentences, 1);
        assert_eq!(groups.len(), 5);
        assert_eq!(stats.groups, 5);
        assert!(stats.candidates >= 10);
    }

    #[test]
    fn unparaphrasable_input_stays_singleton() {
        let (group, stats) = expand_group("xyzzy plugh", 1);
        assert_eq!(group.len(), 1);
        assert_eq!(stats.candidates, 0);
    }
}
