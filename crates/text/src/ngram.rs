//! N-gram counting shared by BLEU and the embedding corpora.

use std::collections::HashMap;

/// Multiset of n-grams over a token sequence.
///
/// N-grams are stored as joined strings with `\u{1}` separators, which is
/// cheap and collision-free for natural-language tokens.
#[derive(Debug, Clone, Default)]
pub struct NgramCounts {
    counts: HashMap<String, usize>,
    order: usize,
    total: usize,
}

impl NgramCounts {
    /// Count all n-grams of length `order` in `tokens`.
    pub fn new<S: AsRef<str>>(tokens: &[S], order: usize) -> Self {
        assert!(order >= 1, "n-gram order must be >= 1");
        let mut counts = HashMap::new();
        let mut total = 0;
        if tokens.len() >= order {
            for window in tokens.windows(order) {
                let key = join_key(window);
                *counts.entry(key).or_insert(0) += 1;
                total += 1;
            }
        }
        NgramCounts {
            counts,
            order,
            total,
        }
    }

    /// Number of distinct n-grams.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Total number of n-gram occurrences (`len - order + 1` for
    /// non-empty input).
    pub fn total(&self) -> usize {
        self.total
    }

    /// The n-gram order this table was built with.
    pub fn order(&self) -> usize {
        self.order
    }

    /// Count for one n-gram (joined key form).
    pub fn get(&self, key: &str) -> usize {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// Clipped-overlap count against a reference table: for each n-gram,
    /// `min(count_here, count_in_reference)` summed. This is the BLEU
    /// modified-precision numerator.
    pub fn clipped_overlap(&self, reference: &NgramCounts) -> usize {
        self.counts
            .iter()
            .map(|(k, &c)| c.min(reference.get(k)))
            .sum()
    }

    /// Clipped overlap against the *maximum* reference count over several
    /// references (multi-reference BLEU).
    pub fn clipped_overlap_multi(&self, references: &[NgramCounts]) -> usize {
        self.counts
            .iter()
            .map(|(k, &c)| {
                let max_ref = references.iter().map(|r| r.get(k)).max().unwrap_or(0);
                c.min(max_ref)
            })
            .sum()
    }

    /// Iterate `(ngram_key, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &usize)> {
        self.counts.iter()
    }
}

fn join_key<S: AsRef<str>>(window: &[S]) -> String {
    let mut key = String::new();
    for (i, t) in window.iter().enumerate() {
        if i > 0 {
            key.push('\u{1}');
        }
        key.push_str(t.as_ref());
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn unigram_counts() {
        let c = NgramCounts::new(&toks("a b a"), 1);
        assert_eq!(c.total(), 3);
        assert_eq!(c.distinct(), 2);
        assert_eq!(c.get("a"), 2);
    }

    #[test]
    fn bigram_counts() {
        let c = NgramCounts::new(&toks("a b a b"), 2);
        assert_eq!(c.total(), 3);
        assert_eq!(c.get("a\u{1}b"), 2);
        assert_eq!(c.get("b\u{1}a"), 1);
    }

    #[test]
    fn order_longer_than_sequence() {
        let c = NgramCounts::new(&toks("a b"), 4);
        assert_eq!(c.total(), 0);
        assert_eq!(c.distinct(), 0);
    }

    #[test]
    fn clipping_caps_at_reference_count() {
        let hyp = NgramCounts::new(&toks("the the the the"), 1);
        let refr = NgramCounts::new(&toks("the cat sat on the mat"), 1);
        // hypothesis has 4 "the", reference only 2 -> clipped to 2.
        assert_eq!(hyp.clipped_overlap(&refr), 2);
    }

    #[test]
    fn multi_reference_takes_max() {
        let hyp = NgramCounts::new(&toks("a a a"), 1);
        let r1 = NgramCounts::new(&toks("a"), 1);
        let r2 = NgramCounts::new(&toks("a a"), 1);
        assert_eq!(hyp.clipped_overlap_multi(&[r1, r2]), 2);
    }
}
