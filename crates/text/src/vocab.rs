//! Token vocabularies with special symbols, used by the neural pipeline
//! (QEP2Seq input/output vocabularies — the paper reports an input
//! vocabulary of 36 and an output vocabulary of 62) and by the embedding
//! trainers.

use std::collections::HashMap;

/// Index of the padding symbol (always 0).
pub const PAD: usize = 0;
/// Index of the beginning-of-sequence symbol (always 1).
pub const BOS: usize = 1;
/// Index of the end-of-sequence symbol (always 2).
pub const EOS: usize = 2;
/// Index of the unknown-token symbol (always 3).
pub const UNK: usize = 3;

/// A bidirectional token <-> id mapping with the four standard special
/// symbols pre-installed at fixed indices.
#[derive(Debug, Clone)]
pub struct Vocab {
    token_to_id: HashMap<String, usize>,
    id_to_token: Vec<String>,
}

impl Default for Vocab {
    fn default() -> Self {
        Self::new()
    }
}

impl Vocab {
    /// Create a vocabulary containing only `<PAD>`, `<BOS>`, `<END>`,
    /// `<UNK>`.
    pub fn new() -> Self {
        let mut v = Vocab {
            token_to_id: HashMap::new(),
            id_to_token: Vec::new(),
        };
        for special in ["<PAD>", "<BOS>", "<END>", "<UNK>"] {
            v.push(special);
        }
        v
    }

    /// Build a vocabulary from a corpus of token sequences, keeping
    /// tokens with frequency >= `min_count`, in frequency-then-lexical
    /// order (deterministic).
    pub fn from_corpus<S: AsRef<str>>(corpus: &[Vec<S>], min_count: usize) -> Self {
        let mut freq: HashMap<&str, usize> = HashMap::new();
        for sent in corpus {
            for tok in sent {
                *freq.entry(tok.as_ref()).or_insert(0) += 1;
            }
        }
        let mut items: Vec<(&str, usize)> =
            freq.into_iter().filter(|&(_, c)| c >= min_count).collect();
        items.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        let mut v = Vocab::new();
        for (tok, _) in items {
            v.add(tok);
        }
        v
    }

    fn push(&mut self, token: &str) -> usize {
        let id = self.id_to_token.len();
        self.id_to_token.push(token.to_string());
        self.token_to_id.insert(token.to_string(), id);
        id
    }

    /// Insert `token` if absent; return its id either way.
    pub fn add(&mut self, token: &str) -> usize {
        if let Some(&id) = self.token_to_id.get(token) {
            id
        } else {
            self.push(token)
        }
    }

    /// Id of `token`, or the `<UNK>` id if absent.
    pub fn id(&self, token: &str) -> usize {
        self.token_to_id.get(token).copied().unwrap_or(UNK)
    }

    /// Whether the exact token is known.
    pub fn contains(&self, token: &str) -> bool {
        self.token_to_id.contains_key(token)
    }

    /// Token text for `id` (panics on out-of-range ids).
    pub fn token(&self, id: usize) -> &str {
        &self.id_to_token[id]
    }

    /// Vocabulary size including the four specials.
    pub fn len(&self) -> usize {
        self.id_to_token.len()
    }

    /// True when only the specials are present.
    pub fn is_empty(&self) -> bool {
        self.len() == 4
    }

    /// Encode a token sequence (unknowns -> `<UNK>`), optionally wrapped
    /// in `<BOS>`/`<END>`.
    pub fn encode<S: AsRef<str>>(&self, tokens: &[S], wrap: bool) -> Vec<usize> {
        let mut ids = Vec::with_capacity(tokens.len() + 2);
        if wrap {
            ids.push(BOS);
        }
        ids.extend(tokens.iter().map(|t| self.id(t.as_ref())));
        if wrap {
            ids.push(EOS);
        }
        ids
    }

    /// Decode ids back to tokens, dropping specials.
    pub fn decode(&self, ids: &[usize]) -> Vec<String> {
        ids.iter()
            .filter(|&&id| id > UNK && id < self.len())
            .map(|&id| self.id_to_token[id].clone())
            .collect()
    }

    /// Iterate `(id, token)` pairs, specials included.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &str)> {
        self.id_to_token
            .iter()
            .enumerate()
            .map(|(i, t)| (i, t.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specials_at_fixed_indices() {
        let v = Vocab::new();
        assert_eq!(v.token(PAD), "<PAD>");
        assert_eq!(v.token(BOS), "<BOS>");
        assert_eq!(v.token(EOS), "<END>");
        assert_eq!(v.token(UNK), "<UNK>");
        assert_eq!(v.len(), 4);
        assert!(v.is_empty());
    }

    #[test]
    fn add_is_idempotent() {
        let mut v = Vocab::new();
        let a = v.add("scan");
        let b = v.add("scan");
        assert_eq!(a, b);
        assert_eq!(v.len(), 5);
    }

    #[test]
    fn unknown_maps_to_unk() {
        let v = Vocab::new();
        assert_eq!(v.id("never-seen"), UNK);
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut v = Vocab::new();
        for t in ["perform", "hash", "join"] {
            v.add(t);
        }
        let ids = v.encode(&["perform", "hash", "join"], true);
        assert_eq!(ids[0], BOS);
        assert_eq!(*ids.last().unwrap(), EOS);
        assert_eq!(v.decode(&ids), vec!["perform", "hash", "join"]);
    }

    #[test]
    fn from_corpus_orders_by_frequency() {
        let corpus = vec![vec!["b", "a", "a"], vec!["a", "c"]];
        let v = Vocab::from_corpus(&corpus, 1);
        // "a" appears 3x -> first non-special slot.
        assert_eq!(v.id("a"), 4);
        assert!(v.contains("b") && v.contains("c"));
    }

    #[test]
    fn from_corpus_respects_min_count() {
        let corpus = vec![vec!["x", "x", "y"]];
        let v = Vocab::from_corpus(&corpus, 2);
        assert!(v.contains("x"));
        assert!(!v.contains("y"));
        assert_eq!(v.id("y"), UNK);
    }
}
