//! Edit distances, used for the paper's Exp 5 error analysis (counting
//! wrong tokens between a neural translation and the rule-based ground
//! truth).

/// Character-level Levenshtein distance.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    generic_edit_distance(&a, &b)
}

/// Token-level edit distance: minimum number of token insertions,
/// deletions, and substitutions to turn `a` into `b`.
pub fn token_edit_distance<S: AsRef<str>, T: AsRef<str>>(a: &[S], b: &[T]) -> usize {
    let a: Vec<&str> = a.iter().map(|s| s.as_ref()).collect();
    let b: Vec<&str> = b.iter().map(|s| s.as_ref()).collect();
    generic_edit_distance(&a, &b)
}

fn generic_edit_distance<T: PartialEq>(a: &[T], b: &[T]) -> usize {
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    // Single-row DP to keep memory at O(min(n, m)).
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut row: Vec<usize> = (0..=short.len()).collect();
    for (i, lc) in long.iter().enumerate() {
        let mut prev_diag = row[0];
        row[0] = i + 1;
        for (j, sc) in short.iter().enumerate() {
            let cost = if lc == sc { 0 } else { 1 };
            let val = (prev_diag + cost).min(row[j] + 1).min(row[j + 1] + 1);
            prev_diag = row[j + 1];
            row[j + 1] = val;
        }
    }
    row[short.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_strings_distance_zero() {
        assert_eq!(levenshtein("hash join", "hash join"), 0);
    }

    #[test]
    fn classic_kitten_sitting() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
    }

    #[test]
    fn empty_vs_nonempty() {
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
    }

    #[test]
    fn token_level_substitution() {
        let a = ["perform", "sequential", "scan"];
        let b = ["perform", "index", "scan"];
        assert_eq!(token_edit_distance(&a, &b), 1);
    }

    #[test]
    fn token_level_insert_delete() {
        let a = ["perform", "scan"];
        let b = ["perform", "sequential", "scan", "now"];
        assert_eq!(token_edit_distance(&a, &b), 2);
    }

    #[test]
    fn symmetric() {
        let a = ["x", "y", "z"];
        let b = ["x", "z"];
        assert_eq!(token_edit_distance(&a, &b), token_edit_distance(&b, &a));
    }
}
