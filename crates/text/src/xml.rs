//! A minimal XML reader/writer.
//!
//! SQL Server exposes query plans as XML showplans; `lantern-plan`
//! parses that artifact into an operator tree. This module implements
//! the XML subset those documents use: elements, attributes, text
//! content, self-closing tags, comments, processing instructions, CDATA,
//! and the five predefined entities.

use std::fmt;

/// An XML element with attributes, child elements, and concatenated text
/// content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlNode {
    /// Element name (namespace prefixes are kept verbatim).
    pub name: String,
    /// Attributes in document order.
    pub attributes: Vec<(String, String)>,
    /// Child elements in document order.
    pub children: Vec<XmlNode>,
    /// Concatenated character data directly inside this element.
    pub text: String,
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset in the input where the error occurred.
    pub offset: usize,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for XmlError {}

impl XmlNode {
    /// Create an element with no attributes or children.
    pub fn new(name: impl Into<String>) -> Self {
        XmlNode {
            name: name.into(),
            attributes: Vec::new(),
            children: Vec::new(),
            text: String::new(),
        }
    }

    /// Builder-style attribute addition.
    pub fn with_attr(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.attributes.push((key.into(), value.into()));
        self
    }

    /// Builder-style child addition.
    pub fn with_child(mut self, child: XmlNode) -> Self {
        self.children.push(child);
        self
    }

    /// Attribute lookup.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// First child with the given element name (namespace-prefix
    /// insensitive: matches local name too).
    pub fn child(&self, name: &str) -> Option<&XmlNode> {
        self.children
            .iter()
            .find(|c| c.local_name() == name || c.name == name)
    }

    /// All children with the given element name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a XmlNode> + 'a {
        self.children
            .iter()
            .filter(move |c| c.local_name() == name || c.name == name)
    }

    /// Element name without namespace prefix.
    pub fn local_name(&self) -> &str {
        self.name.rsplit(':').next().unwrap_or(&self.name)
    }

    /// Parse an XML document; returns the root element. Leading XML
    /// declarations, comments, and whitespace are skipped.
    pub fn parse(input: &str) -> Result<XmlNode, XmlError> {
        let mut p = XmlParser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_misc();
        let root = p.element()?;
        p.skip_misc();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing content after root element"));
        }
        Ok(root)
    }

    /// Serialize with 2-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        for _ in 0..depth * 2 {
            out.push(' ');
        }
        out.push('<');
        out.push_str(&self.name);
        for (k, v) in &self.attributes {
            out.push(' ');
            out.push_str(k);
            out.push_str("=\"");
            escape_into(out, v);
            out.push('"');
        }
        if self.children.is_empty() && self.text.is_empty() {
            out.push_str("/>\n");
            return;
        }
        out.push('>');
        if !self.text.is_empty() {
            escape_into(out, &self.text);
        }
        if !self.children.is_empty() {
            out.push('\n');
            for child in &self.children {
                child.write(out, depth + 1);
            }
            for _ in 0..depth * 2 {
                out.push(' ');
            }
        }
        out.push_str("</");
        out.push_str(&self.name);
        out.push_str(">\n");
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            c => out.push(c),
        }
    }
}

struct XmlParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> XmlParser<'a> {
    fn err(&self, msg: &str) -> XmlError {
        XmlError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    /// Skip whitespace, XML declarations (`<?...?>`), comments, and
    /// DOCTYPEs between top-level constructs.
    fn skip_misc(&mut self) {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                self.skip_until("?>");
            } else if self.starts_with("<!--") {
                self.skip_until("-->");
            } else if self.starts_with("<!DOCTYPE") {
                self.skip_until(">");
            } else {
                return;
            }
        }
    }

    fn skip_until(&mut self, end: &str) {
        while self.pos < self.bytes.len() && !self.starts_with(end) {
            self.pos += 1;
        }
        self.pos = (self.pos + end.len()).min(self.bytes.len());
    }

    fn name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            let c = b as char;
            if c.is_alphanumeric() || matches!(c, ':' | '_' | '-' | '.') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected name"));
        }
        Ok(std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in name"))?
            .to_string())
    }

    fn element(&mut self) -> Result<XmlNode, XmlError> {
        if self.peek() != Some(b'<') {
            return Err(self.err("expected '<'"));
        }
        self.pos += 1;
        let name = self.name()?;
        let mut node = XmlNode::new(name);
        // Attributes.
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() != Some(b'>') {
                        return Err(self.err("expected '>' after '/'"));
                    }
                    self.pos += 1;
                    return Ok(node);
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let key = self.name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(self.err("expected '=' in attribute"));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let quote = self.peek();
                    if !matches!(quote, Some(b'"' | b'\'')) {
                        return Err(self.err("expected quoted attribute value"));
                    }
                    let q = quote.unwrap();
                    self.pos += 1;
                    let start = self.pos;
                    while self.peek().is_some() && self.peek() != Some(q) {
                        self.pos += 1;
                    }
                    if self.peek() != Some(q) {
                        return Err(self.err("unterminated attribute value"));
                    }
                    let raw = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in attribute"))?;
                    node.attributes.push((key, unescape(raw)));
                    self.pos += 1;
                }
                None => return Err(self.err("unexpected end of input in tag")),
            }
        }
        // Content.
        loop {
            if self.starts_with("</") {
                self.pos += 2;
                let close = self.name()?;
                if close != node.name {
                    return Err(self.err(&format!(
                        "mismatched closing tag: expected </{}>, found </{close}>",
                        node.name
                    )));
                }
                self.skip_ws();
                if self.peek() != Some(b'>') {
                    return Err(self.err("expected '>' in closing tag"));
                }
                self.pos += 1;
                return Ok(node);
            } else if self.starts_with("<!--") {
                self.skip_until("-->");
            } else if self.starts_with("<![CDATA[") {
                self.pos += 9;
                let start = self.pos;
                while self.pos < self.bytes.len() && !self.starts_with("]]>") {
                    self.pos += 1;
                }
                node.text.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in CDATA"))?,
                );
                self.skip_until("]]>");
            } else if self.starts_with("<?") {
                self.skip_until("?>");
            } else if self.peek() == Some(b'<') {
                node.children.push(self.element()?);
            } else if self.peek().is_some() {
                let start = self.pos;
                while self.peek().is_some() && self.peek() != Some(b'<') {
                    self.pos += 1;
                }
                let raw = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in text"))?;
                let unescaped = unescape(raw);
                let trimmed = unescaped.trim();
                if !trimmed.is_empty() {
                    node.text.push_str(trimmed);
                }
            } else {
                return Err(self.err("unexpected end of input in element content"));
            }
        }
    }
}

fn unescape(s: &str) -> String {
    if !s.contains('&') {
        return s.to_string();
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(idx) = rest.find('&') {
        out.push_str(&rest[..idx]);
        rest = &rest[idx..];
        let end = rest.find(';').unwrap_or(0);
        match &rest[..=end.min(rest.len() - 1)] {
            "&lt;" => {
                out.push('<');
                rest = &rest[4..];
            }
            "&gt;" => {
                out.push('>');
                rest = &rest[4..];
            }
            "&amp;" => {
                out.push('&');
                rest = &rest[5..];
            }
            "&quot;" => {
                out.push('"');
                rest = &rest[6..];
            }
            "&apos;" => {
                out.push('\'');
                rest = &rest[6..];
            }
            ent if ent.starts_with("&#") && ent.ends_with(';') => {
                let body = &ent[2..ent.len() - 1];
                let cp = if let Some(hex) = body.strip_prefix('x') {
                    u32::from_str_radix(hex, 16).ok()
                } else {
                    body.parse::<u32>().ok()
                };
                if let Some(c) = cp.and_then(char::from_u32) {
                    out.push(c);
                } else {
                    out.push('&');
                    rest = &rest[1..];
                    continue;
                }
                rest = &rest[ent.len()..];
            }
            _ => {
                out.push('&');
                rest = &rest[1..];
            }
        }
    }
    out.push_str(rest);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_element() {
        let n = XmlNode::parse("<a/>").unwrap();
        assert_eq!(n.name, "a");
        assert!(n.children.is_empty());
    }

    #[test]
    fn parses_attributes_and_children() {
        let doc = r#"<RelOp PhysicalOp="Hash Match" LogicalOp="Inner Join">
            <RelOp PhysicalOp="Table Scan" Table="orders"/>
        </RelOp>"#;
        let n = XmlNode::parse(doc).unwrap();
        assert_eq!(n.attr("PhysicalOp"), Some("Hash Match"));
        assert_eq!(n.children.len(), 1);
        assert_eq!(n.children[0].attr("Table"), Some("orders"));
    }

    #[test]
    fn skips_declaration_and_comments() {
        let doc = "<?xml version=\"1.0\"?><!-- c --><root><child/></root>";
        let n = XmlNode::parse(doc).unwrap();
        assert_eq!(n.name, "root");
        assert_eq!(n.children.len(), 1);
    }

    #[test]
    fn rejects_mismatched_tags() {
        assert!(XmlNode::parse("<a><b></a></b>").is_err());
    }

    #[test]
    fn unescapes_entities() {
        let n = XmlNode::parse("<a v=\"x &lt; y &amp; z\">a &gt; b</a>").unwrap();
        assert_eq!(n.attr("v"), Some("x < y & z"));
        assert_eq!(n.text, "a > b");
    }

    #[test]
    fn numeric_entities() {
        let n = XmlNode::parse("<a>&#65;&#x42;</a>").unwrap();
        assert_eq!(n.text, "AB");
    }

    #[test]
    fn cdata_is_text() {
        let n = XmlNode::parse("<a><![CDATA[x < y]]></a>").unwrap();
        assert_eq!(n.text, "x < y");
    }

    #[test]
    fn namespace_local_name() {
        let n = XmlNode::parse("<shp:ShowPlanXML/>").unwrap();
        assert_eq!(n.local_name(), "ShowPlanXML");
    }

    #[test]
    fn round_trip_through_pretty_printer() {
        let original = XmlNode::new("Root")
            .with_attr("a", "1 < 2")
            .with_child(XmlNode::new("Child").with_attr("x", "y"));
        let text = original.to_string_pretty();
        let reparsed = XmlNode::parse(&text).unwrap();
        assert_eq!(reparsed, original);
    }

    #[test]
    fn child_lookup_by_local_name() {
        let doc = "<r><ns:Item k=\"1\"/><Item k=\"2\"/></r>";
        let n = XmlNode::parse(doc).unwrap();
        assert_eq!(n.children_named("Item").count(), 2);
        assert_eq!(n.child("Item").unwrap().attr("k"), Some("1"));
    }
}
