//! Tokenization utilities shared by the rule-based translator, the
//! paraphrase engines, the neural pipeline, and the text metrics.
//!
//! Two granularities are provided:
//!
//! * [`tokenize`] — a lossless-ish "MT style" tokenizer that splits
//!   punctuation off words (used for BLEU and for seq2seq token streams).
//! * [`word_tokenize`] — words only, punctuation dropped (used for
//!   length statistics such as the paper's Figure 8(a)).

/// Split `text` into tokens, separating punctuation from words.
///
/// Placeholders such as `$R1$`, `<T>`, `<BOS>` and SQL-ish composites
/// such as `c_custkey`, `o.orderkey`, `'BUILDING'`, and numbers with
/// decimal points are each kept as single tokens.
///
/// ```
/// use lantern_text::tokenize;
/// assert_eq!(
///     tokenize("perform hash join on $R1$ and T1, then stop."),
///     vec!["perform", "hash", "join", "on", "$R1$", "and", "T1", ",", "then", "stop", "."]
/// );
/// ```
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = text.chars().collect();
    let n = chars.len();
    let mut i = 0;
    while i < n {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Angle-bracket tags: <T>, <BOS>, <END>, <TN> ...
        if c == '<' {
            if let Some(end) = scan_tag(&chars, i) {
                tokens.push(chars[i..=end].iter().collect());
                i = end + 1;
                continue;
            }
        }
        // Dollar placeholders: $R1$, $cond$ ...
        if c == '$' {
            if let Some(end) = scan_dollar(&chars, i) {
                tokens.push(chars[i..=end].iter().collect());
                i = end + 1;
                continue;
            }
        }
        // Quoted literal: kept verbatim including the quotes.
        if c == '\'' {
            let mut j = i + 1;
            while j < n && chars[j] != '\'' {
                j += 1;
            }
            if j < n {
                tokens.push(chars[i..=j].iter().collect());
                i = j + 1;
                continue;
            }
        }
        if is_word_char(c) {
            let mut j = i;
            while j < n && is_word_char(chars[j]) {
                j += 1;
            }
            // Allow `a.b` qualified names and decimal numbers to stay glued.
            while j < n && chars[j] == '.' && j + 1 < n && is_word_char(chars[j + 1]) {
                j += 1;
                while j < n && is_word_char(chars[j]) {
                    j += 1;
                }
            }
            tokens.push(chars[i..j].iter().collect());
            i = j;
            continue;
        }
        // Multi-char comparison operators.
        if matches!(c, '<' | '>' | '!' | '=') && i + 1 < n && chars[i + 1] == '=' {
            tokens.push(chars[i..i + 2].iter().collect());
            i += 2;
            continue;
        }
        tokens.push(c.to_string());
        i += 1;
    }
    tokens
}

fn is_word_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// If `chars[start] == '<'` begins a short alphanumeric tag (`<T>`,
/// `<BOS>`), return the index of the closing `>`.
fn scan_tag(chars: &[char], start: usize) -> Option<usize> {
    let n = chars.len();
    let mut j = start + 1;
    let mut len = 0;
    while j < n && chars[j].is_alphanumeric() && len <= 8 {
        j += 1;
        len += 1;
    }
    if len > 0 && j < n && chars[j] == '>' {
        Some(j)
    } else {
        None
    }
}

/// If `chars[start] == '$'` begins a `$name$` placeholder, return the
/// index of the closing `$`.
fn scan_dollar(chars: &[char], start: usize) -> Option<usize> {
    let n = chars.len();
    let mut j = start + 1;
    let mut len = 0;
    while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') && len <= 24 {
        j += 1;
        len += 1;
    }
    if len > 0 && j < n && chars[j] == '$' {
        Some(j)
    } else {
        None
    }
}

/// Tokenize keeping only word-like tokens (drops pure punctuation).
pub fn word_tokenize(text: &str) -> Vec<String> {
    tokenize(text)
        .into_iter()
        .filter(|t| t.chars().any(|c| c.is_alphanumeric()))
        .collect()
}

/// Reassemble tokens into a readable sentence: spaces between words, no
/// space before closing punctuation.
///
/// ```
/// use lantern_text::{detokenize, tokenize};
/// let s = "perform hash join on T1, then stop.";
/// assert_eq!(detokenize(&tokenize(s)), s);
/// ```
pub fn detokenize<S: AsRef<str>>(tokens: &[S]) -> String {
    let mut out = String::new();
    for (idx, tok) in tokens.iter().enumerate() {
        let t = tok.as_ref();
        let no_space_before = matches!(t, "," | "." | ";" | ":" | "!" | "?" | ")" | "]");
        let prev_open = idx > 0 && matches!(tokens[idx - 1].as_ref(), "(" | "[");
        if idx > 0 && !no_space_before && !prev_open {
            out.push(' ');
        }
        out.push_str(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_basic_sentence() {
        assert_eq!(
            tokenize("hash T1 and join."),
            vec!["hash", "T1", "and", "join", "."]
        );
    }

    #[test]
    fn keeps_placeholders_whole() {
        let toks = tokenize("on $R1$ with <TN> end");
        assert_eq!(toks, vec!["on", "$R1$", "with", "<TN>", "end"]);
    }

    #[test]
    fn keeps_qualified_names() {
        let toks = tokenize("i.proceeding_key = p.pub_key");
        assert_eq!(toks, vec!["i.proceeding_key", "=", "p.pub_key"]);
    }

    #[test]
    fn keeps_quoted_literals() {
        let toks = tokenize("c_mktsegment = 'BUILDING'");
        assert_eq!(toks, vec!["c_mktsegment", "=", "'BUILDING'"]);
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(tokenize("a >= 10"), vec!["a", ">=", "10"]);
        assert_eq!(tokenize("a <> b"), vec!["a", "<", ">", "b"]);
        assert_eq!(
            tokenize("count(all) > 200"),
            vec!["count", "(", "all", ")", ">", "200"]
        );
    }

    #[test]
    fn word_tokenize_drops_punct() {
        assert_eq!(word_tokenize("a, b."), vec!["a", "b"]);
    }

    #[test]
    fn detokenize_round_trips_simple_prose() {
        for s in [
            "perform sequential scan on publication.",
            "hash T1 and perform hash join on inproceedings and T1.",
            "sort T2, then aggregate.",
        ] {
            assert_eq!(detokenize(&tokenize(s)), s);
        }
    }

    #[test]
    fn empty_input() {
        assert!(tokenize("").is_empty());
        assert_eq!(detokenize(&Vec::<String>::new()), "");
    }

    #[test]
    fn lone_angle_bracket_is_not_a_tag() {
        assert_eq!(tokenize("a < b"), vec!["a", "<", "b"]);
    }

    #[test]
    fn decimal_numbers_stay_whole() {
        assert_eq!(tokenize("x = 3.14"), vec!["x", "=", "3.14"]);
    }
}
