//! BLEU [Papineni et al., ACL 2002] and Self-BLEU [Shu et al., ACL 2019]
//! as used by the paper's Table 4 (diversity of paraphrase-expanded
//! training samples) and Table 5 (test-set translation quality).

use crate::ngram::NgramCounts;

/// Configuration for BLEU scoring.
#[derive(Debug, Clone, Copy)]
pub struct BleuConfig {
    /// Maximum n-gram order (the paper, like most MT work, uses 4).
    pub max_order: usize,
    /// Add-one smoothing for zero higher-order matches (method 1 of
    /// Chen & Cherry). Keeps short-sentence scores finite.
    pub smooth: bool,
}

impl Default for BleuConfig {
    fn default() -> Self {
        BleuConfig {
            max_order: 4,
            smooth: true,
        }
    }
}

/// Sentence-level BLEU of `hypothesis` against one or more `references`
/// (token sequences). Returns a value in `[0, 1]`.
pub fn bleu<S: AsRef<str>>(hypothesis: &[S], references: &[&[S]], cfg: BleuConfig) -> f64 {
    if hypothesis.is_empty() || references.is_empty() {
        return 0.0;
    }
    let mut log_precision_sum = 0.0;
    for order in 1..=cfg.max_order {
        let hyp_counts = NgramCounts::new(hypothesis, order);
        let ref_counts: Vec<NgramCounts> = references
            .iter()
            .map(|r| NgramCounts::new(r, order))
            .collect();
        let overlap = hyp_counts.clipped_overlap_multi(&ref_counts);
        let total = hyp_counts.total();
        let (num, den) = if cfg.smooth && order > 1 {
            (overlap as f64 + 1.0, total as f64 + 1.0)
        } else {
            (overlap as f64, total as f64)
        };
        if num == 0.0 || den == 0.0 {
            return 0.0;
        }
        log_precision_sum += (num / den).ln();
    }
    let precision_geo_mean = (log_precision_sum / cfg.max_order as f64).exp();
    let hyp_len = hypothesis.len() as f64;
    // Closest reference length (ties -> shorter), per the original paper.
    let ref_len = references
        .iter()
        .map(|r| r.len())
        .min_by_key(|&l| {
            let d = (l as i64 - hypothesis.len() as i64).abs();
            (d, l)
        })
        .unwrap_or(0) as f64;
    let brevity_penalty = if hyp_len >= ref_len || ref_len == 0.0 {
        1.0
    } else {
        (1.0 - ref_len / hyp_len).exp()
    };
    brevity_penalty * precision_geo_mean
}

/// Corpus-level BLEU: aggregate clipped counts and lengths over all
/// sentence pairs, then combine (the standard corpus formulation, which
/// Table 5 averages are computed with).
pub fn corpus_bleu<S: AsRef<str>>(pairs: &[(Vec<S>, Vec<S>)], cfg: BleuConfig) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let mut log_precision_sum = 0.0;
    for order in 1..=cfg.max_order {
        let mut overlap = 0usize;
        let mut total = 0usize;
        for (hyp, refr) in pairs {
            let h = NgramCounts::new(hyp, order);
            let r = NgramCounts::new(refr, order);
            overlap += h.clipped_overlap(&r);
            total += h.total();
        }
        let (num, den) = if cfg.smooth && order > 1 {
            (overlap as f64 + 1.0, total as f64 + 1.0)
        } else {
            (overlap as f64, total as f64)
        };
        if num == 0.0 || den == 0.0 {
            return 0.0;
        }
        log_precision_sum += (num / den).ln();
    }
    let precision_geo_mean = (log_precision_sum / cfg.max_order as f64).exp();
    let hyp_len: usize = pairs.iter().map(|(h, _)| h.len()).sum();
    let ref_len: usize = pairs.iter().map(|(_, r)| r.len()).sum();
    let bp = if hyp_len >= ref_len || hyp_len == 0 {
        1.0
    } else {
        (1.0 - ref_len as f64 / hyp_len as f64).exp()
    };
    bp * precision_geo_mean
}

/// Self-BLEU of a group of sentences: for each sentence, compute BLEU
/// using all *other* sentences of the group as references; return the
/// mean. Lower means more diverse (Table 4). A singleton group scores
/// `1.0` by convention (a sentence is identical to itself; the paper's
/// "Without paraphrasing" row).
pub fn self_bleu<S: AsRef<str> + Clone>(group: &[Vec<S>], cfg: BleuConfig) -> f64 {
    if group.len() <= 1 {
        return 1.0;
    }
    let mut sum = 0.0;
    for (i, hyp) in group.iter().enumerate() {
        let refs: Vec<&[S]> = group
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, r)| r.as_slice())
            .collect();
        sum += bleu(hyp, &refs, cfg);
    }
    sum / group.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::tokenize;

    fn t(s: &str) -> Vec<String> {
        tokenize(s)
    }

    #[test]
    fn identical_sentences_score_one() {
        let s = t("perform hash join on T1 and T2 to get the final results.");
        let score = bleu(
            &s,
            &[&s[..]],
            BleuConfig {
                max_order: 4,
                smooth: false,
            },
        );
        assert!((score - 1.0).abs() < 1e-12, "got {score}");
    }

    #[test]
    fn disjoint_sentences_score_zero() {
        let a = t("alpha beta gamma delta epsilon");
        let b = t("one two three four five");
        assert_eq!(bleu(&a, &[&b[..]], BleuConfig::default()), 0.0);
    }

    #[test]
    fn partial_overlap_between_zero_and_one() {
        let hyp = t("perform sequential scan on user table now");
        let refr = t("perform sequential scan on the user table");
        let s = bleu(&hyp, &[&refr[..]], BleuConfig::default());
        assert!(s > 0.0 && s < 1.0, "got {s}");
    }

    #[test]
    fn brevity_penalty_punishes_short_hypotheses() {
        let refr = t("perform sequential scan on the user table and filter rows");
        let long = t("perform sequential scan on the user table and filter rows");
        let short = t("perform sequential scan");
        let s_long = bleu(&long, &[&refr[..]], BleuConfig::default());
        let s_short = bleu(&short, &[&refr[..]], BleuConfig::default());
        assert!(s_long > s_short);
    }

    #[test]
    fn self_bleu_of_identical_group_is_one() {
        let g = vec![t("a b c d e"), t("a b c d e")];
        let s = self_bleu(
            &g,
            BleuConfig {
                max_order: 4,
                smooth: false,
            },
        );
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn self_bleu_lower_for_diverse_group() {
        let same = vec![t("perform scan on users now today"); 3];
        let diverse = vec![
            t("perform scan on users now today"),
            t("execute a table read over users"),
            t("users is sequentially inspected row by row"),
        ];
        let s_same = self_bleu(&same, BleuConfig::default());
        let s_div = self_bleu(&diverse, BleuConfig::default());
        assert!(s_div < s_same, "{s_div} !< {s_same}");
    }

    #[test]
    fn singleton_group_scores_one() {
        let g = vec![t("only one sentence")];
        assert_eq!(self_bleu(&g, BleuConfig::default()), 1.0);
    }

    #[test]
    fn corpus_bleu_perfect_match() {
        let pairs = vec![
            (t("a b c d e"), t("a b c d e")),
            (t("f g h i j"), t("f g h i j")),
        ];
        let s = corpus_bleu(
            &pairs,
            BleuConfig {
                max_order: 4,
                smooth: false,
            },
        );
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn corpus_bleu_empty_is_zero() {
        assert_eq!(corpus_bleu::<String>(&[], BleuConfig::default()), 0.0);
    }
}
