//! A minimal JSON reader/writer.
//!
//! PostgreSQL exposes query plans as `EXPLAIN (FORMAT JSON)` documents;
//! `lantern-plan` parses that artifact into an operator tree. The
//! sanctioned offline dependency set contains `serde` but not
//! `serde_json`, so this module implements the subset of JSON needed
//! (which is in fact all of JSON) with precise error positions.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value. Objects use `BTreeMap` so output is
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<JsonValue>),
    Object(BTreeMap<String, JsonValue>),
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset in the input where the error occurred.
    pub offset: usize,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl JsonValue {
    /// Parse a JSON document.
    pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Object field access.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// String content if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric content if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Array content if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Bool content if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serialize compactly.
    pub fn to_string_compact(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, None, 0);
        s
    }

    /// Serialize with 2-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, Some(2), 0);
        s
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            JsonValue::String(s) => write_json_string(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push(']');
            }
            JsonValue::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_json_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                if !map.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("invalid literal, expected '{lit}'")))
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(JsonValue::Object(map)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(JsonValue::Array(items)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.bump() {
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'b') => s.push('\u{8}'),
                    Some(b'f') => s.push('\u{c}'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // Handle surrogate pairs.
                        if (0xD800..0xDC00).contains(&cp) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired surrogate"));
                            }
                            let low = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let c = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                            s.push(char::from_u32(c).ok_or_else(|| self.err("bad codepoint"))?);
                        } else {
                            s.push(char::from_u32(cp).ok_or_else(|| self.err("bad codepoint"))?);
                        }
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse("-3.5").unwrap(), JsonValue::Number(-3.5));
        assert_eq!(
            JsonValue::parse("\"hi\"").unwrap(),
            JsonValue::String("hi".into())
        );
    }

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"Plan": {"Node Type": "Hash Join", "Plans": [{"Node Type": "Seq Scan", "Relation Name": "orders"}]}}"#;
        let v = JsonValue::parse(doc).unwrap();
        let plan = v.get("Plan").unwrap();
        assert_eq!(plan.get("Node Type").unwrap().as_str(), Some("Hash Join"));
        let kids = plan.get("Plans").unwrap().as_array().unwrap();
        assert_eq!(
            kids[0].get("Relation Name").unwrap().as_str(),
            Some("orders")
        );
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(JsonValue::parse("{} x").is_err());
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(JsonValue::parse("\"abc").is_err());
    }

    #[test]
    fn escapes_round_trip() {
        let original = JsonValue::String("line\nquote\"backslash\\tab\t".into());
        let text = original.to_string_compact();
        assert_eq!(JsonValue::parse(&text).unwrap(), original);
    }

    #[test]
    fn unicode_escapes() {
        let v = JsonValue::parse(r#""Aé""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé"));
    }

    #[test]
    fn surrogate_pair() {
        let v = JsonValue::parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn pretty_print_round_trips() {
        let doc = r#"{"a":[1,2,{"b":true}],"c":null}"#;
        let v = JsonValue::parse(doc).unwrap();
        let pretty = v.to_string_pretty();
        assert_eq!(JsonValue::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn integers_serialize_without_fraction() {
        let v = JsonValue::Number(42.0);
        assert_eq!(v.to_string_compact(), "42");
    }

    #[test]
    fn exponent_numbers() {
        assert_eq!(JsonValue::parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(JsonValue::parse("2.5E-1").unwrap().as_f64(), Some(0.25));
    }

    #[test]
    fn empty_containers() {
        assert_eq!(JsonValue::parse("[]").unwrap(), JsonValue::Array(vec![]));
        assert_eq!(
            JsonValue::parse("{}").unwrap(),
            JsonValue::Object(Default::default())
        );
    }
}
