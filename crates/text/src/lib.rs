//! # lantern-text
//!
//! Text foundation layer for the LANTERN reproduction: tokenization,
//! vocabularies, n-gram statistics, machine-translation metrics
//! (BLEU / Self-BLEU), edit distance, and small self-contained JSON and
//! XML readers/writers.
//!
//! The JSON and XML support exists because query-plan artifacts are
//! exchanged in PostgreSQL-style JSON `EXPLAIN` output and SQL
//! Server-style XML showplans; the sanctioned offline dependency set has
//! no `serde_json`/XML crate, so this crate ships minimal, fully tested
//! implementations. The same [`JsonValue`] model renders every
//! narration-service response body (see `lantern-serve`).
//!
//! # Example
//!
//! ```
//! use lantern_text::{bleu, tokenize, BleuConfig};
//! use lantern_text::json::JsonValue;
//!
//! // Tokenize + BLEU, the metric the paper evaluates translations with:
//! let hyp = tokenize("perform hash join on t1 and t2");
//! let r = tokenize("perform hash join on t1 and t2");
//! let refs: Vec<&[String]> = vec![&r];
//! assert!((bleu(&hyp, &refs, BleuConfig::default()) - 1.0).abs() < 1e-9);
//!
//! // Deterministic JSON (sorted keys), used for plan parsing and the
//! // service wire format:
//! let v = JsonValue::parse(r#"{"b": 1, "a": [true, null]}"#).unwrap();
//! assert_eq!(v.to_string_compact(), r#"{"a":[true,null],"b":1}"#);
//! ```

pub mod bleu;
pub mod edit;
pub mod json;
pub mod ngram;
pub mod tokenize;
pub mod vocab;
pub mod xml;

pub use bleu::{bleu, corpus_bleu, self_bleu, BleuConfig};
pub use edit::{levenshtein, token_edit_distance};
pub use json::{JsonError, JsonValue};
pub use ngram::NgramCounts;
pub use tokenize::{detokenize, tokenize, word_tokenize};
pub use vocab::Vocab;
pub use xml::{XmlError, XmlNode};
