//! # lantern-text
//!
//! Text foundation layer for the LANTERN reproduction: tokenization,
//! vocabularies, n-gram statistics, machine-translation metrics
//! (BLEU / Self-BLEU), edit distance, and small self-contained JSON and
//! XML readers/writers.
//!
//! The JSON and XML support exists because query-plan artifacts are
//! exchanged in PostgreSQL-style JSON `EXPLAIN` output and SQL
//! Server-style XML showplans; the sanctioned offline dependency set has
//! no `serde_json`/XML crate, so this crate ships minimal, fully tested
//! implementations.

pub mod bleu;
pub mod edit;
pub mod json;
pub mod ngram;
pub mod tokenize;
pub mod vocab;
pub mod xml;

pub use bleu::{bleu, corpus_bleu, self_bleu, BleuConfig};
pub use edit::{levenshtein, token_edit_distance};
pub use json::{JsonError, JsonValue};
pub use ngram::NgramCounts;
pub use tokenize::{detokenize, tokenize, word_tokenize};
pub use vocab::Vocab;
pub use xml::{XmlError, XmlNode};
