//! Logical plan extraction: classify a resolved query into per-relation
//! filters, equi-join predicates, residual predicates, and the
//! post-join pipeline (aggregation, distinct, ordering, limit).

use lantern_catalog::Catalog;
use lantern_sql::resolve::ResolvedQuery;
use lantern_sql::{resolve, BinaryOp, Expr, Query, SelectItem, SqlError};

/// A base relation participating in the query.
#[derive(Debug, Clone)]
pub struct BaseRel {
    /// Visible (possibly aliased) name.
    pub visible: String,
    /// Catalog table name.
    pub table: String,
    /// Single-table filter conjuncts.
    pub filters: Vec<Expr>,
}

/// An equi-join predicate between two base relations.
#[derive(Debug, Clone)]
pub struct JoinPred {
    /// Visible name of the left relation.
    pub left_rel: String,
    /// Left column name.
    pub left_col: String,
    /// Visible name of the right relation.
    pub right_rel: String,
    /// Right column name.
    pub right_col: String,
}

impl JoinPred {
    /// Condition text in the paper's rendering style:
    /// `((i.proceeding_key) = (p.pub_key))`.
    pub fn condition_text(&self) -> String {
        format!(
            "(({}.{}) = ({}.{}))",
            self.left_rel, self.left_col, self.right_rel, self.right_col
        )
    }

    /// Does this predicate connect the two given relation sets?
    pub fn connects(&self, a: &[String], b: &[String]) -> bool {
        (a.contains(&self.left_rel) && b.contains(&self.right_rel))
            || (a.contains(&self.right_rel) && b.contains(&self.left_rel))
    }
}

/// The logical plan the physical planner optimizes.
#[derive(Debug, Clone)]
pub struct LogicalPlan {
    /// The resolved query (AST + bindings).
    pub resolved: ResolvedQuery,
    /// Base relations in FROM order.
    pub relations: Vec<BaseRel>,
    /// Equi-join predicates.
    pub joins: Vec<JoinPred>,
    /// WHERE conjuncts that are neither single-table nor binary
    /// equi-joins (applied after all joins).
    pub residual: Vec<Expr>,
}

impl LogicalPlan {
    /// Build the logical plan for `query` against `catalog`.
    pub fn build(query: &Query, catalog: &Catalog) -> Result<LogicalPlan, SqlError> {
        let resolved = resolve(query, catalog)?;
        let mut relations: Vec<BaseRel> = resolved
            .table_order
            .iter()
            .map(|visible| BaseRel {
                visible: visible.clone(),
                table: resolved.tables[visible].clone(),
                filters: Vec::new(),
            })
            .collect();
        let mut joins = Vec::new();
        let mut residual = Vec::new();

        // Conjuncts come from WHERE plus explicit JOIN ... ON clauses.
        let mut conjuncts: Vec<Expr> = Vec::new();
        if let Some(w) = &query.where_clause {
            conjuncts.extend(w.conjuncts().into_iter().cloned());
        }
        for j in &query.joins {
            conjuncts.extend(j.on.conjuncts().into_iter().cloned());
        }

        for c in conjuncts {
            match classify(&c, &resolved, catalog) {
                Classified::SingleTable(visible) => {
                    relations
                        .iter_mut()
                        .find(|r| r.visible == visible)
                        .expect("classified table must exist")
                        .filters
                        .push(c);
                }
                Classified::EquiJoin(jp) => joins.push(jp),
                Classified::Residual => residual.push(c),
            }
        }
        Ok(LogicalPlan {
            resolved,
            relations,
            joins,
            residual,
        })
    }

    /// The select-list expressions (wildcards expanded to nothing here;
    /// the executor handles `*`).
    pub fn select_exprs(&self) -> Vec<&Expr> {
        self.resolved
            .query
            .select
            .iter()
            .filter_map(|s| match s {
                SelectItem::Expr { expr, .. } => Some(expr),
                SelectItem::Wildcard => None,
            })
            .collect()
    }
}

enum Classified {
    SingleTable(String),
    EquiJoin(JoinPred),
    Residual,
}

fn classify(expr: &Expr, resolved: &ResolvedQuery, catalog: &Catalog) -> Classified {
    // Binary equi-join: col = col across two distinct relations.
    if let Expr::Binary {
        op: BinaryOp::Eq,
        left,
        right,
    } = expr
    {
        if let (
            Expr::Column {
                qualifier: lq,
                name: ln,
            },
            Expr::Column {
                qualifier: rq,
                name: rn,
            },
        ) = (left.as_ref(), right.as_ref())
        {
            let lr = resolved.resolve_column(catalog, lq, ln);
            let rr = resolved.resolve_column(catalog, rq, rn);
            if let (Ok(l), Ok(r)) = (lr, rr) {
                if l.table_visible != r.table_visible {
                    return Classified::EquiJoin(JoinPred {
                        left_rel: l.table_visible,
                        left_col: l.column,
                        right_rel: r.table_visible,
                        right_col: r.column,
                    });
                }
            }
        }
    }
    // Single-table if all columns bind to one visible relation.
    let cols = expr.columns();
    if cols.is_empty() {
        return Classified::Residual;
    }
    let mut owner: Option<String> = None;
    for (q, n) in cols {
        match resolved.resolve_column(catalog, q, n) {
            Ok(rc) => match &owner {
                None => owner = Some(rc.table_visible),
                Some(o) if *o == rc.table_visible => {}
                Some(_) => return Classified::Residual,
            },
            Err(_) => return Classified::Residual,
        }
    }
    Classified::SingleTable(owner.expect("nonempty cols"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lantern_catalog::{dblp_catalog, tpch_catalog};
    use lantern_sql::parse_sql;

    #[test]
    fn classifies_paper_example() {
        let cat = dblp_catalog();
        let q = parse_sql(
            "SELECT DISTINCT(I.proceeding_key) FROM inproceedings I, publication P \
             WHERE I.proceeding_key = P.pub_key AND P.title LIKE '%July%' \
             GROUP BY I.proceeding_key HAVING COUNT(*) > 200",
        )
        .unwrap();
        let lp = LogicalPlan::build(&q, &cat).unwrap();
        assert_eq!(lp.relations.len(), 2);
        assert_eq!(lp.joins.len(), 1);
        assert_eq!(
            lp.joins[0].condition_text(),
            "((I.proceeding_key) = (P.pub_key))"
        );
        let p = lp.relations.iter().find(|r| r.visible == "P").unwrap();
        assert_eq!(p.filters.len(), 1);
        assert!(lp.residual.is_empty());
    }

    #[test]
    fn explicit_join_on_contributes_predicates() {
        let cat = tpch_catalog();
        let q = parse_sql(
            "SELECT c.c_name FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey \
             WHERE o.o_totalprice > 1000",
        )
        .unwrap();
        let lp = LogicalPlan::build(&q, &cat).unwrap();
        assert_eq!(lp.joins.len(), 1);
        let o = lp.relations.iter().find(|r| r.visible == "o").unwrap();
        assert_eq!(o.filters.len(), 1);
    }

    #[test]
    fn cross_table_inequality_is_residual() {
        let cat = tpch_catalog();
        let q = parse_sql(
            "SELECT 1 FROM orders o, customer c WHERE o.o_custkey = c.c_custkey \
             AND o.o_totalprice > c.c_acctbal",
        )
        .unwrap();
        let lp = LogicalPlan::build(&q, &cat).unwrap();
        assert_eq!(lp.joins.len(), 1);
        assert_eq!(lp.residual.len(), 1);
    }

    #[test]
    fn same_table_eq_is_filter_not_join() {
        let cat = tpch_catalog();
        let q = parse_sql("SELECT 1 FROM lineitem l WHERE l.l_commitdate = l.l_shipdate").unwrap();
        let lp = LogicalPlan::build(&q, &cat).unwrap();
        assert!(lp.joins.is_empty());
        assert_eq!(lp.relations[0].filters.len(), 1);
    }

    #[test]
    fn join_pred_connects() {
        let jp = JoinPred {
            left_rel: "a".into(),
            left_col: "x".into(),
            right_rel: "b".into(),
            right_col: "y".into(),
        };
        assert!(jp.connects(&["a".into()], &["b".into()]));
        assert!(jp.connects(&["b".into()], &["a".into()]));
        assert!(!jp.connects(&["a".into()], &["c".into()]));
    }

    #[test]
    fn constant_predicate_is_residual() {
        let cat = tpch_catalog();
        let q = parse_sql("SELECT 1 FROM orders WHERE 1 = 1").unwrap();
        let lp = LogicalPlan::build(&q, &cat).unwrap();
        assert_eq!(lp.residual.len(), 1);
    }
}
