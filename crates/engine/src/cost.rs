//! Selectivity estimation and cost formulas — a compact PostgreSQL-style
//! cost model over `lantern-catalog` statistics.

use crate::database::Database;
use lantern_catalog::{ColumnStats, Value};
use lantern_sql::{BinaryOp, Expr, UnaryOp};

/// Cost-model constants (relative units, shaped like PostgreSQL's
/// `seq_page_cost`/`cpu_tuple_cost` family).
pub mod consts {
    /// Per-tuple cost of a sequential scan.
    pub const SEQ_TUPLE: f64 = 1.0;
    /// Per-tuple cost of an index lookup (includes traversal
    /// amortization).
    pub const INDEX_TUPLE: f64 = 2.0;
    /// Index scan fixed startup.
    pub const INDEX_STARTUP: f64 = 10.0;
    /// Per-tuple cost of building a hash table.
    pub const HASH_BUILD: f64 = 1.5;
    /// Per-tuple cost of probing a hash table.
    pub const HASH_PROBE: f64 = 0.5;
    /// Per-comparison cost during sorting.
    pub const SORT_CMP: f64 = 0.3;
    /// Per-tuple cost of a merge pass.
    pub const MERGE_TUPLE: f64 = 0.4;
    /// Per output-candidate cost for nested loops.
    pub const NL_TUPLE: f64 = 0.25;
    /// Per-tuple aggregation cost.
    pub const AGG_TUPLE: f64 = 0.6;
}

/// Estimate the selectivity of a single-table predicate against the
/// column statistics of `table` in `db`. Falls back to conservative
/// defaults when the expression shape is unsupported.
pub fn predicate_selectivity(db: &Database, table: &str, expr: &Expr) -> f64 {
    let Some(stats) = db.table_stats(table) else {
        return 0.33;
    };
    let Some(schema) = db.catalog().table(table) else {
        return 0.33;
    };
    let col_stats = |name: &str| -> Option<&ColumnStats> {
        schema.column_index(name).map(|i| &stats.columns[i])
    };
    selectivity_inner(expr, &col_stats)
}

fn selectivity_inner<'a>(expr: &Expr, col_stats: &impl Fn(&str) -> Option<&'a ColumnStats>) -> f64 {
    match expr {
        Expr::Binary { op, left, right } => match op {
            BinaryOp::And => {
                selectivity_inner(left, col_stats) * selectivity_inner(right, col_stats)
            }
            BinaryOp::Or => {
                let a = selectivity_inner(left, col_stats);
                let b = selectivity_inner(right, col_stats);
                (a + b - a * b).clamp(0.0, 1.0)
            }
            BinaryOp::Like => 0.1,
            op if op.is_comparison() => {
                // Normalize to col <op> literal.
                let (col, lit, op) = match (left.as_ref(), right.as_ref()) {
                    (Expr::Column { name, .. }, lit) if literal_value(lit).is_some() => {
                        (name.as_str(), literal_value(lit).unwrap(), *op)
                    }
                    (lit, Expr::Column { name, .. }) if literal_value(lit).is_some() => {
                        (name.as_str(), literal_value(lit).unwrap(), flip(*op))
                    }
                    _ => return 0.33,
                };
                let Some(cs) = col_stats(col) else {
                    return 0.33;
                };
                match op {
                    BinaryOp::Eq => cs.eq_selectivity(&lit),
                    BinaryOp::NotEq => (1.0 - cs.eq_selectivity(&lit)).max(0.0),
                    BinaryOp::Lt | BinaryOp::LtEq => cs.lt_selectivity(&lit),
                    BinaryOp::Gt | BinaryOp::GtEq => cs.gt_selectivity(&lit),
                    _ => 0.33,
                }
            }
            _ => 0.33,
        },
        Expr::Unary {
            op: UnaryOp::Not,
            expr,
        } => (1.0 - selectivity_inner(expr, col_stats)).clamp(0.0, 1.0),
        Expr::Unary {
            op: UnaryOp::IsNull,
            expr,
        } => match expr.as_ref() {
            Expr::Column { name, .. } => col_stats(name).map(|c| c.null_fraction).unwrap_or(0.05),
            _ => 0.05,
        },
        Expr::Unary {
            op: UnaryOp::IsNotNull,
            expr,
        } => match expr.as_ref() {
            Expr::Column { name, .. } => col_stats(name)
                .map(|c| 1.0 - c.null_fraction)
                .unwrap_or(0.95),
            _ => 0.95,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let base = match expr.as_ref() {
                Expr::Column { name, .. } => {
                    let Some(cs) = col_stats(name) else {
                        return 0.33;
                    };
                    list.iter()
                        .filter_map(literal_value)
                        .map(|v| cs.eq_selectivity(&v))
                        .sum::<f64>()
                        .clamp(0.0, 1.0)
                }
                _ => 0.33,
            };
            if *negated {
                (1.0 - base).clamp(0.0, 1.0)
            } else {
                base
            }
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let base = match expr.as_ref() {
                Expr::Column { name, .. } => {
                    let Some(cs) = col_stats(name) else {
                        return 0.25;
                    };
                    match (literal_value(low), literal_value(high)) {
                        (Some(lo), Some(hi)) => {
                            (cs.lt_selectivity(&hi) - cs.lt_selectivity(&lo)).max(0.0)
                        }
                        _ => 0.25,
                    }
                }
                _ => 0.25,
            };
            if *negated {
                (1.0 - base).clamp(0.0, 1.0)
            } else {
                base
            }
        }
        Expr::BoolLit(true) => 1.0,
        Expr::BoolLit(false) => 0.0,
        _ => 0.33,
    }
}

fn flip(op: BinaryOp) -> BinaryOp {
    match op {
        BinaryOp::Lt => BinaryOp::Gt,
        BinaryOp::LtEq => BinaryOp::GtEq,
        BinaryOp::Gt => BinaryOp::Lt,
        BinaryOp::GtEq => BinaryOp::LtEq,
        other => other,
    }
}

/// Literal AST node -> runtime value.
pub fn literal_value(expr: &Expr) -> Option<Value> {
    match expr {
        Expr::IntLit(i) => Some(Value::Int(*i)),
        Expr::FloatLit(x) => Some(Value::Float(*x)),
        Expr::StrLit(s) => Some(Value::Str(s.clone())),
        Expr::BoolLit(b) => Some(Value::Bool(*b)),
        Expr::Null => Some(Value::Null),
        Expr::Unary {
            op: UnaryOp::Neg,
            expr,
        } => match literal_value(expr)? {
            Value::Int(i) => Some(Value::Int(-i)),
            Value::Float(f) => Some(Value::Float(-f)),
            _ => None,
        },
        _ => None,
    }
}

/// Join output cardinality estimate: `|L| * |R| / max(ndv_l, ndv_r)`
/// (the classic System-R formula).
pub fn join_cardinality(left_rows: f64, right_rows: f64, ndv_left: f64, ndv_right: f64) -> f64 {
    let d = ndv_left.max(ndv_right).max(1.0);
    (left_rows * right_rows / d).max(1.0)
}

/// Cost of sorting `rows` tuples.
pub fn sort_cost(rows: f64) -> f64 {
    let r = rows.max(2.0);
    consts::SORT_CMP * r * r.log2()
}

/// Cost of a hash join given input cardinalities (build on the right).
pub fn hash_join_cost(left_rows: f64, right_rows: f64) -> f64 {
    consts::HASH_BUILD * right_rows + consts::HASH_PROBE * left_rows
}

/// Cost of a merge join given input cardinalities and whether each
/// side still needs sorting.
pub fn merge_join_cost(left_rows: f64, right_rows: f64, sort_left: bool, sort_right: bool) -> f64 {
    let mut c = consts::MERGE_TUPLE * (left_rows + right_rows);
    if sort_left {
        c += sort_cost(left_rows);
    }
    if sort_right {
        c += sort_cost(right_rows);
    }
    c
}

/// Cost of a nested-loop join; `inner_indexed` models an index lookup
/// per outer tuple instead of a full inner rescan.
pub fn nested_loop_cost(outer_rows: f64, inner_rows: f64, inner_indexed: bool) -> f64 {
    if inner_indexed {
        outer_rows * (consts::INDEX_TUPLE + inner_rows.max(2.0).log2() * 0.1)
    } else {
        consts::NL_TUPLE * outer_rows * inner_rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lantern_catalog::tpch_catalog;
    use lantern_sql::parse_sql;

    fn db() -> Database {
        Database::generate(&tpch_catalog(), 0.0005, 42)
    }

    fn where_expr(sql: &str) -> Expr {
        parse_sql(sql).unwrap().where_clause.unwrap()
    }

    #[test]
    fn eq_on_categorical_is_about_one_over_k() {
        let db = db();
        let e = where_expr("SELECT 1 FROM orders WHERE o_orderstatus = 'F'");
        let s = predicate_selectivity(&db, "orders", &e);
        assert!((0.15..0.6).contains(&s), "{s}"); // 3 statuses
    }

    #[test]
    fn range_on_serial_key() {
        let db = db();
        let rows = db.row_count("orders") as i64;
        let e = where_expr(&format!(
            "SELECT 1 FROM orders WHERE o_orderkey < {}",
            rows / 10
        ));
        let s = predicate_selectivity(&db, "orders", &e);
        assert!((0.02..0.25).contains(&s), "{s}");
    }

    #[test]
    fn and_multiplies_or_adds() {
        let db = db();
        let a = where_expr("SELECT 1 FROM orders WHERE o_orderstatus = 'F'");
        let both =
            where_expr("SELECT 1 FROM orders WHERE o_orderstatus = 'F' AND o_orderstatus = 'O'");
        let either =
            where_expr("SELECT 1 FROM orders WHERE o_orderstatus = 'F' OR o_orderstatus = 'O'");
        let sa = predicate_selectivity(&db, "orders", &a);
        let sand = predicate_selectivity(&db, "orders", &both);
        let sor = predicate_selectivity(&db, "orders", &either);
        assert!(sand < sa);
        assert!(sor > sa);
    }

    #[test]
    fn flipped_literal_comparison() {
        let db = db();
        let e = where_expr("SELECT 1 FROM part WHERE 10 > p_size");
        // Equivalent to p_size < 10 out of 1..50.
        let s = predicate_selectivity(&db, "part", &e);
        assert!((0.05..0.4).contains(&s), "{s}");
    }

    #[test]
    fn join_cardinality_formula() {
        assert_eq!(join_cardinality(1000.0, 100.0, 100.0, 50.0), 1000.0);
        assert!(join_cardinality(0.0, 0.0, 0.0, 0.0) >= 1.0);
    }

    #[test]
    fn cost_functions_monotone_in_rows() {
        assert!(sort_cost(1000.0) > sort_cost(100.0));
        assert!(hash_join_cost(1000.0, 100.0) > hash_join_cost(100.0, 100.0));
        assert!(nested_loop_cost(100.0, 100.0, false) > nested_loop_cost(100.0, 100.0, true));
        assert!(
            merge_join_cost(500.0, 500.0, true, true) > merge_join_cost(500.0, 500.0, false, false)
        );
    }

    #[test]
    fn literal_values() {
        assert_eq!(literal_value(&Expr::IntLit(3)), Some(Value::Int(3)));
        assert_eq!(
            literal_value(&Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(Expr::IntLit(3))
            }),
            Some(Value::Int(-3))
        );
        assert_eq!(literal_value(&Expr::col(None, "x")), None);
    }
}
