//! An in-memory database instance: a catalog plus generated data and
//! the statistics the cost-based planner consumes.

use lantern_catalog::{datagen, Catalog, TableData, TableStats};

/// A generated database instance.
#[derive(Debug, Clone)]
pub struct Database {
    catalog: Catalog,
    data: Vec<TableData>,
    stats: Vec<TableStats>,
}

impl Database {
    /// Generate a database from `catalog` at `scale` (fraction of the
    /// benchmark base cardinality), deterministically from `seed`, and
    /// analyze statistics (8 MCVs, 20 histogram buckets).
    pub fn generate(catalog: &Catalog, scale: f64, seed: u64) -> Self {
        let data = datagen::generate(catalog, scale, seed);
        let stats = data.iter().map(|t| TableStats::analyze(t, 8, 20)).collect();
        Database {
            catalog: catalog.clone(),
            data,
            stats,
        }
    }

    /// The schema.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Generated data for `table`.
    pub fn table_data(&self, table: &str) -> Option<&TableData> {
        self.data.iter().find(|t| t.name == table)
    }

    /// Statistics for `table`.
    pub fn table_stats(&self, table: &str) -> Option<&TableStats> {
        self.stats.iter().find(|t| t.name == table)
    }

    /// Row count of `table` (0 when unknown).
    pub fn row_count(&self, table: &str) -> usize {
        self.table_stats(table).map(|s| s.rows).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lantern_catalog::dblp_catalog;

    #[test]
    fn generate_builds_stats_for_all_tables() {
        let db = Database::generate(&dblp_catalog(), 0.0003, 7);
        assert!(db.table_data("publication").is_some());
        assert!(db.table_stats("inproceedings").is_some());
        assert_eq!(
            db.row_count("publication"),
            db.table_data("publication").unwrap().rows
        );
    }

    #[test]
    fn unknown_table_is_none() {
        let db = Database::generate(&dblp_catalog(), 0.0003, 7);
        assert!(db.table_data("nope").is_none());
        assert_eq!(db.row_count("nope"), 0);
    }
}
