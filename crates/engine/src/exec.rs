//! A materializing (volcano-flavoured) executor for physical plans.
//!
//! Execution exists so the substrate is a *real* database — workload
//! queries actually run, the query generator can sample actual values,
//! and tests can cross-check planner output against brute-force
//! evaluation.

use crate::database::Database;
use crate::physical::{AggStrategy, PhysicalPlan, RelOp};
use lantern_catalog::Value;
use lantern_sql::{AggFunc, BinaryOp, Expr, SelectItem, UnaryOp};
use std::collections::HashMap;
use std::fmt;

/// Execution error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError {
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "execution error: {}", self.message)
    }
}

impl std::error::Error for ExecError {}

fn err(msg: impl Into<String>) -> ExecError {
    ExecError {
        message: msg.into(),
    }
}

/// A materialized query result.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Output column names (aliases when given).
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
}

/// One schema slot of an intermediate relation.
#[derive(Debug, Clone, PartialEq, Eq)]
enum SchemaCol {
    /// A base column visible as `visible.name`.
    Col { visible: String, name: String },
    /// A derived value addressed by its expression display text
    /// (aggregate results and computed group keys).
    Derived(String),
}

type Row = Vec<Value>;
type Schema = Vec<SchemaCol>;

/// Execute a physical plan against a database.
pub fn execute(plan: &PhysicalPlan, db: &Database) -> Result<QueryResult, ExecError> {
    let (mut rows, mut schema) = exec_rel(&plan.join_root, db)?;

    if let Some(agg) = &plan.agg {
        let (r, s) = aggregate(plan, agg.group.clone(), agg.having.as_ref(), rows, &schema)?;
        rows = r;
        schema = s;
        // Sorted aggregates produce group-key order.
        if agg.strategy == AggStrategy::Sorted && !agg.group.is_empty() {
            let keys: Vec<(Expr, bool)> = agg.group.iter().map(|g| (g.clone(), false)).collect();
            sort_rows(&mut rows, &schema, &keys)?;
        }
    }

    if !plan.order_by.is_empty() {
        let keys: Vec<(Expr, bool)> = plan
            .order_by
            .iter()
            .map(|(e, d)| (substitute_alias(e, &plan.select), *d))
            .collect();
        sort_rows(&mut rows, &schema, &keys)?;
    }

    // Projection.
    let mut columns = Vec::new();
    let mut proj: Vec<Row> = Vec::with_capacity(rows.len());
    let mut items: Vec<(Option<String>, Expr)> = Vec::new();
    for item in &plan.select {
        match item {
            SelectItem::Wildcard => {
                for sc in &schema {
                    if let SchemaCol::Col { visible, name } = sc {
                        columns.push(name.clone());
                        items.push((None, Expr::col(Some(visible), name)));
                    }
                }
            }
            SelectItem::Expr { expr, alias } => {
                columns.push(alias.clone().unwrap_or_else(|| expr.to_string()));
                items.push((alias.clone(), expr.clone()));
            }
        }
    }
    for row in &rows {
        let mut out = Vec::with_capacity(items.len());
        for (_, expr) in &items {
            out.push(eval(expr, row, &schema)?);
        }
        proj.push(out);
    }

    if plan.distinct.is_some() {
        let mut seen = std::collections::HashSet::new();
        proj.retain(|r| seen.insert(r.clone()));
    }
    if let Some(l) = plan.limit {
        proj.truncate(l as usize);
    }
    Ok(QueryResult {
        columns,
        rows: proj,
    })
}

/// Replace a bare column that names a select alias with the aliased
/// expression (`ORDER BY revenue`).
fn substitute_alias(expr: &Expr, select: &[SelectItem]) -> Expr {
    if let Expr::Column {
        qualifier: None,
        name,
    } = expr
    {
        for item in select {
            if let SelectItem::Expr {
                expr: e,
                alias: Some(a),
            } = item
            {
                if a == name {
                    return e.clone();
                }
            }
        }
    }
    expr.clone()
}

fn sort_rows(rows: &mut [Row], schema: &Schema, keys: &[(Expr, bool)]) -> Result<(), ExecError> {
    // Pre-validate on the first row so errors surface.
    if let Some(first) = rows.first() {
        for (e, _) in keys {
            eval(e, first, schema)?;
        }
    }
    rows.sort_by(|a, b| {
        for (e, desc) in keys {
            let va = eval(e, a, schema).unwrap_or(Value::Null);
            let vb = eval(e, b, schema).unwrap_or(Value::Null);
            let ord = va.total_cmp(&vb);
            if ord != std::cmp::Ordering::Equal {
                return if *desc { ord.reverse() } else { ord };
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(())
}

fn exec_rel(op: &RelOp, db: &Database) -> Result<(Vec<Row>, Schema), ExecError> {
    match op {
        RelOp::SeqScan {
            visible,
            table,
            filters,
            ..
        }
        | RelOp::IndexScan {
            visible,
            table,
            filters,
            ..
        } => {
            let data = db
                .table_data(table)
                .ok_or_else(|| err(format!("no data for table {table}")))?;
            let cat_table = db
                .catalog()
                .table(table)
                .ok_or_else(|| err(format!("no catalog entry for {table}")))?;
            let schema: Schema = cat_table
                .columns
                .iter()
                .map(|c| SchemaCol::Col {
                    visible: visible.clone(),
                    name: c.name.clone(),
                })
                .collect();
            let mut rows = Vec::new();
            'outer: for i in 0..data.rows {
                let row = data.row(i);
                for f in filters {
                    if !eval_pred(f, &row, &schema)? {
                        continue 'outer;
                    }
                }
                rows.push(row);
            }
            Ok((rows, schema))
        }
        RelOp::HashJoin {
            probe,
            build,
            pred,
            residual,
            ..
        } => {
            let (probe_rows, probe_schema) = exec_rel(probe, db)?;
            let (build_rows, build_schema) = exec_rel(build, db)?;
            let probe_key = col_index(&probe_schema, &pred.left_rel, &pred.left_col)
                .ok_or_else(|| err(format!("probe key {}.{}", pred.left_rel, pred.left_col)))?;
            let build_key = col_index(&build_schema, &pred.right_rel, &pred.right_col)
                .ok_or_else(|| err(format!("build key {}.{}", pred.right_rel, pred.right_col)))?;
            let mut table: HashMap<Value, Vec<&Row>> = HashMap::new();
            for r in &build_rows {
                if !r[build_key].is_null() {
                    table.entry(r[build_key].clone()).or_default().push(r);
                }
            }
            let schema: Schema = probe_schema
                .iter()
                .chain(build_schema.iter())
                .cloned()
                .collect();
            let mut out = Vec::new();
            for p in &probe_rows {
                if p[probe_key].is_null() {
                    continue;
                }
                if let Some(matches) = table.get(&p[probe_key]) {
                    for m in matches {
                        let mut row = p.clone();
                        row.extend((*m).clone());
                        if passes_residual(residual, &row, &schema)? {
                            out.push(row);
                        }
                    }
                }
            }
            Ok((out, schema))
        }
        RelOp::MergeJoin {
            left,
            right,
            pred,
            residual,
            ..
        } => {
            let (mut lrows, lschema) = exec_rel(left, db)?;
            let (mut rrows, rschema) = exec_rel(right, db)?;
            let lk = col_index(&lschema, &pred.left_rel, &pred.left_col)
                .ok_or_else(|| err(format!("merge key {}.{}", pred.left_rel, pred.left_col)))?;
            let rk = col_index(&rschema, &pred.right_rel, &pred.right_col)
                .ok_or_else(|| err(format!("merge key {}.{}", pred.right_rel, pred.right_col)))?;
            lrows.sort_by(|a, b| a[lk].total_cmp(&b[lk]));
            rrows.sort_by(|a, b| a[rk].total_cmp(&b[rk]));
            let schema: Schema = lschema.iter().chain(rschema.iter()).cloned().collect();
            let mut out = Vec::new();
            let (mut i, mut j) = (0usize, 0usize);
            while i < lrows.len() && j < rrows.len() {
                let lv = &lrows[i][lk];
                let rv = &rrows[j][rk];
                if lv.is_null() {
                    i += 1;
                    continue;
                }
                if rv.is_null() {
                    j += 1;
                    continue;
                }
                match lv.total_cmp(rv) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        // Emit the cross product of the equal-key runs.
                        let mut j_end = j;
                        while j_end < rrows.len() && rrows[j_end][rk].total_cmp(lv).is_eq() {
                            j_end += 1;
                        }
                        let mut i_end = i;
                        while i_end < lrows.len() && lrows[i_end][lk].total_cmp(lv).is_eq() {
                            i_end += 1;
                        }
                        for lrow in &lrows[i..i_end] {
                            for rrow in &rrows[j..j_end] {
                                let mut row = lrow.clone();
                                row.extend(rrow.iter().cloned());
                                if passes_residual(residual, &row, &schema)? {
                                    out.push(row);
                                }
                            }
                        }
                        i = i_end;
                        j = j_end;
                    }
                }
            }
            Ok((out, schema))
        }
        RelOp::NestedLoop {
            outer,
            inner,
            pred,
            residual,
            ..
        } => {
            let (orows, oschema) = exec_rel(outer, db)?;
            let (irows, ischema) = exec_rel(inner, db)?;
            let schema: Schema = oschema.iter().chain(ischema.iter()).cloned().collect();
            let key_pair = match pred {
                Some(p) => Some((
                    col_index(&oschema, &p.left_rel, &p.left_col)
                        .ok_or_else(|| err("nested loop outer key"))?,
                    col_index(&ischema, &p.right_rel, &p.right_col)
                        .ok_or_else(|| err("nested loop inner key"))?,
                )),
                None => None,
            };
            let mut out = Vec::new();
            for o in &orows {
                for irow in &irows {
                    if let Some((ok, ik)) = key_pair {
                        if !o[ok].sql_eq(&irow[ik]) {
                            continue;
                        }
                    }
                    let mut row = o.clone();
                    row.extend(irow.clone());
                    if passes_residual(residual, &row, &schema)? {
                        out.push(row);
                    }
                }
            }
            Ok((out, schema))
        }
    }
}

fn passes_residual(residual: &[Expr], row: &Row, schema: &Schema) -> Result<bool, ExecError> {
    for r in residual {
        if !eval_pred(r, row, schema)? {
            return Ok(false);
        }
    }
    Ok(true)
}

fn col_index(schema: &Schema, visible: &str, name: &str) -> Option<usize> {
    schema.iter().position(|c| match c {
        SchemaCol::Col {
            visible: v,
            name: n,
        } => v.eq_ignore_ascii_case(visible) && n == name,
        _ => false,
    })
}

/// Group + aggregate. Output schema = group exprs (base columns kept as
/// `Col`, computed keys as `Derived`) followed by one `Derived` slot per
/// distinct aggregate expression found in SELECT/HAVING/ORDER BY.
fn aggregate(
    plan: &PhysicalPlan,
    group: Vec<Expr>,
    having: Option<&Expr>,
    rows: Vec<Row>,
    schema: &Schema,
) -> Result<(Vec<Row>, Schema), ExecError> {
    // Collect distinct aggregate expressions from all consuming clauses.
    let mut agg_exprs: Vec<Expr> = Vec::new();
    let mut push_aggs = |e: &Expr| collect_aggs(e, &mut agg_exprs);
    for item in &plan.select {
        if let SelectItem::Expr { expr, .. } = item {
            push_aggs(expr);
        }
    }
    if let Some(h) = having {
        push_aggs(h);
    }
    for (e, _) in &plan.order_by {
        push_aggs(&substitute_alias(e, &plan.select));
    }
    if agg_exprs.is_empty() {
        // GROUP BY without aggregates still groups.
    }

    // Group rows.
    let mut groups: Vec<(Vec<Value>, Vec<usize>)> = Vec::new();
    let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
    for (ri, row) in rows.iter().enumerate() {
        let key: Vec<Value> = group
            .iter()
            .map(|g| eval(g, row, schema))
            .collect::<Result<_, _>>()?;
        match index.get(&key) {
            Some(&gi) => groups[gi].1.push(ri),
            None => {
                index.insert(key.clone(), groups.len());
                groups.push((key, vec![ri]));
            }
        }
    }
    // Scalar aggregate over an empty input still yields one group.
    if group.is_empty() && groups.is_empty() {
        groups.push((Vec::new(), Vec::new()));
    }

    // Output schema.
    let mut out_schema: Schema = Vec::new();
    for g in &group {
        match g {
            Expr::Column { qualifier, name } => {
                let visible = match qualifier {
                    Some(q) => q.clone(),
                    None => match schema.iter().find_map(|c| match c {
                        SchemaCol::Col { visible, name: n } if n == name => Some(visible.clone()),
                        _ => None,
                    }) {
                        Some(v) => v,
                        None => return Err(err(format!("group key column {name} not found"))),
                    },
                };
                out_schema.push(SchemaCol::Col {
                    visible,
                    name: name.clone(),
                });
            }
            other => out_schema.push(SchemaCol::Derived(other.to_string())),
        }
    }
    for a in &agg_exprs {
        out_schema.push(SchemaCol::Derived(a.to_string()));
    }

    let mut out_rows = Vec::new();
    for (key, members) in &groups {
        let mut row = key.clone();
        for a in &agg_exprs {
            row.push(eval_aggregate(a, members, &rows, schema)?);
        }
        if let Some(h) = having {
            if !eval_pred(h, &row, &out_schema)? {
                continue;
            }
        }
        out_rows.push(row);
    }
    Ok((out_rows, out_schema))
}

fn collect_aggs(expr: &Expr, out: &mut Vec<Expr>) {
    match expr {
        Expr::Agg { .. } if !out.iter().any(|e| e.to_string() == expr.to_string()) => {
            out.push(expr.clone());
        }
        Expr::Binary { left, right, .. } => {
            collect_aggs(left, out);
            collect_aggs(right, out);
        }
        Expr::Unary { expr, .. } => collect_aggs(expr, out),
        Expr::InList { expr, list, .. } => {
            collect_aggs(expr, out);
            for e in list {
                collect_aggs(e, out);
            }
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            collect_aggs(expr, out);
            collect_aggs(low, out);
            collect_aggs(high, out);
        }
        _ => {}
    }
}

fn eval_aggregate(
    agg: &Expr,
    members: &[usize],
    rows: &[Row],
    schema: &Schema,
) -> Result<Value, ExecError> {
    let Expr::Agg {
        func,
        distinct,
        arg,
    } = agg
    else {
        return Err(err("not an aggregate"));
    };
    match arg {
        None => Ok(Value::Int(members.len() as i64)),
        Some(inner) => {
            let mut values: Vec<Value> = Vec::with_capacity(members.len());
            for &ri in members {
                let v = eval(inner, &rows[ri], schema)?;
                if !v.is_null() {
                    values.push(v);
                }
            }
            if *distinct {
                let mut seen = std::collections::HashSet::new();
                values.retain(|v| seen.insert(v.clone()));
            }
            Ok(match func {
                AggFunc::Count => Value::Int(values.len() as i64),
                AggFunc::Min => values
                    .iter()
                    .min_by(|a, b| a.total_cmp(b))
                    .cloned()
                    .unwrap_or(Value::Null),
                AggFunc::Max => values
                    .iter()
                    .max_by(|a, b| a.total_cmp(b))
                    .cloned()
                    .unwrap_or(Value::Null),
                AggFunc::Sum => {
                    if values.is_empty() {
                        Value::Null
                    } else {
                        Value::Float(values.iter().filter_map(Value::as_f64).sum())
                    }
                }
                AggFunc::Avg => {
                    if values.is_empty() {
                        Value::Null
                    } else {
                        let s: f64 = values.iter().filter_map(Value::as_f64).sum();
                        Value::Float(s / values.len() as f64)
                    }
                }
            })
        }
    }
}

/// Evaluate an expression against one row.
fn eval(expr: &Expr, row: &Row, schema: &Schema) -> Result<Value, ExecError> {
    match expr {
        Expr::Column { qualifier, name } => {
            // Base column first, then a derived slot with matching text.
            for (i, c) in schema.iter().enumerate() {
                match c {
                    SchemaCol::Col { visible, name: n } => {
                        let qual_ok = qualifier
                            .as_deref()
                            .is_none_or(|q| q.eq_ignore_ascii_case(visible));
                        if qual_ok && n == name {
                            return Ok(row[i].clone());
                        }
                    }
                    SchemaCol::Derived(d) if d == &expr.to_string() => {
                        return Ok(row[i].clone());
                    }
                    _ => {}
                }
            }
            Err(err(format!("column {expr} not in scope")))
        }
        Expr::IntLit(i) => Ok(Value::Int(*i)),
        Expr::FloatLit(x) => Ok(Value::Float(*x)),
        Expr::StrLit(s) => Ok(Value::Str(s.clone())),
        Expr::BoolLit(b) => Ok(Value::Bool(*b)),
        Expr::Null => Ok(Value::Null),
        Expr::Agg { .. } => {
            let key = expr.to_string();
            for (i, c) in schema.iter().enumerate() {
                if matches!(c, SchemaCol::Derived(d) if *d == key) {
                    return Ok(row[i].clone());
                }
            }
            Err(err(format!("aggregate {key} not materialized")))
        }
        Expr::Unary { op, expr } => {
            let v = eval(expr, row, schema)?;
            Ok(match op {
                UnaryOp::Neg => match v {
                    Value::Int(i) => Value::Int(-i),
                    Value::Float(f) => Value::Float(-f),
                    Value::Null => Value::Null,
                    other => return Err(err(format!("cannot negate {other}"))),
                },
                UnaryOp::Not => match v {
                    Value::Bool(b) => Value::Bool(!b),
                    Value::Null => Value::Null,
                    other => return Err(err(format!("cannot NOT {other}"))),
                },
                UnaryOp::IsNull => Value::Bool(v.is_null()),
                UnaryOp::IsNotNull => Value::Bool(!v.is_null()),
            })
        }
        Expr::Binary { op, left, right } => {
            let l = eval(left, row, schema)?;
            match op {
                BinaryOp::And => {
                    // Short-circuit (treat NULL as false, adequate for
                    // WHERE semantics).
                    if !truthy(&l) {
                        return Ok(Value::Bool(false));
                    }
                    let r = eval(right, row, schema)?;
                    return Ok(Value::Bool(truthy(&r)));
                }
                BinaryOp::Or => {
                    if truthy(&l) {
                        return Ok(Value::Bool(true));
                    }
                    let r = eval(right, row, schema)?;
                    return Ok(Value::Bool(truthy(&r)));
                }
                _ => {}
            }
            let r = eval(right, row, schema)?;
            if l.is_null() || r.is_null() {
                return Ok(match op {
                    BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div => Value::Null,
                    _ => Value::Bool(false),
                });
            }
            Ok(match op {
                BinaryOp::Eq => Value::Bool(l.sql_eq(&r)),
                BinaryOp::NotEq => Value::Bool(!l.sql_eq(&r)),
                BinaryOp::Lt => Value::Bool(l.total_cmp(&r).is_lt()),
                BinaryOp::LtEq => Value::Bool(l.total_cmp(&r).is_le()),
                BinaryOp::Gt => Value::Bool(l.total_cmp(&r).is_gt()),
                BinaryOp::GtEq => Value::Bool(l.total_cmp(&r).is_ge()),
                BinaryOp::Like => match (&l, &r) {
                    (Value::Str(s), Value::Str(p)) => Value::Bool(like_match(s, p)),
                    _ => Value::Bool(false),
                },
                BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div => {
                    let (a, b) = match (l.as_f64(), r.as_f64()) {
                        (Some(a), Some(b)) => (a, b),
                        _ => return Err(err("arithmetic on non-numeric values")),
                    };
                    let result = match op {
                        BinaryOp::Add => a + b,
                        BinaryOp::Sub => a - b,
                        BinaryOp::Mul => a * b,
                        _ => {
                            if b == 0.0 {
                                return Ok(Value::Null);
                            }
                            a / b
                        }
                    };
                    // Preserve integer typing when both sides are ints
                    // and the result is integral.
                    if matches!((&l, &r), (Value::Int(_), Value::Int(_)))
                        && result.fract() == 0.0
                        && *op != BinaryOp::Div
                    {
                        Value::Int(result as i64)
                    } else {
                        Value::Float(result)
                    }
                }
                BinaryOp::And | BinaryOp::Or => unreachable!("handled above"),
            })
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval(expr, row, schema)?;
            let mut found = false;
            for item in list {
                let iv = eval(item, row, schema)?;
                if v.sql_eq(&iv) {
                    found = true;
                    break;
                }
            }
            Ok(Value::Bool(found != *negated))
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = eval(expr, row, schema)?;
            let lo = eval(low, row, schema)?;
            let hi = eval(high, row, schema)?;
            if v.is_null() || lo.is_null() || hi.is_null() {
                return Ok(Value::Bool(false));
            }
            let inside = v.total_cmp(&lo).is_ge() && v.total_cmp(&hi).is_le();
            Ok(Value::Bool(inside != *negated))
        }
    }
}

fn truthy(v: &Value) -> bool {
    matches!(v, Value::Bool(true))
}

fn eval_pred(expr: &Expr, row: &Row, schema: &Schema) -> Result<bool, ExecError> {
    Ok(truthy(&eval(expr, row, schema)?))
}

/// SQL `LIKE` with `%` (any run) and `_` (single char), case-sensitive.
pub fn like_match(s: &str, pattern: &str) -> bool {
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    // Iterative two-pointer algorithm with backtracking on '%'.
    let (mut si, mut pi) = (0usize, 0usize);
    let (mut star, mut star_si) = (None::<usize>, 0usize);
    while si < s.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == s[si]) {
            si += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = Some(pi);
            star_si = si;
            pi += 1;
        } else if let Some(sp) = star {
            pi = sp + 1;
            star_si += 1;
            si = star_si;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::Planner;
    use lantern_catalog::{dblp_catalog, tpch_catalog};
    use lantern_sql::parse_sql;

    fn tpch_db() -> Database {
        Database::generate(&tpch_catalog(), 0.0003, 11)
    }

    fn run(db: &Database, sql: &str) -> QueryResult {
        let q = parse_sql(sql).unwrap();
        let plan = Planner::new(db).plan(&q).unwrap();
        execute(&plan, db).unwrap()
    }

    #[test]
    fn like_matching() {
        assert!(like_match("July days", "%July%"));
        assert!(like_match("July", "July"));
        assert!(like_match("xJuly", "_July"));
        assert!(!like_match("ully", "%July%"));
        assert!(like_match("anything", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("", "%%"));
    }

    #[test]
    fn filter_count_matches_brute_force() {
        let db = tpch_db();
        let r = run(&db, "SELECT COUNT(*) FROM orders WHERE o_orderstatus = 'F'");
        let data = db.table_data("orders").unwrap();
        let status_col = db
            .catalog()
            .table("orders")
            .unwrap()
            .column_index("o_orderstatus")
            .unwrap();
        let expected = data.columns[status_col]
            .iter()
            .filter(|v| matches!(v, Value::Str(s) if s == "F"))
            .count();
        assert_eq!(r.rows[0][0], Value::Int(expected as i64));
    }

    #[test]
    fn join_count_matches_brute_force() {
        let db = tpch_db();
        let r = run(
            &db,
            "SELECT COUNT(*) FROM customer c, orders o WHERE c.c_custkey = o.o_custkey",
        );
        // Every order references an existing customer (FK domain), and
        // c_custkey is a unique serial — so the join count equals the
        // number of orders whose custkey is within range.
        let orders = db.table_data("orders").unwrap();
        let custs = db.table_data("customer").unwrap().rows as i64;
        let ck = db
            .catalog()
            .table("orders")
            .unwrap()
            .column_index("o_custkey")
            .unwrap();
        let expected = orders.columns[ck]
            .iter()
            .filter(|v| matches!(v, Value::Int(k) if *k >= 0 && *k < custs))
            .count();
        assert_eq!(r.rows[0][0], Value::Int(expected as i64));
    }

    #[test]
    fn group_by_having_matches_brute_force() {
        let db = tpch_db();
        let r = run(
            &db,
            "SELECT o_orderstatus, COUNT(*) FROM orders GROUP BY o_orderstatus \
             HAVING COUNT(*) > 5 ORDER BY o_orderstatus",
        );
        // Brute force.
        let data = db.table_data("orders").unwrap();
        let sc = db
            .catalog()
            .table("orders")
            .unwrap()
            .column_index("o_orderstatus")
            .unwrap();
        let mut counts: std::collections::BTreeMap<String, i64> = Default::default();
        for v in &data.columns[sc] {
            if let Value::Str(s) = v {
                *counts.entry(s.clone()).or_default() += 1;
            }
        }
        let expected: Vec<(String, i64)> = counts.into_iter().filter(|(_, c)| *c > 5).collect();
        assert_eq!(r.rows.len(), expected.len());
        for (row, (status, count)) in r.rows.iter().zip(&expected) {
            assert_eq!(row[0], Value::Str(status.clone()));
            assert_eq!(row[1], Value::Int(*count));
        }
    }

    #[test]
    fn order_by_desc_and_limit() {
        let db = tpch_db();
        let r = run(
            &db,
            "SELECT o_totalprice FROM orders ORDER BY o_totalprice DESC LIMIT 5",
        );
        assert_eq!(r.rows.len(), 5);
        for w in r.rows.windows(2) {
            assert!(w[0][0].total_cmp(&w[1][0]).is_ge());
        }
    }

    #[test]
    fn order_by_alias() {
        let db = tpch_db();
        let r = run(
            &db,
            "SELECT o_custkey, SUM(o_totalprice) AS spend FROM orders \
             GROUP BY o_custkey ORDER BY spend DESC LIMIT 3",
        );
        assert!(r.rows.len() <= 3);
        for w in r.rows.windows(2) {
            assert!(w[0][1].total_cmp(&w[1][1]).is_ge());
        }
    }

    #[test]
    fn distinct_deduplicates() {
        let db = tpch_db();
        let r = run(&db, "SELECT DISTINCT o_orderstatus FROM orders");
        let mut set = std::collections::HashSet::new();
        for row in &r.rows {
            assert!(set.insert(row.clone()), "duplicate row {row:?}");
        }
        assert!(r.rows.len() <= 3);
    }

    #[test]
    fn wildcard_projects_all_columns() {
        let db = tpch_db();
        let r = run(&db, "SELECT * FROM region");
        assert_eq!(r.columns, vec!["r_regionkey", "r_name", "r_comment"]);
        assert_eq!(r.rows.len(), db.row_count("region"));
    }

    #[test]
    fn paper_example_query_executes() {
        let db = Database::generate(&dblp_catalog(), 0.0005, 13);
        let q = parse_sql(
            "SELECT DISTINCT(I.proceeding_key) FROM inproceedings I, publication P \
             WHERE I.proceeding_key = P.pub_key AND P.title LIKE '%July%' \
             GROUP BY I.proceeding_key HAVING COUNT(*) > 2",
        )
        .unwrap();
        let plan = Planner::new(&db).plan(&q).unwrap();
        let r = execute(&plan, &db).unwrap();
        // Result correctness: every key appears once.
        let mut seen = std::collections::HashSet::new();
        for row in &r.rows {
            assert!(seen.insert(row[0].clone()));
        }
    }

    #[test]
    fn merge_and_hash_join_agree() {
        // Force both join algorithms over the same inputs and compare.
        let db = tpch_db();
        let q = parse_sql(
            "SELECT COUNT(*) FROM nation n, region r WHERE n.n_regionkey = r.r_regionkey",
        )
        .unwrap();
        let plan = Planner::new(&db).plan(&q).unwrap();
        let base = execute(&plan, &db).unwrap();
        // Rebuild with each algorithm variant.
        use crate::logical::JoinPred;
        let pred = JoinPred {
            left_rel: "n".into(),
            left_col: "n_regionkey".into(),
            right_rel: "r".into(),
            right_col: "r_regionkey".into(),
        };
        let scan = |vis: &str, table: &str| RelOp::SeqScan {
            visible: vis.into(),
            table: table.into(),
            filters: vec![],
            rows: db.row_count(table) as f64,
            cost: 1.0,
        };
        for op in [
            RelOp::HashJoin {
                probe: Box::new(scan("n", "nation")),
                build: Box::new(scan("r", "region")),
                pred: pred.clone(),
                residual: vec![],
                rows: 1.0,
                cost: 1.0,
            },
            RelOp::MergeJoin {
                left: Box::new(scan("n", "nation")),
                right: Box::new(scan("r", "region")),
                pred: pred.clone(),
                sort_left: true,
                sort_right: true,
                residual: vec![],
                rows: 1.0,
                cost: 1.0,
            },
            RelOp::NestedLoop {
                outer: Box::new(scan("n", "nation")),
                inner: Box::new(scan("r", "region")),
                pred: Some(pred.clone()),
                residual: vec![],
                rows: 1.0,
                cost: 1.0,
            },
        ] {
            let mut p2 = plan.clone();
            p2.join_root = op;
            let r = execute(&p2, &db).unwrap();
            assert_eq!(r.rows, base.rows);
        }
    }

    #[test]
    fn scalar_aggregate_on_empty_input() {
        let db = tpch_db();
        let r = run(&db, "SELECT COUNT(*) FROM orders WHERE o_totalprice < 0");
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Value::Int(0));
    }

    #[test]
    fn division_by_zero_yields_null() {
        let db = tpch_db();
        let r = run(&db, "SELECT o_totalprice / 0 FROM orders LIMIT 1");
        assert_eq!(r.rows[0][0], Value::Null);
    }

    #[test]
    fn in_and_between_filters() {
        let db = tpch_db();
        let r = run(
            &db,
            "SELECT COUNT(*) FROM orders WHERE o_orderstatus IN ('F','O') \
             AND o_orderkey BETWEEN 0 AND 10",
        );
        let Value::Int(n) = r.rows[0][0] else {
            panic!()
        };
        assert!(n <= 11);
    }
}
