//! `EXPLAIN` artifact generation: render a physical plan in the three
//! formats the paper's Figure 3 survey compares (text, PostgreSQL-style
//! JSON, SQL Server-style XML).

use crate::physical::PhysicalPlan;
use lantern_core::{NarrationRequest, PlanSource};
use lantern_plan::{plan_to_pg_json, plan_to_sqlserver_xml, PlanTree};

/// Supported plan export formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExplainFormat {
    /// Indented text, like `EXPLAIN` default output.
    Text,
    /// PostgreSQL `EXPLAIN (FORMAT JSON)` document.
    PgJson,
    /// SQL Server XML showplan (operator names translated to SQL
    /// Server vocabulary).
    SqlServerXml,
}

/// Render a plan in the requested format.
pub fn explain(plan: &PhysicalPlan, format: ExplainFormat) -> String {
    let tree = plan.tree();
    explain_tree(&tree, format)
}

/// Render an already-built tree in the requested format.
pub fn explain_tree(tree: &PlanTree, format: ExplainFormat) -> String {
    match format {
        ExplainFormat::Text => tree.to_string(),
        ExplainFormat::PgJson => plan_to_pg_json(tree),
        ExplainFormat::SqlServerXml => plan_to_sqlserver_xml(tree),
    }
}

/// Bridge a planner output into the unified narration pipeline as the
/// requested artifact kind: the serialized vendor document for
/// [`ExplainFormat::PgJson`] / [`ExplainFormat::SqlServerXml`] (so the
/// request exercises the same parse path a real client would), or the
/// already-parsed tree for [`ExplainFormat::Text`], which has no
/// reader.
pub fn explain_source(plan: &PhysicalPlan, format: ExplainFormat) -> PlanSource {
    let tree = plan.tree();
    match format {
        ExplainFormat::Text => PlanSource::from(tree),
        ExplainFormat::PgJson => PlanSource::PgJson(plan_to_pg_json(&tree)),
        ExplainFormat::SqlServerXml => PlanSource::SqlServerXml(plan_to_sqlserver_xml(&tree)),
    }
}

impl From<&PhysicalPlan> for PlanSource {
    /// The zero-copy-ish default bridge: hand the planner's tree
    /// straight to the narration pipeline.
    fn from(plan: &PhysicalPlan) -> Self {
        PlanSource::from(plan.tree())
    }
}

impl From<&PhysicalPlan> for NarrationRequest {
    fn from(plan: &PhysicalPlan) -> Self {
        NarrationRequest::new(PlanSource::from(plan))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::physical::Planner;
    use lantern_catalog::tpch_catalog;
    use lantern_plan::{parse_pg_json_plan, parse_sqlserver_xml_plan};
    use lantern_sql::parse_sql;

    fn plan() -> (Database, PhysicalPlan) {
        let db = Database::generate(&tpch_catalog(), 0.0003, 5);
        let q = parse_sql(
            "SELECT c.c_mktsegment, COUNT(*) FROM customer c, orders o \
             WHERE c.c_custkey = o.o_custkey GROUP BY c.c_mktsegment",
        )
        .unwrap();
        let p = Planner::new(&db).plan(&q).unwrap();
        (db, p)
    }

    #[test]
    fn text_format_is_indented() {
        let (_, p) = plan();
        let text = explain(&p, ExplainFormat::Text);
        assert!(text.contains("->"));
        assert!(text.contains("rows="));
    }

    #[test]
    fn json_round_trips_through_plan_parser() {
        let (_, p) = plan();
        let json = explain(&p, ExplainFormat::PgJson);
        let reparsed = parse_pg_json_plan(&json).unwrap();
        assert_eq!(reparsed.root, p.tree().root);
    }

    #[test]
    fn explain_source_feeds_the_unified_pipeline() {
        use lantern_core::{RuleTranslator, Translator};
        use lantern_pool::default_mssql_store;
        let (_, p) = plan();
        let rule = RuleTranslator::new(default_mssql_store());
        // All three formats resolve to a narratable request; JSON and
        // tree agree exactly, XML narrates in mssql vocabulary.
        let via_tree = rule.narrate(&NarrationRequest::from(&p)).unwrap();
        let via_json = rule
            .narrate(&NarrationRequest::new(explain_source(
                &p,
                ExplainFormat::PgJson,
            )))
            .unwrap();
        assert_eq!(via_tree.narration, via_json.narration);
        let via_xml = rule
            .narrate(&NarrationRequest::new(explain_source(
                &p,
                ExplainFormat::SqlServerXml,
            )))
            .unwrap();
        assert!(via_xml.text.ends_with("to get the final results."));
    }

    #[test]
    fn xml_parses_as_mssql_plan() {
        let (_, p) = plan();
        let xml = explain(&p, ExplainFormat::SqlServerXml);
        let reparsed = parse_sqlserver_xml_plan(&xml).unwrap();
        assert_eq!(reparsed.source, "mssql");
        assert_eq!(reparsed.size(), p.tree().size());
        // Vendor vocabulary translated.
        assert!(xml.contains("Table Scan") || xml.contains("Index Seek"));
    }
}
