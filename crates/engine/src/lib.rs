//! # lantern-engine
//!
//! A from-scratch mini relational engine standing in for PostgreSQL /
//! SQL Server as the QEP-producing substrate (see DESIGN.md
//! substitution table).
//!
//! Pipeline: SQL text → `lantern-sql` AST → resolved logical plan →
//! cost-based physical planning (selectivity estimation from
//! `lantern-catalog` statistics, dynamic-programming join ordering,
//! access-path and join-algorithm selection) → a physical
//! [`lantern_plan::PlanTree`] — optionally executed by a volcano-style
//! interpreter over generated data, and exportable as PostgreSQL-style
//! JSON or SQL Server-style XML `EXPLAIN` artifacts.
//!
//! The crate also hosts the Kipf-style random query generator
//! (paper ref \[31\]) used to mass-produce training workloads.

pub mod cost;
pub mod database;
pub mod exec;
pub mod explain;
pub mod logical;
pub mod physical;
pub mod querygen;

pub use database::Database;
pub use explain::{explain_source, ExplainFormat};
pub use physical::Planner;
pub use querygen::{QueryGenConfig, RandomQueryGen};
