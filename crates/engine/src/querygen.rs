//! Random query generation in the style of Kipf et al. \[31\] (the
//! paper's training-data source, §6.2): walk the schema's FK graph to
//! pick join sets, sample filter predicates from *actual database
//! values*, and optionally add aggregation, grouping, having, ordering,
//! distinct, and limits.

use crate::database::Database;
use lantern_catalog::{ColumnType, Value};
use lantern_sql::{AggFunc, BinaryOp, Expr, OrderItem, Query, SelectItem, TableRef};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Knobs for the generator.
#[derive(Debug, Clone)]
pub struct QueryGenConfig {
    /// Maximum number of joined tables.
    pub max_tables: usize,
    /// Maximum filter predicates per query.
    pub max_filters: usize,
    /// Probability of generating an aggregate query.
    pub agg_probability: f64,
    /// Probability of DISTINCT.
    pub distinct_probability: f64,
    /// Probability of ORDER BY.
    pub order_probability: f64,
    /// Probability of LIMIT.
    pub limit_probability: f64,
}

impl Default for QueryGenConfig {
    fn default() -> Self {
        QueryGenConfig {
            max_tables: 4,
            max_filters: 3,
            agg_probability: 0.5,
            distinct_probability: 0.25,
            order_probability: 0.35,
            limit_probability: 0.3,
        }
    }
}

/// Deterministic random query generator over a database instance.
pub struct RandomQueryGen<'a> {
    db: &'a Database,
    rng: StdRng,
    config: QueryGenConfig,
}

impl<'a> RandomQueryGen<'a> {
    /// Create a generator with the given seed and configuration.
    pub fn new(db: &'a Database, seed: u64, config: QueryGenConfig) -> Self {
        RandomQueryGen {
            db,
            rng: StdRng::seed_from_u64(seed),
            config,
        }
    }

    /// Generate `n` queries. Every query resolves against the catalog
    /// by construction.
    pub fn generate(&mut self, n: usize) -> Vec<Query> {
        (0..n).map(|_| self.one_query()).collect()
    }

    fn one_query(&mut self) -> Query {
        let catalog = self.db.catalog();
        let tables = catalog.tables();
        // Start from a random table and random-walk the FK graph.
        let n_tables = self.rng.gen_range(1..=self.config.max_tables.max(1));
        let start = &tables[self.rng.gen_range(0..tables.len())];
        let mut chosen: Vec<String> = vec![start.name.clone()];
        let mut join_preds: Vec<Expr> = Vec::new();
        while chosen.len() < n_tables {
            // Collect FK edges from any chosen table to a new table.
            let mut candidates = Vec::new();
            for t in &chosen {
                for fk in catalog.join_edges(t) {
                    let other = if fk.table == *t {
                        &fk.parent_table
                    } else {
                        &fk.table
                    };
                    if !chosen.contains(other) {
                        candidates.push(fk.clone());
                    }
                }
            }
            if candidates.is_empty() {
                break;
            }
            let fk = candidates[self.rng.gen_range(0..candidates.len())].clone();
            let other = if chosen.contains(&fk.table) {
                fk.parent_table.clone()
            } else {
                fk.table.clone()
            };
            chosen.push(other);
            join_preds.push(Expr::Binary {
                op: BinaryOp::Eq,
                left: Box::new(Expr::col(Some(&fk.table), &fk.column)),
                right: Box::new(Expr::col(Some(&fk.parent_table), &fk.parent_column)),
            });
        }

        // Filters sampled from actual data.
        let n_filters = self.rng.gen_range(0..=self.config.max_filters);
        let mut filters = Vec::new();
        for _ in 0..n_filters {
            let t = &chosen[self.rng.gen_range(0..chosen.len())];
            if let Some(f) = self.random_filter(t) {
                filters.push(f);
            }
        }

        let mut where_clause: Option<Expr> = None;
        for pred in join_preds.into_iter().chain(filters) {
            where_clause = Some(match where_clause {
                None => pred,
                Some(acc) => Expr::Binary {
                    op: BinaryOp::And,
                    left: Box::new(acc),
                    right: Box::new(pred),
                },
            });
        }

        let aggregating = self.rng.gen_bool(self.config.agg_probability);
        let (select, group_by, having) = if aggregating {
            self.aggregate_shape(&chosen)
        } else {
            let cols = self.random_projection(&chosen, 3);
            (
                cols.into_iter()
                    .map(|c| SelectItem::Expr {
                        expr: c,
                        alias: None,
                    })
                    .collect(),
                Vec::new(),
                None,
            )
        };

        let order_by = if self.rng.gen_bool(self.config.order_probability) {
            // Order by something in the select list to stay executable.
            match select.first() {
                Some(SelectItem::Expr { expr, .. }) => vec![OrderItem {
                    expr: expr.clone(),
                    descending: self.rng.gen_bool(0.5),
                }],
                _ => Vec::new(),
            }
        } else {
            Vec::new()
        };
        let limit = if self.rng.gen_bool(self.config.limit_probability) {
            Some(self.rng.gen_range(1..=100))
        } else {
            None
        };
        let distinct = !aggregating && self.rng.gen_bool(self.config.distinct_probability);

        Query {
            distinct,
            select,
            from: chosen
                .iter()
                .map(|t| TableRef {
                    table: t.clone(),
                    alias: None,
                })
                .collect(),
            joins: Vec::new(),
            where_clause,
            group_by,
            having,
            order_by,
            limit,
        }
    }

    /// A filter predicate on a random column of `table`, using an
    /// actual value from the generated data so selectivities are
    /// realistic.
    fn random_filter(&mut self, table: &str) -> Option<Expr> {
        let cat_table = self.db.catalog().table(table)?;
        let data = self.db.table_data(table)?;
        if data.rows == 0 {
            return None;
        }
        let ci = self.rng.gen_range(0..cat_table.columns.len());
        let col = &cat_table.columns[ci];
        let row = self.rng.gen_range(0..data.rows);
        let value = data.value(ci, row).clone();
        if value.is_null() {
            return Some(Expr::Unary {
                op: lantern_sql::UnaryOp::IsNull,
                expr: Box::new(Expr::col(Some(table), &col.name)),
            });
        }
        let col_ref = Expr::col(Some(table), &col.name);
        let lit = match &value {
            Value::Int(i) => Expr::IntLit(*i),
            Value::Float(f) => Expr::FloatLit(*f),
            Value::Str(s) => Expr::StrLit(s.clone()),
            Value::Date(d) => Expr::IntLit(*d as i64),
            Value::Bool(b) => Expr::BoolLit(*b),
            Value::Null => unreachable!(),
        };
        let op = match col.ty {
            ColumnType::Text => {
                if self.rng.gen_bool(0.3) {
                    // LIKE on a word of the value.
                    if let Value::Str(s) = &value {
                        let word = s.split(' ').next().unwrap_or(s);
                        return Some(Expr::Binary {
                            op: BinaryOp::Like,
                            left: Box::new(col_ref),
                            right: Box::new(Expr::StrLit(format!("%{word}%"))),
                        });
                    }
                    BinaryOp::Eq
                } else {
                    BinaryOp::Eq
                }
            }
            ColumnType::Int | ColumnType::Float | ColumnType::Date => {
                match self.rng.gen_range(0..3) {
                    0 => BinaryOp::Eq,
                    1 => BinaryOp::Lt,
                    _ => BinaryOp::Gt,
                }
            }
            ColumnType::Bool => BinaryOp::Eq,
        };
        Some(Expr::Binary {
            op,
            left: Box::new(col_ref),
            right: Box::new(lit),
        })
    }

    fn random_projection(&mut self, tables: &[String], max: usize) -> Vec<Expr> {
        let mut cols = Vec::new();
        let n = self.rng.gen_range(1..=max);
        for _ in 0..n {
            let t = &tables[self.rng.gen_range(0..tables.len())];
            if let Some(ct) = self.db.catalog().table(t) {
                let ci = self.rng.gen_range(0..ct.columns.len());
                let e = Expr::col(Some(t), &ct.columns[ci].name);
                if !cols.contains(&e) {
                    cols.push(e);
                }
            }
        }
        if cols.is_empty() {
            cols.push(Expr::IntLit(1));
        }
        cols
    }

    fn aggregate_shape(&mut self, tables: &[String]) -> (Vec<SelectItem>, Vec<Expr>, Option<Expr>) {
        let group_col = self.random_projection(tables, 1).remove(0);
        let agg = match self.rng.gen_range(0..4) {
            0 => Expr::Agg {
                func: AggFunc::Count,
                distinct: false,
                arg: None,
            },
            1 => {
                let numeric = self.random_numeric_column(tables);
                Expr::Agg {
                    func: AggFunc::Sum,
                    distinct: false,
                    arg: Some(Box::new(numeric)),
                }
            }
            2 => {
                let numeric = self.random_numeric_column(tables);
                Expr::Agg {
                    func: AggFunc::Avg,
                    distinct: false,
                    arg: Some(Box::new(numeric)),
                }
            }
            _ => {
                let numeric = self.random_numeric_column(tables);
                Expr::Agg {
                    func: AggFunc::Max,
                    distinct: false,
                    arg: Some(Box::new(numeric)),
                }
            }
        };
        let scalar = self.rng.gen_bool(0.25);
        if scalar {
            return (
                vec![SelectItem::Expr {
                    expr: agg,
                    alias: None,
                }],
                Vec::new(),
                None,
            );
        }
        let having = if self.rng.gen_bool(0.3) {
            Some(Expr::Binary {
                op: BinaryOp::Gt,
                left: Box::new(Expr::Agg {
                    func: AggFunc::Count,
                    distinct: false,
                    arg: None,
                }),
                right: Box::new(Expr::IntLit(self.rng.gen_range(1..20))),
            })
        } else {
            None
        };
        (
            vec![
                SelectItem::Expr {
                    expr: group_col.clone(),
                    alias: None,
                },
                SelectItem::Expr {
                    expr: agg,
                    alias: None,
                },
            ],
            vec![group_col],
            having,
        )
    }

    fn random_numeric_column(&mut self, tables: &[String]) -> Expr {
        for _ in 0..16 {
            let t = &tables[self.rng.gen_range(0..tables.len())];
            if let Some(ct) = self.db.catalog().table(t) {
                let ci = self.rng.gen_range(0..ct.columns.len());
                let col = &ct.columns[ci];
                if matches!(col.ty, ColumnType::Int | ColumnType::Float) {
                    return Expr::col(Some(t), &col.name);
                }
            }
        }
        Expr::IntLit(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::physical::Planner;
    use lantern_catalog::{imdb_catalog, tpch_catalog};
    use lantern_sql::resolve;

    #[test]
    fn generated_queries_all_resolve() {
        let db = Database::generate(&imdb_catalog(), 0.0002, 3);
        let mut gen = RandomQueryGen::new(&db, 99, QueryGenConfig::default());
        let queries = gen.generate(50);
        assert_eq!(queries.len(), 50);
        for q in &queries {
            resolve(q, db.catalog()).expect("generated query must resolve");
        }
    }

    #[test]
    fn generated_queries_all_plan() {
        let db = Database::generate(&tpch_catalog(), 0.0002, 4);
        let mut gen = RandomQueryGen::new(&db, 7, QueryGenConfig::default());
        for q in gen.generate(50) {
            Planner::new(&db)
                .plan(&q)
                .expect("generated query must plan");
        }
    }

    #[test]
    fn generated_queries_all_execute() {
        let db = Database::generate(&tpch_catalog(), 0.0001, 5);
        let mut gen = RandomQueryGen::new(&db, 21, QueryGenConfig::default());
        for q in gen.generate(25) {
            let plan = Planner::new(&db).plan(&q).unwrap();
            crate::exec::execute(&plan, &db).expect("generated query must execute");
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let db = Database::generate(&imdb_catalog(), 0.0002, 3);
        let a: Vec<String> = RandomQueryGen::new(&db, 42, QueryGenConfig::default())
            .generate(10)
            .iter()
            .map(|q| q.to_string())
            .collect();
        let b: Vec<String> = RandomQueryGen::new(&db, 42, QueryGenConfig::default())
            .generate(10)
            .iter()
            .map(|q| q.to_string())
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn multi_table_queries_have_join_predicates() {
        let db = Database::generate(&tpch_catalog(), 0.0002, 9);
        let config = QueryGenConfig {
            max_tables: 3,
            max_filters: 0,
            ..Default::default()
        };
        let mut gen = RandomQueryGen::new(&db, 1, config);
        let mut saw_join = false;
        for q in gen.generate(40) {
            if q.from.len() >= 2 {
                saw_join = true;
                // FK-walk construction guarantees join predicates.
                assert!(q.where_clause.is_some(), "{q}");
            }
        }
        assert!(saw_join);
    }

    #[test]
    fn plan_diversity_across_queries() {
        // The generator should produce several distinct root operators
        // (the property neural training data depends on).
        let db = Database::generate(&tpch_catalog(), 0.0002, 10);
        let mut gen = RandomQueryGen::new(&db, 5, QueryGenConfig::default());
        let mut ops = std::collections::HashSet::new();
        for q in gen.generate(60) {
            let plan = Planner::new(&db).plan(&q).unwrap();
            for item in lantern_plan::post_order(&plan.tree().root) {
                ops.insert(item.node.op.clone());
            }
        }
        assert!(ops.len() >= 6, "only saw {ops:?}");
    }
}
