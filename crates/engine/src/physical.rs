//! Cost-based physical planning: access-path selection, dynamic-
//! programming join ordering, join-algorithm choice, and the post-join
//! pipeline (aggregation strategy, distinct, ordering, limit).
//!
//! The output [`PhysicalPlan`] renders to a PostgreSQL-vocabulary
//! [`PlanTree`] — with the auxiliary/critical structure the paper's
//! clustering step depends on (`Hash` under `Hash Join`, `Sort` under
//! `Merge Join` / sorted `Aggregate` / `Unique`).

use crate::cost::{self, consts, predicate_selectivity};
use crate::database::Database;
use crate::logical::{JoinPred, LogicalPlan};
use lantern_plan::{PlanNode, PlanTree};
use lantern_sql::{Expr, Query, SelectItem, SqlError};

/// Relational operators (scans and joins); the post-join pipeline lives
/// in [`PhysicalPlan`] fields.
#[derive(Debug, Clone)]
pub enum RelOp {
    /// Full table scan with pushed-down filters.
    SeqScan {
        visible: String,
        table: String,
        filters: Vec<Expr>,
        rows: f64,
        cost: f64,
    },
    /// Index scan driven by a predicate on `index_column`.
    IndexScan {
        visible: String,
        table: String,
        index_column: String,
        filters: Vec<Expr>,
        rows: f64,
        cost: f64,
    },
    /// Hash join: probe side streams, build side is hashed (rendered as
    /// an auxiliary `Hash` node, as PostgreSQL does).
    HashJoin {
        probe: Box<RelOp>,
        build: Box<RelOp>,
        pred: JoinPred,
        residual: Vec<Expr>,
        rows: f64,
        cost: f64,
    },
    /// Merge join; sides that are not already sorted get explicit
    /// auxiliary `Sort` nodes.
    MergeJoin {
        left: Box<RelOp>,
        right: Box<RelOp>,
        pred: JoinPred,
        sort_left: bool,
        sort_right: bool,
        residual: Vec<Expr>,
        rows: f64,
        cost: f64,
    },
    /// Nested-loop join (`pred: None` models a cross join).
    NestedLoop {
        outer: Box<RelOp>,
        inner: Box<RelOp>,
        pred: Option<JoinPred>,
        residual: Vec<Expr>,
        rows: f64,
        cost: f64,
    },
}

impl RelOp {
    /// Estimated output cardinality.
    pub fn rows(&self) -> f64 {
        match self {
            RelOp::SeqScan { rows, .. }
            | RelOp::IndexScan { rows, .. }
            | RelOp::HashJoin { rows, .. }
            | RelOp::MergeJoin { rows, .. }
            | RelOp::NestedLoop { rows, .. } => *rows,
        }
    }

    /// Estimated cumulative cost.
    pub fn cost(&self) -> f64 {
        match self {
            RelOp::SeqScan { cost, .. }
            | RelOp::IndexScan { cost, .. }
            | RelOp::HashJoin { cost, .. }
            | RelOp::MergeJoin { cost, .. }
            | RelOp::NestedLoop { cost, .. } => *cost,
        }
    }

    /// Visible relation names contributing to this subtree.
    pub fn visibles(&self) -> Vec<String> {
        match self {
            RelOp::SeqScan { visible, .. } | RelOp::IndexScan { visible, .. } => {
                vec![visible.clone()]
            }
            RelOp::HashJoin {
                probe: a, build: b, ..
            }
            | RelOp::MergeJoin {
                left: a, right: b, ..
            }
            | RelOp::NestedLoop {
                outer: a, inner: b, ..
            } => {
                let mut v = a.visibles();
                v.extend(b.visibles());
                v
            }
        }
    }
}

/// Aggregation strategy (PostgreSQL's `Strategy` field).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggStrategy {
    /// Group rows after sorting on the group keys (renders an auxiliary
    /// `Sort` child under `Aggregate`).
    Sorted,
    /// Hash-based grouping (renders as `HashAggregate`).
    Hashed,
}

/// Aggregation stage description.
#[derive(Debug, Clone)]
pub struct AggSpec {
    /// Group-by expressions (may be empty for scalar aggregates).
    pub group: Vec<Expr>,
    /// Chosen strategy.
    pub strategy: AggStrategy,
    /// HAVING predicate.
    pub having: Option<Expr>,
    /// Estimated output groups.
    pub rows: f64,
    /// Cost of this stage alone.
    pub cost: f64,
}

/// A complete physical plan for one query.
#[derive(Debug, Clone)]
pub struct PhysicalPlan {
    /// The scans+joins subtree.
    pub join_root: RelOp,
    /// Aggregation stage, if the query aggregates.
    pub agg: Option<AggSpec>,
    /// Duplicate elimination for `SELECT DISTINCT`. `pre_sorted` means
    /// the input already arrives sorted (no extra Sort needed).
    pub distinct: Option<bool>,
    /// `ORDER BY` keys (expr, descending).
    pub order_by: Vec<(Expr, bool)>,
    /// `LIMIT`.
    pub limit: Option<u64>,
    /// The original select list.
    pub select: Vec<SelectItem>,
    /// The logical plan this was derived from.
    pub logical: LogicalPlan,
}

impl PhysicalPlan {
    /// Total estimated cost (top of the pipeline).
    pub fn total_cost(&self) -> f64 {
        let mut c = self.join_root.cost();
        let mut rows = self.join_root.rows();
        if let Some(a) = &self.agg {
            c += a.cost;
            rows = a.rows;
        }
        if self.distinct.is_some() {
            c += cost::sort_cost(rows);
        }
        if !self.order_by.is_empty() {
            c += cost::sort_cost(rows);
        }
        c
    }

    /// Estimated final row count.
    pub fn output_rows(&self) -> f64 {
        let mut rows = self
            .agg
            .as_ref()
            .map(|a| a.rows)
            .unwrap_or(self.join_root.rows());
        if self.distinct.is_some() {
            rows *= 0.9;
        }
        if let Some(l) = self.limit {
            rows = rows.min(l as f64);
        }
        rows.max(1.0)
    }

    /// Render the PostgreSQL-vocabulary operator tree.
    pub fn tree(&self) -> PlanTree {
        let mut node = rel_tree(&self.join_root);
        let mut rows = self.join_root.rows();
        let mut cum_cost = self.join_root.cost();
        if let Some(a) = &self.agg {
            let group_keys: Vec<String> = a.group.iter().map(|g| g.to_string()).collect();
            cum_cost += a.cost;
            match a.strategy {
                AggStrategy::Sorted => {
                    if !group_keys.is_empty() {
                        let mut sort = PlanNode::new("Sort");
                        sort.sort_keys = group_keys.clone();
                        sort.estimated_rows = rows;
                        sort.estimated_cost = cum_cost - consts::AGG_TUPLE * rows;
                        sort.children.push(node);
                        node = sort;
                    }
                    let mut agg = PlanNode::new("Aggregate");
                    agg.strategy = Some("Sorted".to_string());
                    agg.group_keys = group_keys;
                    agg.filter = a.having.as_ref().map(|h| h.to_string());
                    agg.estimated_rows = a.rows;
                    agg.estimated_cost = cum_cost;
                    agg.children.push(node);
                    node = agg;
                }
                AggStrategy::Hashed => {
                    let mut agg = PlanNode::new("HashAggregate");
                    agg.strategy = Some("Hashed".to_string());
                    agg.group_keys = group_keys;
                    agg.filter = a.having.as_ref().map(|h| h.to_string());
                    agg.estimated_rows = a.rows;
                    agg.estimated_cost = cum_cost;
                    agg.children.push(node);
                    node = agg;
                }
            }
            rows = a.rows;
        }
        if let Some(pre_sorted) = self.distinct {
            if !pre_sorted {
                let mut sort = PlanNode::new("Sort");
                sort.sort_keys = select_texts(&self.select);
                cum_cost += cost::sort_cost(rows);
                sort.estimated_rows = rows;
                sort.estimated_cost = cum_cost;
                sort.children.push(node);
                node = sort;
            }
            let mut unique = PlanNode::new("Unique");
            rows *= 0.9;
            cum_cost += rows * 0.1;
            unique.estimated_rows = rows.max(1.0);
            unique.estimated_cost = cum_cost;
            unique.children.push(node);
            node = unique;
        }
        if !self.order_by.is_empty() {
            let mut sort = PlanNode::new("Sort");
            sort.sort_keys = self
                .order_by
                .iter()
                .map(|(e, desc)| {
                    if *desc {
                        format!("{e} DESC")
                    } else {
                        e.to_string()
                    }
                })
                .collect();
            cum_cost += cost::sort_cost(rows);
            sort.estimated_rows = rows;
            sort.estimated_cost = cum_cost;
            sort.children.push(node);
            node = sort;
        }
        if let Some(l) = self.limit {
            let mut limit = PlanNode::new("Limit");
            limit.estimated_rows = rows.min(l as f64).max(1.0);
            limit.estimated_cost = cum_cost;
            limit.children.push(node);
            node = limit;
        }
        PlanTree::new("pg", node)
    }
}

fn select_texts(select: &[SelectItem]) -> Vec<String> {
    select
        .iter()
        .map(|s| match s {
            SelectItem::Wildcard => "*".to_string(),
            SelectItem::Expr { expr, .. } => expr.to_string(),
        })
        .collect()
}

fn filters_text(filters: &[Expr]) -> Option<String> {
    if filters.is_empty() {
        None
    } else {
        Some(
            filters
                .iter()
                .map(|f| format!("({f})"))
                .collect::<Vec<_>>()
                .join(" AND "),
        )
    }
}

fn rel_tree(op: &RelOp) -> PlanNode {
    match op {
        RelOp::SeqScan {
            visible,
            table,
            filters,
            rows,
            cost,
        } => {
            let mut n = PlanNode::new("Seq Scan").on_relation(table.clone());
            n.alias = Some(visible.clone());
            n.filter = filters_text(filters);
            n.estimated_rows = *rows;
            n.estimated_cost = *cost;
            n
        }
        RelOp::IndexScan {
            visible,
            table,
            index_column,
            filters,
            rows,
            cost,
        } => {
            let mut n = PlanNode::new("Index Scan").on_relation(table.clone());
            n.alias = Some(visible.clone());
            n.index_name = Some(format!("{table}_{index_column}_idx"));
            n.filter = filters_text(filters);
            n.estimated_rows = *rows;
            n.estimated_cost = *cost;
            n
        }
        RelOp::HashJoin {
            probe,
            build,
            pred,
            residual,
            rows,
            cost,
        } => {
            let mut n = PlanNode::new("Hash Join");
            n.join_cond = Some(pred.condition_text());
            n.filter = filters_text(residual);
            n.estimated_rows = *rows;
            n.estimated_cost = *cost;
            n.children.push(rel_tree(probe));
            let mut hash = PlanNode::new("Hash");
            hash.estimated_rows = build.rows();
            hash.estimated_cost = build.cost() + consts::HASH_BUILD * build.rows();
            hash.children.push(rel_tree(build));
            n.children.push(hash);
            n
        }
        RelOp::MergeJoin {
            left,
            right,
            pred,
            sort_left,
            sort_right,
            residual,
            rows,
            cost,
        } => {
            let mut n = PlanNode::new("Merge Join");
            n.join_cond = Some(pred.condition_text());
            n.filter = filters_text(residual);
            n.estimated_rows = *rows;
            n.estimated_cost = *cost;
            let wrap = |child: &RelOp, key: String, need_sort: bool| -> PlanNode {
                let inner = rel_tree(child);
                if need_sort {
                    let mut sort = PlanNode::new("Sort");
                    sort.sort_keys = vec![key];
                    sort.estimated_rows = child.rows();
                    sort.estimated_cost = child.cost() + cost::sort_cost(child.rows());
                    sort.children.push(inner);
                    sort
                } else {
                    inner
                }
            };
            n.children.push(wrap(
                left,
                format!("{}.{}", pred.left_rel, pred.left_col),
                *sort_left,
            ));
            n.children.push(wrap(
                right,
                format!("{}.{}", pred.right_rel, pred.right_col),
                *sort_right,
            ));
            n
        }
        RelOp::NestedLoop {
            outer,
            inner,
            pred,
            residual,
            rows,
            cost,
        } => {
            let mut n = PlanNode::new("Nested Loop");
            n.join_cond = pred.as_ref().map(|p| p.condition_text());
            n.filter = filters_text(residual);
            n.estimated_rows = *rows;
            n.estimated_cost = *cost;
            n.children.push(rel_tree(outer));
            n.children.push(rel_tree(inner));
            n
        }
    }
}

/// The cost-based planner.
pub struct Planner<'a> {
    db: &'a Database,
    /// Disable DP join ordering (greedy left-deep instead) — the
    /// `ablation_join_order` bench toggles this.
    pub greedy_joins: bool,
}

/// DP table entry.
#[derive(Clone)]
struct DpEntry {
    op: RelOp,
    /// `(visible, column)` order the output is sorted on, if any.
    sorted_on: Option<(String, String)>,
}

impl<'a> Planner<'a> {
    /// Create a planner over a database (its statistics drive costing).
    pub fn new(db: &'a Database) -> Self {
        Planner {
            db,
            greedy_joins: false,
        }
    }

    /// Plan `query` into a physical plan.
    pub fn plan(&self, query: &Query) -> Result<PhysicalPlan, SqlError> {
        let logical = LogicalPlan::build(query, self.db.catalog())?;
        let n = logical.relations.len();
        if n == 0 {
            return Err(SqlError {
                position: 0,
                message: "query has no relations".into(),
            });
        }
        // Access paths per relation.
        let scans: Vec<DpEntry> = logical
            .relations
            .iter()
            .map(|r| self.access_path(r))
            .collect();

        let mut best = if n == 1 {
            scans.into_iter().next().expect("one relation")
        } else if self.greedy_joins || n > 12 {
            self.greedy_join_order(&logical, scans)
        } else {
            self.dp_join_order(&logical, scans)
        };

        // Attach residual predicates to the top join.
        if !logical.residual.is_empty() {
            let sel: f64 = logical.residual.iter().map(|_| 0.33).product();
            match &mut best.op {
                RelOp::HashJoin { residual, rows, .. }
                | RelOp::MergeJoin { residual, rows, .. }
                | RelOp::NestedLoop { residual, rows, .. } => {
                    residual.extend(logical.residual.iter().cloned());
                    *rows = (*rows * sel).max(1.0);
                }
                RelOp::SeqScan { filters, rows, .. } | RelOp::IndexScan { filters, rows, .. } => {
                    // Residuals with no column references (e.g. 1 = 1).
                    filters.extend(logical.residual.iter().cloned());
                    *rows = (*rows * sel).max(1.0);
                }
            }
        }

        let q = &logical.resolved.query;
        let agg = if q.is_aggregating() {
            Some(self.plan_aggregate(&logical, &best))
        } else {
            None
        };
        let distinct = if q.distinct {
            // Input is pre-sorted when a sorted aggregate just ran.
            let pre_sorted =
                matches!(&agg, Some(a) if a.strategy == AggStrategy::Sorted && !a.group.is_empty());
            Some(pre_sorted)
        } else {
            None
        };
        let order_by: Vec<(Expr, bool)> = q
            .order_by
            .iter()
            .map(|o| (o.expr.clone(), o.descending))
            .collect();
        Ok(PhysicalPlan {
            join_root: best.op,
            agg,
            distinct,
            order_by,
            limit: q.limit,
            select: q.select.clone(),
            logical,
        })
    }

    /// Choose seq scan vs index scan for one base relation.
    fn access_path(&self, rel: &crate::logical::BaseRel) -> DpEntry {
        let base_rows = self.db.row_count(&rel.table).max(1) as f64;
        let selectivity: f64 = rel
            .filters
            .iter()
            .map(|f| predicate_selectivity(self.db, &rel.table, f))
            .product();
        let out_rows = (base_rows * selectivity).max(1.0);
        // An index scan is considered when some filter touches an
        // indexed column and is selective enough to beat a full scan.
        let table = self.db.catalog().table(&rel.table);
        let indexed_filter_col = table.and_then(|t| {
            rel.filters.iter().find_map(|f| {
                f.columns().into_iter().find_map(|(_, name)| {
                    let col = t.column(name)?;
                    if col.indexed {
                        let sel = predicate_selectivity(self.db, &rel.table, f);
                        (sel < 0.2).then(|| name.to_string())
                    } else {
                        None
                    }
                })
            })
        });
        let seq_cost = base_rows * consts::SEQ_TUPLE;
        if let Some(col) = indexed_filter_col {
            let index_cost = consts::INDEX_STARTUP + out_rows * consts::INDEX_TUPLE;
            if index_cost < seq_cost {
                return DpEntry {
                    sorted_on: Some((rel.visible.clone(), col.clone())),
                    op: RelOp::IndexScan {
                        visible: rel.visible.clone(),
                        table: rel.table.clone(),
                        index_column: col,
                        filters: rel.filters.clone(),
                        rows: out_rows,
                        cost: index_cost,
                    },
                };
            }
        }
        DpEntry {
            sorted_on: None,
            op: RelOp::SeqScan {
                visible: rel.visible.clone(),
                table: rel.table.clone(),
                filters: rel.filters.clone(),
                rows: out_rows,
                cost: seq_cost,
            },
        }
    }

    /// Number of distinct values of `visible.column` at base-table
    /// granularity.
    fn column_ndv(&self, logical: &LogicalPlan, visible: &str, column: &str) -> f64 {
        let Some(rel) = logical.relations.iter().find(|r| r.visible == visible) else {
            return 100.0;
        };
        let Some(stats) = self.db.table_stats(&rel.table) else {
            return 100.0;
        };
        let Some(table) = self.db.catalog().table(&rel.table) else {
            return 100.0;
        };
        table
            .column_index(column)
            .map(|i| stats.columns[i].n_distinct.max(1) as f64)
            .unwrap_or(100.0)
    }

    /// Enumerate hash/merge/NL alternatives for joining `a` and `b`
    /// on `pred`; return the cheapest.
    fn best_join(
        &self,
        logical: &LogicalPlan,
        a: &DpEntry,
        b: &DpEntry,
        pred: &JoinPred,
    ) -> DpEntry {
        // Orient the predicate so `left` matches `a`.
        let a_vis = a.op.visibles();
        let oriented = if a_vis.contains(&pred.left_rel) {
            pred.clone()
        } else {
            JoinPred {
                left_rel: pred.right_rel.clone(),
                left_col: pred.right_col.clone(),
                right_rel: pred.left_rel.clone(),
                right_col: pred.left_col.clone(),
            }
        };
        let (ra, rb) = (a.op.rows(), b.op.rows());
        let ndv_a = self.column_ndv(logical, &oriented.left_rel, &oriented.left_col);
        let ndv_b = self.column_ndv(logical, &oriented.right_rel, &oriented.right_col);
        let out_rows = cost::join_cardinality(ra, rb, ndv_a, ndv_b);
        let input_cost = a.op.cost() + b.op.cost();

        // Hash join: build on the smaller side.
        let (probe, build, hash_pred) = if ra >= rb {
            (a, b, oriented.clone())
        } else {
            (
                b,
                a,
                JoinPred {
                    left_rel: oriented.right_rel.clone(),
                    left_col: oriented.right_col.clone(),
                    right_rel: oriented.left_rel.clone(),
                    right_col: oriented.left_col.clone(),
                },
            )
        };
        let hash_cost = input_cost + cost::hash_join_cost(probe.op.rows(), build.op.rows());
        let mut best = DpEntry {
            sorted_on: None,
            op: RelOp::HashJoin {
                probe: Box::new(probe.op.clone()),
                build: Box::new(build.op.clone()),
                pred: hash_pred,
                residual: Vec::new(),
                rows: out_rows,
                cost: hash_cost,
            },
        };

        // Merge join.
        let a_sorted =
            a.sorted_on.as_ref() == Some(&(oriented.left_rel.clone(), oriented.left_col.clone()));
        let b_sorted =
            b.sorted_on.as_ref() == Some(&(oriented.right_rel.clone(), oriented.right_col.clone()));
        let merge_cost = input_cost + cost::merge_join_cost(ra, rb, !a_sorted, !b_sorted);
        if merge_cost < best.op.cost() {
            best = DpEntry {
                sorted_on: Some((oriented.left_rel.clone(), oriented.left_col.clone())),
                op: RelOp::MergeJoin {
                    left: Box::new(a.op.clone()),
                    right: Box::new(b.op.clone()),
                    pred: oriented.clone(),
                    sort_left: !a_sorted,
                    sort_right: !b_sorted,
                    residual: Vec::new(),
                    rows: out_rows,
                    cost: merge_cost,
                },
            };
        }

        // Nested loop (index-assisted when the inner side is a base
        // index scan on the join column).
        let inner_indexed = matches!(
            &b.op,
            RelOp::IndexScan { index_column, .. } if *index_column == oriented.right_col
        );
        let nl_cost = input_cost + cost::nested_loop_cost(ra, rb, inner_indexed);
        if nl_cost < best.op.cost() {
            best = DpEntry {
                sorted_on: a.sorted_on.clone(),
                op: RelOp::NestedLoop {
                    outer: Box::new(a.op.clone()),
                    inner: Box::new(b.op.clone()),
                    pred: Some(oriented),
                    residual: Vec::new(),
                    rows: out_rows,
                    cost: nl_cost,
                },
            };
        }
        best
    }

    /// Exhaustive DP over connected subsets (DPsub).
    fn dp_join_order(&self, logical: &LogicalPlan, scans: Vec<DpEntry>) -> DpEntry {
        let n = scans.len();
        let full: usize = (1 << n) - 1;
        let mut dp: Vec<Option<DpEntry>> = vec![None; 1 << n];
        for (i, s) in scans.into_iter().enumerate() {
            dp[1 << i] = Some(s);
        }
        for mask in 1..=full {
            if dp[mask].is_some() {
                continue;
            }
            // Iterate proper non-empty submasks. Each split is visited
            // in both orders, which matters for join orientation.
            let mut best_for_mask: Option<DpEntry> = None;
            let mut sub = (mask - 1) & mask;
            while sub > 0 {
                let other = mask & !sub;
                if let (Some(a), Some(b)) = (&dp[sub], &dp[other]) {
                    let a_vis = a.op.visibles();
                    let b_vis = b.op.visibles();
                    for pred in &logical.joins {
                        if pred.connects(&a_vis, &b_vis) {
                            let cand = self.best_join(logical, a, b, pred);
                            if best_for_mask
                                .as_ref()
                                .is_none_or(|cur| cand.op.cost() < cur.op.cost())
                            {
                                best_for_mask = Some(cand);
                            }
                        }
                    }
                }
                sub = (sub - 1) & mask;
            }
            dp[mask] = best_for_mask;
            // Disconnected queries: allow a cross product as last
            // resort so planning never fails.
            if dp[mask].is_none() && mask == full {
                dp[mask] = self.cross_join_fallback(&dp, mask);
            }
        }
        match dp[full].take() {
            Some(e) => e,
            None => {
                // Fully disconnected graph: fold all singleton scans.
                let mut entries: Vec<DpEntry> = (0..n).filter_map(|i| dp[1 << i].take()).collect();
                let mut acc = entries.remove(0);
                for e in entries {
                    acc = self.cross_product(acc, e);
                }
                acc
            }
        }
    }

    fn cross_join_fallback(&self, dp: &[Option<DpEntry>], mask: usize) -> Option<DpEntry> {
        let mut sub = (mask - 1) & mask;
        let mut best: Option<DpEntry> = None;
        while sub > 0 {
            let other = mask & !sub;
            if let (Some(a), Some(b)) = (&dp[sub], &dp[other]) {
                let cand = self.cross_product(a.clone(), b.clone());
                if best
                    .as_ref()
                    .is_none_or(|cur| cand.op.cost() < cur.op.cost())
                {
                    best = Some(cand);
                }
            }
            sub = (sub - 1) & mask;
        }
        best
    }

    fn cross_product(&self, a: DpEntry, b: DpEntry) -> DpEntry {
        let rows = (a.op.rows() * b.op.rows()).max(1.0);
        let cost =
            a.op.cost() + b.op.cost() + cost::nested_loop_cost(a.op.rows(), b.op.rows(), false);
        DpEntry {
            sorted_on: None,
            op: RelOp::NestedLoop {
                outer: Box::new(a.op),
                inner: Box::new(b.op),
                pred: None,
                residual: Vec::new(),
                rows,
                cost,
            },
        }
    }

    /// Greedy left-deep join ordering (ablation baseline): repeatedly
    /// join the pair with the cheapest immediate cost.
    fn greedy_join_order(&self, logical: &LogicalPlan, scans: Vec<DpEntry>) -> DpEntry {
        let mut parts = scans;
        while parts.len() > 1 {
            let mut best: Option<(usize, usize, DpEntry)> = None;
            for i in 0..parts.len() {
                for j in 0..parts.len() {
                    if i == j {
                        continue;
                    }
                    let a_vis = parts[i].op.visibles();
                    let b_vis = parts[j].op.visibles();
                    for pred in &logical.joins {
                        if pred.connects(&a_vis, &b_vis) {
                            let cand = self.best_join(logical, &parts[i], &parts[j], pred);
                            if best
                                .as_ref()
                                .is_none_or(|(_, _, cur)| cand.op.cost() < cur.op.cost())
                            {
                                best = Some((i, j, cand));
                            }
                        }
                    }
                }
            }
            match best {
                Some((i, j, joined)) => {
                    let (hi, lo) = if i > j { (i, j) } else { (j, i) };
                    parts.remove(hi);
                    parts.remove(lo);
                    parts.push(joined);
                }
                None => {
                    // Disconnected: cross-join the two smallest parts.
                    parts.sort_by(|a, b| a.op.rows().total_cmp(&b.op.rows()));
                    let b = parts.remove(1);
                    let a = parts.remove(0);
                    let joined = self.cross_product(a, b);
                    parts.push(joined);
                }
            }
        }
        parts.into_iter().next().expect("at least one relation")
    }

    /// Choose the aggregation strategy and estimate group counts.
    fn plan_aggregate(&self, logical: &LogicalPlan, input: &DpEntry) -> AggSpec {
        let q = &logical.resolved.query;
        let in_rows = input.op.rows();
        let mut groups = 1.0;
        for g in &q.group_by {
            if let Expr::Column { qualifier, name } = g {
                let visible = qualifier.clone().unwrap_or_else(|| {
                    logical
                        .resolved
                        .table_order
                        .first()
                        .cloned()
                        .unwrap_or_default()
                });
                groups *= self.column_ndv(logical, &visible, name);
            } else {
                groups *= 10.0;
            }
        }
        let mut rows = groups.min(in_rows).max(1.0);
        if q.having.is_some() {
            rows = (rows * 0.3).max(1.0);
        }
        let sorted_cost = cost::sort_cost(in_rows) + consts::AGG_TUPLE * in_rows;
        let hashed_cost = consts::HASH_BUILD * in_rows + consts::AGG_TUPLE * in_rows;
        // A sorted aggregate is preferred when the input is already
        // sorted on the first group key, or when sorting is cheap and
        // downstream stages (DISTINCT / ORDER BY on group keys) benefit
        // from sorted output.
        let input_sorted = match (&input.sorted_on, q.group_by.first()) {
            (Some((vis, col)), Some(Expr::Column { qualifier, name })) => {
                name == col && qualifier.as_deref().is_none_or(|x| x == vis)
            }
            _ => false,
        };
        let downstream_wants_sort = q.distinct || !q.order_by.is_empty();
        // Scalar aggregates (empty GROUP BY) always use a plain
        // Aggregate node, which the Sorted strategy degenerates to.
        let strategy = if q.group_by.is_empty()
            || input_sorted
            || downstream_wants_sort
            || sorted_cost <= hashed_cost
        {
            AggStrategy::Sorted
        } else {
            AggStrategy::Hashed
        };
        let cost = match strategy {
            AggStrategy::Sorted if !q.group_by.is_empty() && !input_sorted => sorted_cost,
            AggStrategy::Sorted => consts::AGG_TUPLE * in_rows,
            AggStrategy::Hashed => hashed_cost,
        };
        AggSpec {
            group: q.group_by.clone(),
            strategy,
            having: q.having.clone(),
            rows,
            cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lantern_catalog::{dblp_catalog, tpch_catalog};
    use lantern_sql::parse_sql;

    fn dblp_db() -> Database {
        Database::generate(&dblp_catalog(), 0.0005, 42)
    }

    fn tpch_db() -> Database {
        Database::generate(&tpch_catalog(), 0.0005, 42)
    }

    #[test]
    fn plans_paper_example_with_figure_4_shape() {
        let db = dblp_db();
        let q = parse_sql(
            "SELECT DISTINCT(I.proceeding_key) FROM inproceedings I, publication P \
             WHERE I.proceeding_key = P.pub_key AND P.title LIKE '%July%' \
             GROUP BY I.proceeding_key HAVING COUNT(*) > 200",
        )
        .unwrap();
        let plan = Planner::new(&db).plan(&q).unwrap();
        let tree = plan.tree();
        // Expect Unique on top, Aggregate below it, a join beneath.
        assert_eq!(tree.root.op, "Unique");
        let ops: Vec<&str> = lantern_plan::post_order(&tree.root)
            .iter()
            .map(|i| i.node.op.as_str())
            .collect();
        assert!(
            ops.contains(&"Aggregate") || ops.contains(&"HashAggregate"),
            "{ops:?}"
        );
        assert!(
            ops.contains(&"Hash Join")
                || ops.contains(&"Merge Join")
                || ops.contains(&"Nested Loop"),
            "{ops:?}"
        );
        assert_eq!(tree.root.relations().len(), 2);
    }

    #[test]
    fn single_table_scan() {
        let db = tpch_db();
        let q = parse_sql("SELECT o_orderkey FROM orders WHERE o_totalprice > 100000").unwrap();
        let plan = Planner::new(&db).plan(&q).unwrap();
        let tree = plan.tree();
        assert!(tree.root.op == "Seq Scan" || tree.root.op == "Index Scan");
        assert!(tree.root.filter.is_some());
    }

    #[test]
    fn selective_indexed_filter_uses_index_scan() {
        let db = tpch_db();
        let rows = db.row_count("orders");
        let q = parse_sql(&format!(
            "SELECT o_totalprice FROM orders WHERE o_orderkey < {}",
            rows / 50
        ))
        .unwrap();
        let plan = Planner::new(&db).plan(&q).unwrap();
        let tree = plan.tree();
        assert_eq!(tree.root.op, "Index Scan", "{tree}");
        assert!(tree
            .root
            .index_name
            .as_deref()
            .unwrap()
            .contains("o_orderkey"));
    }

    #[test]
    fn hash_join_builds_on_smaller_side() {
        let db = tpch_db();
        let q =
            parse_sql("SELECT c.c_name FROM customer c, orders o WHERE c.c_custkey = o.o_custkey")
                .unwrap();
        let plan = Planner::new(&db).plan(&q).unwrap();
        if let RelOp::HashJoin { probe, build, .. } = &plan.join_root {
            assert!(build.rows() <= probe.rows());
        }
        let tree = plan.tree();
        // Auxiliary Hash node must wrap the build side.
        let has_hash_child = lantern_plan::post_order(&tree.root)
            .iter()
            .any(|i| i.node.op == "Hash" && i.parent.map(|p| p.op == "Hash Join").unwrap_or(false));
        if tree.root.op == "Hash Join" || plan_has_op(&tree.root, "Hash Join") {
            assert!(has_hash_child, "{tree}");
        }
    }

    fn plan_has_op(n: &PlanNode, op: &str) -> bool {
        n.op == op || n.children.iter().any(|c| plan_has_op(c, op))
    }

    #[test]
    fn three_way_join_covers_all_relations() {
        let db = tpch_db();
        let q = parse_sql(
            "SELECT n.n_name FROM customer c, orders o, nation n \
             WHERE c.c_custkey = o.o_custkey AND c.c_nationkey = n.n_nationkey",
        )
        .unwrap();
        let plan = Planner::new(&db).plan(&q).unwrap();
        let tree = plan.tree();
        let mut rels = tree.root.relations();
        rels.sort();
        assert_eq!(rels, vec!["customer", "nation", "orders"]);
    }

    #[test]
    fn greedy_matches_relations_of_dp() {
        let db = tpch_db();
        let q = parse_sql(
            "SELECT 1 FROM customer c, orders o, lineitem l \
             WHERE c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey",
        )
        .unwrap();
        let dp_plan = Planner::new(&db).plan(&q).unwrap();
        let mut greedy = Planner::new(&db);
        greedy.greedy_joins = true;
        let greedy_plan = greedy.plan(&q).unwrap();
        assert_eq!(
            dp_plan.tree().root.relations().len(),
            greedy_plan.tree().root.relations().len()
        );
        // DP can never be worse than greedy.
        assert!(dp_plan.join_root.cost() <= greedy_plan.join_root.cost() + 1e-6);
    }

    #[test]
    fn cross_join_fallback_for_disconnected_queries() {
        let db = tpch_db();
        let q = parse_sql("SELECT 1 FROM region r, part p").unwrap();
        let plan = Planner::new(&db).plan(&q).unwrap();
        assert!(matches!(
            plan.join_root,
            RelOp::NestedLoop { pred: None, .. }
        ));
    }

    #[test]
    fn order_by_and_limit_stack_on_top() {
        let db = tpch_db();
        let q =
            parse_sql("SELECT o_orderkey FROM orders ORDER BY o_totalprice DESC LIMIT 10").unwrap();
        let tree = Planner::new(&db).plan(&q).unwrap().tree();
        assert_eq!(tree.root.op, "Limit");
        assert_eq!(tree.root.children[0].op, "Sort");
        assert_eq!(tree.root.children[0].sort_keys, vec!["o_totalprice DESC"]);
    }

    #[test]
    fn scalar_aggregate_has_no_group_keys() {
        let db = tpch_db();
        let q = parse_sql("SELECT COUNT(*) FROM orders").unwrap();
        let tree = Planner::new(&db).plan(&q).unwrap().tree();
        assert_eq!(tree.root.op, "Aggregate");
        assert!(tree.root.group_keys.is_empty());
        // No Sort child for a scalar aggregate.
        assert_ne!(tree.root.children[0].op, "Sort");
    }

    #[test]
    fn total_cost_increases_with_pipeline_stages() {
        let db = tpch_db();
        let simple = parse_sql("SELECT o_orderkey FROM orders").unwrap();
        let complex = parse_sql(
            "SELECT o_custkey, COUNT(*) FROM orders GROUP BY o_custkey \
             ORDER BY o_custkey LIMIT 5",
        )
        .unwrap();
        let p1 = Planner::new(&db).plan(&simple).unwrap();
        let p2 = Planner::new(&db).plan(&complex).unwrap();
        assert!(p2.total_cost() > p1.total_cost());
    }

    #[test]
    fn residual_predicate_attached_to_top_join() {
        let db = tpch_db();
        let q = parse_sql(
            "SELECT 1 FROM orders o, customer c WHERE o.o_custkey = c.c_custkey \
             AND o.o_totalprice > c.c_acctbal",
        )
        .unwrap();
        let plan = Planner::new(&db).plan(&q).unwrap();
        let residual_len = match &plan.join_root {
            RelOp::HashJoin { residual, .. }
            | RelOp::MergeJoin { residual, .. }
            | RelOp::NestedLoop { residual, .. } => residual.len(),
            _ => 0,
        };
        assert_eq!(residual_len, 1);
    }
}
