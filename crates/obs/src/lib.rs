//! # lantern-obs
//!
//! The observability substrate for the serving stack: lock-free
//! log-bucketed latency histograms, a labeled metric [`Registry`] with
//! Prometheus text exposition, a [`Recorder`]/stage-span API that turns
//! every request into a per-stage timing vector, request-ID minting,
//! and a bounded slow-request ring buffer.
//!
//! Like the rest of the workspace the crate is **std-only** — no atomics
//! beyond `std::sync::atomic`, no clocks beyond `std::time::Instant` —
//! so it can sit below every other crate in the DAG (`lantern-cache`
//! emits fingerprint/cache-lookup spans without knowing anything about
//! the server that aggregates them).
//!
//! ## The pieces
//!
//! * [`AtomicHistogram`] — 64 power-of-√2 buckets of `AtomicU64` over
//!   nanoseconds; record is wait-free, snapshots are mergeable
//!   bucket-wise, percentile queries are exact to bucket resolution
//!   (≤ √2 relative error) with an exact max.
//! * [`Registry`] — labeled histograms / counters / gauges rendered in
//!   Prometheus text format, plus [`parse_exposition`] so a scraper
//!   (the cluster coordinator, the soak harness) can read the format
//!   back and merge fleets bucket-wise.
//! * [`Recorder`] + [`Stage`] — per-request tracing: the server calls
//!   [`Recorder::begin`] at ingress, lower layers drop [`span`] guards
//!   around the work they do, and [`TraceGuard::finish`] folds the
//!   stage vector into the histograms and the slow log. When the
//!   recorder is disabled (or no trace is active on the thread) a span
//!   is one thread-local load and a branch — no clock read.

mod hist;
mod registry;
mod trace;

pub use hist::{bucket_index, AtomicHistogram, HistogramSnapshot, BOUNDS, BUCKETS};
pub use registry::{
    parse_exposition, render_histogram, snapshot_from_samples, Exposition, Registry, Sample,
};
pub use trace::{
    note_fingerprint, span, Recorder, RecorderConfig, SlowEntry, SpanGuard, Stage, TraceGuard,
    METRIC_REQUEST_SECONDS, METRIC_STAGE_SECONDS,
};
