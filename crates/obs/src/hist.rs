//! Lock-free log-bucketed latency histogram.
//!
//! Values are nanoseconds. Bucket upper bounds grow by √2 per bucket
//! starting at 256 ns, so 64 buckets span 256 ns … ~777 s — far wider
//! than any request this stack serves — at ≤ √2 relative resolution
//! anywhere in the range. Recording is a binary search over a `const`
//! bound table plus four relaxed atomic RMWs: safe to leave on in the
//! hottest path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of buckets in every histogram.
pub const BUCKETS: usize = 64;

/// Inclusive upper bounds of the buckets, in nanoseconds. Bounds
/// alternate ×√2 steps — even indices are `256 << (i/2)`, odd indices
/// `362 << (i/2)` (362 ≈ 256·√2) — and the last bucket is a catch-all.
pub const BOUNDS: [u64; BUCKETS] = bounds();

const fn bounds() -> [u64; BUCKETS] {
    let mut b = [0u64; BUCKETS];
    let mut i = 0;
    while i < BUCKETS {
        let half = (i / 2) as u32;
        b[i] = if i % 2 == 0 {
            256u64 << half
        } else {
            362u64 << half
        };
        i += 1;
    }
    b[BUCKETS - 1] = u64::MAX;
    b
}

/// Index of the bucket a nanosecond value falls into: the first bucket
/// whose upper bound is ≥ the value.
pub fn bucket_index(ns: u64) -> usize {
    BOUNDS.partition_point(|bound| *bound < ns)
}

/// A wait-free latency histogram over nanoseconds: 64 power-of-√2
/// buckets of `AtomicU64`, plus exact count / sum / max.
///
/// All mutation is `Ordering::Relaxed` — the histogram answers
/// statistical questions, not synchronization ones — so concurrent
/// recorders never contend beyond the cache line.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram::new()
    }
}

impl AtomicHistogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        // A const is the only way to seed `[AtomicU64; N]` in a
        // `const fn`; each array slot gets a fresh atomic.
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        AtomicHistogram {
            buckets: [ZERO; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one nanosecond observation.
    pub fn record(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
        self.max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Record a duration (saturated to u64 nanoseconds).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, nanoseconds.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest observation, nanoseconds (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Fold another histogram's counts into this one, bucket-wise.
    pub fn merge_from(&self, other: &AtomicHistogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// A point-in-time copy. Concurrent recorders may land between the
    /// bucket reads and the count read, so `count` can differ from the
    /// bucket total by in-flight records — callers that need agreement
    /// should quiesce first (the percentile math tolerates the skew).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (slot, bucket) in buckets.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Percentile query straight off the live histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        self.snapshot().percentile(q)
    }
}

/// A plain-data copy of an [`AtomicHistogram`], for merging and
/// percentile queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (not cumulative).
    pub buckets: [u64; BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of observations, nanoseconds.
    pub sum: u64,
    /// Largest observation, nanoseconds (0 when unknown, e.g. a
    /// snapshot reconstructed from a Prometheus scrape).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Merge another snapshot into this one, bucket-wise.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += *theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Per-bucket difference `self - other` (both cumulative views of
    /// the same histogram, `other` sampled earlier). Saturating, so a
    /// restarted peer degrades to "everything is new".
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = *self;
        for (mine, theirs) in out.buckets.iter_mut().zip(&earlier.buckets) {
            *mine = mine.saturating_sub(*theirs);
        }
        out.count = self.count.saturating_sub(earlier.count);
        out.sum = self.sum.saturating_sub(earlier.sum);
        out
    }

    /// The `q`-th percentile (`0.0 ..= 1.0`), nanoseconds: the upper
    /// bound of the bucket holding the `ceil(q·count)`-th smallest
    /// observation, so the answer is exact to bucket resolution
    /// (over-reports by at most ×√2). `q = 1.0` in the catch-all
    /// bucket returns the exact tracked max when known.
    pub fn percentile(&self, q: f64) -> u64 {
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                if i == BUCKETS - 1 {
                    // Catch-all bucket: the bound is meaningless; the
                    // tracked max (when we have one) is the honest
                    // answer.
                    return if self.max > 0 { self.max } else { BOUNDS[i] };
                }
                // A bucket bound can overshoot the largest observation;
                // the tracked max is a tighter truth when we have one.
                return if self.max > 0 {
                    BOUNDS[i].min(self.max)
                } else {
                    BOUNDS[i]
                };
            }
        }
        self.max
    }

    /// p50 / p90 / p99 / p99.9 / max, nanoseconds.
    pub fn quantiles(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.percentile(0.50),
            self.percentile(0.90),
            self.percentile(0.99),
            self.percentile(0.999),
            self.max,
        )
    }

    /// Mean observation, nanoseconds (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_strictly_monotone_and_sqrt2_spaced() {
        for pair in BOUNDS.windows(2) {
            assert!(pair[0] < pair[1], "{pair:?}");
        }
        // Interior ratios stay within a hair of √2 (integer rounding of
        // the 362/256 seed pair).
        for pair in BOUNDS[..BUCKETS - 1].windows(2) {
            let ratio = pair[1] as f64 / pair[0] as f64;
            assert!((1.40..1.43).contains(&ratio), "{pair:?} ratio {ratio}");
        }
        assert_eq!(BOUNDS[0], 256);
        assert_eq!(BOUNDS[BUCKETS - 1], u64::MAX);
    }

    #[test]
    fn bucket_index_matches_bounds() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(256), 0);
        assert_eq!(bucket_index(257), 1);
        assert_eq!(bucket_index(362), 1);
        assert_eq!(bucket_index(363), 2);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        for (i, bound) in BOUNDS.iter().enumerate() {
            assert_eq!(bucket_index(*bound), i);
        }
    }

    #[test]
    fn record_and_percentiles() {
        let h = AtomicHistogram::new();
        assert_eq!(h.percentile(0.5), 0);
        for us in 1..=1000u64 {
            h.record(us * 1_000); // 1µs ..= 1ms
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), 1_000_000);
        let snap = h.snapshot();
        let p50 = snap.percentile(0.50);
        // True p50 is 500µs; the bucketed answer over-reports by ≤ √2.
        assert!(p50 >= 500_000, "{p50}");
        assert!(p50 as f64 <= 500_000.0 * 1.4143, "{p50}");
        let (q50, q90, q99, q999, max) = snap.quantiles();
        assert!(q50 <= q90 && q90 <= q99 && q99 <= q999 && q999 <= max);
        assert_eq!(max, 1_000_000);
        assert_eq!(snap.mean(), (1..=1000u64).sum::<u64>() * 1_000 / 1000);
    }

    #[test]
    fn merge_adds_bucket_wise() {
        let a = AtomicHistogram::new();
        let b = AtomicHistogram::new();
        a.record(1_000);
        b.record(1_000);
        b.record(50_000_000);
        a.merge_from(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 50_000_000);
        let snap = a.snapshot();
        assert_eq!(snap.buckets[bucket_index(1_000)], 2);
        assert_eq!(snap.buckets[bucket_index(50_000_000)], 1);

        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.count, 5);
        assert_eq!(s.buckets.iter().sum::<u64>(), 5);
    }

    #[test]
    fn delta_since_subtracts_and_saturates() {
        let h = AtomicHistogram::new();
        h.record(1_000);
        let before = h.snapshot();
        h.record(2_000_000);
        h.record(2_000_000);
        let delta = h.snapshot().delta_since(&before);
        assert_eq!(delta.count, 2);
        assert_eq!(delta.buckets[bucket_index(1_000)], 0);
        assert_eq!(delta.buckets[bucket_index(2_000_000)], 2);
        // Restarted peer: earlier snapshot is "ahead" — saturate.
        let fresh = AtomicHistogram::new().snapshot().delta_since(&before);
        assert_eq!(fresh.count, 0);
    }

    #[test]
    fn catch_all_bucket_reports_tracked_max() {
        let h = AtomicHistogram::new();
        h.record(u64::MAX - 1);
        assert_eq!(h.percentile(1.0), u64::MAX - 1);
    }
}
