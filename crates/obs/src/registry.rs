//! Labeled metric registry with Prometheus text exposition — and the
//! inverse: a parser for the same format, so a scraper (the cluster
//! coordinator, the soak harness) can merge fleets bucket-wise without
//! a side-channel wire format.
//!
//! The exposition subset is the stable core of the text format:
//! `# TYPE` lines, `name{label="value"} value` samples, histogram
//! series as cumulative `_bucket{le="…"}` counters plus `_sum` /
//! `_count`. Bucket bounds are rendered in seconds from the shared
//! [`BOUNDS`] table, so every producer in the fleet emits identical
//! `le` strings and cumulative bucket counts can be merged by plain
//! addition.

use crate::hist::{bucket_index, AtomicHistogram, HistogramSnapshot, BOUNDS, BUCKETS};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

type Family<T> = BTreeMap<String, (String, T)>;

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, Family<Arc<AtomicU64>>>,
    gauges: BTreeMap<String, Family<Arc<AtomicU64>>>,
    histograms: BTreeMap<String, Family<Arc<AtomicHistogram>>>,
}

/// A set of labeled metric families — counters, gauges, histograms —
/// rendered in Prometheus text format by [`Registry::render`].
///
/// Lookup takes a mutex, so callers on hot paths should resolve their
/// series once (`Arc` handles are stable) rather than per record.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// The counter series `name{labels}`, created at zero on first use.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<AtomicU64> {
        let key = label_block(labels);
        Arc::clone(
            &self
                .lock()
                .counters
                .entry(name.to_string())
                .or_default()
                .entry(key.clone())
                .or_insert_with(|| (key, Arc::new(AtomicU64::new(0))))
                .1,
        )
    }

    /// The gauge series `name{labels}`, created at zero on first use.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<AtomicU64> {
        let key = label_block(labels);
        Arc::clone(
            &self
                .lock()
                .gauges
                .entry(name.to_string())
                .or_default()
                .entry(key.clone())
                .or_insert_with(|| (key, Arc::new(AtomicU64::new(0))))
                .1,
        )
    }

    /// The histogram series `name{labels}`, created empty on first use.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<AtomicHistogram> {
        let key = label_block(labels);
        Arc::clone(
            &self
                .lock()
                .histograms
                .entry(name.to_string())
                .or_default()
                .entry(key.clone())
                .or_insert_with(|| (key, Arc::new(AtomicHistogram::new())))
                .1,
        )
    }

    /// Store `value` into the counter series (scrape-time injection of
    /// an externally-maintained total).
    pub fn set_counter(&self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.counter(name, labels).store(value, Ordering::Relaxed);
    }

    /// Store `value` into the gauge series.
    pub fn set_gauge(&self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.gauge(name, labels).store(value, Ordering::Relaxed);
    }

    /// Render every family in Prometheus text format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    /// [`Registry::render`], appending to an existing buffer.
    pub fn render_into(&self, out: &mut String) {
        let inner = self.lock();
        for (name, family) in &inner.counters {
            let _ = writeln!(out, "# TYPE {name} counter");
            for (block, value) in family.values() {
                let _ = writeln!(out, "{name}{block} {}", value.load(Ordering::Relaxed));
            }
        }
        for (name, family) in &inner.gauges {
            let _ = writeln!(out, "# TYPE {name} gauge");
            for (block, value) in family.values() {
                let _ = writeln!(out, "{name}{block} {}", value.load(Ordering::Relaxed));
            }
        }
        for (name, family) in &inner.histograms {
            let _ = writeln!(out, "# TYPE {name} histogram");
            for (block, hist) in family.values() {
                render_histogram_series(out, name, block, &hist.snapshot());
            }
        }
    }
}

/// Append one histogram's exposition (`_bucket` / `_sum` / `_count`
/// lines, cumulative, bounds in seconds) under `name{labels}`. The
/// caller is responsible for the family's `# TYPE name histogram` line.
pub fn render_histogram(
    out: &mut String,
    name: &str,
    labels: &[(&str, &str)],
    snap: &HistogramSnapshot,
) {
    render_histogram_series(out, name, &label_block(labels), snap);
}

fn render_histogram_series(out: &mut String, name: &str, block: &str, snap: &HistogramSnapshot) {
    let mut cumulative = 0u64;
    for (i, n) in snap.buckets.iter().enumerate() {
        cumulative += n;
        let le = le_label(i);
        if block.is_empty() {
            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
        } else {
            // Splice `le` into the existing label block: `{a="b"}` →
            // `{a="b",le="…"}`.
            let inner = &block[1..block.len() - 1];
            let _ = writeln!(out, "{name}_bucket{{{inner},le=\"{le}\"}} {cumulative}");
        }
    }
    let _ = writeln!(out, "{name}_sum{block} {}", snap.sum as f64 / 1e9);
    let _ = writeln!(out, "{name}_count{block} {}", snap.count);
}

/// The `le` label string for bucket `i` — the bound in seconds, or
/// `+Inf` for the catch-all.
fn le_label(i: usize) -> String {
    if i == BUCKETS - 1 {
        "+Inf".to_string()
    } else {
        (BOUNDS[i] as f64 / 1e9).to_string()
    }
}

/// `{a="b",c="d"}` with labels sorted by name, or the empty string.
fn label_block(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut sorted: Vec<_> = labels.to_vec();
    sorted.sort_unstable();
    let mut out = String::from("{");
    for (i, (name, value)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{name}=\"{}\"", escape_label(value));
    }
    out.push('}');
    out
}

fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// One parsed exposition sample: `name{labels} value`.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (including any `_bucket` / `_sum` / `_count`
    /// suffix).
    pub name: String,
    /// Label pairs in source order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl Sample {
    /// First value of the label with this name.
    pub fn label(&self, name: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A parsed Prometheus text page: declared metric types plus samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Exposition {
    /// `metric name → type` from `# TYPE` lines.
    pub types: BTreeMap<String, String>,
    /// Every sample line, in source order.
    pub samples: Vec<Sample>,
}

/// Parse a Prometheus text page (the subset this crate emits:
/// `# TYPE` comments and `name{labels} value` samples). Unparseable
/// lines are skipped — a scraper should degrade, not fail, on a peer
/// speaking a newer dialect.
pub fn parse_exposition(text: &str) -> Exposition {
    let mut out = Exposition::default();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let mut words = rest.split_whitespace();
            if words.next() == Some("TYPE") {
                if let (Some(name), Some(kind)) = (words.next(), words.next()) {
                    out.types.insert(name.to_string(), kind.to_string());
                }
            }
            continue;
        }
        if let Some(sample) = parse_sample(line) {
            out.samples.push(sample);
        }
    }
    out
}

fn parse_sample(line: &str) -> Option<Sample> {
    let (head, value) = line.rsplit_once(char::is_whitespace)?;
    let value: f64 = match value {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        other => other.parse().ok()?,
    };
    let head = head.trim();
    let (name, labels) = match head.split_once('{') {
        None => (head.to_string(), Vec::new()),
        Some((name, rest)) => {
            let rest = rest.strip_suffix('}')?;
            (name.to_string(), parse_labels(rest)?)
        }
    };
    Some(Sample {
        name,
        labels,
        value,
    })
}

fn parse_labels(mut rest: &str) -> Option<Vec<(String, String)>> {
    let mut labels = Vec::new();
    while !rest.is_empty() {
        let eq = rest.find('=')?;
        let name = rest[..eq].trim().to_string();
        rest = rest[eq + 1..].strip_prefix('"')?;
        // Scan to the closing quote, honouring backslash escapes.
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, escaped)) => value.push(escaped),
                    None => return None,
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                other => value.push(other),
            }
        }
        rest = &rest[end? + 1..];
        labels.push((name, value));
        rest = rest.strip_prefix(',').unwrap_or(rest).trim_start();
    }
    Some(labels)
}

/// Rebuild a [`HistogramSnapshot`] from parsed samples: the series
/// `name_bucket` / `name_sum` / `name_count` whose non-`le` labels
/// equal `labels` exactly. Returns `None` when no bucket line matches.
/// The tracked max is lost across the wire (`max = 0`), so percentile
/// queries on the result are bucket-resolution only.
pub fn snapshot_from_samples(
    samples: &[Sample],
    name: &str,
    labels: &[(&str, &str)],
) -> Option<HistogramSnapshot> {
    let bucket_name = format!("{name}_bucket");
    let sum_name = format!("{name}_sum");
    let count_name = format!("{name}_count");
    let matches = |sample: &Sample, ignore_le: bool| {
        let mut rest: Vec<(&str, &str)> = sample
            .labels
            .iter()
            .filter(|(n, _)| !(ignore_le && n == "le"))
            .map(|(n, v)| (n.as_str(), v.as_str()))
            .collect();
        rest.sort_unstable();
        let mut want: Vec<(&str, &str)> = labels.to_vec();
        want.sort_unstable();
        rest == want
    };

    let mut cumulative: Vec<(f64, u64)> = Vec::new();
    let mut snap = HistogramSnapshot::default();
    let mut saw_count = false;
    for sample in samples {
        if sample.name == bucket_name && matches(sample, true) {
            let le = match sample.label("le")? {
                "+Inf" => f64::INFINITY,
                s => s.parse().ok()?,
            };
            cumulative.push((le, sample.value as u64));
        } else if sample.name == sum_name && matches(sample, false) {
            snap.sum = (sample.value * 1e9).round() as u64;
        } else if sample.name == count_name && matches(sample, false) {
            snap.count = sample.value as u64;
            saw_count = true;
        }
    }
    if cumulative.is_empty() {
        return None;
    }
    cumulative.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut previous = 0u64;
    for (le, total) in cumulative {
        let idx = if le.is_infinite() {
            BUCKETS - 1
        } else {
            let ns = (le * 1e9).round() as u64;
            BOUNDS
                .iter()
                .position(|bound| *bound == ns)
                .unwrap_or_else(|| bucket_index(ns))
        };
        snap.buckets[idx] += total.saturating_sub(previous);
        previous = total.max(previous);
    }
    if !saw_count {
        snap.count = snap.buckets.iter().sum();
    }
    Some(snap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_and_histograms_render_with_types() {
        let reg = Registry::new();
        reg.counter("lantern_requests_total", &[])
            .fetch_add(3, Ordering::Relaxed);
        reg.set_gauge("lantern_queue_depth", &[("core", "event")], 2);
        reg.histogram("lantern_stage_duration_seconds", &[("stage", "narrate")])
            .record(1_000_000); // 1ms
        let text = reg.render();
        assert!(text.contains("# TYPE lantern_requests_total counter"));
        assert!(text.contains("lantern_requests_total 3"));
        assert!(text.contains("# TYPE lantern_queue_depth gauge"));
        assert!(text.contains("lantern_queue_depth{core=\"event\"} 2"));
        assert!(text.contains("# TYPE lantern_stage_duration_seconds histogram"));
        assert!(text.contains("lantern_stage_duration_seconds_count{stage=\"narrate\"} 1"));
        assert!(text.contains("le=\"+Inf\"} 1"));
        // Same handle on second lookup.
        reg.counter("lantern_requests_total", &[])
            .fetch_add(1, Ordering::Relaxed);
        assert!(reg.render().contains("lantern_requests_total 4"));
    }

    #[test]
    fn exposition_roundtrips_through_the_parser() {
        let reg = Registry::new();
        let hist = reg.histogram("lantern_request_duration_seconds", &[]);
        for us in [100u64, 900, 4_000, 90_000] {
            hist.record(us * 1_000);
        }
        let text = reg.render();
        let parsed = parse_exposition(&text);
        assert_eq!(
            parsed
                .types
                .get("lantern_request_duration_seconds")
                .unwrap(),
            "histogram"
        );
        let snap = snapshot_from_samples(&parsed.samples, "lantern_request_duration_seconds", &[])
            .unwrap();
        let original = hist.snapshot();
        assert_eq!(snap.buckets, original.buckets);
        assert_eq!(snap.count, original.count);
        // Sum survives to f64 precision.
        assert!((snap.sum as f64 - original.sum as f64).abs() < 1.0);
    }

    #[test]
    fn parser_handles_labels_and_escapes() {
        let text = concat!(
            "# HELP x ignored\n",
            "# TYPE x counter\n",
            "x{a=\"plain\",b=\"with \\\"quote\\\" and \\\\slash\"} 7\n",
            "garbage line without a value\n",
            "y 1.5\n",
        );
        let parsed = parse_exposition(text);
        assert_eq!(parsed.samples.len(), 2);
        assert_eq!(parsed.samples[0].label("a"), Some("plain"));
        assert_eq!(
            parsed.samples[0].label("b"),
            Some("with \"quote\" and \\slash")
        );
        assert_eq!(parsed.samples[0].value, 7.0);
        assert_eq!(parsed.samples[1].name, "y");
        // Escaped render parses back to the original value.
        let reg = Registry::new();
        reg.set_counter("z", &[("v", "a\"b\\c\nd")], 1);
        let back = parse_exposition(&reg.render());
        assert_eq!(back.samples[0].label("v"), Some("a\"b\\c\nd"));
    }

    #[test]
    fn snapshot_from_samples_selects_exact_label_sets() {
        let reg = Registry::new();
        reg.histogram("h", &[("stage", "parse")]).record(1_000);
        reg.histogram("h", &[("stage", "narrate")]).record(1_000);
        reg.histogram("h", &[("stage", "narrate")]).record(2_000);
        let parsed = parse_exposition(&reg.render());
        let narrate = snapshot_from_samples(&parsed.samples, "h", &[("stage", "narrate")]).unwrap();
        assert_eq!(narrate.count, 2);
        let parse = snapshot_from_samples(&parsed.samples, "h", &[("stage", "parse")]).unwrap();
        assert_eq!(parse.count, 1);
        assert!(snapshot_from_samples(&parsed.samples, "h", &[]).is_none());
        assert!(snapshot_from_samples(&parsed.samples, "missing", &[]).is_none());
    }

    #[test]
    fn rendered_buckets_are_cumulative_and_monotone() {
        let reg = Registry::new();
        let hist = reg.histogram("m", &[]);
        for i in 0..100u64 {
            hist.record(i * 10_000);
        }
        let text = reg.render();
        let mut last = -1.0f64;
        let mut bucket_lines = 0;
        for sample in parse_exposition(&text).samples {
            if sample.name == "m_bucket" {
                assert!(sample.value >= last, "{text}");
                last = sample.value;
                bucket_lines += 1;
            }
        }
        assert_eq!(bucket_lines, BUCKETS);
        assert_eq!(last, 100.0);
    }
}
