//! Per-request tracing: stage spans, request IDs, and the slow log.
//!
//! The server calls [`Recorder::begin`] at ingress, which installs a
//! thread-local active trace. Any layer below — the router, the cache,
//! the diff engine — drops a [`span`] guard around the work it does;
//! the guard adds its elapsed time to the active trace without knowing
//! which recorder (or server) is listening, which keeps lower crates
//! free of any dependency on the serving stack. [`TraceGuard::finish`]
//! folds the stage vector into the recorder's histograms and, when the
//! request ran long enough, into a bounded slow-request ring buffer.
//!
//! Traces are thread-local, which matches both serving cores: the
//! legacy core handles a connection end to end on one worker thread,
//! and the event core dispatches each parsed request to exactly one
//! worker. When no trace is active (or the recorder is disabled) a
//! span is one TLS load and a branch — no clock read.

use crate::hist::{AtomicHistogram, HistogramSnapshot};
use crate::registry::{render_histogram, Registry};
use std::cell::RefCell;
use std::collections::hash_map::RandomState;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::hash::BuildHasher;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The pipeline stages a request can spend time in. `Read`/`Write` are
/// recorded by the serving cores; the rest by the router and the
/// layers below it. Spans may nest (`Narrate` contains `Fingerprint`
/// and `CacheLookup` on a cached server), so the stage vector is a
/// profile, not a partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Reading and framing request bytes off the socket.
    Read,
    /// Parsing the plan document / request envelope.
    Parse,
    /// Canonical plan fingerprinting (cache key derivation).
    Fingerprint,
    /// Narration-cache probe (L1 digest + LRU).
    CacheLookup,
    /// The translation backend proper.
    Narrate,
    /// Plan-diff comparison and narration.
    Diff,
    /// Serializing the response body.
    Render,
    /// Encoding and writing response bytes to the socket.
    Write,
}

impl Stage {
    /// Number of stages (the length of every stage vector).
    pub const COUNT: usize = 8;

    /// Every stage, in pipeline order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::Read,
        Stage::Parse,
        Stage::Fingerprint,
        Stage::CacheLookup,
        Stage::Narrate,
        Stage::Diff,
        Stage::Render,
        Stage::Write,
    ];

    /// The stage's label value in metric names and the slow log.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Read => "read",
            Stage::Parse => "parse",
            Stage::Fingerprint => "fingerprint",
            Stage::CacheLookup => "cache_lookup",
            Stage::Narrate => "narrate",
            Stage::Diff => "diff",
            Stage::Render => "render",
            Stage::Write => "write",
        }
    }

    /// This stage's position in a [`SlowEntry::stage_ns`] vector
    /// (and the recorder's internal histogram array).
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Metric name of the per-stage latency histogram (label `stage`).
pub const METRIC_STAGE_SECONDS: &str = "lantern_stage_duration_seconds";
/// Metric name of the whole-request latency histogram.
pub const METRIC_REQUEST_SECONDS: &str = "lantern_request_duration_seconds";

/// [`Recorder`] construction parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecorderConfig {
    /// Master switch. Disabled, [`Recorder::begin`] installs no trace,
    /// spans are inert, and nothing is recorded — only request IDs
    /// keep working.
    pub enabled: bool,
    /// Requests at least this slow are captured in the slow log.
    /// `0` captures every finished request (the ring still bounds
    /// memory), which is what lets tests and smoke lanes observe
    /// request IDs without manufacturing slowness.
    pub slow_log_ms: u64,
    /// Slow-log ring capacity (oldest entries are evicted).
    pub slow_log_capacity: usize,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            enabled: true,
            slow_log_ms: 0,
            slow_log_capacity: 256,
        }
    }
}

/// One captured slow request: identity, outcome, and where the time
/// went.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowEntry {
    /// The request ID echoed in the `x-lantern-request-id` header.
    pub id: String,
    /// Request path.
    pub path: String,
    /// Response status (0 when the handler panicked before answering).
    pub status: u16,
    /// End-to-end nanoseconds inside the trace.
    pub total_ns: u64,
    /// Nanoseconds per stage, indexed like [`Stage::ALL`].
    pub stage_ns: [u64; Stage::COUNT],
    /// Canonical plan fingerprint (hex), when a cache layer noted one.
    pub fingerprint: Option<String>,
}

struct ActiveTrace {
    stage_ns: [u64; Stage::COUNT],
    fingerprint: Option<String>,
}

thread_local! {
    static ACTIVE: RefCell<Option<ActiveTrace>> = const { RefCell::new(None) };
}

/// The per-server metrics hub: stage and request histograms, the slow
/// log, request-ID minting, and a [`Registry`] for scrape-time extras.
pub struct Recorder {
    enabled: AtomicBool,
    stages: [AtomicHistogram; Stage::COUNT],
    requests: AtomicHistogram,
    slow_threshold_ns: AtomicU64,
    slow_capacity: usize,
    slow: Mutex<VecDeque<SlowEntry>>,
    id_prefix: u32,
    id_seq: AtomicU64,
    registry: Registry,
}

impl Recorder {
    /// Build a recorder.
    pub fn new(config: RecorderConfig) -> Recorder {
        // A per-process random prefix keeps IDs from different
        // replicas distinguishable without coordination. `RandomState`
        // is the only entropy std hands out.
        let id_prefix = RandomState::new().hash_one(std::process::id()) as u32;
        Recorder {
            enabled: AtomicBool::new(config.enabled),
            stages: std::array::from_fn(|_| AtomicHistogram::new()),
            requests: AtomicHistogram::new(),
            slow_threshold_ns: AtomicU64::new(config.slow_log_ms.saturating_mul(1_000_000)),
            slow_capacity: config.slow_log_capacity.max(1),
            slow: Mutex::new(VecDeque::new()),
            id_prefix,
            id_seq: AtomicU64::new(0),
            registry: Registry::new(),
        }
    }

    /// Whether recording is on.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Mint a fresh request ID (`pppppppp-ssssssss`, hex). Works even
    /// when recording is disabled — responses always carry an ID.
    pub fn mint_id(&self) -> String {
        let seq = self.id_seq.fetch_add(1, Ordering::Relaxed) + 1;
        format!("{:08x}-{:08x}", self.id_prefix, seq as u32)
    }

    /// Start tracing a request on this thread. The returned guard must
    /// be [`finish`](TraceGuard::finish)ed with the response status;
    /// a guard dropped during a panic records status 0.
    pub fn begin(self: &Arc<Self>, id: String, path: &str) -> TraceGuard {
        if !self.enabled() {
            return TraceGuard {
                recorder: None,
                id,
                path: String::new(),
                started: None,
            };
        }
        ACTIVE.with(|active| {
            *active.borrow_mut() = Some(ActiveTrace {
                stage_ns: [0; Stage::COUNT],
                fingerprint: None,
            });
        });
        TraceGuard {
            recorder: Some(Arc::clone(self)),
            id,
            path: path.to_string(),
            started: Some(Instant::now()),
        }
    }

    /// Record time directly into a stage histogram, outside any trace —
    /// the serving cores use this for `Read`/`Write`, which happen
    /// before a trace exists / after it finished.
    pub fn record_stage(&self, stage: Stage, ns: u64) {
        if self.enabled() {
            self.stages[stage.index()].record(ns);
        }
    }

    /// Snapshot of one stage's histogram.
    pub fn stage_snapshot(&self, stage: Stage) -> HistogramSnapshot {
        self.stages[stage.index()].snapshot()
    }

    /// Snapshot of the whole-request histogram.
    pub fn request_snapshot(&self) -> HistogramSnapshot {
        self.requests.snapshot()
    }

    /// The registry for extra labeled metrics (servers inject their
    /// counter/gauge snapshots here at scrape time).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The configured capture threshold, nanoseconds.
    pub fn slow_threshold_ns(&self) -> u64 {
        self.slow_threshold_ns.load(Ordering::Relaxed)
    }

    /// Captured slow requests at least `threshold_ns` slow, newest
    /// first.
    pub fn slow_entries(&self, threshold_ns: u64) -> Vec<SlowEntry> {
        let ring = self
            .slow
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        ring.iter()
            .rev()
            .filter(|e| e.total_ns >= threshold_ns)
            .cloned()
            .collect()
    }

    /// Render the stage and request histograms (plus the registry's
    /// extra families) as Prometheus text. `extra_labels` are added to
    /// every histogram series — the coordinator uses this to mark its
    /// own series apart from merged replica series.
    pub fn render_prometheus(&self, extra_labels: &[(&str, &str)]) -> String {
        let mut out = String::new();
        self.render_histograms(&mut out, extra_labels);
        self.registry.render_into(&mut out);
        out
    }

    /// The histogram half of [`Recorder::render_prometheus`], appended
    /// to `out`.
    pub fn render_histograms(&self, out: &mut String, extra_labels: &[(&str, &str)]) {
        let _ = writeln!(out, "# TYPE {METRIC_STAGE_SECONDS} histogram");
        for stage in Stage::ALL {
            let snap = self.stage_snapshot(stage);
            if snap.count == 0 {
                continue;
            }
            let mut labels = vec![("stage", stage.name())];
            labels.extend_from_slice(extra_labels);
            render_histogram(out, METRIC_STAGE_SECONDS, &labels, &snap);
        }
        let _ = writeln!(out, "# TYPE {METRIC_REQUEST_SECONDS} histogram");
        render_histogram(
            out,
            METRIC_REQUEST_SECONDS,
            extra_labels,
            &self.request_snapshot(),
        );
    }

    fn finish_trace(&self, guard: &mut TraceGuard, status: u16) {
        let Some(started) = guard.started.take() else {
            return;
        };
        let total_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.requests.record(total_ns);
        let Some(trace) = ACTIVE.with(|active| active.borrow_mut().take()) else {
            return;
        };
        for (i, ns) in trace.stage_ns.iter().enumerate() {
            if *ns > 0 {
                self.stages[i].record(*ns);
            }
        }
        if total_ns >= self.slow_threshold_ns() {
            let entry = SlowEntry {
                id: std::mem::take(&mut guard.id),
                path: std::mem::take(&mut guard.path),
                status,
                total_ns,
                stage_ns: trace.stage_ns,
                fingerprint: trace.fingerprint,
            };
            let mut ring = self
                .slow
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            if ring.len() >= self.slow_capacity {
                ring.pop_front();
            }
            ring.push_back(entry);
        }
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.enabled())
            .field("requests", &self.requests.count())
            .finish_non_exhaustive()
    }
}

/// Guard for one traced request (see [`Recorder::begin`]).
#[derive(Debug)]
pub struct TraceGuard {
    recorder: Option<Arc<Recorder>>,
    id: String,
    path: String,
    started: Option<Instant>,
}

impl TraceGuard {
    /// The request ID this trace runs under (minted or propagated).
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Finish the trace with the response status: records the request
    /// and stage histograms and, past the threshold, a slow-log entry.
    pub fn finish(mut self, status: u16) {
        if let Some(recorder) = self.recorder.take() {
            recorder.finish_trace(&mut self, status);
        }
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        // Not `finish`ed — the handler panicked out of the request.
        // Record what we know (status 0) and clear the thread-local so
        // the worker's next request starts clean.
        if let Some(recorder) = self.recorder.take() {
            recorder.finish_trace(self, 0);
        }
    }
}

/// Span guard: adds its lifetime's elapsed time to the active trace's
/// stage slot on drop (see [`span`]).
#[derive(Debug)]
pub struct SpanGuard {
    stage: Stage,
    started: Option<Instant>,
}

/// Time a stage of the request active on this thread. With no active
/// trace (recorder disabled, or code running outside a request) the
/// guard is inert and no clock is read.
pub fn span(stage: Stage) -> SpanGuard {
    let active = ACTIVE.with(|active| active.borrow().is_some());
    SpanGuard {
        stage,
        started: active.then(Instant::now),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(started) = self.started else {
            return;
        };
        let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        ACTIVE.with(|active| {
            if let Some(trace) = active.borrow_mut().as_mut() {
                trace.stage_ns[self.stage.index()] += ns;
            }
        });
    }
}

/// Attach a plan fingerprint to the active trace (first caller wins —
/// a batch request keeps its first item's fingerprint). The closure
/// only runs when a trace is active, so callers can defer hex
/// formatting.
pub fn note_fingerprint<F: FnOnce() -> String>(fingerprint: F) {
    ACTIVE.with(|active| {
        if let Some(trace) = active.borrow_mut().as_mut() {
            if trace.fingerprint.is_none() {
                trace.fingerprint = Some(fingerprint());
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn trace_records_stages_requests_and_slow_log() {
        let recorder = Arc::new(Recorder::new(RecorderConfig::default()));
        let trace = recorder.begin(recorder.mint_id(), "/narrate");
        {
            let _parse = span(Stage::Parse);
            std::thread::sleep(Duration::from_millis(2));
        }
        {
            let _narrate = span(Stage::Narrate);
            std::thread::sleep(Duration::from_millis(1));
        }
        note_fingerprint(|| "deadbeef".to_string());
        note_fingerprint(|| unreachable!("first fingerprint wins"));
        trace.finish(200);

        assert_eq!(recorder.request_snapshot().count, 1);
        assert_eq!(recorder.stage_snapshot(Stage::Parse).count, 1);
        assert!(recorder.stage_snapshot(Stage::Parse).max >= 2_000_000);
        assert_eq!(recorder.stage_snapshot(Stage::Narrate).count, 1);
        assert_eq!(recorder.stage_snapshot(Stage::Read).count, 0);

        let slow = recorder.slow_entries(0);
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].path, "/narrate");
        assert_eq!(slow[0].status, 200);
        assert_eq!(slow[0].fingerprint.as_deref(), Some("deadbeef"));
        assert!(slow[0].stage_ns[Stage::Parse as usize] >= 2_000_000);
        assert!(slow[0].total_ns >= 3_000_000);
        // Threshold filtering.
        assert!(recorder.slow_entries(u64::MAX).is_empty());
    }

    #[test]
    fn disabled_recorder_mints_ids_but_records_nothing() {
        let recorder = Arc::new(Recorder::new(RecorderConfig {
            enabled: false,
            ..RecorderConfig::default()
        }));
        let id = recorder.mint_id();
        assert_eq!(id.len(), 17);
        let trace = recorder.begin(id.clone(), "/narrate");
        assert_eq!(trace.id(), id);
        {
            let _s = span(Stage::Narrate);
        }
        trace.finish(200);
        assert_eq!(recorder.request_snapshot().count, 0);
        assert!(recorder.slow_entries(0).is_empty());
    }

    #[test]
    fn span_outside_a_trace_is_inert() {
        let _s = span(Stage::Narrate);
        note_fingerprint(|| unreachable!("no active trace"));
    }

    #[test]
    fn slow_ring_is_bounded_and_newest_first() {
        let recorder = Arc::new(Recorder::new(RecorderConfig {
            slow_log_capacity: 2,
            ..RecorderConfig::default()
        }));
        for i in 0..4 {
            let trace = recorder.begin(format!("id-{i}"), "/p");
            trace.finish(200);
        }
        let slow = recorder.slow_entries(0);
        assert_eq!(slow.len(), 2);
        assert_eq!(slow[0].id, "id-3");
        assert_eq!(slow[1].id, "id-2");
    }

    #[test]
    fn dropped_guard_records_status_zero() {
        let recorder = Arc::new(Recorder::new(RecorderConfig::default()));
        let trace = recorder.begin("panic-id".to_string(), "/narrate");
        drop(trace);
        let slow = recorder.slow_entries(0);
        assert_eq!(slow[0].status, 0);
        assert_eq!(slow[0].id, "panic-id");
    }

    #[test]
    fn ids_are_unique_and_stable_width() {
        let recorder = Arc::new(Recorder::new(RecorderConfig::default()));
        let a = recorder.mint_id();
        let b = recorder.mint_id();
        assert_ne!(a, b);
        assert_eq!(a.len(), b.len());
        assert_eq!(&a[..9], &b[..9], "same process prefix");
    }

    #[test]
    fn render_exposes_stage_and_request_histograms() {
        let recorder = Arc::new(Recorder::new(RecorderConfig::default()));
        recorder.record_stage(Stage::Read, 5_000);
        let trace = recorder.begin(recorder.mint_id(), "/narrate");
        trace.finish(200);
        recorder
            .registry()
            .set_counter("lantern_extra_total", &[], 7);
        let text = recorder.render_prometheus(&[("node", "coordinator")]);
        assert!(text.contains("# TYPE lantern_stage_duration_seconds histogram"));
        assert!(text.contains("stage=\"read\""));
        assert!(text.contains("node=\"coordinator\""));
        assert!(text.contains("lantern_request_duration_seconds_count{node=\"coordinator\"} 1"));
        assert!(text.contains("lantern_extra_total 7"));
        // Empty stages are omitted.
        assert!(!text.contains("stage=\"diff\""));
    }
}
