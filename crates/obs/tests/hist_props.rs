//! Property tests for [`AtomicHistogram`]: percentile queries against
//! an exact sorted-vector oracle (error bounded by bucket width),
//! merge associativity/commutativity, and concurrent-record
//! consistency.

use lantern_obs::{bucket_index, AtomicHistogram, HistogramSnapshot, BOUNDS, BUCKETS};
use proptest::prelude::*;

/// The exact oracle: the `ceil(q·n)`-th smallest sample (the same rank
/// definition the histogram uses).
fn oracle(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

fn build(values: &[u64]) -> AtomicHistogram {
    let h = AtomicHistogram::new();
    for v in values {
        h.record(*v);
    }
    h
}

/// Nanosecond samples spanning the whole bucket range: sub-bucket-0
/// noise through multi-second outliers.
fn arb_latencies(max_len: usize) -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(
        prop_oneof![
            (any::<u64>()).prop_map(|v| v % 512),       // around bucket 0/1
            (any::<u64>()).prop_map(|v| v % 2_000_000), // µs–ms range
            (any::<u64>()).prop_map(|v| v % 20_000_000_000), // up to 20s
        ],
        1..max_len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The bucketed percentile never under-reports the oracle, and
    /// over-reports by at most one bucket's width (×√2, with the
    /// sub-256ns floor and the max clamp as the only exceptions).
    #[test]
    fn percentiles_match_oracle_to_bucket_width(values in arb_latencies(200)) {
        let h = build(&values);
        let snap = h.snapshot();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.25, 0.50, 0.90, 0.99, 0.999, 1.0] {
            let exact = oracle(&sorted, q);
            let reported = snap.percentile(q);
            prop_assert!(reported >= exact, "q={q}: reported {reported} < oracle {exact}");
            let within_bucket = reported as f64 <= exact as f64 * 1.4145 + 1.0;
            let floor_bucket = reported <= BOUNDS[1];
            let catch_all = exact > BOUNDS[BUCKETS - 2];
            prop_assert!(
                within_bucket || floor_bucket || catch_all,
                "q={q}: reported {reported} too far above oracle {exact}"
            );
        }
        prop_assert_eq!(snap.percentile(1.0), *sorted.last().unwrap());
        prop_assert_eq!(snap.max, *sorted.last().unwrap());
        prop_assert_eq!(snap.count, values.len() as u64);
    }

    /// Merging is commutative and associative, bucket-wise and in the
    /// count/sum/max aggregates.
    #[test]
    fn merge_is_commutative_and_associative(
        a in arb_latencies(60),
        b in arb_latencies(60),
        c in arb_latencies(60),
    ) {
        let (ha, hb, hc) = (build(&a), build(&b), build(&c));

        let mut ab = ha.snapshot();
        ab.merge(&hb.snapshot());
        let mut ba = hb.snapshot();
        ba.merge(&ha.snapshot());
        prop_assert_eq!(ab, ba);

        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c), via AtomicHistogram::merge_from.
        let left = build(&[]);
        left.merge_from(&ha);
        left.merge_from(&hb);
        let left_total = build(&[]);
        left_total.merge_from(&left);
        left_total.merge_from(&hc);

        let right_tail = build(&[]);
        right_tail.merge_from(&hb);
        right_tail.merge_from(&hc);
        let right_total = build(&[]);
        right_total.merge_from(&ha);
        right_total.merge_from(&right_tail);

        prop_assert_eq!(left_total.snapshot(), right_total.snapshot());

        // The merge equals recording everything into one histogram.
        let everything: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(left_total.snapshot(), build(&everything).snapshot());
    }

    /// `delta_since` inverts `merge`: (base ⊕ extra) − base == extra.
    #[test]
    fn delta_inverts_merge(base in arb_latencies(60), extra in arb_latencies(60)) {
        let hb = build(&base);
        let before = hb.snapshot();
        for v in &extra {
            hb.record(*v);
        }
        let delta = hb.snapshot().delta_since(&before);
        let expected = build(&extra).snapshot();
        prop_assert_eq!(delta.buckets, expected.buckets);
        prop_assert_eq!(delta.count, expected.count);
        prop_assert_eq!(delta.sum, expected.sum);
    }
}

/// N threads × M records ⇒ exactly N·M observations land, with the
/// bucket total, count, sum, and max all agreeing.
#[test]
fn concurrent_records_lose_nothing() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    let h = AtomicHistogram::new();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let h = &h;
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    // Deterministic spread across many buckets.
                    h.record((t as u64 + 1) * 257 * (i % 97 + 1));
                }
            });
        }
    });
    let total = THREADS as u64 * PER_THREAD;
    let snap = h.snapshot();
    assert_eq!(snap.count, total);
    assert_eq!(snap.buckets.iter().sum::<u64>(), total);
    let expected_sum: u64 = (0..THREADS as u64)
        .map(|t| {
            (0..PER_THREAD)
                .map(|i| (t + 1) * 257 * (i % 97 + 1))
                .sum::<u64>()
        })
        .sum();
    assert_eq!(snap.sum, expected_sum);
    assert_eq!(snap.max, THREADS as u64 * 257 * 97);
    assert_eq!(snap.buckets[bucket_index(257)], {
        // Only thread 0 with i % 97 == 0 lands in the 257ns bucket's
        // bucket — sanity that bucketing stayed deterministic under
        // concurrency.
        let idx = bucket_index(257);
        (0..THREADS as u64)
            .flat_map(|t| (0..PER_THREAD).map(move |i| (t + 1) * 257 * (i % 97 + 1)))
            .filter(|v| bucket_index(*v) == idx)
            .count() as u64
    });
}

/// Snapshot merge on an empty accumulator is the identity.
#[test]
fn empty_merge_is_identity() {
    let h = build(&[1_000, 2_000, 3_000]);
    let mut acc = HistogramSnapshot::default();
    acc.merge(&h.snapshot());
    assert_eq!(acc, h.snapshot());
}
