//! A sharded, lock-striped LRU map keyed by [`Fingerprint`]s.
//!
//! The cache must absorb concurrent narration traffic from the whole
//! worker pool, so a single mutex around one LRU would serialize every
//! hit. Instead the key space is split across `N` shards (a power of
//! two, selected by the fingerprint's *high* bits), each protected by
//! its own mutex; two requests contend only when their plans land in
//! the same shard. Hit/miss/insert/evict totals and the entry/byte
//! gauges are shared atomics, updated outside the shard locks.
//!
//! Capacity is bounded two ways — by entry count and by approximate
//! resident bytes — with both budgets divided evenly across shards.
//! Eviction is per-shard, strictly least-recently-used.

use crate::fingerprint::Fingerprint;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Sentinel for "no slot" in the intrusive list.
const NIL: usize = usize::MAX;

/// One resident entry: the value plus its intrusive recency links.
struct Slot<V> {
    key: u128,
    value: V,
    bytes: u64,
    prev: usize,
    next: usize,
}

/// One shard: a key → slot index map over a slab of slots threaded into
/// a doubly-linked recency list (head = most recent, tail = least).
struct LruShard<V> {
    map: HashMap<u128, usize>,
    slots: Vec<Slot<V>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    bytes: u64,
}

impl<V> LruShard<V> {
    fn new() -> Self {
        LruShard {
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            bytes: 0,
        }
    }

    fn detach(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        match prev {
            NIL => self.head = next,
            p => self.slots[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].prev = prev,
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        match self.head {
            NIL => self.tail = i,
            h => self.slots[h].prev = i,
        }
        self.head = i;
    }

    /// Pop the least-recently-used entry; returns its byte weight.
    fn evict_tail(&mut self) -> Option<u64> {
        let i = self.tail;
        if i == NIL {
            return None;
        }
        self.detach(i);
        let key = self.slots[i].key;
        let bytes = self.slots[i].bytes;
        self.map.remove(&key);
        self.free.push(i);
        self.bytes -= bytes;
        Some(bytes)
    }
}

/// Aggregate counter snapshot of a [`ShardedLru`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LruStats {
    /// Lookups that found a resident entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries inserted (replacements included).
    pub insertions: u64,
    /// Entries evicted to respect the entry or byte budget.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Approximate resident bytes.
    pub bytes: u64,
}

/// The sharded LRU map. `V` is cloned out on hits, so values should be
/// cheap handles (`Arc`s) rather than owned payloads.
pub struct ShardedLru<V> {
    shards: Box<[Mutex<LruShard<V>>]>,
    max_entries_per_shard: usize,
    max_bytes_per_shard: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    entries: AtomicU64,
    bytes: AtomicU64,
}

impl<V: Clone> ShardedLru<V> {
    /// A cache bounded by `max_entries` entries and `max_bytes`
    /// approximate bytes, striped over `shards` (rounded up to a power
    /// of two, min 1). Both budgets divide evenly across shards.
    pub fn new(shards: usize, max_entries: usize, max_bytes: u64) -> Self {
        let shards = shards.max(1).next_power_of_two();
        let max_entries_per_shard = max_entries.div_ceil(shards).max(1);
        let max_bytes_per_shard = max_bytes.div_ceil(shards as u64).max(1);
        ShardedLru {
            shards: (0..shards).map(|_| Mutex::new(LruShard::new())).collect(),
            max_entries_per_shard,
            max_bytes_per_shard,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            entries: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, key: Fingerprint) -> &Mutex<LruShard<V>> {
        &self.shards[key.shard(self.shards.len())]
    }

    /// Look `key` up, promoting it to most-recently-used on a hit.
    pub fn get(&self, key: Fingerprint) -> Option<V> {
        let mut shard = self.shard_of(key).lock();
        match shard.map.get(&key.0).copied() {
            Some(i) => {
                shard.detach(i);
                shard.push_front(i);
                let value = shard.slots[i].value.clone();
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            None => {
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Read-only lookup: no recency promotion, no hit/miss counting.
    /// For re-checks that already counted themselves (e.g. a
    /// single-flight leader confirming nobody filled the entry between
    /// its counted miss and winning leadership).
    pub fn probe(&self, key: Fingerprint) -> Option<V> {
        let shard = self.shard_of(key).lock();
        shard.map.get(&key.0).map(|&i| shard.slots[i].value.clone())
    }

    /// Insert (or replace) `key`, charging `bytes` against the byte
    /// budget, then evict least-recently-used entries until the shard
    /// is back within both budgets.
    pub fn insert(&self, key: Fingerprint, value: V, bytes: u64) {
        let mut shard = self.shard_of(key).lock();
        let mut entry_delta: i64 = 0;
        let mut byte_delta: i64 = 0;
        if let Some(&i) = shard.map.get(&key.0) {
            byte_delta += bytes as i64 - shard.slots[i].bytes as i64;
            shard.bytes = (shard.bytes as i64 + byte_delta) as u64;
            shard.slots[i].value = value;
            shard.slots[i].bytes = bytes;
            shard.detach(i);
            shard.push_front(i);
        } else {
            let slot = Slot {
                key: key.0,
                value,
                bytes,
                prev: NIL,
                next: NIL,
            };
            let i = match shard.free.pop() {
                Some(i) => {
                    shard.slots[i] = slot;
                    i
                }
                None => {
                    shard.slots.push(slot);
                    shard.slots.len() - 1
                }
            };
            shard.map.insert(key.0, i);
            shard.push_front(i);
            shard.bytes += bytes;
            entry_delta += 1;
            byte_delta += bytes as i64;
        }
        let mut evicted = 0u64;
        while shard.map.len() > self.max_entries_per_shard || shard.bytes > self.max_bytes_per_shard
        {
            match shard.evict_tail() {
                Some(freed) => {
                    evicted += 1;
                    entry_delta -= 1;
                    byte_delta -= freed as i64;
                }
                None => break,
            }
        }
        // Gauge deltas apply *while still holding the shard lock*: a
        // delta applied after release could interleave with another
        // thread's (e.g. an eviction of this very entry) and drive the
        // unsigned gauge through zero.
        add_signed(&self.entries, entry_delta);
        add_signed(&self.bytes, byte_delta);
        drop(shard);
        self.insertions.fetch_add(1, Ordering::Relaxed);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
    }

    /// Drop every entry; returns how many were resident. Gauges are
    /// adjusted per shard while that shard's lock is held, so a clear
    /// racing in-flight inserts never drives them through zero.
    pub fn clear(&self) -> u64 {
        let mut dropped = 0u64;
        for shard in self.shards.iter() {
            let mut shard = shard.lock();
            let entries = shard.map.len() as u64;
            let bytes = shard.bytes;
            *shard = LruShard::new();
            add_signed(&self.entries, -(entries as i64));
            add_signed(&self.bytes, -(bytes as i64));
            drop(shard);
            dropped += entries;
        }
        dropped
    }

    /// Entries currently resident (all shards).
    pub fn len(&self) -> u64 {
        self.entries.load(Ordering::Relaxed)
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> LruStats {
        LruStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.entries.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }
}

/// Apply a signed delta to an unsigned gauge. Callers apply deltas
/// while holding the shard lock they were computed under, so per-shard
/// contributions serialize and the aggregate gauge cannot go negative.
fn add_signed(gauge: &AtomicU64, delta: i64) {
    if delta >= 0 {
        gauge.fetch_add(delta as u64, Ordering::Relaxed);
    } else {
        gauge.fetch_sub((-delta) as u64, Ordering::Relaxed);
    }
}

impl<V> std::fmt::Debug for ShardedLru<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedLru")
            .field("shards", &self.shards.len())
            .field("max_entries_per_shard", &self.max_entries_per_shard)
            .field("max_bytes_per_shard", &self.max_bytes_per_shard)
            .field("entries", &self.entries.load(Ordering::Relaxed))
            .field("bytes", &self.bytes.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(n: u128) -> Fingerprint {
        // Spread test keys across shards via the high bits.
        Fingerprint(n << 120 | n)
    }

    #[test]
    fn get_insert_and_promotion() {
        let lru: ShardedLru<&'static str> = ShardedLru::new(1, 2, u64::MAX);
        lru.insert(fp(1), "a", 1);
        lru.insert(fp(2), "b", 1);
        assert_eq!(lru.get(fp(1)), Some("a")); // promotes 1 over 2
        lru.insert(fp(3), "c", 1); // evicts 2, the LRU
        assert_eq!(lru.get(fp(2)), None);
        assert_eq!(lru.get(fp(1)), Some("a"));
        assert_eq!(lru.get(fp(3)), Some("c"));
        let stats = lru.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn byte_budget_evicts_independently_of_entry_budget() {
        let lru: ShardedLru<u32> = ShardedLru::new(1, 100, 10);
        lru.insert(fp(1), 1, 6);
        lru.insert(fp(2), 2, 6); // 12 bytes > 10: evicts 1
        assert_eq!(lru.get(fp(1)), None);
        assert_eq!(lru.get(fp(2)), Some(2));
        assert_eq!(lru.stats().bytes, 6);
    }

    #[test]
    fn replacement_updates_bytes_and_keeps_one_entry() {
        let lru: ShardedLru<u32> = ShardedLru::new(1, 10, 100);
        lru.insert(fp(1), 1, 10);
        lru.insert(fp(1), 2, 30);
        assert_eq!(lru.get(fp(1)), Some(2));
        let stats = lru.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.bytes, 30);
        assert_eq!(stats.insertions, 2);
    }

    #[test]
    fn clear_resets_gauges_but_not_totals() {
        let lru: ShardedLru<u32> = ShardedLru::new(4, 100, 1000);
        for i in 0..10 {
            lru.insert(fp(i), i as u32, 7);
        }
        assert_eq!(lru.len(), 10);
        assert_eq!(lru.clear(), 10);
        assert!(lru.is_empty());
        let stats = lru.stats();
        assert_eq!(stats.bytes, 0);
        assert_eq!(stats.insertions, 10, "history survives clear");
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let lru: ShardedLru<u32> = ShardedLru::new(5, 100, 100);
        assert_eq!(lru.shard_count(), 8);
        let lru: ShardedLru<u32> = ShardedLru::new(0, 100, 100);
        assert_eq!(lru.shard_count(), 1);
    }

    #[test]
    fn slab_reuses_freed_slots() {
        let lru: ShardedLru<u32> = ShardedLru::new(1, 2, u64::MAX);
        for i in 0..100 {
            lru.insert(fp(i % 8), i as u32, 1);
        }
        let shard = lru.shards[0].lock();
        assert!(
            shard.slots.len() <= 3,
            "slab grew to {} slots for a 2-entry shard",
            shard.slots.len()
        );
    }
}
