//! The [`CachedTranslator`] decorator: a plan-fingerprint narration
//! cache in front of any [`Translator`].
//!
//! * **Keying** — requests are keyed by the canonical plan fingerprint
//!   ([`crate::fingerprint`]) combined with the backend name, the
//!   per-request style override, a caller-supplied *generation* (e.g.
//!   the POEM catalog version, so POOL mutations invalidate naturally),
//!   and the strict flag. Serialized documents take an exact-text fast
//!   path: a byte-identical re-submission maps to its canonical
//!   fingerprint without re-parsing.
//! * **Storage** — completed narrations live in a sharded, lock-striped
//!   LRU ([`crate::lru`]) as `Arc<Narration>` plus the rendered text,
//!   bounded by entry count and approximate bytes.
//! * **Single-flight** — concurrent misses on the same key coalesce:
//!   one leader narrates, followers block on a condvar and share the
//!   result (errors included), so a thundering herd of identical
//!   submissions costs one backend call.
//! * **Batch dedup** — [`Translator::narrate_batch`] fingerprints the
//!   whole batch first, narrates only the unique plans through the
//!   inner backend's batch path, and stitches results back in order.
//!
//! Failed narrations are *not* cached: an error is returned to every
//! coalesced waiter of that flight, but the next request retries the
//! backend (a transient failure must not poison the cache).

use crate::fingerprint::{
    fingerprint_document, fingerprint_tree, Fingerprint, FingerprintOptions, Hasher128,
};
use crate::lru::{LruStats, ShardedLru};
use lantern_core::{
    LanternError, Narration, NarrationRequest, NarrationResponse, PlanSource, RenderStyle,
    Translator,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Tunables for the narration cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Maximum resident narrations (across all shards).
    pub max_entries: usize,
    /// Maximum approximate resident bytes (across all shards).
    pub max_bytes: u64,
    /// Lock stripes; rounded up to a power of two.
    pub shards: usize,
    /// Fingerprint in strict mode (cardinality/cost estimates are
    /// significant). See [`FingerprintOptions`].
    pub strict: bool,
}

impl Default for CacheConfig {
    /// 4096 narrations / 32 MiB / 16 shards, lax fingerprints — sized
    /// for a classroom-scale service on one host.
    fn default() -> Self {
        CacheConfig {
            max_entries: 4096,
            max_bytes: 32 * 1024 * 1024,
            shards: 16,
            strict: false,
        }
    }
}

/// One cached narration: the structured steps plus the text as rendered
/// for the keyed style. Cloning is two `Arc` bumps.
#[derive(Clone)]
struct CachedEntry {
    narration: Arc<Narration>,
    text: Arc<str>,
}

impl CachedEntry {
    fn of(resp: &NarrationResponse) -> (Self, u64) {
        let entry = CachedEntry {
            narration: Arc::new(resp.narration.clone()),
            text: Arc::from(resp.text.as_str()),
        };
        let steps: u64 = resp
            .narration
            .steps()
            .iter()
            .map(|s| (s.text.len() + s.tagged.len() + 96) as u64)
            .sum();
        // Approximate resident weight: rendered text + step payloads +
        // fixed overhead for the Arcs, map slot, and recency links.
        (entry, resp.text.len() as u64 + steps + 128)
    }
}

/// A narration in flight: the leader publishes into `done` and wakes
/// the condvar; followers wait and clone the outcome.
struct InFlight {
    done: Mutex<Option<Result<CachedEntry, LanternError>>>,
    cv: Condvar,
}

/// The shared cache state behind a [`CachedTranslator`]; also the
/// handle admin surfaces (stats, clear) operate on.
pub struct NarrationCache {
    config: CacheConfig,
    /// fingerprint-key → narration.
    lru: ShardedLru<CachedEntry>,
    /// exact-document digest → canonical tree fingerprint (L1: skips
    /// re-parsing byte-identical submissions).
    doc_index: ShardedLru<Fingerprint>,
    /// fingerprint-key → in-flight computation.
    inflight: Mutex<HashMap<u128, Arc<InFlight>>>,
    doc_hits: AtomicU64,
    coalesced: AtomicU64,
    batch_dedup_hits: AtomicU64,
    uncacheable: AtomicU64,
    clears: AtomicU64,
}

impl NarrationCache {
    /// A fresh, empty cache.
    pub fn new(config: CacheConfig) -> Self {
        NarrationCache {
            lru: ShardedLru::new(config.shards, config.max_entries, config.max_bytes),
            // The document index holds 16-byte fingerprints; give it
            // more entries than the narration LRU so L1 keys for live
            // narrations are rarely the eviction victim.
            doc_index: ShardedLru::new(
                config.shards,
                config.max_entries.saturating_mul(4),
                u64::MAX,
            ),
            inflight: Mutex::new(HashMap::new()),
            doc_hits: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            batch_dedup_hits: AtomicU64::new(0),
            uncacheable: AtomicU64::new(0),
            clears: AtomicU64::new(0),
            config,
        }
    }

    /// The configuration the cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Drop every cached narration and document-index entry; returns
    /// the number of narrations dropped. In-flight computations finish
    /// and insert their (fresh) results afterwards.
    pub fn clear(&self) -> u64 {
        let dropped = self.lru.clear();
        self.doc_index.clear();
        self.clears.fetch_add(1, Ordering::Relaxed);
        dropped
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStatsSnapshot {
        let lru: LruStats = self.lru.stats();
        CacheStatsSnapshot {
            entries: lru.entries,
            bytes: lru.bytes,
            max_entries: self.config.max_entries as u64,
            max_bytes: self.config.max_bytes,
            shards: self.lru.shard_count() as u64,
            hits: lru.hits,
            misses: lru.misses,
            insertions: lru.insertions,
            evictions: lru.evictions,
            doc_hits: self.doc_hits.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            batch_dedup_hits: self.batch_dedup_hits.load(Ordering::Relaxed),
            uncacheable: self.uncacheable.load(Ordering::Relaxed),
            clears: self.clears.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for NarrationCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NarrationCache")
            .field("config", &self.config)
            .field("entries", &self.lru.len())
            .finish_non_exhaustive()
    }
}

/// Plain-data counter snapshot of a [`NarrationCache`] — the `cache`
/// object of the service's `GET /stats` body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStatsSnapshot {
    /// Narrations currently resident.
    pub entries: u64,
    /// Approximate resident bytes.
    pub bytes: u64,
    /// Configured entry budget.
    pub max_entries: u64,
    /// Configured byte budget.
    pub max_bytes: u64,
    /// Lock stripes.
    pub shards: u64,
    /// Narration-LRU hits (batch-dedup stitches included).
    pub hits: u64,
    /// Narration-LRU misses.
    pub misses: u64,
    /// Narrations inserted.
    pub insertions: u64,
    /// Narrations evicted by the entry/byte budgets.
    pub evictions: u64,
    /// Exact-document (L1) index hits: re-submissions that skipped
    /// parsing entirely.
    pub doc_hits: u64,
    /// Misses coalesced onto another thread's in-flight narration.
    pub coalesced: u64,
    /// Batch items answered by another item of the *same* batch.
    pub batch_dedup_hits: u64,
    /// Requests that could not be keyed (e.g. unparseable documents).
    pub uncacheable: u64,
    /// Times the cache was cleared.
    pub clears: u64,
}

/// Admin surface of a cache-fronted translator, object-safe so serving
/// layers can hold it type-erased next to the [`Translator`] itself:
/// bypassing the cache for one request (`?nocache=1`), reading the
/// counters, and clearing.
pub trait CacheControl {
    /// Narrate without consulting or filling the cache.
    fn narrate_uncached(&self, req: &NarrationRequest) -> Result<NarrationResponse, LanternError>;

    /// Batch-narrate without consulting or filling the cache.
    fn narrate_batch_uncached(
        &self,
        reqs: &[NarrationRequest],
    ) -> Vec<Result<NarrationResponse, LanternError>>;

    /// Counter snapshot.
    fn cache_stats(&self) -> CacheStatsSnapshot;

    /// Drop all cached narrations; returns how many were resident.
    fn clear_cache(&self) -> u64;
}

/// A [`Translator`] decorator that answers repeated plans from the
/// [`NarrationCache`]. Transparent: `backend()` and every response are
/// byte-identical to the inner translator's (regression-tested), only
/// faster on repeats.
pub struct CachedTranslator<T> {
    inner: T,
    cache: Arc<NarrationCache>,
    /// Configuration epoch folded into every key; bump it (e.g. the
    /// POEM catalog version) and every cached narration goes stale at
    /// once without an explicit flush.
    generation: Arc<dyn Fn() -> u64 + Send + Sync>,
}

impl<T: Translator> CachedTranslator<T> {
    /// Wrap `inner` with a fresh cache. The generation is constant
    /// until [`CachedTranslator::with_generation`] wires a real source.
    pub fn new(inner: T, config: CacheConfig) -> Self {
        CachedTranslator {
            inner,
            cache: Arc::new(NarrationCache::new(config)),
            generation: Arc::new(|| 0),
        }
    }

    /// Key every narration by `generation()`'s current value — wire the
    /// POEM store's catalog version here so POOL mutations invalidate
    /// the cache implicitly.
    pub fn with_generation(mut self, generation: impl Fn() -> u64 + Send + Sync + 'static) -> Self {
        self.generation = Arc::new(generation);
        self
    }

    /// The shared cache state (stats, clear).
    pub fn cache(&self) -> &Arc<NarrationCache> {
        &self.cache
    }

    /// The wrapped translator.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    fn fingerprint_opts(&self) -> FingerprintOptions {
        FingerprintOptions {
            strict: self.cache.config.strict,
        }
    }

    /// Canonical tree fingerprint of the request's plan, through the
    /// exact-document L1 index when the source is serialized. When the
    /// index misses and the document had to be parsed, the parsed tree
    /// rides back so a cache miss can hand it to the backend instead of
    /// parsing a second time. `None` when the document cannot be keyed
    /// (it will not parse; the inner backend owns producing the
    /// structured error).
    fn tree_fingerprint(
        &self,
        req: &NarrationRequest,
    ) -> Option<(Fingerprint, Option<Box<lantern_plan::PlanTree>>)> {
        let opts = self.fingerprint_opts();
        let (format_tag, doc) = match &req.source {
            PlanSource::Tree(tree) => return Some((fingerprint_tree(tree, opts), None)),
            PlanSource::PgJson(doc) => (0u8, doc),
            PlanSource::SqlServerXml(doc) => (1u8, doc),
        };
        let doc_key = fingerprint_document(format_tag, doc);
        if let Some(fp) = self.cache.doc_index.get(doc_key) {
            self.cache.doc_hits.fetch_add(1, Ordering::Relaxed);
            return Some((fp, None));
        }
        let tree = req.source.resolve().ok()?;
        let fp = fingerprint_tree(&tree, opts);
        // ~16 payload bytes per index entry; weight is nominal.
        self.cache.doc_index.insert(doc_key, fp, 16);
        Some((fp, Some(Box::new(tree))))
    }

    /// The full cache key — tree fingerprint ⊕ backend ⊕ style override
    /// ⊕ generation — plus the parsed tree when keying had to parse.
    /// A `None` key marks the request uncacheable.
    fn request_key(
        &self,
        req: &NarrationRequest,
    ) -> (Option<Fingerprint>, Option<Box<lantern_plan::PlanTree>>) {
        let (tree_fp, parsed) = match self.tree_fingerprint(req) {
            Some(keyed) => keyed,
            None => {
                self.cache.uncacheable.fetch_add(1, Ordering::Relaxed);
                return (None, None);
            }
        };
        let mut h = Hasher128::new("lantern/req-key/v1");
        h.write(&tree_fp.0.to_le_bytes());
        h.write_str(self.inner.backend());
        match req.style {
            None => h.write_u8(0),
            Some(style) => {
                h.write_u8(1);
                h.write_u8(match style {
                    RenderStyle::Numbered => 0,
                    RenderStyle::Paragraph => 1,
                    RenderStyle::Bulleted => 2,
                });
            }
        }
        h.write_u64((self.generation)());
        (Some(h.finish()), parsed)
    }

    /// The request a cache miss forwards to the backend: when keying
    /// already parsed the document, the backend gets the parsed tree
    /// (narration is source-agnostic past parsing) so a miss costs one
    /// parse, not two.
    fn miss_request(
        req: &NarrationRequest,
        parsed: Option<Box<lantern_plan::PlanTree>>,
    ) -> Option<NarrationRequest> {
        parsed.map(|tree| NarrationRequest {
            source: PlanSource::Tree(tree),
            style: req.style,
        })
    }

    /// Rebuild a response from a cached entry. The key covers backend,
    /// plan, style, and generation, so the reconstruction is
    /// byte-identical to what the inner translator returned when the
    /// entry was filled.
    fn response_of(&self, entry: &CachedEntry) -> NarrationResponse {
        NarrationResponse {
            backend: self.inner.backend().to_string(),
            narration: (*entry.narration).clone(),
            text: entry.text.to_string(),
        }
    }

    fn store(&self, key: Fingerprint, resp: &NarrationResponse) -> CachedEntry {
        let (entry, bytes) = CachedEntry::of(resp);
        self.cache.lru.insert(key, entry.clone(), bytes);
        entry
    }

    /// Miss path with single-flight coalescing: become the leader (and
    /// narrate), or wait for the leader's outcome.
    fn narrate_miss(
        &self,
        key: Fingerprint,
        req: &NarrationRequest,
    ) -> Result<NarrationResponse, LanternError> {
        let flight = {
            let mut inflight = self
                .cache
                .inflight
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            match inflight.get(&key.0) {
                Some(flight) => {
                    let flight = Arc::clone(flight);
                    drop(inflight);
                    // Follower: block until the leader publishes.
                    self.cache.coalesced.fetch_add(1, Ordering::Relaxed);
                    let mut done = flight.done.lock().unwrap_or_else(|e| e.into_inner());
                    while done.is_none() {
                        done = flight.cv.wait(done).unwrap_or_else(|e| e.into_inner());
                    }
                    let outcome = done.clone().expect("loop exits only when published");
                    return outcome.map(|entry| self.response_of(&entry));
                }
                None => {
                    let flight = Arc::new(InFlight {
                        done: Mutex::new(None),
                        cv: Condvar::new(),
                    });
                    inflight.insert(key.0, Arc::clone(&flight));
                    flight
                }
            }
        };
        // Leader: narrate, publish (even on panic — followers must not
        // hang), cache successes.
        let guard = FlightGuard {
            cache: &self.cache,
            key,
            flight: &flight,
            published: false,
        };
        // Re-probe before computing: another leader may have filled the
        // entry between this thread's (counted) miss and winning the
        // flight; serving the resident narration avoids a duplicate
        // backend call (~ms on the neural backend).
        if let Some(entry) = self.cache.lru.probe(key) {
            let response = self.response_of(&entry);
            guard.publish(Ok(entry));
            return Ok(response);
        }
        let result = self.inner.narrate(req);
        let outcome = match &result {
            Ok(resp) => Ok(self.store(key, resp)),
            Err(e) => Err(e.clone()),
        };
        guard.publish(outcome);
        result
    }
}

/// Publishes the leader's outcome exactly once; if the leader panics
/// before publishing, `Drop` publishes a structured error so coalesced
/// followers wake instead of hanging.
struct FlightGuard<'a> {
    cache: &'a NarrationCache,
    key: Fingerprint,
    flight: &'a InFlight,
    published: bool,
}

impl FlightGuard<'_> {
    fn publish(mut self, outcome: Result<CachedEntry, LanternError>) {
        self.publish_inner(outcome);
        self.published = true;
    }

    fn publish_inner(&self, outcome: Result<CachedEntry, LanternError>) {
        // Cache insert happened before this call; removing the flight
        // after publishing means late arrivals either hit the LRU or
        // start a fresh flight — never wait on a dead one.
        *self.flight.done.lock().unwrap_or_else(|e| e.into_inner()) = Some(outcome);
        self.flight.cv.notify_all();
        self.cache
            .inflight
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&self.key.0);
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if !self.published {
            self.publish_inner(Err(LanternError::Backend {
                backend: "cache".to_string(),
                message: "narration leader panicked before completing".to_string(),
            }));
        }
    }
}

impl<T: Translator> Translator for CachedTranslator<T> {
    fn backend(&self) -> &str {
        self.inner.backend()
    }

    fn narrate(&self, req: &NarrationRequest) -> Result<NarrationResponse, LanternError> {
        let (key, parsed) = {
            let _fp = lantern_obs::span(lantern_obs::Stage::Fingerprint);
            self.request_key(req)
        };
        let Some(key) = key else {
            return self.inner.narrate(req);
        };
        // Ties the plan's cache key to the request id in the slow log
        // (no-op unless a trace is active on this thread).
        lantern_obs::note_fingerprint(|| format!("{:032x}", key.0));
        let hit = {
            let _lookup = lantern_obs::span(lantern_obs::Stage::CacheLookup);
            self.cache.lru.get(key)
        };
        if let Some(entry) = hit {
            return Ok(self.response_of(&entry));
        }
        let rewritten = Self::miss_request(req, parsed);
        self.narrate_miss(key, rewritten.as_ref().unwrap_or(req))
    }

    /// In-batch dedup: fingerprint everything, answer resident keys
    /// from the cache, narrate only the *unique* misses through the
    /// inner backend's batch path (keeping its snapshot-pinning /
    /// fan-out advantages), then stitch results back in request order.
    fn narrate_batch(
        &self,
        reqs: &[NarrationRequest],
    ) -> Vec<Result<NarrationResponse, LanternError>> {
        let mut keyed: Vec<(Option<Fingerprint>, Option<Box<lantern_plan::PlanTree>>)> = {
            let _fp = lantern_obs::span(lantern_obs::Stage::Fingerprint);
            reqs.iter().map(|r| self.request_key(r)).collect()
        };
        let keys: Vec<Option<Fingerprint>> = keyed.iter().map(|(k, _)| *k).collect();
        let mut out: Vec<Option<Result<NarrationResponse, LanternError>>> =
            (0..reqs.len()).map(|_| None).collect();
        // Resident hits first.
        let _lookup = lantern_obs::span(lantern_obs::Stage::CacheLookup);
        for (i, key) in keys.iter().enumerate() {
            if let Some(key) = key {
                if let Some(entry) = self.cache.lru.get(*key) {
                    out[i] = Some(Ok(self.response_of(&entry)));
                }
            }
        }
        drop(_lookup);
        // Unique misses: first occurrence of each key narrates;
        // uncacheable requests are each their own occurrence.
        let mut first_of: HashMap<u128, usize> = HashMap::new();
        let mut unique: Vec<usize> = Vec::new();
        for (i, key) in keys.iter().enumerate() {
            if out[i].is_some() {
                continue;
            }
            match key {
                Some(key) => {
                    if let std::collections::hash_map::Entry::Vacant(slot) = first_of.entry(key.0) {
                        slot.insert(i);
                        unique.push(i);
                    }
                }
                None => unique.push(i),
            }
        }
        if !unique.is_empty() {
            let unique_reqs: Vec<NarrationRequest> = unique
                .iter()
                .map(|&i| {
                    Self::miss_request(&reqs[i], keyed[i].1.take())
                        .unwrap_or_else(|| reqs[i].clone())
                })
                .collect();
            let results = self.inner.narrate_batch(&unique_reqs);
            for (slot, result) in unique.iter().zip(results) {
                if let (Some(key), Ok(resp)) = (&keys[*slot], &result) {
                    self.store(*key, resp);
                }
                out[*slot] = Some(result);
            }
        }
        // Duplicates ride on their representative's result.
        for i in 0..reqs.len() {
            if out[i].is_some() {
                continue;
            }
            let key = keys[i].expect("only keyed requests can be deferred");
            let rep = first_of[&key.0];
            self.cache.batch_dedup_hits.fetch_add(1, Ordering::Relaxed);
            out[i] = Some(match &out[rep] {
                Some(result) => result.clone(),
                None => Err(LanternError::Backend {
                    backend: self.inner.backend().to_string(),
                    message: "backend returned fewer batch results than requests".to_string(),
                }),
            });
        }
        out.into_iter()
            .map(|r| {
                r.unwrap_or_else(|| {
                    Err(LanternError::Backend {
                        backend: self.inner.backend().to_string(),
                        message: "backend returned fewer batch results than requests".to_string(),
                    })
                })
            })
            .collect()
    }
}

impl<T: Translator> CacheControl for CachedTranslator<T> {
    fn narrate_uncached(&self, req: &NarrationRequest) -> Result<NarrationResponse, LanternError> {
        self.inner.narrate(req)
    }

    fn narrate_batch_uncached(
        &self,
        reqs: &[NarrationRequest],
    ) -> Vec<Result<NarrationResponse, LanternError>> {
        self.inner.narrate_batch(reqs)
    }

    fn cache_stats(&self) -> CacheStatsSnapshot {
        self.cache.stats()
    }

    fn clear_cache(&self) -> u64 {
        self.cache.clear()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for CachedTranslator<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachedTranslator")
            .field("inner", &self.inner)
            .field("cache", &self.cache)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lantern_core::RuleTranslator;
    use lantern_pool::{default_mssql_store, default_pg_store};
    use std::sync::atomic::AtomicUsize;

    const PG_DOC: &str = r#"[{"Plan": {"Node Type": "Seq Scan", "Relation Name": "orders"}}]"#;
    const PG_DOC_REORDERED: &str =
        r#"  [ { "Plan" : { "Relation Name": "orders", "Node Type": "Seq Scan" } } ] "#;
    const XML_DOC: &str = r#"<ShowPlanXML><BatchSequence><Batch><Statements><StmtSimple>
        <QueryPlan><RelOp PhysicalOp="Table Scan"><Object Table="photoobj"/></RelOp></QueryPlan>
        </StmtSimple></Statements></Batch></BatchSequence></ShowPlanXML>"#;

    /// A translator that counts how many narrations actually reach it.
    struct Counting<T> {
        inner: T,
        calls: AtomicUsize,
    }

    impl<T> Counting<T> {
        fn new(inner: T) -> Self {
            Counting {
                inner,
                calls: AtomicUsize::new(0),
            }
        }
        fn calls(&self) -> usize {
            self.calls.load(Ordering::SeqCst)
        }
    }

    impl<T: Translator> Translator for Counting<T> {
        fn backend(&self) -> &str {
            self.inner.backend()
        }
        fn narrate(&self, req: &NarrationRequest) -> Result<NarrationResponse, LanternError> {
            self.calls.fetch_add(1, Ordering::SeqCst);
            self.inner.narrate(req)
        }
    }

    fn cached_rule() -> (
        &'static Counting<RuleTranslator>,
        CachedTranslator<&'static Counting<RuleTranslator>>,
    ) {
        let counting: &'static Counting<RuleTranslator> = Box::leak(Box::new(Counting::new(
            RuleTranslator::new(default_mssql_store()),
        )));
        (
            counting,
            CachedTranslator::new(counting, CacheConfig::default()),
        )
    }

    #[test]
    fn hit_is_byte_identical_and_skips_the_backend() {
        let (counting, cached) = cached_rule();
        let req = NarrationRequest::auto(PG_DOC).unwrap();
        let cold = cached.narrate(&req).unwrap();
        let warm = cached.narrate(&req).unwrap();
        assert_eq!(counting.calls(), 1, "second call must be a hit");
        assert_eq!(cold, warm);
        let stats = cached.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.doc_hits, 1, "exact re-submission skips parsing");
    }

    #[test]
    fn reordered_document_hits_the_same_entry() {
        let (counting, cached) = cached_rule();
        let a = cached
            .narrate(&NarrationRequest::auto(PG_DOC).unwrap())
            .unwrap();
        let b = cached
            .narrate(&NarrationRequest::auto(PG_DOC_REORDERED).unwrap())
            .unwrap();
        assert_eq!(counting.calls(), 1);
        assert_eq!(a, b);
        // Different bytes: the L1 document index missed, the canonical
        // fingerprint hit.
        assert_eq!(cached.cache_stats().doc_hits, 0);
        assert_eq!(cached.cache_stats().hits, 1);
    }

    #[test]
    fn style_override_is_part_of_the_key() {
        let (counting, cached) = cached_rule();
        let plain = cached
            .narrate(&NarrationRequest::auto(PG_DOC).unwrap())
            .unwrap();
        let bulleted = cached
            .narrate(
                &NarrationRequest::auto(PG_DOC)
                    .unwrap()
                    .with_style(RenderStyle::Bulleted),
            )
            .unwrap();
        assert_eq!(counting.calls(), 2, "styles must not share entries");
        assert!(plain.text.starts_with("1. "));
        assert!(bulleted.text.starts_with("- "));
    }

    #[test]
    fn generation_bump_invalidates() {
        let counting: &'static Counting<RuleTranslator> = Box::leak(Box::new(Counting::new(
            RuleTranslator::new(default_mssql_store()),
        )));
        let generation = Arc::new(AtomicU64::new(0));
        let generation_handle = Arc::clone(&generation);
        let cached = CachedTranslator::new(counting, CacheConfig::default())
            .with_generation(move || generation_handle.load(Ordering::SeqCst));
        let req = NarrationRequest::auto(PG_DOC).unwrap();
        cached.narrate(&req).unwrap();
        cached.narrate(&req).unwrap();
        assert_eq!(counting.calls(), 1);
        generation.fetch_add(1, Ordering::SeqCst);
        cached.narrate(&req).unwrap();
        assert_eq!(counting.calls(), 2, "new generation misses");
    }

    #[test]
    fn errors_are_returned_but_not_cached() {
        // pg-only store: the mssql plan fails with UnknownOperator.
        let counting: &'static Counting<RuleTranslator> = Box::leak(Box::new(Counting::new(
            RuleTranslator::new(default_pg_store()),
        )));
        let cached = CachedTranslator::new(counting, CacheConfig::default());
        let req = NarrationRequest::auto(XML_DOC).unwrap();
        assert!(matches!(
            cached.narrate(&req),
            Err(LanternError::UnknownOperator { .. })
        ));
        assert!(matches!(
            cached.narrate(&req),
            Err(LanternError::UnknownOperator { .. })
        ));
        assert_eq!(counting.calls(), 2, "errors must not be cached");
        assert_eq!(cached.cache_stats().entries, 0);
    }

    #[test]
    fn unparseable_documents_fall_through_uncached() {
        let (counting, cached) = cached_rule();
        let req = NarrationRequest::pg_json("{ definitely not json");
        assert!(matches!(
            cached.narrate(&req),
            Err(LanternError::Parse { .. })
        ));
        assert_eq!(counting.calls(), 1);
        assert_eq!(cached.cache_stats().uncacheable, 1);
    }

    #[test]
    fn batch_dedup_narrates_unique_plans_once() {
        let (counting, cached) = cached_rule();
        // 8 requests, 2 unique plans (75% duplicates).
        let reqs: Vec<NarrationRequest> = (0..8)
            .map(|i| {
                if i % 4 == 0 {
                    NarrationRequest::auto(XML_DOC).unwrap()
                } else {
                    NarrationRequest::auto(PG_DOC).unwrap()
                }
            })
            .collect();
        let out = cached.narrate_batch(&reqs);
        assert_eq!(out.len(), 8);
        assert!(out.iter().all(Result::is_ok));
        assert_eq!(counting.calls(), 2, "only the unique plans narrate");
        let stats = cached.cache_stats();
        assert_eq!(stats.batch_dedup_hits, 6);
        // Stitching preserved positions.
        assert!(out[0].as_ref().unwrap().text.contains("photoobj"));
        assert!(out[1].as_ref().unwrap().text.contains("orders"));
        // A warm batch is all hits.
        let out = cached.narrate_batch(&reqs);
        assert!(out.iter().all(Result::is_ok));
        assert_eq!(counting.calls(), 2);
    }

    #[test]
    fn batch_mixes_hits_errors_and_uncacheable() {
        let (counting, cached) = cached_rule();
        cached
            .narrate(&NarrationRequest::auto(PG_DOC).unwrap())
            .unwrap();
        let reqs = vec![
            NarrationRequest::auto(PG_DOC).unwrap(), // warm hit
            NarrationRequest::pg_json("not json"),   // uncacheable error
            NarrationRequest::auto(PG_DOC).unwrap(), // warm hit
        ];
        let out = cached.narrate_batch(&reqs);
        assert!(out[0].is_ok());
        assert!(matches!(out[1], Err(LanternError::Parse { .. })));
        assert!(out[2].is_ok());
        assert_eq!(counting.calls(), 2, "one cold narrate + one failing");
    }

    #[test]
    fn clear_empties_and_counts() {
        let (_, cached) = cached_rule();
        cached
            .narrate(&NarrationRequest::auto(PG_DOC).unwrap())
            .unwrap();
        assert_eq!(cached.clear_cache(), 1);
        let stats = cached.cache_stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.clears, 1);
    }

    #[test]
    fn nocache_path_skips_the_cache_entirely() {
        let (counting, cached) = cached_rule();
        let req = NarrationRequest::auto(PG_DOC).unwrap();
        cached.narrate_uncached(&req).unwrap();
        cached.narrate_uncached(&req).unwrap();
        assert_eq!(counting.calls(), 2);
        assert_eq!(cached.cache_stats().entries, 0);
    }
}
