//! # lantern-cache
//!
//! A plan-fingerprint narration cache for the LANTERN service stack.
//!
//! The paper's target workload is database education: many students
//! submit the *same or near-identical* queries, so an uncached service
//! re-narrates the same QEP thousands of times. This crate puts a
//! correct, concurrent answer cache in front of every backend:
//!
//! * [`fingerprint`] — canonicalization + a stable 128-bit digest over
//!   the parsed plan tree, invariant to JSON key order, whitespace, and
//!   cost-estimate jitter (opt-in strict mode includes cardinalities);
//! * [`lru`] — a sharded, lock-striped LRU bounded by entry count *and*
//!   approximate bytes, with atomic hit/miss/eviction/byte counters;
//! * [`cached`] — the [`CachedTranslator`] decorator: single-flight
//!   coalescing of concurrent identical misses, in-batch dedup in
//!   `narrate_batch`, and the [`CacheControl`] admin surface
//!   (`?nocache=1` bypass, stats, clear) the serving layer exposes.
//!
//! ## Quick start
//!
//! ```
//! use lantern_cache::{CacheConfig, CachedTranslator};
//! use lantern_core::{NarrationRequest, RuleTranslator, Translator};
//! use lantern_pool::default_pg_store;
//!
//! let store = default_pg_store();
//! let generation_store = store.clone();
//! let cached = CachedTranslator::new(RuleTranslator::new(store), CacheConfig::default())
//!     .with_generation(move || generation_store.version());
//!
//! let doc = r#"{"Plan": {"Node Type": "Seq Scan", "Relation Name": "orders"}}"#;
//! let req = NarrationRequest::auto(doc).unwrap();
//! let cold = cached.narrate(&req).unwrap(); // narrates
//! let warm = cached.narrate(&req).unwrap(); // cache hit, byte-identical
//! assert_eq!(cold, warm);
//! assert_eq!(cached.cache().stats().hits, 1);
//! ```
//!
//! The root crate wires this through `LanternBuilder::cache`, and
//! `lantern-serve` exposes the admin surface over HTTP (`?nocache=1`,
//! `POST /cache/clear`, cache counters inside `GET /stats`).

pub mod cached;
pub mod fingerprint;
pub mod lru;

pub use cached::{CacheConfig, CacheControl, CacheStatsSnapshot, CachedTranslator, NarrationCache};
pub use fingerprint::{
    fingerprint_document, fingerprint_subtree, fingerprint_tree, Fingerprint, FingerprintOptions,
    Hasher128,
};
pub use lru::{LruStats, ShardedLru};
