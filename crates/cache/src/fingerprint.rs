//! Plan canonicalization and fingerprinting.
//!
//! A [`Fingerprint`] is a stable 128-bit digest of a *parsed*
//! [`PlanTree`]: it hashes operator kinds, structural shape, and the
//! narration-relevant annotations (relations, predicates, sort/group
//! keys, …), so two documents that differ only in JSON key order,
//! whitespace, or cost-estimate jitter fingerprint identically — the
//! classroom repetition pattern the cache exists for. An opt-in strict
//! mode ([`FingerprintOptions::strict`]) additionally folds the
//! optimizer's cardinality and cost estimates into the digest for
//! workloads where those matter (e.g. teaching cost-based planning).
//!
//! The digest is 128-bit FNV-1a over a canonical byte stream with
//! explicit field tags and length prefixes, so adjacent fields can
//! never alias (`"ab" + "c"` vs `"a" + "bc"`) and an absent field can
//! never collide with an empty one. FNV is not cryptographic — the
//! cache is a performance layer, not a security boundary — but at 128
//! bits accidental collisions are beyond negligible for any plausible
//! plan corpus.

use lantern_plan::{PlanNode, PlanTree};
use std::fmt;

/// 128-bit FNV-1a offset basis.
const FNV_BASIS: u128 = 0x6c62272e07bb014262b821756295c58d;
/// 128-bit FNV-1a prime.
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

/// A stable 128-bit plan digest; the narration cache's key material.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl Fingerprint {
    /// The shard a fingerprint maps to among `shards` (a power of two):
    /// the *high* bits, so keys spread evenly even if low bits ever
    /// correlate with insertion order.
    pub fn shard(&self, shards: usize) -> usize {
        debug_assert!(shards.is_power_of_two());
        let bits = shards.trailing_zeros();
        if bits == 0 {
            0
        } else {
            (self.0 >> (128 - bits)) as usize
        }
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl fmt::Debug for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fingerprint({:032x})", self.0)
    }
}

/// Knobs for [`fingerprint_tree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FingerprintOptions {
    /// Include the optimizer's cardinality (`estimated_rows`) and cost
    /// (`estimated_cost`) estimates in the digest. Off by default:
    /// narration output does not depend on them, and re-`EXPLAIN`ing
    /// the same query after an `ANALYZE` jitters both.
    pub strict: bool,
}

impl FingerprintOptions {
    /// The strict profile: cardinalities and costs are significant.
    pub fn strict() -> Self {
        FingerprintOptions { strict: true }
    }
}

/// Incremental 128-bit FNV-1a writer with the framing helpers the
/// canonical encoding uses.
pub struct Hasher128 {
    state: u128,
}

impl Hasher128 {
    /// Fresh hasher seeded with a domain-separation string, so digests
    /// from different key spaces (plan trees, raw documents, request
    /// keys) can never collide by construction.
    pub fn new(domain: &str) -> Self {
        let mut h = Hasher128 { state: FNV_BASIS };
        h.write(domain.as_bytes());
        h
    }

    /// Feed raw bytes: FNV-1a widened to an 8-byte stride, so hashing
    /// a multi-kilobyte `EXPLAIN` document costs two ops per word
    /// instead of per byte — the document digest sits on the cache's
    /// *hit* path, where byte-at-a-time hashing would rival the parse
    /// it exists to skip. The input length folds in at the end so a
    /// zero-padded tail cannot alias a genuine trailing zero byte.
    pub fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")) as u128;
            self.state = (self.state ^ word).wrapping_mul(FNV_PRIME);
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.state = (self.state ^ u64::from_le_bytes(tail) as u128).wrapping_mul(FNV_PRIME);
        }
        self.state = (self.state ^ bytes.len() as u128).wrapping_mul(FNV_PRIME);
    }

    /// Feed one tag/marker byte.
    pub fn write_u8(&mut self, b: u8) {
        self.write(&[b]);
    }

    /// Feed a 64-bit integer (length prefixes, counts, generations).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Feed a length-prefixed string verbatim.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// Feed an optional length-prefixed string with a presence marker
    /// (absent and empty must not alias).
    pub fn write_opt_str(&mut self, s: Option<&str>) {
        match s {
            Some(s) => {
                self.write_u8(1);
                self.write_str(s);
            }
            None => self.write_u8(0),
        }
    }

    /// Feed a count-prefixed ordered string list.
    pub fn write_strs(&mut self, items: &[String]) {
        self.write_u64(items.len() as u64);
        for s in items {
            self.write_str(s);
        }
    }

    /// Feed a string case-folded with internal whitespace runs
    /// collapsed to single spaces (vendor operator names differ in
    /// capitalization and spacing conventions).
    pub fn write_normalized(&mut self, s: &str) {
        let mut pending_space = false;
        let mut started = false;
        let mut buf = [0u8; 4];
        // Length prefix cannot be known up-front without allocating;
        // close with a sentinel tag instead (0xFF never appears in
        // UTF-8 text).
        for c in s.chars() {
            if c.is_whitespace() {
                pending_space = started;
                continue;
            }
            if pending_space {
                self.write_u8(b' ');
                pending_space = false;
            }
            started = true;
            for lc in c.to_lowercase() {
                self.write(lc.encode_utf8(&mut buf).as_bytes());
            }
        }
        self.write_u8(0xFF);
    }

    /// Final digest, xor-folded so the *high* bits (which pick the LRU
    /// shard) avalanche on the last inputs too.
    pub fn finish(self) -> Fingerprint {
        let mut state = self.state;
        state ^= state >> 67;
        state = state.wrapping_mul(FNV_PRIME);
        state ^= state >> 61;
        Fingerprint(state)
    }
}

// Field tags of the canonical node encoding. New fields get new tags;
// existing tags are a compatibility surface for persisted fingerprints.
const TAG_NODE: u8 = 0x01;
const TAG_RELATION: u8 = 0x02;
const TAG_ALIAS: u8 = 0x03;
const TAG_INDEX: u8 = 0x04;
const TAG_FILTER: u8 = 0x05;
const TAG_JOIN_COND: u8 = 0x06;
const TAG_SORT_KEYS: u8 = 0x07;
const TAG_GROUP_KEYS: u8 = 0x08;
const TAG_STRATEGY: u8 = 0x09;
const TAG_ESTIMATES: u8 = 0x0A;
const TAG_EXTRA: u8 = 0x0B;
const TAG_CHILDREN: u8 = 0x0C;

fn write_node(h: &mut Hasher128, node: &PlanNode, opts: FingerprintOptions) {
    h.write_u8(TAG_NODE);
    h.write_normalized(&node.op);
    h.write_u8(TAG_RELATION);
    h.write_opt_str(node.relation.as_deref());
    h.write_u8(TAG_ALIAS);
    h.write_opt_str(node.alias.as_deref());
    h.write_u8(TAG_INDEX);
    h.write_opt_str(node.index_name.as_deref());
    h.write_u8(TAG_FILTER);
    h.write_opt_str(node.filter.as_deref());
    h.write_u8(TAG_JOIN_COND);
    h.write_opt_str(node.join_cond.as_deref());
    h.write_u8(TAG_SORT_KEYS);
    h.write_strs(&node.sort_keys);
    h.write_u8(TAG_GROUP_KEYS);
    h.write_strs(&node.group_keys);
    h.write_u8(TAG_STRATEGY);
    h.write_opt_str(node.strategy.as_deref());
    if opts.strict {
        h.write_u8(TAG_ESTIMATES);
        h.write(&node.estimated_rows.to_bits().to_le_bytes());
        h.write(&node.estimated_cost.to_bits().to_le_bytes());
    }
    // `extra` is a BTreeMap: iteration order is already canonical.
    h.write_u8(TAG_EXTRA);
    h.write_u64(node.extra.len() as u64);
    for (k, v) in &node.extra {
        h.write_str(k);
        h.write_str(v);
    }
    h.write_u8(TAG_CHILDREN);
    h.write_u64(node.children.len() as u64);
    for child in &node.children {
        write_node(h, child, opts);
    }
}

/// Canonical fingerprint of a parsed plan: invariant to the source
/// document's JSON key order and whitespace (the digest never sees the
/// document), and — unless [`FingerprintOptions::strict`] — to
/// cost-estimate jitter.
pub fn fingerprint_tree(tree: &PlanTree, opts: FingerprintOptions) -> Fingerprint {
    let mut h = Hasher128::new("lantern/plan-fp/v1");
    h.write_u8(opts.strict as u8);
    h.write_normalized(&tree.source);
    write_node(&mut h, &tree.root, opts);
    h.finish()
}

/// Canonical fingerprint of one *subtree* of a parsed plan: the same
/// node encoding as [`fingerprint_tree`], under its own domain string
/// so subtree digests can never alias whole-tree digests (a one-node
/// plan and its root subtree are different keys by construction).
///
/// This is the anchor key for structural plan diffing (`lantern-diff`):
/// two subtrees with equal lax digests carry the same logical structure
/// and annotations, and equal *strict* digests additionally share the
/// optimizer's cardinality/cost estimates — so "lax-equal but
/// strict-unequal" is exactly the estimate-jitter case a diff engine
/// wants to classify separately from a real structural change.
pub fn fingerprint_subtree(node: &PlanNode, opts: FingerprintOptions) -> Fingerprint {
    let mut h = Hasher128::new("lantern/subtree-fp/v1");
    h.write_u8(opts.strict as u8);
    write_node(&mut h, node, opts);
    h.finish()
}

/// Exact-text digest of a serialized plan document: the cache's L1
/// key, mapping a byte-identical re-submission to its canonical
/// fingerprint without re-parsing. Exactly the bytes the parser
/// tolerates are ignored — the leading BOM/whitespace prefix (mirroring
/// `PlanSource::auto`) and trailing *whitespace* only; a trailing BOM
/// is a parse error and must not alias a clean document's digest.
/// `format_tag` separates the vendor key spaces.
pub fn fingerprint_document(format_tag: u8, doc: &str) -> Fingerprint {
    let mut h = Hasher128::new("lantern/doc-fp/v1");
    h.write_u8(format_tag);
    h.write_str(
        doc.trim_start_matches(|c: char| c.is_whitespace() || c == '\u{feff}')
            .trim_end(),
    );
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lantern_plan::parse_pg_json_plan;

    fn tree(doc: &str) -> PlanTree {
        parse_pg_json_plan(doc).unwrap()
    }

    const DOC: &str = r#"[{"Plan": {"Node Type": "Sort", "Sort Key": ["a"],
        "Plan Rows": 100, "Total Cost": 12.5,
        "Plans": [{"Node Type": "Seq Scan", "Relation Name": "orders",
                   "Filter": "o_orderstatus = 'F'"}]}}]"#;

    #[test]
    fn key_order_and_whitespace_do_not_matter() {
        let reordered = r#"


        [ { "Plan" : { "Plans": [{"Filter": "o_orderstatus = 'F'",
                                  "Relation Name": "orders",
                                  "Node Type": "Seq Scan"}],
                       "Total Cost": 12.5, "Plan Rows": 100,
                       "Sort Key": ["a"], "Node Type": "Sort" } } ]"#;
        let opts = FingerprintOptions::default();
        assert_eq!(
            fingerprint_tree(&tree(DOC), opts),
            fingerprint_tree(&tree(reordered), opts)
        );
    }

    #[test]
    fn cost_jitter_is_ignored_by_default_but_strict_sees_it() {
        let jittered = DOC.replace("12.5", "13.75").replace("100", "104");
        let a = tree(DOC);
        let b = tree(&jittered);
        assert_eq!(
            fingerprint_tree(&a, FingerprintOptions::default()),
            fingerprint_tree(&b, FingerprintOptions::default())
        );
        assert_ne!(
            fingerprint_tree(&a, FingerprintOptions::strict()),
            fingerprint_tree(&b, FingerprintOptions::strict())
        );
        // Strict and lax digests of the *same* tree differ too (the
        // strict flag is part of the domain).
        assert_ne!(
            fingerprint_tree(&a, FingerprintOptions::default()),
            fingerprint_tree(&a, FingerprintOptions::strict())
        );
    }

    #[test]
    fn structure_and_annotations_are_significant() {
        let base = fingerprint_tree(&tree(DOC), FingerprintOptions::default());
        for perturbed in [
            DOC.replace("Seq Scan", "Index Scan"),
            DOC.replace("orders", "lineitem"),
            DOC.replace("o_orderstatus = 'F'", "o_orderstatus = 'O'"),
            DOC.replace(r#"["a"]"#, r#"["a", "b"]"#),
        ] {
            assert_ne!(
                base,
                fingerprint_tree(&tree(&perturbed), FingerprintOptions::default()),
                "{perturbed}"
            );
        }
    }

    #[test]
    fn operator_case_is_folded_like_the_poem_store_folds_it() {
        let upper = DOC.replace("Seq Scan", "SEQ  SCAN");
        assert_eq!(
            fingerprint_tree(&tree(DOC), FingerprintOptions::default()),
            fingerprint_tree(&tree(&upper), FingerprintOptions::default())
        );
    }

    #[test]
    fn empty_and_absent_fields_do_not_alias() {
        let absent = tree(r#"{"Plan": {"Node Type": "Seq Scan"}}"#);
        let empty = tree(r#"{"Plan": {"Node Type": "Seq Scan", "Relation Name": ""}}"#);
        assert_ne!(
            fingerprint_tree(&absent, FingerprintOptions::default()),
            fingerprint_tree(&empty, FingerprintOptions::default())
        );
    }

    #[test]
    fn document_digest_strips_bom_prefix_and_outer_whitespace_only() {
        let a = fingerprint_document(0, DOC);
        assert_eq!(a, fingerprint_document(0, &format!("\u{feff}\n  {DOC}\n")));
        // Interior differences still matter (it is an exact-text key).
        assert_ne!(a, fingerprint_document(0, &DOC.replace("orders", "x")));
        // A trailing BOM is a parse error, so it must digest
        // differently from the clean document (else a warm cache would
        // answer a document the parser rejects).
        assert_ne!(a, fingerprint_document(0, &format!("{DOC}\u{feff}")));
        assert_ne!(a, fingerprint_document(0, &format!("{DOC}\u{feff}\n")));
        // And the format tag separates the key spaces.
        assert_ne!(a, fingerprint_document(1, DOC));
    }

    #[test]
    fn subtree_digest_has_its_own_domain_and_matches_across_trees() {
        let opts = FingerprintOptions::default();
        let t = tree(DOC);
        // A subtree digest never aliases the whole-tree digest of the
        // same node (domain separation), even for a one-node plan.
        let leaf = tree(r#"{"Plan": {"Node Type": "Seq Scan", "Relation Name": "orders"}}"#);
        assert_ne!(
            fingerprint_subtree(&leaf.root, opts),
            fingerprint_tree(&leaf, opts)
        );
        // The same logical subtree embedded in two different plans
        // digests identically — that is what lets a diff engine match
        // moved/shared subtrees across plans.
        let scan = &t.root.children[0];
        let rehomed = tree(
            r#"{"Plan": {"Node Type": "Limit",
                "Plans": [{"Node Type": "Seq Scan", "Relation Name": "orders",
                           "Filter": "o_orderstatus = 'F'"}]}}"#,
        );
        assert_eq!(
            fingerprint_subtree(scan, opts),
            fingerprint_subtree(&rehomed.root.children[0], opts)
        );
    }

    #[test]
    fn subtree_lax_ignores_estimates_strict_sees_them() {
        let jittered = tree(&DOC.replace("12.5", "13.75"));
        let base = tree(DOC);
        assert_eq!(
            fingerprint_subtree(&base.root, FingerprintOptions::default()),
            fingerprint_subtree(&jittered.root, FingerprintOptions::default())
        );
        assert_ne!(
            fingerprint_subtree(&base.root, FingerprintOptions::strict()),
            fingerprint_subtree(&jittered.root, FingerprintOptions::strict())
        );
    }

    #[test]
    fn shard_uses_high_bits() {
        let fp = Fingerprint(0xF000_0000_0000_0000_0000_0000_0000_0001);
        assert_eq!(fp.shard(16), 0xF);
        assert_eq!(fp.shard(1), 0);
        assert_eq!(Fingerprint(1).shard(16), 0);
    }
}
