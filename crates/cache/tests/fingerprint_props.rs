//! Property tests for plan canonicalization: the same plan fingerprints
//! identically no matter how its JSON document is formatted (key order,
//! whitespace, cost jitter), and structurally different plans
//! fingerprint differently.

use lantern_cache::{fingerprint_tree, FingerprintOptions};
use lantern_plan::{parse_pg_json_plan, PlanNode, PlanTree};
use proptest::prelude::*;

/// Strategy: random well-formed PostgreSQL-vocabulary plan trees
/// (mirrors the workspace-level property suite).
fn arb_plan(depth: u32) -> BoxedStrategy<PlanNode> {
    let leaf = (any::<u8>(), any::<bool>()).prop_map(|(rel, filtered)| {
        let mut n = PlanNode::new("Seq Scan").on_relation(format!("table_{}", rel % 7));
        if filtered {
            n.filter = Some(format!("col_{} > {}", rel % 5, rel));
        }
        n.estimated_rows = (rel as f64) * 10.0;
        n.estimated_cost = (rel as f64) * 2.5;
        n
    });
    if depth == 0 {
        return leaf.boxed();
    }
    let inner = arb_plan(depth - 1);
    let inner2 = arb_plan(depth - 1);
    prop_oneof![
        leaf,
        (inner.clone(), inner2, any::<u8>()).prop_map(|(l, r, k)| {
            PlanNode::new("Hash Join")
                .with_join_cond(format!("((a.k{0}) = (b.k{0}))", k % 4))
                .with_child(l)
                .with_child(PlanNode::new("Hash").with_child(r))
        }),
        (inner.clone(), any::<u8>()).prop_map(|(c, g)| {
            let mut agg = PlanNode::new("Aggregate");
            agg.group_keys = vec![format!("g{}", g % 3)];
            let mut sort = PlanNode::new("Sort");
            sort.sort_keys = agg.group_keys.clone();
            agg.with_child(sort.with_child(c))
        }),
        inner
            .clone()
            .prop_map(|c| PlanNode::new("Unique").with_child(c)),
        inner.prop_map(|c| PlanNode::new("Limit").with_child(c)),
    ]
    .boxed()
}

/// Tiny deterministic generator for formatting decisions, seeded per
/// proptest case.
struct Scramble(u64);

impl Scramble {
    fn next(&mut self, bound: usize) -> usize {
        // LCG (Numerical Recipes constants); formatting-quality only.
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((self.0 >> 33) as usize) % bound.max(1)
    }

    fn ws(&mut self) -> &'static str {
        ["", " ", "\n", "  ", "\t", "\n    "][self.next(6)]
    }
}

/// Emit a node as a JSON object with *rotated key order* and random
/// inter-token whitespace. Array element order (children, sort keys) is
/// semantic and preserved.
fn scrambled_json(node: &PlanNode, rng: &mut Scramble) -> String {
    let mut fields: Vec<String> = Vec::new();
    fields.push(format!("\"Node Type\":{}\"{}\"", rng.ws(), node.op));
    if let Some(r) = &node.relation {
        fields.push(format!("\"Relation Name\":{}\"{}\"", rng.ws(), r));
    }
    if let Some(f) = &node.filter {
        fields.push(format!("\"Filter\":{}\"{}\"", rng.ws(), f));
    }
    if let Some(c) = &node.join_cond {
        fields.push(format!("\"Hash Cond\":{}\"{}\"", rng.ws(), c));
    }
    if !node.sort_keys.is_empty() {
        let keys: Vec<String> = node.sort_keys.iter().map(|k| format!("\"{k}\"")).collect();
        fields.push(format!("\"Sort Key\":{}[{}]", rng.ws(), keys.join(",")));
    }
    if !node.group_keys.is_empty() {
        let keys: Vec<String> = node.group_keys.iter().map(|k| format!("\"{k}\"")).collect();
        fields.push(format!("\"Group Key\":{}[{}]", rng.ws(), keys.join(",")));
    }
    fields.push(format!("\"Plan Rows\":{}{}", rng.ws(), node.estimated_rows));
    fields.push(format!(
        "\"Total Cost\":{}{}",
        rng.ws(),
        node.estimated_cost
    ));
    if !node.children.is_empty() {
        let children: Vec<String> = node
            .children
            .iter()
            .map(|c| scrambled_json(c, rng))
            .collect();
        fields.push(format!("\"Plans\":{}[{}]", rng.ws(), children.join(",")));
    }
    // Rotate the key order by a random amount: every key order the
    // rotation can produce must fingerprint identically.
    let rot = rng.next(fields.len());
    fields.rotate_left(rot);
    let mut out = String::from("{");
    for (i, f) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(rng.ws());
        out.push_str(f);
        out.push_str(rng.ws());
    }
    out.push('}');
    out
}

fn document_of(root: &PlanNode, rng: &mut Scramble) -> String {
    format!(
        "{}[{}{{\"Plan\":{}{}}}{}]{}",
        rng.ws(),
        rng.ws(),
        rng.ws(),
        scrambled_json(root, rng),
        rng.ws(),
        rng.ws()
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any two serializations of the same plan — different key orders,
    /// different whitespace — produce the same fingerprint, and it
    /// matches the fingerprint of the in-memory tree they came from.
    #[test]
    fn formatting_never_changes_the_fingerprint(
        root in arb_plan(3),
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
    ) {
        let opts = FingerprintOptions::default();
        let reference = fingerprint_tree(&PlanTree::new("pg", root.clone()), opts);
        let doc_a = document_of(&root, &mut Scramble(seed_a));
        let doc_b = document_of(&root, &mut Scramble(seed_b));
        let tree_a = parse_pg_json_plan(&doc_a).unwrap();
        let tree_b = parse_pg_json_plan(&doc_b).unwrap();
        prop_assert_eq!(fingerprint_tree(&tree_a, opts), reference);
        prop_assert_eq!(fingerprint_tree(&tree_b, opts), reference);
    }

    /// Cost-estimate jitter is invisible to the default fingerprint but
    /// visible to strict mode.
    #[test]
    fn cost_jitter_only_matters_in_strict_mode(
        root in arb_plan(2),
        raw_jitter in any::<u16>(),
    ) {
        let jitter = (raw_jitter % 999) + 1; // never zero
        let tree = PlanTree::new("pg", root.clone());
        let mut jittered_root = root;
        jittered_root.estimated_rows += jitter as f64;
        jittered_root.estimated_cost += (jitter as f64) / 4.0;
        let jittered = PlanTree::new("pg", jittered_root);
        prop_assert_eq!(
            fingerprint_tree(&tree, FingerprintOptions::default()),
            fingerprint_tree(&jittered, FingerprintOptions::default())
        );
        prop_assert_ne!(
            fingerprint_tree(&tree, FingerprintOptions::strict()),
            fingerprint_tree(&jittered, FingerprintOptions::strict())
        );
    }

    /// Structurally different plans fingerprint differently (and the
    /// fingerprint function is deterministic on equal trees).
    #[test]
    fn distinct_structures_get_distinct_fingerprints(
        a in arb_plan(3),
        b in arb_plan(3),
    ) {
        let opts = FingerprintOptions::default();
        let ta = PlanTree::new("pg", a);
        let tb = PlanTree::new("pg", b);
        let fa = fingerprint_tree(&ta, opts);
        let fb = fingerprint_tree(&tb, opts);
        prop_assert_eq!(fa, fingerprint_tree(&ta, opts));
        // Generated trees never differ only in case/whitespace or cost
        // estimates... except exactly the cost fields of leaves; strip
        // those from the comparison by comparing strict fingerprints of
        // normalized trees instead: if the trees differ in any
        // narration-relevant way, the lax fingerprints must differ.
        if !lax_equal(&ta.root, &tb.root) {
            prop_assert_ne!(fa, fb);
        } else {
            prop_assert_eq!(fa, fb);
        }
    }
}

/// Structural equality over exactly the fields the lax fingerprint
/// hashes (everything except the cost estimates).
fn lax_equal(a: &PlanNode, b: &PlanNode) -> bool {
    a.op == b.op
        && a.relation == b.relation
        && a.alias == b.alias
        && a.index_name == b.index_name
        && a.filter == b.filter
        && a.join_cond == b.join_cond
        && a.sort_keys == b.sort_keys
        && a.group_keys == b.group_keys
        && a.strategy == b.strategy
        && a.extra == b.extra
        && a.children.len() == b.children.len()
        && a.children
            .iter()
            .zip(&b.children)
            .all(|(x, y)| lax_equal(x, y))
}
