//! Concurrency tests: many threads hammering the same fingerprint (and
//! therefore the same LRU shard) must produce exactly one backend
//! compute — the others are cache hits or single-flight followers —
//! and a mixed-key hammering must keep every counter consistent.

use lantern_cache::{CacheConfig, CacheControl, CachedTranslator};
use lantern_core::{
    LanternError, Narration, NarrationRequest, NarrationResponse, RenderStyle, Translator,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;
use std::time::Duration;

const PG_DOC: &str = r#"[{"Plan": {"Node Type": "Seq Scan", "Relation Name": "orders"}}]"#;

/// A deliberately slow backend that counts every narration reaching it:
/// the stand-in for an expensive neural decode.
struct SlowBackend {
    calls: AtomicUsize,
    delay: Duration,
}

impl SlowBackend {
    fn new(delay: Duration) -> Self {
        SlowBackend {
            calls: AtomicUsize::new(0),
            delay,
        }
    }
}

impl Translator for SlowBackend {
    fn backend(&self) -> &str {
        "slow"
    }

    fn narrate(&self, req: &NarrationRequest) -> Result<NarrationResponse, LanternError> {
        self.calls.fetch_add(1, Ordering::SeqCst);
        std::thread::sleep(self.delay);
        let tree = req.resolve_tree()?;
        Ok(NarrationResponse::new(
            self.backend(),
            Narration::from_sentences([format!("narrated {}", tree.root.op)]),
            req.effective_style(RenderStyle::default()),
        ))
    }
}

#[test]
fn concurrent_identical_misses_compute_once() {
    let backend = SlowBackend::new(Duration::from_millis(100));
    let cached = CachedTranslator::new(&backend, CacheConfig::default());
    const THREADS: usize = 8;
    let barrier = Barrier::new(THREADS);

    let texts: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let cached = &cached;
                let barrier = &barrier;
                scope.spawn(move || {
                    let req = NarrationRequest::auto(PG_DOC).unwrap();
                    // All threads release together, while the leader's
                    // 100 ms narration is guaranteed still in flight.
                    barrier.wait();
                    cached.narrate(&req).unwrap().text
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert_eq!(
        backend.calls.load(Ordering::SeqCst),
        1,
        "single-flight must coalesce concurrent identical misses"
    );
    assert!(texts.iter().all(|t| t == &texts[0]));
    let stats = cached.cache_stats();
    // Everyone but the leader either coalesced onto the flight or (if
    // scheduled late) hit the LRU; nobody recomputed.
    assert_eq!(
        stats.coalesced + stats.hits,
        (THREADS - 1) as u64,
        "{stats:?}"
    );
    assert_eq!(stats.entries, 1);
    assert_eq!(stats.insertions, 1);
}

#[test]
fn hammering_one_shard_with_hits_stays_consistent() {
    let backend = SlowBackend::new(Duration::ZERO);
    // One shard: every thread contends on the same stripe.
    let cached = CachedTranslator::new(
        &backend,
        CacheConfig {
            shards: 1,
            ..CacheConfig::default()
        },
    );
    // Warm the entry so the storm is pure hits.
    let warm_req = NarrationRequest::auto(PG_DOC).unwrap();
    cached.narrate(&warm_req).unwrap();
    assert_eq!(backend.calls.load(Ordering::SeqCst), 1);

    const THREADS: usize = 8;
    const PER_THREAD: usize = 50;
    let barrier = Barrier::new(THREADS);
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let cached = &cached;
            let barrier = &barrier;
            scope.spawn(move || {
                let req = NarrationRequest::auto(PG_DOC).unwrap();
                barrier.wait();
                for _ in 0..PER_THREAD {
                    let resp = cached.narrate(&req).unwrap();
                    assert!(resp.text.contains("Seq Scan"));
                }
            });
        }
    });

    assert_eq!(
        backend.calls.load(Ordering::SeqCst),
        1,
        "a warm shard must never recompute"
    );
    let stats = cached.cache_stats();
    assert_eq!(stats.hits, (THREADS * PER_THREAD) as u64);
    assert_eq!(stats.entries, 1);
}

#[test]
fn concurrent_distinct_plans_do_not_coalesce_with_each_other() {
    let backend = SlowBackend::new(Duration::from_millis(20));
    let cached = CachedTranslator::new(&backend, CacheConfig::default());
    const THREADS: usize = 6;
    let barrier = Barrier::new(THREADS);
    std::thread::scope(|scope| {
        for i in 0..THREADS {
            let cached = &cached;
            let barrier = &barrier;
            scope.spawn(move || {
                // Three distinct plans, two submitters each.
                let doc = format!(
                    r#"{{"Plan": {{"Node Type": "Seq Scan", "Relation Name": "t{}"}}}}"#,
                    i % 3
                );
                let req = NarrationRequest::auto(doc).unwrap();
                barrier.wait();
                let resp = cached.narrate(&req).unwrap();
                assert!(resp.text.contains(&format!("t{}", i % 3)) || resp.text.contains("Seq"));
            });
        }
    });
    let calls = backend.calls.load(Ordering::SeqCst);
    assert_eq!(calls, 3, "one compute per distinct plan, not per thread");
    let stats = cached.cache_stats();
    assert_eq!(stats.entries, 3);
    assert_eq!(stats.coalesced + stats.hits, (THREADS - 3) as u64);
}
