//! Training loop (paper §6.4.2): SGD without momentum at a fixed
//! learning rate of 0.001, minibatches of 4, up to 50 epochs, uniform
//! `[-0.1, 0.1]` initialization, model selection on validation loss,
//! and the early-stopping rule of Exp 3 (stop when the training-loss
//! fluctuation falls below a threshold).
//!
//! Minibatches are gradient-accumulated: each item's
//! [`Seq2Seq::forward_backward`] fills a [`Seq2SeqGrads`], and with
//! [`TrainOptions::parallel`] the items fan out across scoped worker
//! threads (the same pattern as `narrate_batch_parallel` in
//! `lantern-core`). Each worker owns a private accumulator; partials
//! merge in a fixed slice order, so a run is deterministic for a given
//! machine, and a `batch_size` of 1 is bit-identical to the sequential
//! path regardless of `parallel`.

use crate::seq2seq::{Seq2Seq, Seq2SeqGrads};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One training pair: input token ids, target token ids (specials
/// excluded; the model adds `<BOS>`/`<END>`).
pub type Pair = (Vec<usize>, Vec<usize>);

/// Training options.
#[derive(Debug, Clone)]
pub struct TrainOptions {
    /// Epoch budget (paper: 50).
    pub epochs: usize,
    /// Minibatch size (paper: 4).
    pub batch_size: usize,
    /// Learning rate (paper: 0.001; scale up for the small models in
    /// tests/benches).
    pub learning_rate: f32,
    /// Gradient-clipping norm.
    pub clip: f32,
    /// Early stopping on training-loss fluctuation (paper Exp 3:
    /// threshold 0.001); `None` disables.
    pub early_stop_fluctuation: Option<f32>,
    /// Shuffle seed.
    pub seed: u64,
    /// Fan minibatch items out across scoped worker threads (capped by
    /// `available_parallelism` and the batch size; a single-item batch
    /// always runs in-thread). Off by default: the slice boundaries
    /// follow the machine's core count, so parallel results at
    /// `batch_size > 1` are reproducible per machine but not across
    /// machines — opt in where throughput beats cross-host
    /// bit-reproducibility.
    pub parallel: bool,
}

impl Default for TrainOptions {
    fn default() -> Self {
        TrainOptions {
            epochs: 50,
            batch_size: 4,
            learning_rate: 0.001,
            clip: 5.0,
            early_stop_fluctuation: Some(0.001),
            seed: 0,
            parallel: false,
        }
    }
}

/// Early-stopping monitor on training-loss fluctuation.
#[derive(Debug, Clone)]
pub struct EarlyStopping {
    threshold: f32,
    last: Option<f32>,
}

impl EarlyStopping {
    /// New monitor with the given fluctuation threshold.
    pub fn new(threshold: f32) -> Self {
        EarlyStopping {
            threshold,
            last: None,
        }
    }

    /// Feed this epoch's training loss; returns `true` when training
    /// should stop.
    pub fn should_stop(&mut self, loss: f32) -> bool {
        let stop = match self.last {
            Some(prev) => (prev - loss).abs() < self.threshold,
            None => false,
        };
        self.last = Some(loss);
        stop
    }
}

/// Per-epoch record.
#[derive(Debug, Clone)]
pub struct EpochStats {
    /// 1-based epoch number.
    pub epoch: usize,
    /// Mean training loss.
    pub train_loss: f32,
    /// Mean validation loss.
    pub val_loss: f32,
    /// Validation `sparse_categorical_accuracy`.
    pub val_accuracy: f64,
}

/// Full training report.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// One entry per completed epoch.
    pub epochs: Vec<EpochStats>,
    /// Epoch whose model was selected (lowest validation loss).
    pub best_epoch: usize,
    /// Whether early stopping fired.
    pub early_stopped: bool,
}

impl TrainReport {
    /// Final validation accuracy of the selected epoch.
    pub fn best_val_accuracy(&self) -> f64 {
        self.epochs
            .iter()
            .find(|e| e.epoch == self.best_epoch)
            .map(|e| e.val_accuracy)
            .unwrap_or(0.0)
    }
}

/// Accumulate one minibatch's gradients into `grads` (which the caller
/// has cleared) and return the summed per-item loss. With `parallel`,
/// the chunk splits into contiguous slices, one scoped worker per
/// slice, each filling a private accumulator; partials merge in slice
/// order so the result does not depend on thread scheduling.
fn accumulate_batch(
    model: &Seq2Seq,
    train: &[Pair],
    chunk: &[usize],
    grads: &mut Seq2SeqGrads,
    parallel: bool,
) -> f32 {
    let workers = if parallel {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(chunk.len())
    } else {
        1
    };
    if workers <= 1 {
        let mut batch_loss = 0.0f32;
        for &i in chunk {
            let (input, target) = &train[i];
            let (loss, _, _) = model.forward_backward(input, target, grads);
            batch_loss += loss;
        }
        return batch_loss;
    }
    let slice_len = chunk.len().div_ceil(workers);
    let partials: Vec<(f32, Seq2SeqGrads)> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunk
            .chunks(slice_len)
            .map(|slice| {
                scope.spawn(move || {
                    let mut local = Seq2SeqGrads::zeros(model);
                    let mut loss = 0.0f32;
                    for &i in slice {
                        let (input, target) = &train[i];
                        loss += model.forward_backward(input, target, &mut local).0;
                    }
                    (loss, local)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("minibatch worker panicked"))
            .collect()
    });
    let mut batch_loss = 0.0f32;
    for (loss, local) in &partials {
        batch_loss += loss;
        grads.merge(local);
    }
    batch_loss
}

/// Trainer owning the shuffle RNG.
pub struct Trainer {
    options: TrainOptions,
}

impl Trainer {
    /// New trainer.
    pub fn new(options: TrainOptions) -> Self {
        Trainer { options }
    }

    /// Train `model` on `train`, validating on `val` each epoch; the
    /// model with the lowest validation loss is kept (paper: "We
    /// select our model based on the validation loss").
    pub fn train(&self, model: &mut Seq2Seq, train: &[Pair], val: &[Pair]) -> TrainReport {
        let mut rng = StdRng::seed_from_u64(self.options.seed);
        let mut order: Vec<usize> = (0..train.len()).collect();
        let mut grads = Seq2SeqGrads::zeros(model);
        let mut best: Option<(f32, Seq2Seq, usize)> = None;
        let mut stopper = self.options.early_stop_fluctuation.map(EarlyStopping::new);
        let mut epochs = Vec::new();
        let mut early_stopped = false;
        for epoch in 1..=self.options.epochs {
            order.shuffle(&mut rng);
            let mut train_loss = 0.0f32;
            let mut batches = 0usize;
            for chunk in order.chunks(self.options.batch_size.max(1)) {
                grads.clear();
                let batch_loss =
                    accumulate_batch(model, train, chunk, &mut grads, self.options.parallel);
                model.apply_gradients(
                    &mut grads,
                    self.options.learning_rate / chunk.len() as f32,
                    self.options.clip,
                );
                train_loss += batch_loss / chunk.len() as f32;
                batches += 1;
            }
            train_loss /= batches.max(1) as f32;
            let (val_loss, val_accuracy) = evaluate_set(model, val);
            epochs.push(EpochStats {
                epoch,
                train_loss,
                val_loss,
                val_accuracy,
            });
            if best.as_ref().is_none_or(|(b, _, _)| val_loss < *b) {
                best = Some((val_loss, model.clone(), epoch));
            }
            if let Some(s) = stopper.as_mut() {
                if s.should_stop(train_loss) {
                    early_stopped = true;
                    break;
                }
            }
        }
        let best_epoch = match best {
            Some((_, best_model, epoch)) => {
                *model = best_model;
                epoch
            }
            None => 0,
        };
        TrainReport {
            epochs,
            best_epoch,
            early_stopped,
        }
    }
}

/// Mean loss and token accuracy over a dataset.
pub fn evaluate_set(model: &Seq2Seq, data: &[Pair]) -> (f32, f64) {
    if data.is_empty() {
        return (0.0, 0.0);
    }
    let mut loss = 0.0f32;
    let mut correct = 0usize;
    let mut total = 0usize;
    for (input, target) in data {
        let (l, c, t) = model.evaluate(input, target);
        loss += l;
        correct += c;
        total += t;
    }
    (
        loss / data.len() as f32,
        correct as f64 / total.max(1) as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq2seq::Seq2SeqConfig;

    fn tiny_model(seed: u64) -> Seq2Seq {
        Seq2Seq::new(Seq2SeqConfig {
            input_vocab: 12,
            output_vocab: 12,
            hidden: 20,
            encoder_embed_dim: 6,
            decoder_embed_dim: 6,
            attention_dim: 8,
            share_recurrent_weights: false,
            init_scale: 0.1,
            seed,
        })
    }

    fn copy_pairs() -> Vec<Pair> {
        let mut v = Vec::new();
        for a in 4..10 {
            for b in 4..10 {
                v.push((vec![a, b], vec![a, b]));
            }
        }
        v
    }

    #[test]
    fn training_improves_validation_accuracy() {
        // Validation drawn from the training distribution (every 4th
        // pair) — this exercises the loop mechanics and model
        // selection; generalization at tiny scale is covered by the
        // neural-lantern integration tests.
        let mut model = tiny_model(3);
        let data = copy_pairs();
        let train: Vec<Pair> = data.clone();
        let val: Vec<Pair> = data.iter().step_by(4).cloned().collect();
        let options = TrainOptions {
            epochs: 120,
            batch_size: 4,
            learning_rate: 0.5,
            clip: 5.0,
            early_stop_fluctuation: None,
            seed: 1,
            parallel: true,
        };
        let report = Trainer::new(options).train(&mut model, &train, &val);
        let first = &report.epochs[0];
        let last = report.epochs.last().unwrap();
        assert!(
            last.val_loss < first.val_loss,
            "{} -> {}",
            first.val_loss,
            last.val_loss
        );
        assert!(
            report.best_val_accuracy() > 0.6,
            "{}",
            report.best_val_accuracy()
        );
    }

    #[test]
    fn early_stopping_fires_on_plateau() {
        let mut s = EarlyStopping::new(0.01);
        assert!(!s.should_stop(1.0));
        assert!(!s.should_stop(0.5));
        assert!(s.should_stop(0.495));
    }

    #[test]
    fn model_selection_restores_best_epoch() {
        let mut model = tiny_model(4);
        let data = copy_pairs();
        let (train, val) = data.split_at(30);
        let options = TrainOptions {
            epochs: 10,
            batch_size: 4,
            learning_rate: 0.3,
            clip: 5.0,
            early_stop_fluctuation: None,
            seed: 2,
            parallel: true,
        };
        let report = Trainer::new(options).train(&mut model, train, val);
        // The restored model's val loss equals the best epoch's.
        let (val_loss, _) = evaluate_set(&model, val);
        let best = report
            .epochs
            .iter()
            .map(|e| e.val_loss)
            .fold(f32::INFINITY, f32::min);
        assert!((val_loss - best).abs() < 1e-4, "{val_loss} vs {best}");
    }

    #[test]
    fn deterministic_given_seeds() {
        let run = || {
            let mut model = tiny_model(5);
            let data = copy_pairs();
            let (train, val) = data.split_at(30);
            let options = TrainOptions {
                epochs: 3,
                batch_size: 4,
                learning_rate: 0.2,
                clip: 5.0,
                early_stop_fluctuation: None,
                seed: 3,
                parallel: true,
            };
            Trainer::new(options)
                .train(&mut model, train, val)
                .epochs
                .iter()
                .map(|e| e.train_loss)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn batch_size_one_parallel_is_bitwise_sequential() {
        // A single-item minibatch never splits, so the parallel trainer
        // must reproduce the sequential trainer exactly — same losses,
        // same weights — on any machine.
        let run = |parallel: bool| {
            let mut model = tiny_model(6);
            let data = copy_pairs();
            let (train, val) = data.split_at(30);
            let options = TrainOptions {
                epochs: 3,
                batch_size: 1,
                learning_rate: 0.2,
                clip: 5.0,
                early_stop_fluctuation: None,
                seed: 4,
                parallel,
            };
            let report = Trainer::new(options).train(&mut model, train, val);
            let losses: Vec<f32> = report.epochs.iter().map(|e| e.train_loss).collect();
            (
                losses,
                model.w_out.data.clone(),
                model.encoder.v.data.clone(),
            )
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn parallel_minibatch_converges_like_sequential() {
        // Beyond batch_size=1 the merge order differs from pure
        // sequential accumulation, so losses need not be bitwise equal
        // — but both must converge on the copy task.
        let run = |parallel: bool| {
            let mut model = tiny_model(7);
            let data = copy_pairs();
            let options = TrainOptions {
                epochs: 90,
                batch_size: 6,
                learning_rate: 0.5,
                clip: 5.0,
                early_stop_fluctuation: None,
                seed: 5,
                parallel,
            };
            let report = Trainer::new(options).train(&mut model, &data, &data[..8]);
            (
                report.epochs.first().unwrap().val_loss,
                report
                    .epochs
                    .iter()
                    .map(|e| e.val_loss)
                    .fold(f32::INFINITY, f32::min),
            )
        };
        for parallel in [false, true] {
            let (first, best) = run(parallel);
            assert!(best < first * 0.5, "parallel={parallel}: {first} -> {best}");
        }
    }
}
