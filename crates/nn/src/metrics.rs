//! Evaluation metrics. `sparse_categorical_accuracy` is the Keras
//! metric the paper reports in Figure 7: per-token argmax accuracy
//! under teacher forcing, averaged over output sequences.

/// Fraction of positions where `predicted[i] == target[i]`, computed
/// over `min(len)` positions; empty targets score 0.
pub fn sparse_categorical_accuracy(predicted: &[usize], target: &[usize]) -> f64 {
    if target.is_empty() {
        return 0.0;
    }
    let n = predicted.len().min(target.len());
    let correct = predicted[..n]
        .iter()
        .zip(&target[..n])
        .filter(|(a, b)| a == b)
        .count();
    correct as f64 / target.len() as f64
}

/// Running mean helper for epoch-level metric aggregation.
#[derive(Debug, Clone, Default)]
pub struct RunningMean {
    sum: f64,
    count: usize,
}

impl RunningMean {
    /// Add one observation.
    pub fn push(&mut self, v: f64) {
        self.sum += v;
        self.count += 1;
    }

    /// Current mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_match() {
        assert_eq!(sparse_categorical_accuracy(&[1, 2, 3], &[1, 2, 3]), 1.0);
    }

    #[test]
    fn partial_match() {
        assert_eq!(
            sparse_categorical_accuracy(&[1, 9, 3], &[1, 2, 3]),
            2.0 / 3.0
        );
    }

    #[test]
    fn length_mismatch_counts_missing_as_wrong() {
        assert_eq!(sparse_categorical_accuracy(&[1], &[1, 2, 3]), 1.0 / 3.0);
    }

    #[test]
    fn empty_target_is_zero() {
        assert_eq!(sparse_categorical_accuracy(&[1], &[]), 0.0);
    }

    #[test]
    fn running_mean() {
        let mut m = RunningMean::default();
        assert_eq!(m.mean(), 0.0);
        m.push(1.0);
        m.push(3.0);
        assert_eq!(m.mean(), 2.0);
        assert_eq!(m.count(), 2);
    }
}
