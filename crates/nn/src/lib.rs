//! # lantern-nn
//!
//! A from-scratch neural-network stack implementing exactly the model
//! of paper §6.4: an LSTM encoder (eqs. 2–6), an LSTM decoder with
//! additive (Bahdanau) attention (eqs. 7–10), a softmax generation
//! layer over the concatenated state and context (eq. 11), teacher
//! forcing + cross-entropy training (eq. 12), SGD, early stopping, and
//! beam-search decoding (§6.4.3).
//!
//! Everything is plain `f32` Rust — no BLAS — with deterministic
//! initialization from a seed, so experiments are reproducible.
//!
//! ## The kernel layer
//!
//! All dense math funnels through [`kernel`], a small set of
//! cache-blocked GEMM kernels over row-major [`Matrix`] operands
//! (`matmul`, `matmul_t`, `add_matmul_tn`, and the fused
//! `gemm_bias_act`), written so LLVM autovectorizes their inner
//! loops. The layers above batch their work into kernel calls instead
//! of per-element loops:
//!
//! * the LSTM projects a whole sequence's inputs in one GEMM and
//!   accumulates each weight gradient as one `dZᵀ·X` product
//!   ([`lstm::LstmCell::forward_seq`], [`lstm::LstmCell::backward_seq`]);
//! * attention precomputes `W_h h_i` once per encoded sequence
//!   ([`attention::AdditiveAttention::project`]) instead of per decoder
//!   step;
//! * the seq2seq output layer scores all teacher-forced steps with one
//!   fused GEMM ([`seq2seq::Seq2Seq::forward_backward`]).
//!
//! Training fans minibatch items across scoped worker threads
//! ([`trainer::TrainOptions::parallel`]); inference reuses per-batch
//! scratch arenas ([`seq2seq::DecodeScratch`]).

pub mod attention;
pub mod beam;
pub mod kernel;
pub mod lstm;
pub mod matrix;
pub mod metrics;
pub mod params;
pub mod seq2seq;
pub mod trainer;

pub use attention::AdditiveAttention;
pub use beam::{
    beam_search, beam_search_batched, beam_search_batched_scratch, beam_search_scratch,
    BeamHypothesis,
};
pub use kernel::Activation;
pub use lstm::{LstmCell, LstmState};
pub use matrix::Matrix;
pub use metrics::sparse_categorical_accuracy;
pub use params::{count_parameters, ParamReport};
pub use seq2seq::{DecodeScratch, Seq2Seq, Seq2SeqConfig};
pub use trainer::{EarlyStopping, TrainOptions, TrainReport, Trainer};
