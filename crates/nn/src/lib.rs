//! # lantern-nn
//!
//! A from-scratch neural-network stack implementing exactly the model
//! of paper §6.4: an LSTM encoder (eqs. 2–6), an LSTM decoder with
//! additive (Bahdanau) attention (eqs. 7–10), a softmax generation
//! layer over the concatenated state and context (eq. 11), teacher
//! forcing + cross-entropy training (eq. 12), SGD, early stopping, and
//! beam-search decoding (§6.4.3).
//!
//! Everything is plain `f32` Rust — no BLAS — with deterministic
//! initialization from a seed, so experiments are reproducible.

pub mod attention;
pub mod beam;
pub mod lstm;
pub mod matrix;
pub mod metrics;
pub mod params;
pub mod seq2seq;
pub mod trainer;

pub use attention::AdditiveAttention;
pub use beam::{beam_search, BeamHypothesis};
pub use lstm::{LstmCell, LstmState};
pub use matrix::Matrix;
pub use metrics::sparse_categorical_accuracy;
pub use params::{count_parameters, ParamReport};
pub use seq2seq::{Seq2Seq, Seq2SeqConfig};
pub use trainer::{EarlyStopping, TrainOptions, TrainReport, Trainer};
