//! Dense `f32` matrix and vector primitives. Row-major, no BLAS —
//! everything the LSTM/attention stack needs, nothing more.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A row-major dense matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major storage (`rows * cols`).
    pub data: Vec<f32>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Uniform random matrix in `[-scale, scale]` (the paper
    /// initializes all LSTM parameters uniformly in `[-0.1, 0.1]`).
    pub fn uniform(rows: usize, cols: usize, scale: f32, rng: &mut StdRng) -> Self {
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-scale..=scale))
            .collect();
        Matrix { rows, cols, data }
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Wrap row-major storage (`data.len() == rows * cols`).
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "from_flat shape mismatch");
        Matrix { rows, cols, data }
    }

    /// `y = A x` (len(x) == cols, len(y) == rows).
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        debug_assert_eq!(x.len(), self.cols);
        let mut y = vec![0.0f32; self.rows];
        self.matvec_into(x, &mut y);
        y
    }

    /// [`Matrix::matvec`] writing into a caller-owned buffer. One
    /// vectorized [`crate::kernel::dot`] per row — measured faster
    /// than a 4-row register tile here (the tile's 32 accumulators
    /// spill on narrow ISAs, and rows are walked sequentially anyway).
    pub fn matvec_into(&self, x: &[f32], y: &mut [f32]) {
        debug_assert_eq!(x.len(), self.cols);
        debug_assert_eq!(y.len(), self.rows);
        for (r, yv) in y.iter_mut().enumerate() {
            *yv = crate::kernel::dot(self.row(r), x);
        }
    }

    /// `y = A^T x` (len(x) == rows, len(y) == cols).
    pub fn matvec_t(&self, x: &[f32]) -> Vec<f32> {
        debug_assert_eq!(x.len(), self.rows);
        let mut y = vec![0.0f32; self.cols];
        for (r, &xv) in x.iter().enumerate() {
            if xv != 0.0 {
                crate::kernel::axpy(&mut y, xv, self.row(r));
            }
        }
        y
    }

    /// Rank-1 accumulate: `A += dy ⊗ x` (len(dy) == rows, len(x) ==
    /// cols). This is the gradient of `matvec` w.r.t. the matrix.
    pub fn add_outer(&mut self, dy: &[f32], x: &[f32]) {
        debug_assert_eq!(dy.len(), self.rows);
        debug_assert_eq!(x.len(), self.cols);
        for (r, &dyr) in dy.iter().enumerate() {
            if dyr != 0.0 {
                let row = self.row_mut(r);
                for (c, xv) in x.iter().enumerate() {
                    row[c] += dyr * xv;
                }
            }
        }
    }

    /// `self += other * scale` (shape-checked).
    pub fn add_scaled(&mut self, other: &Matrix, scale: f32) {
        debug_assert_eq!(self.rows, other.rows);
        debug_assert_eq!(self.cols, other.cols);
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b * scale;
        }
    }

    /// Set every element to zero (gradient reset between batches).
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Total number of parameters.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// Deterministic RNG helper shared by the initialization paths.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

// ---------------------------------------------------------- vector ops

/// Elementwise sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// `a += b` elementwise.
pub fn vec_add_assign(a: &mut [f32], b: &[f32]) {
    debug_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter_mut().zip(b) {
        *x += y;
    }
}

/// Numerically stable softmax.
pub fn softmax(x: &[f32]) -> Vec<f32> {
    let max = x.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = x.iter().map(|v| (v - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|v| v / sum).collect()
}

/// In-place numerically stable softmax (no allocation — the decode
/// hot path reuses its logits buffer).
pub fn softmax_in_place(x: &mut [f32]) {
    let max = x.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in x.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    for v in x.iter_mut() {
        *v /= sum;
    }
}

/// Gradient of softmax composed with an arbitrary upstream gradient:
/// `ds_i = p_i * (dp_i - Σ_j p_j dp_j)`.
pub fn softmax_backward(p: &[f32], dp: &[f32]) -> Vec<f32> {
    let dot: f32 = p.iter().zip(dp).map(|(a, b)| a * b).sum();
    p.iter().zip(dp).map(|(pi, dpi)| pi * (dpi - dot)).collect()
}

/// Dot product.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_identity() {
        let mut m = Matrix::zeros(3, 3);
        for i in 0..3 {
            m.set(i, i, 1.0);
        }
        assert_eq!(m.matvec(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matvec_t_is_transpose() {
        let mut m = Matrix::zeros(2, 3);
        m.data.copy_from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        // A = [[1,2,3],[4,5,6]]; A^T [1,1] = [5,7,9].
        assert_eq!(m.matvec_t(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn add_outer_matches_manual() {
        let mut m = Matrix::zeros(2, 2);
        m.add_outer(&[1.0, 2.0], &[3.0, 4.0]);
        assert_eq!(m.data, vec![3.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let p = softmax(&[1000.0, 1000.0, 1000.0]);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!((p[0] - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_backward_finite_difference() {
        let x = [0.3f32, -0.1, 0.7, 0.2];
        let upstream = [0.5f32, -0.2, 0.1, 0.9];
        let p = softmax(&x);
        let analytic = softmax_backward(&p, &upstream);
        let eps = 1e-3f32;
        for i in 0..x.len() {
            let mut xp = x;
            xp[i] += eps;
            let mut xm = x;
            xm[i] -= eps;
            let fp: f32 = softmax(&xp).iter().zip(&upstream).map(|(a, b)| a * b).sum();
            let fm: f32 = softmax(&xm).iter().zip(&upstream).map(|(a, b)| a * b).sum();
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - analytic[i]).abs() < 1e-3,
                "i={i} {numeric} vs {}",
                analytic[i]
            );
        }
    }

    #[test]
    fn uniform_init_within_bounds_and_deterministic() {
        let mut rng = seeded_rng(7);
        let a = Matrix::uniform(4, 5, 0.1, &mut rng);
        assert!(a.data.iter().all(|v| v.abs() <= 0.1));
        let mut rng2 = seeded_rng(7);
        let b = Matrix::uniform(4, 5, 0.1, &mut rng2);
        assert_eq!(a, b);
    }

    #[test]
    fn sigmoid_range() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!(sigmoid(10.0) > 0.999);
        assert!(sigmoid(-10.0) < 0.001);
    }
}
