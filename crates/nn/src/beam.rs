//! Beam-search decoding (paper §6.4.3): maintain `K` partial
//! hypotheses starting at `<BOS>`; extend each by one token per step,
//! keep the top `K`; a hypothesis completes when `<END>` is emitted.

use crate::seq2seq::{DecodeScratch, DecoderState, Seq2Seq};
use lantern_text::vocab::{BOS, EOS};

/// One finished hypothesis.
#[derive(Debug, Clone)]
pub struct BeamHypothesis {
    /// Output token ids (specials excluded).
    pub tokens: Vec<usize>,
    /// Total log-probability.
    pub log_prob: f32,
}

impl BeamHypothesis {
    /// Length-normalized score (avoids a bias toward short outputs).
    pub fn score(&self) -> f32 {
        self.log_prob / (self.tokens.len() as f32 + 1.0)
    }
}

#[derive(Clone)]
struct Partial {
    tokens: Vec<usize>,
    log_prob: f32,
    state: DecoderState,
    prev: usize,
}

/// Decode `input_ids` with beam width `beam`; returns completed
/// hypotheses sorted best-first (at least one, falling back to the
/// best unfinished hypothesis at `max_len`).
pub fn beam_search(
    model: &Seq2Seq,
    input_ids: &[usize],
    beam: usize,
    max_len: usize,
) -> Vec<BeamHypothesis> {
    beam_search_scratch(model, input_ids, beam, max_len, &mut DecodeScratch::new())
}

/// [`beam_search`] with caller-owned decode buffers: batched narration
/// reuses one [`DecodeScratch`] arena across every hypothesis, step,
/// and request handled by a worker.
pub fn beam_search_scratch(
    model: &Seq2Seq,
    input_ids: &[usize],
    beam: usize,
    max_len: usize,
    scratch: &mut DecodeScratch,
) -> Vec<BeamHypothesis> {
    let beam = beam.max(1);
    let enc = model.encode(input_ids);
    let init = model.decoder_init(&enc);
    let mut frontier = vec![Partial {
        tokens: Vec::new(),
        log_prob: 0.0,
        state: init,
        prev: BOS,
    }];
    let mut done: Vec<BeamHypothesis> = Vec::new();

    for _ in 0..max_len {
        let mut candidates: Vec<Partial> = Vec::with_capacity(frontier.len() * beam);
        for partial in &frontier {
            let (logp, next_state) =
                model.decode_step_scratch(&enc, &partial.state, partial.prev, scratch);
            // Top `beam` extensions of this hypothesis.
            let mut idx: Vec<usize> = (0..logp.len()).collect();
            idx.sort_by(|&a, &b| logp[b].total_cmp(&logp[a]));
            for &tok in idx.iter().take(beam) {
                let mut tokens = partial.tokens.clone();
                let lp = partial.log_prob + logp[tok];
                if tok == EOS {
                    done.push(BeamHypothesis {
                        tokens,
                        log_prob: lp,
                    });
                } else {
                    tokens.push(tok);
                    candidates.push(Partial {
                        tokens,
                        log_prob: lp,
                        state: next_state.clone(),
                        prev: tok,
                    });
                }
            }
        }
        if candidates.is_empty() {
            break;
        }
        candidates.sort_by(|a, b| b.log_prob.total_cmp(&a.log_prob));
        candidates.truncate(beam);
        frontier = candidates;
        // Stop only when no running hypothesis can still beat the
        // completed ones (log-probs only decrease as length grows).
        if done.len() >= beam {
            let worst_done = done
                .iter()
                .map(|h| h.log_prob)
                .fold(f32::INFINITY, f32::min);
            let best_running = frontier
                .iter()
                .map(|p| p.log_prob)
                .fold(f32::NEG_INFINITY, f32::max);
            if best_running < worst_done {
                break;
            }
        }
    }
    if done.is_empty() {
        // Fall back to the best running hypothesis.
        if let Some(best) = frontier
            .into_iter()
            .max_by(|a, b| a.log_prob.total_cmp(&b.log_prob))
        {
            done.push(BeamHypothesis {
                tokens: best.tokens,
                log_prob: best.log_prob,
            });
        }
    }
    done.sort_by(|a, b| b.score().total_cmp(&a.score()));
    done
}

/// [`beam_search_scratch`] with every decoder step batched: the `K`
/// live hypotheses advance through one call of
/// [`Seq2Seq::decode_step_batch`] (one GEMM per projection instead of
/// `K` matvecs), while candidate generation, pruning, and the
/// early-stop bound are byte-for-byte the sequential logic — output
/// tokens are identical, only the arithmetic is batched.
pub fn beam_search_batched(
    model: &Seq2Seq,
    input_ids: &[usize],
    beam: usize,
    max_len: usize,
) -> Vec<BeamHypothesis> {
    beam_search_batched_scratch(model, input_ids, beam, max_len, &mut DecodeScratch::new())
}

/// [`beam_search_batched`] with caller-owned decode buffers.
pub fn beam_search_batched_scratch(
    model: &Seq2Seq,
    input_ids: &[usize],
    beam: usize,
    max_len: usize,
    scratch: &mut DecodeScratch,
) -> Vec<BeamHypothesis> {
    let beam = beam.max(1);
    let enc = model.encode(input_ids);
    let init = model.decoder_init(&enc);
    let mut frontier = vec![Partial {
        tokens: Vec::new(),
        log_prob: 0.0,
        state: init,
        prev: BOS,
    }];
    let mut done: Vec<BeamHypothesis> = Vec::new();

    for _ in 0..max_len {
        // One batched decode step over the whole frontier.
        let states: Vec<&DecoderState> = frontier.iter().map(|p| &p.state).collect();
        let prevs: Vec<usize> = frontier.iter().map(|p| p.prev).collect();
        let (logp_all, next_states) = model.decode_step_batch(&enc, &states, &prevs, scratch);

        let mut candidates: Vec<Partial> = Vec::with_capacity(frontier.len() * beam);
        for (pi, partial) in frontier.iter().enumerate() {
            let logp = logp_all.row(pi);
            // Top `beam` extensions of this hypothesis.
            let mut idx: Vec<usize> = (0..logp.len()).collect();
            idx.sort_by(|&a, &b| logp[b].total_cmp(&logp[a]));
            for &tok in idx.iter().take(beam) {
                let mut tokens = partial.tokens.clone();
                let lp = partial.log_prob + logp[tok];
                if tok == EOS {
                    done.push(BeamHypothesis {
                        tokens,
                        log_prob: lp,
                    });
                } else {
                    tokens.push(tok);
                    candidates.push(Partial {
                        tokens,
                        log_prob: lp,
                        state: next_states[pi].clone(),
                        prev: tok,
                    });
                }
            }
        }
        if candidates.is_empty() {
            break;
        }
        candidates.sort_by(|a, b| b.log_prob.total_cmp(&a.log_prob));
        candidates.truncate(beam);
        frontier = candidates;
        // Stop only when no running hypothesis can still beat the
        // completed ones (log-probs only decrease as length grows).
        if done.len() >= beam {
            let worst_done = done
                .iter()
                .map(|h| h.log_prob)
                .fold(f32::INFINITY, f32::min);
            let best_running = frontier
                .iter()
                .map(|p| p.log_prob)
                .fold(f32::NEG_INFINITY, f32::max);
            if best_running < worst_done {
                break;
            }
        }
    }
    if done.is_empty() {
        // Fall back to the best running hypothesis.
        if let Some(best) = frontier
            .into_iter()
            .max_by(|a, b| a.log_prob.total_cmp(&b.log_prob))
        {
            done.push(BeamHypothesis {
                tokens: best.tokens,
                log_prob: best.log_prob,
            });
        }
    }
    done.sort_by(|a, b| b.score().total_cmp(&a.score()));
    done
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq2seq::{Seq2Seq, Seq2SeqConfig, Seq2SeqGrads};

    fn trained_copy_model() -> Seq2Seq {
        let config = Seq2SeqConfig {
            input_vocab: 12,
            output_vocab: 12,
            hidden: 24,
            encoder_embed_dim: 8,
            decoder_embed_dim: 8,
            attention_dim: 12,
            share_recurrent_weights: false,
            init_scale: 0.1,
            seed: 42,
        };
        let mut model = Seq2Seq::new(config);
        let mut data = Vec::new();
        for a in 4..10 {
            for b in 4..10 {
                data.push((vec![a, b], vec![a, b]));
            }
        }
        let mut grads = Seq2SeqGrads::zeros(&model);
        for _ in 0..150 {
            for chunk in data.chunks(4) {
                grads.clear();
                for (i, t) in chunk {
                    model.forward_backward(i, t, &mut grads);
                }
                model.apply_gradients(&mut grads, 0.5 / chunk.len() as f32, 5.0);
            }
        }
        model
    }

    #[test]
    fn beam_finds_copy_output() {
        let model = trained_copy_model();
        let hyps = beam_search(&model, &[6, 9], 4, 8);
        assert!(!hyps.is_empty());
        assert_eq!(hyps[0].tokens, vec![6, 9]);
    }

    #[test]
    fn hypotheses_sorted_best_first() {
        let model = trained_copy_model();
        let hyps = beam_search(&model, &[4, 7], 4, 8);
        for w in hyps.windows(2) {
            assert!(w[0].score() >= w[1].score());
        }
    }

    #[test]
    fn wider_beam_finds_the_greedy_answer_too() {
        // A beam of 4 must still contain a hypothesis at least as good
        // (by raw log-probability) as one of its own members equal to
        // the correct copy output; and both widths decode correctly on
        // a well-trained model.
        let model = trained_copy_model();
        let narrow = beam_search(&model, &[5, 6], 1, 8);
        let wide = beam_search(&model, &[5, 6], 4, 8);
        assert_eq!(narrow[0].tokens, vec![5, 6]);
        assert!(wide.iter().any(|h| h.tokens == vec![5, 6]));
        assert!(wide.len() >= narrow.len());
    }

    #[test]
    fn batched_beam_is_token_identical_to_sequential() {
        // The whole point of the batched decoder step: same tokens,
        // same ranking, for every beam width — only the arithmetic is
        // batched. Checked on a trained model (where rankings are
        // sharp) across widths and inputs.
        let model = trained_copy_model();
        for beam in [1usize, 2, 4, 6] {
            for input in [vec![4usize, 7], vec![5, 6], vec![6, 9], vec![9, 4, 5]] {
                let seq = beam_search(&model, &input, beam, 8);
                let bat = beam_search_batched(&model, &input, beam, 8);
                assert_eq!(seq.len(), bat.len(), "beam={beam} input={input:?}");
                for (s, b) in seq.iter().zip(&bat) {
                    assert_eq!(s.tokens, b.tokens, "beam={beam} input={input:?}");
                    assert!(
                        (s.log_prob - b.log_prob).abs() < 1e-3,
                        "beam={beam} input={input:?}: {} vs {}",
                        s.log_prob,
                        b.log_prob
                    );
                }
            }
        }
    }

    #[test]
    fn batched_beam_terminates_on_untrained_model() {
        let model = Seq2Seq::new(Seq2SeqConfig {
            input_vocab: 8,
            output_vocab: 8,
            hidden: 8,
            encoder_embed_dim: 4,
            decoder_embed_dim: 4,
            attention_dim: 4,
            share_recurrent_weights: false,
            init_scale: 0.1,
            seed: 1,
        });
        let hyps = beam_search_batched(&model, &[4, 5], 3, 10);
        assert!(!hyps.is_empty());
        assert!(hyps[0].tokens.len() <= 10);
    }

    #[test]
    fn untrained_model_still_terminates() {
        let model = Seq2Seq::new(Seq2SeqConfig {
            input_vocab: 8,
            output_vocab: 8,
            hidden: 8,
            encoder_embed_dim: 4,
            decoder_embed_dim: 4,
            attention_dim: 4,
            share_recurrent_weights: false,
            init_scale: 0.1,
            seed: 1,
        });
        let hyps = beam_search(&model, &[4, 5], 3, 10);
        assert!(!hyps.is_empty());
        assert!(hyps[0].tokens.len() <= 10);
    }
}
