//! The batched linear-algebra core every layer of the stack runs on:
//! cache-blocked GEMM kernels over row-major [`Matrix`] operands.
//!
//! Layout conventions follow the call sites. Weights are stored
//! `[out × in]` (a row per output unit), activations as one row per
//! timestep or batch element, so the hot products are:
//!
//! * [`matmul_t`] — `C = A · Bᵀ`, both operands walked row-major. This
//!   is every forward projection: `Z = X · Vᵀ` for an input sequence
//!   `X [T×in]` against weights `V [4h×in]`.
//! * [`matmul`] — `C = A · B`, the backward data product
//!   `dX = dZ · V`.
//! * [`add_matmul_tn`] — `C += Aᵀ · B`, the weight-gradient product
//!   `dV += dZᵀ · X` (a whole sequence of rank-1 `add_outer`s in one
//!   blocked pass).
//! * [`gemm_bias_act`] — `C = act(A · Bᵀ + bias)`, the fused output
//!   projection.
//!
//! Inner loops are written over `chunks_exact` blocks with independent
//! accumulator lanes so LLVM autovectorizes them; the blocked kernels
//! additionally register-tile over output columns (`matmul_t` dots 4
//! weight rows per pass over the input row, `matmul`/`add_matmul_tn`
//! stream 4 axpys per loaded coefficient row). Every kernel has a
//! naive per-element reference (`*_naive`) that the property tests
//! hold it to within `1e-5`.

use crate::matrix::Matrix;

/// Lane width of the accumulator blocks. Eight `f32` lanes fill one
/// AVX2 register; on narrower ISAs LLVM splits the block.
const LANES: usize = 8;

/// Column tile: how many output columns (weight rows) one pass over an
/// input row produces. Four parallel accumulators keep the input row
/// in registers while amortizing its load.
const COL_TILE: usize = 4;

/// Elementwise activation fused into [`gemm_bias_act`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// No activation (plain affine output, e.g. pre-softmax logits).
    Identity,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    #[inline]
    fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Identity => x,
            Activation::Sigmoid => crate::matrix::sigmoid(x),
            Activation::Tanh => x.tanh(),
        }
    }
}

/// Vectorizable dot product: `LANES` independent accumulators over
/// `chunks_exact` blocks, scalar tail.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; LANES];
    let chunks_a = a.chunks_exact(LANES);
    let chunks_b = b.chunks_exact(LANES);
    let tail: f32 = chunks_a
        .remainder()
        .iter()
        .zip(chunks_b.remainder())
        .map(|(x, y)| x * y)
        .sum();
    for (ca, cb) in chunks_a.zip(chunks_b) {
        for l in 0..LANES {
            acc[l] += ca[l] * cb[l];
        }
    }
    acc.iter().sum::<f32>() + tail
}

/// Vectorizable axpy: `y += alpha * x`.
#[inline]
pub fn axpy(y: &mut [f32], alpha: f32, x: &[f32]) {
    debug_assert_eq!(y.len(), x.len());
    let chunks_y = y.chunks_exact_mut(LANES);
    let chunks_x = x.chunks_exact(LANES);
    let tail_x = chunks_x.remainder();
    let mut tail_y_start = 0;
    for (cy, cx) in chunks_y.zip(chunks_x) {
        for l in 0..LANES {
            cy[l] += alpha * cx[l];
        }
        tail_y_start += LANES;
    }
    for (yv, xv) in y[tail_y_start..].iter_mut().zip(tail_x) {
        *yv += alpha * xv;
    }
}

// ------------------------------------------------------------- naive refs

/// Reference `C = A · B` (`A: m×k`, `B: k×n`), one element at a time.
pub fn matmul_naive(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols, b.rows, "matmul shape mismatch");
    let mut c = Matrix::zeros(a.rows, b.cols);
    for i in 0..a.rows {
        for j in 0..b.cols {
            let mut acc = 0.0f32;
            for t in 0..a.cols {
                acc += a.get(i, t) * b.get(t, j);
            }
            c.set(i, j, acc);
        }
    }
    c
}

/// Reference `C = A · Bᵀ` (`A: m×k`, `B: n×k`), one element at a time.
pub fn matmul_t_naive(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols, b.cols, "matmul_t shape mismatch");
    let mut c = Matrix::zeros(a.rows, b.rows);
    for i in 0..a.rows {
        for j in 0..b.rows {
            let mut acc = 0.0f32;
            for t in 0..a.cols {
                acc += a.get(i, t) * b.get(j, t);
            }
            c.set(i, j, acc);
        }
    }
    c
}

/// Reference `C = act(A · Bᵀ + bias)`.
pub fn gemm_bias_act_naive(a: &Matrix, b: &Matrix, bias: &[f32], act: Activation) -> Matrix {
    let mut c = matmul_t_naive(a, b);
    for i in 0..c.rows {
        let row = c.row_mut(i);
        for (v, bv) in row.iter_mut().zip(bias) {
            *v = act.apply(*v + bv);
        }
    }
    c
}

/// Reference `C += Aᵀ · B` (`A: t×m`, `B: t×n`, `C: m×n`).
pub fn add_matmul_tn_naive(c: &mut Matrix, a: &Matrix, b: &Matrix) {
    assert_eq!(a.rows, b.rows, "add_matmul_tn shape mismatch");
    assert_eq!(c.rows, a.cols, "add_matmul_tn output rows");
    assert_eq!(c.cols, b.cols, "add_matmul_tn output cols");
    for t in 0..a.rows {
        for i in 0..a.cols {
            let av = a.get(t, i);
            for j in 0..b.cols {
                c.data[i * c.cols + j] += av * b.get(t, j);
            }
        }
    }
}

// ---------------------------------------------------------- blocked GEMMs

/// Blocked `C = A · Bᵀ` (`A: m×k`, `B: n×k`). Both operands are walked
/// row-major; `COL_TILE` rows of `B` are dotted against each row of
/// `A` per pass, so the `A` row stays register-resident.
pub fn matmul_t(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows, b.rows);
    matmul_t_into(a, b, &mut c);
    c
}

/// [`matmul_t`] writing into a caller-owned output (scratch reuse).
pub fn matmul_t_into(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    matmul_t_post(a, b, c, |_| {});
}

/// The `A · Bᵀ` core with a per-row epilogue: `post` runs on each
/// completed output row while it is still cache-hot (this is how
/// [`gemm_bias_act`] fuses its bias add and activation).
fn matmul_t_post<F: Fn(&mut [f32])>(a: &Matrix, b: &Matrix, c: &mut Matrix, post: F) {
    assert_eq!(a.cols, b.cols, "matmul_t shape mismatch");
    assert_eq!(c.rows, a.rows, "matmul_t output rows");
    assert_eq!(c.cols, b.rows, "matmul_t output cols");
    let k = a.cols;
    for i in 0..a.rows {
        let arow = a.row(i);
        let crow = c.row_mut(i);
        let mut j = 0;
        while j + COL_TILE <= b.rows {
            let b0 = b.row(j);
            let b1 = b.row(j + 1);
            let b2 = b.row(j + 2);
            let b3 = b.row(j + 3);
            let mut acc = [[0.0f32; LANES]; COL_TILE];
            let blocks = k / LANES * LANES;
            let mut t = 0;
            while t < blocks {
                for l in 0..LANES {
                    let av = arow[t + l];
                    acc[0][l] += av * b0[t + l];
                    acc[1][l] += av * b1[t + l];
                    acc[2][l] += av * b2[t + l];
                    acc[3][l] += av * b3[t + l];
                }
                t += LANES;
            }
            let mut sums = [0.0f32; COL_TILE];
            for (s, lanes) in sums.iter_mut().zip(&acc) {
                *s = lanes.iter().sum();
            }
            for t in blocks..k {
                let av = arow[t];
                sums[0] += av * b0[t];
                sums[1] += av * b1[t];
                sums[2] += av * b2[t];
                sums[3] += av * b3[t];
            }
            crow[j..j + COL_TILE].copy_from_slice(&sums);
            j += COL_TILE;
        }
        while j < b.rows {
            crow[j] = dot(arow, b.row(j));
            j += 1;
        }
        post(crow);
    }
}

/// `C = A · Bᵀ` for a short `A` (`m` no larger than a beam width)
/// against a large `B` (a weight matrix). The loop order is flipped
/// from [`matmul_t`]: `B`'s rows are walked outermost and each is
/// dotted against every row of the (cache-resident) `A` while it is
/// hot, so the weight matrix streams through the cache hierarchy once
/// per call instead of once per `A` row — the memory-traffic shape
/// that lets one batched GEMM beat `m` matvecs. The inner kernel is
/// the same [`dot`] the matvec path uses (measured faster here than
/// [`matmul_t`]'s wider register tile, which spills on narrow ISAs).
pub fn matmul_t_small_m_into(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    assert_eq!(a.cols, b.cols, "matmul_t shape mismatch");
    assert_eq!(c.rows, a.rows, "matmul_t output rows");
    assert_eq!(c.cols, b.rows, "matmul_t output cols");
    for j in 0..b.rows {
        let brow = b.row(j);
        for i in 0..a.rows {
            c.row_mut(i)[j] = dot(a.row(i), brow);
        }
    }
}

/// [`matmul_t_small_m_into`] allocating its output.
pub fn matmul_t_small_m(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows, b.rows);
    matmul_t_small_m_into(a, b, &mut c);
    c
}

/// Blocked `C = A · B` (`A: m×k`, `B: k×n`): the classic `ikt` axpy
/// formulation — each coefficient `A[i][t]` streams a row of `B` into
/// the output row, four coefficient rows per pass.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows, b.cols);
    add_matmul(&mut c, a, b);
    c
}

/// Accumulating `C += A · B` into a caller-owned output.
pub fn add_matmul(c: &mut Matrix, a: &Matrix, b: &Matrix) {
    assert_eq!(a.cols, b.rows, "matmul shape mismatch");
    assert_eq!(c.rows, a.rows, "matmul output rows");
    assert_eq!(c.cols, b.cols, "matmul output cols");
    let n = b.cols;
    for i in 0..a.rows {
        let arow = a.row(i);
        let crow = c.row_mut(i);
        let mut t = 0;
        while t + COL_TILE <= a.cols {
            let a0 = arow[t];
            let a1 = arow[t + 1];
            let a2 = arow[t + 2];
            let a3 = arow[t + 3];
            let b0 = b.row(t);
            let b1 = b.row(t + 1);
            let b2 = b.row(t + 2);
            let b3 = b.row(t + 3);
            for j in 0..n {
                crow[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
            }
            t += COL_TILE;
        }
        while t < a.cols {
            axpy(crow, arow[t], b.row(t));
            t += 1;
        }
    }
}

/// Blocked `C += Aᵀ · B` (`A: t×m`, `B: t×n`, `C: m×n`): the batched
/// outer-product accumulate of the weight-gradient path. Four
/// timesteps are fused per pass so each output row is loaded once per
/// four rank-1 updates.
pub fn add_matmul_tn(c: &mut Matrix, a: &Matrix, b: &Matrix) {
    assert_eq!(a.rows, b.rows, "add_matmul_tn shape mismatch");
    assert_eq!(c.rows, a.cols, "add_matmul_tn output rows");
    assert_eq!(c.cols, b.cols, "add_matmul_tn output cols");
    let n = b.cols;
    let mut t = 0;
    while t + COL_TILE <= a.rows {
        let b0 = b.row(t);
        let b1 = b.row(t + 1);
        let b2 = b.row(t + 2);
        let b3 = b.row(t + 3);
        let a0 = a.row(t);
        let a1 = a.row(t + 1);
        let a2 = a.row(t + 2);
        let a3 = a.row(t + 3);
        for i in 0..c.rows {
            let (c0, c1, c2, c3) = (a0[i], a1[i], a2[i], a3[i]);
            let crow = c.row_mut(i);
            for j in 0..n {
                crow[j] += c0 * b0[j] + c1 * b1[j] + c2 * b2[j] + c3 * b3[j];
            }
        }
        t += COL_TILE;
    }
    while t < a.rows {
        let arow = a.row(t);
        let brow = b.row(t);
        for (i, &av) in arow.iter().enumerate() {
            if av != 0.0 {
                axpy(c.row_mut(i), av, brow);
            }
        }
        t += 1;
    }
}

/// Fused `C = act(A · Bᵀ + bias)` (`A: m×k`, `B: n×k`, `bias: n`): one
/// blocked GEMM pass with the bias add and activation applied as each
/// output row completes, while it is still cache-hot.
pub fn gemm_bias_act(a: &Matrix, b: &Matrix, bias: &[f32], act: Activation) -> Matrix {
    assert_eq!(bias.len(), b.rows, "gemm_bias_act bias length");
    let mut c = Matrix::zeros(a.rows, b.rows);
    matmul_t_post(a, b, &mut c, |row| {
        for (v, bv) in row.iter_mut().zip(bias) {
            *v = act.apply(*v + bv);
        }
    });
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::seeded_rng;

    fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        Matrix::uniform(rows, cols, 1.0, &mut seeded_rng(seed))
    }

    fn assert_close(a: &Matrix, b: &Matrix, tol: f32, what: &str) {
        assert_eq!((a.rows, a.cols), (b.rows, b.cols), "{what} shape");
        for (i, (x, y)) in a.data.iter().zip(&b.data).enumerate() {
            assert!((x - y).abs() < tol, "{what}[{i}]: {x} vs {y}");
        }
    }

    #[test]
    fn matmul_matches_naive_odd_shapes() {
        // Shapes straddling the lane and tile boundaries.
        for (m, k, n, seed) in [(1, 1, 1, 1), (3, 7, 5, 2), (9, 16, 13, 3), (17, 33, 12, 4)] {
            let a = rand_matrix(m, k, seed);
            let b = rand_matrix(k, n, seed + 100);
            assert_close(&matmul(&a, &b), &matmul_naive(&a, &b), 1e-5, "matmul");
        }
    }

    #[test]
    fn matmul_t_matches_naive_odd_shapes() {
        for (m, k, n, seed) in [(1, 3, 1, 5), (4, 8, 4, 6), (7, 19, 11, 7), (16, 64, 33, 8)] {
            let a = rand_matrix(m, k, seed);
            let b = rand_matrix(n, k, seed + 100);
            assert_close(&matmul_t(&a, &b), &matmul_t_naive(&a, &b), 1e-5, "matmul_t");
        }
    }

    #[test]
    fn add_matmul_tn_matches_naive_and_accumulates() {
        let a = rand_matrix(13, 9, 11);
        let b = rand_matrix(13, 17, 12);
        let mut c = rand_matrix(9, 17, 13);
        let mut c_ref = c.clone();
        add_matmul_tn(&mut c, &a, &b);
        add_matmul_tn_naive(&mut c_ref, &a, &b);
        assert_close(&c, &c_ref, 1e-5, "add_matmul_tn");
    }

    #[test]
    fn gemm_bias_act_matches_naive_all_activations() {
        let a = rand_matrix(6, 21, 21);
        let b = rand_matrix(10, 21, 22);
        let bias: Vec<f32> = (0..10).map(|i| i as f32 * 0.1 - 0.5).collect();
        for act in [Activation::Identity, Activation::Sigmoid, Activation::Tanh] {
            assert_close(
                &gemm_bias_act(&a, &b, &bias, act),
                &gemm_bias_act_naive(&a, &b, &bias, act),
                1e-5,
                "gemm_bias_act",
            );
        }
    }

    #[test]
    fn matmul_t_small_m_matches_naive() {
        // Beam-shaped: few rows of A against many rows of B, with a
        // non-multiple-of-LANES inner dimension for the tail path.
        for m in [1usize, 4, 8] {
            let a = rand_matrix(m, 37, 31);
            let b = rand_matrix(50, 37, 32);
            assert_close(
                &matmul_t_small_m(&a, &b),
                &matmul_t_naive(&a, &b),
                1e-5,
                "matmul_t_small_m",
            );
        }
    }

    #[test]
    fn dot_and_axpy_handle_tails() {
        let a: Vec<f32> = (0..19).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..19).map(|i| (i as f32) * 0.5).collect();
        let expected: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - expected).abs() < 1e-4);
        let mut y = b.clone();
        axpy(&mut y, 2.0, &a);
        for (i, yv) in y.iter().enumerate() {
            assert!((yv - (b[i] + 2.0 * a[i])).abs() < 1e-5);
        }
    }

    #[test]
    fn empty_operands_are_fine() {
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(3, 5);
        let c = matmul_t(&a, &b);
        assert_eq!((c.rows, c.cols), (0, 3));
        let mut acc = Matrix::zeros(5, 4);
        add_matmul_tn(&mut acc, &Matrix::zeros(0, 5), &Matrix::zeros(0, 4));
        assert!(acc.data.iter().all(|v| *v == 0.0));
    }
}
