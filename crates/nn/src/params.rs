//! Parameter accounting for the paper's Table 3 ("Statistics about our
//! LSTM layer").
//!
//! The paper's encoder uses 16-dimensional learned embeddings and 256
//! LSTM cells, giving `4·256·(16+256) + 4·256 = 279,552` recurrent
//! parameters in every row. The decoder LSTM input is `[embedding;
//! context]` (input feeding), so its recurrent count is
//! `4·256·(d+256+256) + 4·256` where `d` is the decoder embedding
//! dimension — this reproduces the paper's decoder counts exactly for
//! GloVe (100 → 627,712), BERT (768 → 1,311,744) and ELMo (1024 →
//! 1,573,888). For the Word2Vec row the published count (558,080)
//! implies `d = 32`, i.e. the 128-d vectors were projected to the
//! 32-d decoder embedding size; we adopt that reading and note it in
//! EXPERIMENTS.md.

use crate::seq2seq::Seq2SeqConfig;

/// Parameter breakdown for one model configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamReport {
    /// Row label (e.g. `QEP2Seq+GloVe`).
    pub name: String,
    /// Embedding dimension reported in the table.
    pub embedding_dim: usize,
    /// Encoder recurrent parameters.
    pub encoder_recurrent: usize,
    /// Decoder recurrent parameters.
    pub decoder_recurrent: usize,
    /// Total parameters (embeddings + recurrent + attention + output).
    pub total: usize,
}

impl ParamReport {
    /// Recurrent-connection total (the paper's third column).
    pub fn recurrent_total(&self) -> usize {
        self.encoder_recurrent + self.decoder_recurrent
    }
}

/// LSTM parameter count: `4h(in + h) + 4h`.
pub fn lstm_params(input: usize, hidden: usize) -> usize {
    4 * hidden * (input + hidden) + 4 * hidden
}

/// Compute the parameter report for a configuration.
pub fn count_parameters(name: &str, config: &Seq2SeqConfig, reported_dim: usize) -> ParamReport {
    let h = config.hidden;
    let encoder_recurrent = lstm_params(config.encoder_embed_dim, h);
    let decoder_recurrent = lstm_params(config.decoder_embed_dim + h, h);
    let embeddings = config.input_vocab * config.encoder_embed_dim
        + config.output_vocab * config.decoder_embed_dim;
    let attention = 2 * config.attention_dim * h + config.attention_dim;
    let output = config.output_vocab * 2 * h + config.output_vocab;
    ParamReport {
        name: name.to_string(),
        embedding_dim: reported_dim,
        encoder_recurrent,
        decoder_recurrent,
        total: embeddings + encoder_recurrent + decoder_recurrent + attention + output,
    }
}

/// The four Table-3 configurations at paper scale (hidden 256, input
/// vocab 36, output vocab 62).
pub fn table3_configs() -> Vec<(String, Seq2SeqConfig, usize)> {
    let base = Seq2SeqConfig {
        input_vocab: 36,
        output_vocab: 62,
        hidden: 256,
        encoder_embed_dim: 16,
        decoder_embed_dim: 32,
        attention_dim: 64,
        share_recurrent_weights: false,
        init_scale: 0.1,
        seed: 0,
    };
    let mut rows = Vec::new();
    // Word2Vec: 128-d vectors projected to the 32-d decoder embedding.
    rows.push(("QEP2Seq+Word2Vec".to_string(), base.clone(), 128));
    let mut glove = base.clone();
    glove.decoder_embed_dim = 100;
    rows.push(("QEP2Seq+GloVe".to_string(), glove, 100));
    let mut bert = base.clone();
    bert.decoder_embed_dim = 768;
    rows.push(("QEP2Seq+BERT".to_string(), bert, 768));
    let mut elmo = base;
    elmo.decoder_embed_dim = 1024;
    rows.push(("QEP2Seq+ELMo".to_string(), elmo, 1024));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoder_recurrent_matches_paper_in_all_rows() {
        // Paper Table 3: encoder recurrent = 279,552 for every row.
        for (name, config, dim) in table3_configs() {
            let r = count_parameters(&name, &config, dim);
            assert_eq!(r.encoder_recurrent, 279_552, "{name}");
        }
    }

    #[test]
    fn decoder_recurrent_matches_paper_rows() {
        let rows = table3_configs();
        let by_name = |n: &str| {
            rows.iter()
                .find(|(name, _, _)| name == n)
                .map(|(name, c, d)| count_parameters(name, c, *d))
                .unwrap()
        };
        assert_eq!(by_name("QEP2Seq+Word2Vec").decoder_recurrent, 558_080);
        assert_eq!(by_name("QEP2Seq+GloVe").decoder_recurrent, 627_712);
        assert_eq!(by_name("QEP2Seq+BERT").decoder_recurrent, 1_311_744);
        assert_eq!(by_name("QEP2Seq+ELMo").decoder_recurrent, 1_573_888);
    }

    #[test]
    fn recurrent_totals_match_paper() {
        let rows = table3_configs();
        let expect = [
            ("QEP2Seq+Word2Vec", 837_632usize),
            ("QEP2Seq+GloVe", 907_264),
            ("QEP2Seq+BERT", 1_591_296),
            ("QEP2Seq+ELMo", 1_853_440),
        ];
        for (name, want) in expect {
            let (n, c, d) = rows.iter().find(|(n, _, _)| n == name).unwrap();
            let r = count_parameters(n, c, *d);
            assert_eq!(r.recurrent_total(), want, "{name}");
        }
    }

    #[test]
    fn totals_in_paper_ballpark() {
        // The paper's totals include its (unspecified) attention and
        // output heads; ours must land within 10% of the published
        // numbers.
        let expect = [
            ("QEP2Seq+Word2Vec", 920_393usize),
            ("QEP2Seq+GloVe", 993_901),
            ("QEP2Seq+BERT", 1_716_009),
            ("QEP2Seq+ELMo", 1_992_745),
        ];
        for ((name, config, dim), (ename, want)) in table3_configs().iter().zip(expect) {
            assert_eq!(name, ename);
            let r = count_parameters(name, config, *dim);
            let rel = (r.total as f64 - want as f64).abs() / want as f64;
            assert!(
                rel < 0.10,
                "{name}: ours {} vs paper {want} ({rel:.3})",
                r.total
            );
        }
    }

    #[test]
    fn count_matches_live_model() {
        // The analytic count agrees with an instantiated model.
        use crate::seq2seq::Seq2Seq;
        let (name, config, dim) = &table3_configs()[1]; // GloVe
        let report = count_parameters(name, config, *dim);
        let model = Seq2Seq::new(config.clone());
        assert_eq!(model.parameter_count(), report.total);
    }
}
