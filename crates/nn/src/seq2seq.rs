//! The QEP2Seq encoder/decoder model (paper §6.4): LSTM encoder over
//! the input act tokens, LSTM decoder with additive attention and input
//! feeding (the decoder input is `[embedding; previous context]`, which
//! is what the paper's Table-3 parameter counts imply), and a softmax
//! generation layer over `[s_t; a_t]` (eq. 11).
//!
//! Decoder embeddings are pluggable: randomly initialized and learned,
//! or pre-trained (Word2Vec/GloVe/BERT-style/ELMo-style vectors from
//! `lantern-embed`) and frozen. Encoder/decoder recurrent weights can
//! optionally be shared (Figure 7(b)).

use crate::attention::{AdditiveAttention, AttnGrads};
use crate::lstm::{LstmCell, LstmGrads, LstmState};
use crate::matrix::{seeded_rng, softmax, Matrix};
use lantern_text::vocab::{BOS, EOS};

/// Model hyperparameters.
#[derive(Debug, Clone)]
pub struct Seq2SeqConfig {
    /// Input (act-token) vocabulary size.
    pub input_vocab: usize,
    /// Output (word) vocabulary size.
    pub output_vocab: usize,
    /// LSTM hidden size (paper: 256).
    pub hidden: usize,
    /// Encoder embedding dimension (paper: 16, random init).
    pub encoder_embed_dim: usize,
    /// Decoder embedding dimension (paper: 32 random init, or the
    /// pre-trained vector dimension).
    pub decoder_embed_dim: usize,
    /// Attention dimensionality `d_a`.
    pub attention_dim: usize,
    /// Tie the encoder and decoder recurrent matrices `U` (Fig 7(b)).
    pub share_recurrent_weights: bool,
    /// Uniform init scale (paper: 0.1).
    pub init_scale: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Seq2SeqConfig {
    fn default() -> Self {
        Seq2SeqConfig {
            input_vocab: 36,
            output_vocab: 62,
            hidden: 256,
            encoder_embed_dim: 16,
            decoder_embed_dim: 32,
            attention_dim: 64,
            share_recurrent_weights: false,
            init_scale: 0.1,
            seed: 0,
        }
    }
}

/// The model.
#[derive(Debug, Clone)]
pub struct Seq2Seq {
    /// Configuration this model was built with.
    pub config: Seq2SeqConfig,
    /// Encoder token embeddings (`input_vocab x enc_dim`), learned.
    pub enc_embed: Matrix,
    /// Encoder LSTM.
    pub encoder: LstmCell,
    /// Decoder token embeddings (`output_vocab x dec_dim`).
    pub dec_embed: Matrix,
    /// Whether decoder embeddings receive gradient updates (false for
    /// frozen pre-trained vectors).
    pub dec_embed_trainable: bool,
    /// Decoder LSTM (input = `dec_dim + hidden` via input feeding).
    pub decoder: LstmCell,
    /// Additive attention.
    pub attention: AdditiveAttention,
    /// Output projection over `[s_t; a_t]` (`output_vocab x 2*hidden`).
    pub w_out: Matrix,
    /// Output bias.
    pub b_out: Vec<f32>,
}

/// Gradient accumulators for one batch.
#[derive(Debug, Clone)]
pub struct Seq2SeqGrads {
    enc_embed: Matrix,
    encoder: LstmGrads,
    dec_embed: Matrix,
    decoder: LstmGrads,
    attention: AttnGrads,
    w_out: Matrix,
    b_out: Vec<f32>,
}

impl Seq2SeqGrads {
    /// Zeroed accumulators for `model`.
    pub fn zeros(model: &Seq2Seq) -> Self {
        Seq2SeqGrads {
            enc_embed: Matrix::zeros(model.enc_embed.rows, model.enc_embed.cols),
            encoder: LstmGrads::zeros(&model.encoder),
            dec_embed: Matrix::zeros(model.dec_embed.rows, model.dec_embed.cols),
            decoder: LstmGrads::zeros(&model.decoder),
            attention: AttnGrads::zeros(&model.attention),
            w_out: Matrix::zeros(model.w_out.rows, model.w_out.cols),
            b_out: vec![0.0; model.b_out.len()],
        }
    }

    /// Reset all accumulators to zero.
    pub fn clear(&mut self) {
        self.enc_embed.fill_zero();
        self.encoder.clear();
        self.dec_embed.fill_zero();
        self.decoder.clear();
        self.attention.clear();
        self.w_out.fill_zero();
        self.b_out.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Global L2 norm of all gradients (for clipping).
    pub fn global_norm(&self) -> f32 {
        let mut sq = 0.0f32;
        for m in [
            &self.enc_embed,
            &self.dec_embed,
            &self.w_out,
            &self.encoder.v,
            &self.encoder.u,
            &self.decoder.v,
            &self.decoder.u,
            &self.attention.w_s,
            &self.attention.w_h,
        ] {
            sq += m.data.iter().map(|v| v * v).sum::<f32>();
        }
        for v in [
            &self.encoder.b,
            &self.decoder.b,
            &self.attention.v_a,
            &self.b_out,
        ] {
            sq += v.iter().map(|x| x * x).sum::<f32>();
        }
        sq.sqrt()
    }
}

/// Immutable decoding context (encoder outputs).
#[derive(Debug, Clone)]
pub struct EncoderOutput {
    /// Hidden state at each input position.
    pub states: Vec<Vec<f32>>,
    /// Final encoder state (decoder initialization).
    pub final_state: LstmState,
}

/// Cloneable incremental decoder state, used by beam search.
#[derive(Debug, Clone)]
pub struct DecoderState {
    /// LSTM state.
    pub state: LstmState,
    /// Previous context vector (input feeding).
    pub context: Vec<f32>,
}

impl Seq2Seq {
    /// Build a model; decoder embeddings are randomly initialized and
    /// trainable (use [`Seq2Seq::with_pretrained_decoder_embeddings`]
    /// to install frozen vectors).
    pub fn new(config: Seq2SeqConfig) -> Self {
        let mut rng = seeded_rng(config.seed);
        let s = config.init_scale;
        let enc_embed = Matrix::uniform(config.input_vocab, config.encoder_embed_dim, s, &mut rng);
        let encoder = LstmCell::new(config.encoder_embed_dim, config.hidden, s, &mut rng);
        let dec_embed = Matrix::uniform(config.output_vocab, config.decoder_embed_dim, s, &mut rng);
        let mut decoder = LstmCell::new(
            config.decoder_embed_dim + config.hidden,
            config.hidden,
            s,
            &mut rng,
        );
        if config.share_recurrent_weights {
            decoder.u = encoder.u.clone();
        }
        let attention = AdditiveAttention::new(config.hidden, config.attention_dim, s, &mut rng);
        let w_out = Matrix::uniform(config.output_vocab, 2 * config.hidden, s, &mut rng);
        let b_out = vec![0.0; config.output_vocab];
        Seq2Seq {
            config,
            enc_embed,
            encoder,
            dec_embed,
            dec_embed_trainable: true,
            decoder,
            attention,
            w_out,
            b_out,
        }
    }

    /// Install pre-trained decoder embeddings (rows = output vocab,
    /// cols must equal `decoder_embed_dim`); they are frozen.
    pub fn with_pretrained_decoder_embeddings(mut self, table: Matrix) -> Self {
        assert_eq!(table.rows, self.config.output_vocab, "vocab mismatch");
        assert_eq!(
            table.cols, self.config.decoder_embed_dim,
            "dimension mismatch"
        );
        self.dec_embed = table;
        self.dec_embed_trainable = false;
        self
    }

    /// Total trainable + frozen parameter count.
    pub fn parameter_count(&self) -> usize {
        self.enc_embed.len()
            + self.encoder.parameter_count()
            + self.dec_embed.len()
            + self.decoder.parameter_count()
            + self.attention.parameter_count()
            + self.w_out.len()
            + self.b_out.len()
    }

    /// Run the encoder over an input token-id sequence.
    pub fn encode(&self, input_ids: &[usize]) -> EncoderOutput {
        let mut state = LstmState::zeros(self.config.hidden);
        let mut states = Vec::with_capacity(input_ids.len().max(1));
        for &id in input_ids {
            let x = self.enc_embed.row(id.min(self.enc_embed.rows - 1)).to_vec();
            let (s, _) = self.encoder.forward_step(&state, &x);
            state = s;
            states.push(state.h.clone());
        }
        if states.is_empty() {
            states.push(vec![0.0; self.config.hidden]);
        }
        EncoderOutput {
            states,
            final_state: state,
        }
    }

    /// Initial decoder state from an encoder output.
    pub fn decoder_init(&self, enc: &EncoderOutput) -> DecoderState {
        DecoderState {
            state: enc.final_state.clone(),
            context: vec![0.0; self.config.hidden],
        }
    }

    /// One inference decoding step: feed `prev_token`, return the
    /// log-probability vector over the output vocabulary and the next
    /// state.
    pub fn decode_step(
        &self,
        enc: &EncoderOutput,
        st: &DecoderState,
        prev_token: usize,
    ) -> (Vec<f32>, DecoderState) {
        let emb = self.dec_embed.row(prev_token.min(self.dec_embed.rows - 1));
        let mut x = Vec::with_capacity(emb.len() + st.context.len());
        x.extend_from_slice(emb);
        x.extend_from_slice(&st.context);
        let (state, _) = self.decoder.forward_step(&st.state, &x);
        let (context, _) = self.attention.forward(&state.h, &enc.states);
        let mut feat = state.h.clone();
        feat.extend_from_slice(&context);
        let mut logits = self.w_out.matvec(&feat);
        for (l, b) in logits.iter_mut().zip(&self.b_out) {
            *l += b;
        }
        let p = softmax(&logits);
        let logp = p.iter().map(|v| (v + 1e-12).ln()).collect();
        (logp, DecoderState { state, context })
    }

    /// Teacher-forced forward + full backward for one `(input,
    /// target)` pair; accumulates gradients and returns `(mean token
    /// cross-entropy, correct tokens, total tokens)`. `target_ids`
    /// excludes the `<BOS>`/`<END>` specials.
    pub fn forward_backward(
        &self,
        input_ids: &[usize],
        target_ids: &[usize],
        grads: &mut Seq2SeqGrads,
    ) -> (f32, usize, usize) {
        let hidden = self.config.hidden;
        let dec_dim = self.config.decoder_embed_dim;

        // ---------------- encoder forward (with caches) ----------------
        let mut enc_state = LstmState::zeros(hidden);
        let mut enc_caches = Vec::with_capacity(input_ids.len());
        let mut enc_states = Vec::with_capacity(input_ids.len().max(1));
        let mut enc_inputs = Vec::with_capacity(input_ids.len());
        for &id in input_ids {
            let id = id.min(self.enc_embed.rows - 1);
            let x = self.enc_embed.row(id).to_vec();
            let (s, cache) = self.encoder.forward_step(&enc_state, &x);
            enc_caches.push(cache);
            enc_state = s;
            enc_states.push(enc_state.h.clone());
            enc_inputs.push(id);
        }
        let empty_input = enc_states.is_empty();
        if empty_input {
            enc_states.push(vec![0.0; hidden]);
        }
        let enc_out = EncoderOutput {
            states: enc_states.clone(),
            final_state: enc_state.clone(),
        };

        // ---------------- decoder forward (teacher forcing) -------------
        // Input tokens: BOS, y_1 .. y_m ; targets: y_1 .. y_m, EOS.
        let mut dec_inputs = Vec::with_capacity(target_ids.len() + 1);
        dec_inputs.push(BOS);
        dec_inputs.extend_from_slice(target_ids);
        let mut dec_targets = Vec::with_capacity(target_ids.len() + 1);
        dec_targets.extend_from_slice(target_ids);
        dec_targets.push(EOS);
        let steps = dec_inputs.len();

        let mut st = self.decoder_init(&enc_out);
        struct StepRecord {
            dec_cache: crate::lstm::LstmStepCache,
            attn_cache: crate::attention::AttnCache,
            feat: Vec<f32>,
            p: Vec<f32>,
            target: usize,
            prev_token: usize,
        }
        let mut records: Vec<StepRecord> = Vec::with_capacity(steps);
        let mut loss = 0.0f32;
        let mut correct = 0usize;
        for t in 0..steps {
            let prev_token = dec_inputs[t].min(self.dec_embed.rows - 1);
            let emb = self.dec_embed.row(prev_token);
            let mut x = Vec::with_capacity(dec_dim + hidden);
            x.extend_from_slice(emb);
            x.extend_from_slice(&st.context);
            let (state, dec_cache) = self.decoder.forward_step(&st.state, &x);
            let (context, attn_cache) = self.attention.forward(&state.h, &enc_out.states);
            let mut feat = state.h.clone();
            feat.extend_from_slice(&context);
            let mut logits = self.w_out.matvec(&feat);
            for (l, b) in logits.iter_mut().zip(&self.b_out) {
                *l += b;
            }
            let p = softmax(&logits);
            let target = dec_targets[t].min(self.config.output_vocab - 1);
            loss -= (p[target] + 1e-12).ln();
            let argmax = p
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap_or(0);
            if argmax == target {
                correct += 1;
            }
            records.push(StepRecord {
                dec_cache,
                attn_cache,
                feat,
                p,
                target,
                prev_token,
            });
            st = DecoderState { state, context };
        }
        let inv = 1.0 / steps as f32;

        // ---------------- decoder backward ----------------
        let mut d_enc_states = vec![vec![0.0f32; hidden]; enc_out.states.len()];
        let mut dh_next = vec![0.0f32; hidden];
        let mut dc_next = vec![0.0f32; hidden];
        let mut da_feed = vec![0.0f32; hidden]; // from step t+1's input slice
        for t in (0..steps).rev() {
            let rec = &records[t];
            // Output layer.
            let mut dlogits = rec.p.clone();
            dlogits[rec.target] -= 1.0;
            for d in dlogits.iter_mut() {
                *d *= inv;
            }
            grads.w_out.add_outer(&dlogits, &rec.feat);
            for (g, d) in grads.b_out.iter_mut().zip(&dlogits) {
                *g += d;
            }
            let dfeat = self.w_out.matvec_t(&dlogits);
            let ds_out = &dfeat[..hidden];
            let da_out = &dfeat[hidden..];
            // Total context gradient: from the output layer and from
            // the next step's input feeding.
            let mut da_total = da_out.to_vec();
            for (a, b) in da_total.iter_mut().zip(&da_feed) {
                *a += b;
            }
            let (ds_attn, d_enc_part) = self.attention.backward(
                &rec.attn_cache,
                &enc_out.states,
                &da_total,
                &mut grads.attention,
            );
            for (acc, part) in d_enc_states.iter_mut().zip(&d_enc_part) {
                for (a, b) in acc.iter_mut().zip(part) {
                    *a += b;
                }
            }
            let mut dh = ds_out.to_vec();
            for ((a, b), c) in dh.iter_mut().zip(&ds_attn).zip(&dh_next) {
                *a += b + c;
            }
            let (dx, dh_prev, dc_prev) =
                self.decoder
                    .backward_step(&rec.dec_cache, &dh, &dc_next, &mut grads.decoder);
            if self.dec_embed_trainable {
                let row = grads.dec_embed.row_mut(rec.prev_token);
                for (g, d) in row.iter_mut().zip(&dx[..dec_dim]) {
                    *g += d;
                }
            }
            da_feed = dx[dec_dim..].to_vec();
            dh_next = dh_prev;
            dc_next = dc_prev;
        }
        // The first step's context is zeros — da_feed is dropped; the
        // decoder-init gradient flows into the encoder's final state.
        for (a, b) in d_enc_states
            .last_mut()
            .expect("nonempty")
            .iter_mut()
            .zip(&dh_next)
        {
            *a += b;
        }

        // ---------------- encoder backward ----------------
        if !empty_input {
            let mut dh_carry = vec![0.0f32; hidden];
            let mut dc_carry = dc_next;
            for t in (0..enc_caches.len()).rev() {
                let mut dh = d_enc_states[t].clone();
                for (a, b) in dh.iter_mut().zip(&dh_carry) {
                    *a += b;
                }
                let (dx, dh_prev, dc_prev) =
                    self.encoder
                        .backward_step(&enc_caches[t], &dh, &dc_carry, &mut grads.encoder);
                let row = grads.enc_embed.row_mut(enc_inputs[t]);
                for (g, d) in row.iter_mut().zip(&dx) {
                    *g += d;
                }
                dh_carry = dh_prev;
                dc_carry = dc_prev;
            }
        }

        (loss * inv, correct, steps)
    }

    /// Forward-only evaluation: `(mean token cross-entropy, correct
    /// tokens, total tokens)` under teacher forcing — the paper's
    /// validation loss and `sparse_categorical_accuracy`.
    pub fn evaluate(&self, input_ids: &[usize], target_ids: &[usize]) -> (f32, usize, usize) {
        let enc = self.encode(input_ids);
        let mut st = self.decoder_init(&enc);
        let mut dec_inputs = vec![BOS];
        dec_inputs.extend_from_slice(target_ids);
        let mut dec_targets = target_ids.to_vec();
        dec_targets.push(EOS);
        let mut loss = 0.0f32;
        let mut correct = 0usize;
        for (t, &prev) in dec_inputs.iter().enumerate() {
            let (logp, next) = self.decode_step(&enc, &st, prev);
            let target = dec_targets[t].min(self.config.output_vocab - 1);
            loss -= logp[target];
            let argmax = logp
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap_or(0);
            if argmax == target {
                correct += 1;
            }
            st = next;
        }
        (loss / dec_inputs.len() as f32, correct, dec_inputs.len())
    }

    /// Apply accumulated gradients with SGD (no momentum, fixed lr —
    /// the paper's §6.4.2 training recipe), with global-norm clipping.
    pub fn apply_gradients(&mut self, grads: &mut Seq2SeqGrads, lr: f32, clip: f32) {
        let norm = grads.global_norm();
        let scale = if norm > clip && norm > 0.0 {
            clip / norm
        } else {
            1.0
        };
        let lr = lr * scale;
        self.enc_embed.add_scaled(&grads.enc_embed, -lr);
        self.encoder.apply_gradients(&grads.encoder, lr);
        if self.dec_embed_trainable {
            self.dec_embed.add_scaled(&grads.dec_embed, -lr);
        }
        self.decoder.apply_gradients(&grads.decoder, lr);
        if self.config.share_recurrent_weights {
            // Tied recurrent matrices: apply both gradient parts to the
            // shared tensor and mirror it.
            self.encoder.u.add_scaled(&grads.decoder.u, -lr);
            self.decoder.u.add_scaled(&grads.encoder.u, -lr);
            let tied = self.encoder.u.clone();
            self.decoder.u = tied;
        }
        self.attention.apply_gradients(&grads.attention, lr);
        self.w_out.add_scaled(&grads.w_out, -lr);
        for (p, g) in self.b_out.iter_mut().zip(&grads.b_out) {
            *p -= lr * g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> Seq2SeqConfig {
        Seq2SeqConfig {
            input_vocab: 12,
            output_vocab: 12,
            hidden: 24,
            encoder_embed_dim: 8,
            decoder_embed_dim: 8,
            attention_dim: 12,
            share_recurrent_weights: false,
            init_scale: 0.1,
            seed: 42,
        }
    }

    /// Copy-task data: output = input (tokens 4..10 to avoid specials).
    fn copy_data() -> Vec<(Vec<usize>, Vec<usize>)> {
        let mut data = Vec::new();
        for a in 4..10 {
            for b in 4..10 {
                data.push((vec![a, b], vec![a, b]));
            }
        }
        data
    }

    #[test]
    fn loss_decreases_on_copy_task() {
        let mut model = Seq2Seq::new(tiny_config());
        let data = copy_data();
        let mut grads = Seq2SeqGrads::zeros(&model);
        let initial: f32 = data
            .iter()
            .map(|(i, t)| model.evaluate(i, t).0)
            .sum::<f32>()
            / data.len() as f32;
        for _ in 0..60 {
            for chunk in data.chunks(4) {
                grads.clear();
                for (i, t) in chunk {
                    model.forward_backward(i, t, &mut grads);
                }
                model.apply_gradients(&mut grads, 0.5 / chunk.len() as f32, 5.0);
            }
        }
        let trained: f32 = data
            .iter()
            .map(|(i, t)| model.evaluate(i, t).0)
            .sum::<f32>()
            / data.len() as f32;
        assert!(
            trained < initial * 0.5,
            "loss did not drop: {initial} -> {trained}"
        );
    }

    #[test]
    fn greedy_decode_recovers_copy_after_training() {
        let mut model = Seq2Seq::new(tiny_config());
        let data = copy_data();
        let mut grads = Seq2SeqGrads::zeros(&model);
        for _ in 0..150 {
            for chunk in data.chunks(4) {
                grads.clear();
                for (i, t) in chunk {
                    model.forward_backward(i, t, &mut grads);
                }
                model.apply_gradients(&mut grads, 0.5 / chunk.len() as f32, 5.0);
            }
        }
        // Greedy decode a training pair.
        let input = vec![5usize, 8];
        let enc = model.encode(&input);
        let mut st = model.decoder_init(&enc);
        let mut prev = BOS;
        let mut out = Vec::new();
        for _ in 0..6 {
            let (logp, next) = model.decode_step(&enc, &st, prev);
            let tok = logp
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap();
            if tok == EOS {
                break;
            }
            out.push(tok);
            prev = tok;
            st = next;
        }
        assert_eq!(out, vec![5, 8], "greedy decode failed");
    }

    #[test]
    #[allow(clippy::type_complexity)] // probe table: (accessor, gradient) pairs
    fn gradient_check_end_to_end() {
        // Check a few parameters of every component through the full
        // forward/backward.
        let mut config = tiny_config();
        config.hidden = 6;
        config.attention_dim = 4;
        config.encoder_embed_dim = 3;
        config.decoder_embed_dim = 3;
        let mut model = Seq2Seq::new(config);
        let input = vec![4usize, 5, 6];
        let target = vec![7usize, 8];
        let mut grads = Seq2SeqGrads::zeros(&model);
        model.forward_backward(&input, &target, &mut grads);

        let eps = 1e-2f32;
        let loss_of = |m: &Seq2Seq| m.evaluate(&input, &target).0;
        // (accessor, gradient) pairs to probe.
        let probes: Vec<(Box<dyn Fn(&mut Seq2Seq) -> &mut f32>, f32)> = vec![
            (
                Box::new(|m: &mut Seq2Seq| &mut m.w_out.data[3]),
                grads.w_out.data[3],
            ),
            (Box::new(|m: &mut Seq2Seq| &mut m.b_out[2]), grads.b_out[2]),
            (
                Box::new(|m: &mut Seq2Seq| &mut m.encoder.v.data[5]),
                grads.encoder.v.data[5],
            ),
            (
                Box::new(|m: &mut Seq2Seq| &mut m.encoder.u.data[7]),
                grads.encoder.u.data[7],
            ),
            (
                Box::new(|m: &mut Seq2Seq| &mut m.decoder.v.data[11]),
                grads.decoder.v.data[11],
            ),
            (
                Box::new(|m: &mut Seq2Seq| &mut m.decoder.u.data[13]),
                grads.decoder.u.data[13],
            ),
            (
                Box::new(|m: &mut Seq2Seq| &mut m.attention.w_s.data[2]),
                grads.attention.w_s.data[2],
            ),
            (
                Box::new(|m: &mut Seq2Seq| &mut m.attention.w_h.data[4]),
                grads.attention.w_h.data[4],
            ),
            (
                Box::new(|m: &mut Seq2Seq| &mut m.attention.v_a[1]),
                grads.attention.v_a[1],
            ),
            (
                Box::new(|m: &mut Seq2Seq| &mut m.enc_embed.data[14]),
                grads.enc_embed.data[14],
            ),
            (
                Box::new(|m: &mut Seq2Seq| &mut m.dec_embed.data[22]),
                grads.dec_embed.data[22],
            ),
        ];
        for (i, (access, analytic)) in probes.into_iter().enumerate() {
            let orig = *access(&mut model);
            *access(&mut model) = orig + eps;
            let fp = loss_of(&model);
            *access(&mut model) = orig - eps;
            let fm = loss_of(&model);
            *access(&mut model) = orig;
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - analytic).abs() < 6e-3,
                "probe {i}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn pretrained_embeddings_are_frozen() {
        let config = tiny_config();
        let table = Matrix::uniform(
            config.output_vocab,
            config.decoder_embed_dim,
            0.5,
            &mut seeded_rng(9),
        );
        let mut model = Seq2Seq::new(config).with_pretrained_decoder_embeddings(table.clone());
        let mut grads = Seq2SeqGrads::zeros(&model);
        model.forward_backward(&[4, 5], &[6, 7], &mut grads);
        model.apply_gradients(&mut grads, 0.1, 5.0);
        assert_eq!(model.dec_embed, table, "frozen embeddings must not move");
    }

    #[test]
    fn shared_recurrent_weights_stay_tied() {
        let mut config = tiny_config();
        config.share_recurrent_weights = true;
        let mut model = Seq2Seq::new(config);
        assert_eq!(model.encoder.u, model.decoder.u);
        let mut grads = Seq2SeqGrads::zeros(&model);
        model.forward_backward(&[4, 5, 6], &[7, 8], &mut grads);
        model.apply_gradients(&mut grads, 0.1, 5.0);
        assert_eq!(model.encoder.u, model.decoder.u, "tied weights diverged");
    }

    #[test]
    fn empty_input_still_decodes() {
        let model = Seq2Seq::new(tiny_config());
        let (loss, _, total) = model.evaluate(&[], &[4]);
        assert!(loss.is_finite());
        assert_eq!(total, 2); // token + EOS
    }

    #[test]
    fn parameter_count_components() {
        let model = Seq2Seq::new(tiny_config());
        let c = &model.config;
        let expected = c.input_vocab * c.encoder_embed_dim
            + 4 * c.hidden * (c.encoder_embed_dim + c.hidden)
            + 4 * c.hidden
            + c.output_vocab * c.decoder_embed_dim
            + 4 * c.hidden * (c.decoder_embed_dim + c.hidden + c.hidden)
            + 4 * c.hidden
            + 2 * c.attention_dim * c.hidden
            + c.attention_dim
            + c.output_vocab * 2 * c.hidden
            + c.output_vocab;
        assert_eq!(model.parameter_count(), expected);
    }
}
