//! The QEP2Seq encoder/decoder model (paper §6.4): LSTM encoder over
//! the input act tokens, LSTM decoder with additive attention and input
//! feeding (the decoder input is `[embedding; previous context]`, which
//! is what the paper's Table-3 parameter counts imply), and a softmax
//! generation layer over `[s_t; a_t]` (eq. 11).
//!
//! Decoder embeddings are pluggable: randomly initialized and learned,
//! or pre-trained (Word2Vec/GloVe/BERT-style/ELMo-style vectors from
//! `lantern-embed`) and frozen. Encoder/decoder recurrent weights can
//! optionally be shared (Figure 7(b)).
//!
//! Everything runs on the blocked-GEMM kernel layer
//! ([`crate::kernel`]): the encoder projects all timesteps' inputs in
//! one GEMM, the attention projection `W_h h_i` is computed once per
//! sequence, the output logits of every teacher-forced step are one
//! fused GEMM, and the backward pass accumulates each weight's
//! gradient over the whole sequence as a single `dZᵀ·X` product.

use crate::attention::{AdditiveAttention, AttnCache, AttnGrads, AttnScratch};
use crate::kernel::{self, Activation};
use crate::lstm::{LstmCell, LstmGrads, LstmState};
use crate::matrix::{seeded_rng, softmax_in_place, Matrix};
use lantern_text::vocab::{BOS, EOS};

/// Model hyperparameters.
#[derive(Debug, Clone)]
pub struct Seq2SeqConfig {
    /// Input (act-token) vocabulary size.
    pub input_vocab: usize,
    /// Output (word) vocabulary size.
    pub output_vocab: usize,
    /// LSTM hidden size (paper: 256).
    pub hidden: usize,
    /// Encoder embedding dimension (paper: 16, random init).
    pub encoder_embed_dim: usize,
    /// Decoder embedding dimension (paper: 32 random init, or the
    /// pre-trained vector dimension).
    pub decoder_embed_dim: usize,
    /// Attention dimensionality `d_a`.
    pub attention_dim: usize,
    /// Tie the encoder and decoder recurrent matrices `U` (Fig 7(b)).
    pub share_recurrent_weights: bool,
    /// Uniform init scale (paper: 0.1).
    pub init_scale: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Seq2SeqConfig {
    fn default() -> Self {
        Seq2SeqConfig {
            input_vocab: 36,
            output_vocab: 62,
            hidden: 256,
            encoder_embed_dim: 16,
            decoder_embed_dim: 32,
            attention_dim: 64,
            share_recurrent_weights: false,
            init_scale: 0.1,
            seed: 0,
        }
    }
}

/// The model.
#[derive(Debug, Clone)]
pub struct Seq2Seq {
    /// Configuration this model was built with.
    pub config: Seq2SeqConfig,
    /// Encoder token embeddings (`input_vocab x enc_dim`), learned.
    pub enc_embed: Matrix,
    /// Encoder LSTM.
    pub encoder: LstmCell,
    /// Decoder token embeddings (`output_vocab x dec_dim`).
    pub dec_embed: Matrix,
    /// Whether decoder embeddings receive gradient updates (false for
    /// frozen pre-trained vectors).
    pub dec_embed_trainable: bool,
    /// Decoder LSTM (input = `dec_dim + hidden` via input feeding).
    pub decoder: LstmCell,
    /// Additive attention.
    pub attention: AdditiveAttention,
    /// Output projection over `[s_t; a_t]` (`output_vocab x 2*hidden`).
    pub w_out: Matrix,
    /// Output bias.
    pub b_out: Vec<f32>,
}

/// Gradient accumulators for one batch.
#[derive(Debug, Clone)]
pub struct Seq2SeqGrads {
    enc_embed: Matrix,
    encoder: LstmGrads,
    dec_embed: Matrix,
    decoder: LstmGrads,
    attention: AttnGrads,
    w_out: Matrix,
    b_out: Vec<f32>,
}

impl Seq2SeqGrads {
    /// Zeroed accumulators for `model`.
    pub fn zeros(model: &Seq2Seq) -> Self {
        Seq2SeqGrads {
            enc_embed: Matrix::zeros(model.enc_embed.rows, model.enc_embed.cols),
            encoder: LstmGrads::zeros(&model.encoder),
            dec_embed: Matrix::zeros(model.dec_embed.rows, model.dec_embed.cols),
            decoder: LstmGrads::zeros(&model.decoder),
            attention: AttnGrads::zeros(&model.attention),
            w_out: Matrix::zeros(model.w_out.rows, model.w_out.cols),
            b_out: vec![0.0; model.b_out.len()],
        }
    }

    /// Reset all accumulators to zero.
    pub fn clear(&mut self) {
        self.enc_embed.fill_zero();
        self.encoder.clear();
        self.dec_embed.fill_zero();
        self.decoder.clear();
        self.attention.clear();
        self.w_out.fill_zero();
        self.b_out.iter_mut().for_each(|v| *v = 0.0);
    }

    /// `self += other`: fold another accumulator in (the minibatch
    /// workers of `trainer` each fill their own and merge in a fixed
    /// order).
    pub fn merge(&mut self, other: &Seq2SeqGrads) {
        self.enc_embed.add_scaled(&other.enc_embed, 1.0);
        self.encoder.merge(&other.encoder);
        self.dec_embed.add_scaled(&other.dec_embed, 1.0);
        self.decoder.merge(&other.decoder);
        self.attention.merge(&other.attention);
        self.w_out.add_scaled(&other.w_out, 1.0);
        kernel::axpy(&mut self.b_out, 1.0, &other.b_out);
    }

    /// Global L2 norm of all gradients (for clipping).
    pub fn global_norm(&self) -> f32 {
        let mut sq = 0.0f32;
        for m in [
            &self.enc_embed,
            &self.dec_embed,
            &self.w_out,
            &self.encoder.v,
            &self.encoder.u,
            &self.decoder.v,
            &self.decoder.u,
            &self.attention.w_s,
            &self.attention.w_h,
        ] {
            sq += m.data.iter().map(|v| v * v).sum::<f32>();
        }
        for v in [
            &self.encoder.b,
            &self.decoder.b,
            &self.attention.v_a,
            &self.b_out,
        ] {
            sq += v.iter().map(|x| x * x).sum::<f32>();
        }
        sq.sqrt()
    }
}

/// Immutable decoding context (encoder outputs).
#[derive(Debug, Clone)]
pub struct EncoderOutput {
    /// Hidden state at each input position (`T x hidden`, at least one
    /// row — an all-zero row for an empty input).
    pub states: Matrix,
    /// Final encoder state (decoder initialization).
    pub final_state: LstmState,
    /// Precomputed attention projection `W_h h_i` (`T x d_a`), shared
    /// by every decoder step and beam hypothesis over this encoding.
    pub attn_proj: Matrix,
}

/// Cloneable incremental decoder state, used by beam search.
#[derive(Debug, Clone)]
pub struct DecoderState {
    /// LSTM state.
    pub state: LstmState,
    /// Previous context vector (input feeding).
    pub context: Vec<f32>,
}

/// Reusable decode-step buffers: one arena serves every step of every
/// hypothesis of every request in a batch (see
/// [`Seq2Seq::decode_step_scratch`]).
#[derive(Debug, Clone, Default)]
pub struct DecodeScratch {
    x: Vec<f32>,
    feat: Vec<f32>,
    attn: AttnScratch,
}

impl DecodeScratch {
    /// Fresh (empty) buffers; they grow to the model's sizes on first
    /// use and are reused afterwards.
    pub fn new() -> Self {
        DecodeScratch::default()
    }
}

impl Seq2Seq {
    /// Build a model; decoder embeddings are randomly initialized and
    /// trainable (use [`Seq2Seq::with_pretrained_decoder_embeddings`]
    /// to install frozen vectors).
    pub fn new(config: Seq2SeqConfig) -> Self {
        let mut rng = seeded_rng(config.seed);
        let s = config.init_scale;
        let enc_embed = Matrix::uniform(config.input_vocab, config.encoder_embed_dim, s, &mut rng);
        let encoder = LstmCell::new(config.encoder_embed_dim, config.hidden, s, &mut rng);
        let dec_embed = Matrix::uniform(config.output_vocab, config.decoder_embed_dim, s, &mut rng);
        let mut decoder = LstmCell::new(
            config.decoder_embed_dim + config.hidden,
            config.hidden,
            s,
            &mut rng,
        );
        if config.share_recurrent_weights {
            decoder.u = encoder.u.clone();
        }
        let attention = AdditiveAttention::new(config.hidden, config.attention_dim, s, &mut rng);
        let w_out = Matrix::uniform(config.output_vocab, 2 * config.hidden, s, &mut rng);
        let b_out = vec![0.0; config.output_vocab];
        Seq2Seq {
            config,
            enc_embed,
            encoder,
            dec_embed,
            dec_embed_trainable: true,
            decoder,
            attention,
            w_out,
            b_out,
        }
    }

    /// Install pre-trained decoder embeddings (rows = output vocab,
    /// cols must equal `decoder_embed_dim`); they are frozen.
    pub fn with_pretrained_decoder_embeddings(mut self, table: Matrix) -> Self {
        assert_eq!(table.rows, self.config.output_vocab, "vocab mismatch");
        assert_eq!(
            table.cols, self.config.decoder_embed_dim,
            "dimension mismatch"
        );
        self.dec_embed = table;
        self.dec_embed_trainable = false;
        self
    }

    /// Total trainable + frozen parameter count.
    pub fn parameter_count(&self) -> usize {
        self.enc_embed.len()
            + self.encoder.parameter_count()
            + self.dec_embed.len()
            + self.decoder.parameter_count()
            + self.attention.parameter_count()
            + self.w_out.len()
            + self.b_out.len()
    }

    /// Gather the (clamped) encoder embedding rows of `input_ids` into
    /// an `[T x enc_dim]` input matrix.
    fn gather_encoder_inputs(&self, input_ids: &[usize]) -> (Matrix, Vec<usize>) {
        let mut xs = Matrix::zeros(input_ids.len(), self.config.encoder_embed_dim);
        let mut ids = Vec::with_capacity(input_ids.len());
        for (t, &raw) in input_ids.iter().enumerate() {
            let id = raw.min(self.enc_embed.rows - 1);
            xs.row_mut(t).copy_from_slice(self.enc_embed.row(id));
            ids.push(id);
        }
        (xs, ids)
    }

    /// Run the encoder over an input token-id sequence: one batched
    /// input-projection GEMM, the recurrence, and the per-sequence
    /// attention projection.
    pub fn encode(&self, input_ids: &[usize]) -> EncoderOutput {
        let hidden = self.config.hidden;
        let (xs, _) = self.gather_encoder_inputs(input_ids);
        let (states, final_state) = if input_ids.is_empty() {
            (Matrix::zeros(1, hidden), LstmState::zeros(hidden))
        } else {
            self.encoder.forward_seq(&LstmState::zeros(hidden), &xs)
        };
        let attn_proj = self.attention.project(&states);
        EncoderOutput {
            states,
            final_state,
            attn_proj,
        }
    }

    /// Initial decoder state from an encoder output.
    pub fn decoder_init(&self, enc: &EncoderOutput) -> DecoderState {
        DecoderState {
            state: enc.final_state.clone(),
            context: vec![0.0; self.config.hidden],
        }
    }

    /// One inference decoding step: feed `prev_token`, return the
    /// log-probability vector over the output vocabulary and the next
    /// state.
    pub fn decode_step(
        &self,
        enc: &EncoderOutput,
        st: &DecoderState,
        prev_token: usize,
    ) -> (Vec<f32>, DecoderState) {
        self.decode_step_scratch(enc, st, prev_token, &mut DecodeScratch::new())
    }

    /// [`Seq2Seq::decode_step`] with caller-owned scratch buffers —
    /// the batched-narration hot path, where one arena is reused
    /// across all steps and requests.
    pub fn decode_step_scratch(
        &self,
        enc: &EncoderOutput,
        st: &DecoderState,
        prev_token: usize,
        scratch: &mut DecodeScratch,
    ) -> (Vec<f32>, DecoderState) {
        let emb = self.dec_embed.row(prev_token.min(self.dec_embed.rows - 1));
        scratch.x.clear();
        scratch.x.extend_from_slice(emb);
        scratch.x.extend_from_slice(&st.context);
        let state = self.decoder.step(&st.state, &scratch.x);
        let context =
            self.attention
                .attend(&state.h, &enc.states, &enc.attn_proj, &mut scratch.attn);
        scratch.feat.clear();
        scratch.feat.extend_from_slice(&state.h);
        scratch.feat.extend_from_slice(&context);
        let mut logits = self.w_out.matvec(&scratch.feat);
        kernel::axpy(&mut logits, 1.0, &self.b_out);
        softmax_in_place(&mut logits);
        for v in logits.iter_mut() {
            *v = (*v + 1e-12).ln();
        }
        (logits, DecoderState { state, context })
    }

    /// One decoding step for `K` live beam hypotheses at once: the
    /// decoder input projection, the recurrent projection, the
    /// attention query projection, and the output logits are each one
    /// `[K×in]×[in×out]` GEMM instead of `K` matvecs. The per-row gate
    /// update and the attention score/softmax/context math reuse the
    /// exact sequential primitives, so a batched step stays
    /// token-identical to `K` calls of
    /// [`Seq2Seq::decode_step_scratch`].
    ///
    /// `states` and `prev_tokens` are parallel slices (one entry per
    /// hypothesis); returns the `[K × output_vocab]` log-probability
    /// matrix and the `K` successor states.
    pub fn decode_step_batch(
        &self,
        enc: &EncoderOutput,
        states: &[&DecoderState],
        prev_tokens: &[usize],
        scratch: &mut DecodeScratch,
    ) -> (Matrix, Vec<DecoderState>) {
        assert_eq!(states.len(), prev_tokens.len(), "parallel slices");
        let k = states.len();
        let hidden = self.config.hidden;
        let dec_dim = self.config.decoder_embed_dim;

        // Stack the K decoder inputs `[emb(prev); context]` and the K
        // previous hidden states into matrices.
        let mut xs = Matrix::zeros(k, dec_dim + hidden);
        let mut h_prevs = Matrix::zeros(k, hidden);
        for (i, (st, &prev)) in states.iter().zip(prev_tokens).enumerate() {
            let row = xs.row_mut(i);
            row[..dec_dim].copy_from_slice(self.dec_embed.row(prev.min(self.dec_embed.rows - 1)));
            row[dec_dim..].copy_from_slice(&st.context);
            h_prevs.row_mut(i).copy_from_slice(&st.state.h);
        }

        // Gate pre-activations for every hypothesis: two GEMMs + bias.
        // The small-m kernel streams each weight matrix through the
        // cache once for all K hypotheses — the whole point of
        // batching the step.
        let mut gates = kernel::matmul_t_small_m(&xs, &self.decoder.v); // [K x 4h]
        let uz = kernel::matmul_t_small_m(&h_prevs, &self.decoder.u);
        let mut next_states = Vec::with_capacity(k);
        let mut h_new = Matrix::zeros(k, hidden);
        let mut tanh_c = vec![0.0f32; hidden];
        for (i, st) in states.iter().enumerate() {
            let z = gates.row_mut(i);
            kernel::axpy(z, 1.0, uz.row(i));
            kernel::axpy(z, 1.0, &self.decoder.b);
            let mut h_cur = st.state.h.clone();
            let mut c_cur = st.state.c.clone();
            self.decoder
                .advance_gates(z, &mut h_cur, &mut c_cur, &mut tanh_c);
            h_new.row_mut(i).copy_from_slice(&h_cur);
            next_states.push(LstmState { h: h_cur, c: c_cur });
        }

        // Attention: one GEMM for all K query projections `W_s s_t`,
        // then the shared score/softmax/context path per hypothesis.
        let ws_s = kernel::matmul_t_small_m(&h_new, &self.attention.w_s); // [K x d_a]
        let mut feats = Matrix::zeros(k, 2 * hidden);
        let mut contexts = Vec::with_capacity(k);
        for i in 0..k {
            let context = self.attention.attend_projected(
                ws_s.row(i),
                &enc.states,
                &enc.attn_proj,
                &mut scratch.attn,
            );
            let frow = feats.row_mut(i);
            frow[..hidden].copy_from_slice(h_new.row(i));
            frow[hidden..].copy_from_slice(&context);
            contexts.push(context);
        }

        // Output logits for all K hypotheses: one GEMM + per-row bias.
        let mut logp = kernel::matmul_t_small_m(&feats, &self.w_out);
        for i in 0..k {
            let row = logp.row_mut(i);
            kernel::axpy(row, 1.0, &self.b_out);
            softmax_in_place(row);
            for v in row.iter_mut() {
                *v = (*v + 1e-12).ln();
            }
        }
        let next = next_states
            .into_iter()
            .zip(contexts)
            .map(|(state, context)| DecoderState { state, context })
            .collect();
        (logp, next)
    }

    /// Teacher-forced forward + full backward for one `(input,
    /// target)` pair; accumulates gradients and returns `(mean token
    /// cross-entropy, correct tokens, total tokens)`. `target_ids`
    /// excludes the `<BOS>`/`<END>` specials.
    pub fn forward_backward(
        &self,
        input_ids: &[usize],
        target_ids: &[usize],
        grads: &mut Seq2SeqGrads,
    ) -> (f32, usize, usize) {
        let hidden = self.config.hidden;
        let dec_dim = self.config.decoder_embed_dim;

        // ---------------- encoder forward (batched input GEMM) ----------
        let empty_input = input_ids.is_empty();
        let (xs, enc_inputs) = self.gather_encoder_inputs(input_ids);
        let (enc_states, enc_final, enc_cache) = if empty_input {
            (Matrix::zeros(1, hidden), LstmState::zeros(hidden), None)
        } else {
            let (states, final_state, cache) = self
                .encoder
                .forward_seq_cached(&LstmState::zeros(hidden), xs);
            (states, final_state, Some(cache))
        };
        let attn_proj = self.attention.project(&enc_states);

        // ---------------- decoder forward (teacher forcing) -------------
        // Input tokens: BOS, y_1 .. y_m ; targets: y_1 .. y_m, EOS.
        let mut dec_inputs = Vec::with_capacity(target_ids.len() + 1);
        dec_inputs.push(BOS);
        dec_inputs.extend_from_slice(target_ids);
        let mut dec_targets = Vec::with_capacity(target_ids.len() + 1);
        dec_targets.extend_from_slice(target_ids);
        dec_targets.push(EOS);
        let steps = dec_inputs.len();

        // All per-step decoder state lives in matrix rows (gates,
        // tanh(c), previous h/c, inputs, features) — no per-step cache
        // allocations; the backward loop reads the same rows back.
        let mut dec_xs = Matrix::zeros(steps, dec_dim + hidden);
        let mut dec_hprevs = Matrix::zeros(steps, hidden);
        let mut dec_cprevs = Matrix::zeros(steps, hidden);
        let mut dec_gates = Matrix::zeros(steps, 4 * hidden);
        let mut dec_tanh_c = Matrix::zeros(steps, hidden);
        let mut feats = Matrix::zeros(steps, 2 * hidden);
        let mut attn_caches: Vec<AttnCache> = Vec::with_capacity(steps);
        let mut prev_tokens = Vec::with_capacity(steps);
        let mut h_cur = enc_final.h.clone();
        let mut c_cur = enc_final.c.clone();
        let mut context = vec![0.0f32; hidden];
        let mut uz = vec![0.0f32; 4 * hidden];
        for (t, &dec_input) in dec_inputs.iter().enumerate() {
            let prev_token = dec_input.min(self.dec_embed.rows - 1);
            {
                let xrow = dec_xs.row_mut(t);
                xrow[..dec_dim].copy_from_slice(self.dec_embed.row(prev_token));
                xrow[dec_dim..].copy_from_slice(&context);
            }
            dec_hprevs.row_mut(t).copy_from_slice(&h_cur);
            dec_cprevs.row_mut(t).copy_from_slice(&c_cur);
            {
                let z = dec_gates.row_mut(t);
                self.decoder.v.matvec_into(dec_xs.row(t), z);
                self.decoder.u.matvec_into(&h_cur, &mut uz);
                kernel::axpy(z, 1.0, &uz);
                kernel::axpy(z, 1.0, &self.decoder.b);
                self.decoder
                    .advance_gates(z, &mut h_cur, &mut c_cur, dec_tanh_c.row_mut(t));
            }
            let (ctx, attn_cache) = self.attention.forward(&h_cur, &enc_states, &attn_proj);
            context = ctx;
            {
                let frow = feats.row_mut(t);
                frow[..hidden].copy_from_slice(&h_cur);
                frow[hidden..].copy_from_slice(&context);
            }
            attn_caches.push(attn_cache);
            prev_tokens.push(prev_token);
        }

        // Output layer over all steps: one fused GEMM, then per-row
        // softmax. `probs` is reused in place as `dlogits` below.
        let mut probs =
            kernel::gemm_bias_act(&feats, &self.w_out, &self.b_out, Activation::Identity);
        let mut loss = 0.0f32;
        let mut correct = 0usize;
        let inv = 1.0 / steps as f32;
        for (t, &dec_target) in dec_targets.iter().enumerate() {
            let row = probs.row_mut(t);
            softmax_in_place(row);
            let target = dec_target.min(self.config.output_vocab - 1);
            loss -= (row[target] + 1e-12).ln();
            let argmax = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap_or(0);
            if argmax == target {
                correct += 1;
            }
            // Cross-entropy gradient in place: (p - onehot) / steps.
            row[target] -= 1.0;
            for d in row.iter_mut() {
                *d *= inv;
            }
        }

        // ---------------- output-layer backward (batched) ---------------
        kernel::add_matmul_tn(&mut grads.w_out, &probs, &feats);
        for t in 0..steps {
            kernel::axpy(&mut grads.b_out, 1.0, probs.row(t));
        }
        let dfeats = kernel::matmul(&probs, &self.w_out); // [steps x 2h]

        // ---------------- decoder backward ----------------
        let mut d_enc = Matrix::zeros(enc_states.rows, hidden);
        let mut dzs = Matrix::zeros(steps, 4 * hidden);
        let mut dh_next = vec![0.0f32; hidden];
        let mut dc_next = vec![0.0f32; hidden];
        let mut dc_prev = vec![0.0f32; hidden];
        let mut da_feed = vec![0.0f32; hidden]; // from step t+1's input slice
        for t in (0..steps).rev() {
            let dfeat = dfeats.row(t);
            let ds_out = &dfeat[..hidden];
            // Total context gradient: from the output layer and from
            // the next step's input feeding.
            let mut da_total = dfeat[hidden..].to_vec();
            kernel::axpy(&mut da_total, 1.0, &da_feed);
            let ds_attn = self.attention.backward(
                &attn_caches[t],
                &feats.row(t)[..hidden],
                &enc_states,
                &da_total,
                &mut grads.attention,
                &mut d_enc,
            );
            let mut dh = ds_attn;
            kernel::axpy(&mut dh, 1.0, ds_out);
            kernel::axpy(&mut dh, 1.0, &dh_next);
            self.decoder.backward_gates_into(
                dec_gates.row(t),
                dec_tanh_c.row(t),
                dec_cprevs.row(t),
                &dh,
                &dc_next,
                dzs.row_mut(t),
                &mut dc_prev,
            );
            let dz = dzs.row(t);
            let dx = self.decoder.v.matvec_t(dz);
            if self.dec_embed_trainable {
                kernel::axpy(grads.dec_embed.row_mut(prev_tokens[t]), 1.0, &dx[..dec_dim]);
            }
            da_feed.copy_from_slice(&dx[dec_dim..]);
            dh_next = self.decoder.u.matvec_t(dz);
            std::mem::swap(&mut dc_next, &mut dc_prev);
        }
        // The first step's context is zeros — da_feed is dropped.
        // Decoder weight gradients, batched over all steps.
        kernel::add_matmul_tn(&mut grads.decoder.v, &dzs, &dec_xs);
        kernel::add_matmul_tn(&mut grads.decoder.u, &dzs, &dec_hprevs);
        for t in 0..steps {
            kernel::axpy(&mut grads.decoder.b, 1.0, dzs.row(t));
        }
        // The decoder-init gradient flows into the encoder's final state.
        let last = d_enc.rows - 1;
        kernel::axpy(d_enc.row_mut(last), 1.0, &dh_next);

        // ---------------- encoder backward (batched) ----------------
        if let Some(cache) = &enc_cache {
            let (dxs, _, _) =
                self.encoder
                    .backward_seq(cache, &d_enc, &dc_next, &mut grads.encoder);
            for (t, &id) in enc_inputs.iter().enumerate() {
                kernel::axpy(grads.enc_embed.row_mut(id), 1.0, dxs.row(t));
            }
        }

        (loss * inv, correct, steps)
    }

    /// Forward-only evaluation: `(mean token cross-entropy, correct
    /// tokens, total tokens)` under teacher forcing — the paper's
    /// validation loss and `sparse_categorical_accuracy`.
    pub fn evaluate(&self, input_ids: &[usize], target_ids: &[usize]) -> (f32, usize, usize) {
        let enc = self.encode(input_ids);
        let mut st = self.decoder_init(&enc);
        let mut dec_inputs = vec![BOS];
        dec_inputs.extend_from_slice(target_ids);
        let mut dec_targets = target_ids.to_vec();
        dec_targets.push(EOS);
        let mut loss = 0.0f32;
        let mut correct = 0usize;
        let mut scratch = DecodeScratch::new();
        for (t, &prev) in dec_inputs.iter().enumerate() {
            let (logp, next) = self.decode_step_scratch(&enc, &st, prev, &mut scratch);
            let target = dec_targets[t].min(self.config.output_vocab - 1);
            loss -= logp[target];
            let argmax = logp
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap_or(0);
            if argmax == target {
                correct += 1;
            }
            st = next;
        }
        (loss / dec_inputs.len() as f32, correct, dec_inputs.len())
    }

    /// Apply accumulated gradients with SGD (no momentum, fixed lr —
    /// the paper's §6.4.2 training recipe), with global-norm clipping.
    pub fn apply_gradients(&mut self, grads: &mut Seq2SeqGrads, lr: f32, clip: f32) {
        let norm = grads.global_norm();
        let scale = if norm > clip && norm > 0.0 {
            clip / norm
        } else {
            1.0
        };
        let lr = lr * scale;
        self.enc_embed.add_scaled(&grads.enc_embed, -lr);
        self.encoder.apply_gradients(&grads.encoder, lr);
        if self.dec_embed_trainable {
            self.dec_embed.add_scaled(&grads.dec_embed, -lr);
        }
        self.decoder.apply_gradients(&grads.decoder, lr);
        if self.config.share_recurrent_weights {
            // Tied recurrent matrices: apply both gradient parts to the
            // shared tensor and mirror it.
            self.encoder.u.add_scaled(&grads.decoder.u, -lr);
            self.decoder.u.add_scaled(&grads.encoder.u, -lr);
            let tied = self.encoder.u.clone();
            self.decoder.u = tied;
        }
        self.attention.apply_gradients(&grads.attention, lr);
        self.w_out.add_scaled(&grads.w_out, -lr);
        for (p, g) in self.b_out.iter_mut().zip(&grads.b_out) {
            *p -= lr * g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> Seq2SeqConfig {
        Seq2SeqConfig {
            input_vocab: 12,
            output_vocab: 12,
            hidden: 24,
            encoder_embed_dim: 8,
            decoder_embed_dim: 8,
            attention_dim: 12,
            share_recurrent_weights: false,
            init_scale: 0.1,
            seed: 42,
        }
    }

    /// Copy-task data: output = input (tokens 4..10 to avoid specials).
    fn copy_data() -> Vec<(Vec<usize>, Vec<usize>)> {
        let mut data = Vec::new();
        for a in 4..10 {
            for b in 4..10 {
                data.push((vec![a, b], vec![a, b]));
            }
        }
        data
    }

    #[test]
    fn loss_decreases_on_copy_task() {
        let mut model = Seq2Seq::new(tiny_config());
        let data = copy_data();
        let mut grads = Seq2SeqGrads::zeros(&model);
        let initial: f32 = data
            .iter()
            .map(|(i, t)| model.evaluate(i, t).0)
            .sum::<f32>()
            / data.len() as f32;
        for _ in 0..60 {
            for chunk in data.chunks(4) {
                grads.clear();
                for (i, t) in chunk {
                    model.forward_backward(i, t, &mut grads);
                }
                model.apply_gradients(&mut grads, 0.5 / chunk.len() as f32, 5.0);
            }
        }
        let trained: f32 = data
            .iter()
            .map(|(i, t)| model.evaluate(i, t).0)
            .sum::<f32>()
            / data.len() as f32;
        assert!(
            trained < initial * 0.5,
            "loss did not drop: {initial} -> {trained}"
        );
    }

    #[test]
    fn greedy_decode_recovers_copy_after_training() {
        let mut model = Seq2Seq::new(tiny_config());
        let data = copy_data();
        let mut grads = Seq2SeqGrads::zeros(&model);
        for _ in 0..150 {
            for chunk in data.chunks(4) {
                grads.clear();
                for (i, t) in chunk {
                    model.forward_backward(i, t, &mut grads);
                }
                model.apply_gradients(&mut grads, 0.5 / chunk.len() as f32, 5.0);
            }
        }
        // Greedy decode a training pair.
        let input = vec![5usize, 8];
        let enc = model.encode(&input);
        let mut st = model.decoder_init(&enc);
        let mut prev = BOS;
        let mut out = Vec::new();
        for _ in 0..6 {
            let (logp, next) = model.decode_step(&enc, &st, prev);
            let tok = logp
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap();
            if tok == EOS {
                break;
            }
            out.push(tok);
            prev = tok;
            st = next;
        }
        assert_eq!(out, vec![5, 8], "greedy decode failed");
    }

    #[test]
    #[allow(clippy::type_complexity)] // probe table: (accessor, gradient) pairs
    fn gradient_check_end_to_end() {
        // Check a few parameters of every component through the full
        // forward/backward.
        let mut config = tiny_config();
        config.hidden = 6;
        config.attention_dim = 4;
        config.encoder_embed_dim = 3;
        config.decoder_embed_dim = 3;
        let mut model = Seq2Seq::new(config);
        let input = vec![4usize, 5, 6];
        let target = vec![7usize, 8];
        let mut grads = Seq2SeqGrads::zeros(&model);
        model.forward_backward(&input, &target, &mut grads);

        let eps = 1e-2f32;
        let loss_of = |m: &Seq2Seq| m.evaluate(&input, &target).0;
        // (accessor, gradient) pairs to probe.
        let probes: Vec<(Box<dyn Fn(&mut Seq2Seq) -> &mut f32>, f32)> = vec![
            (
                Box::new(|m: &mut Seq2Seq| &mut m.w_out.data[3]),
                grads.w_out.data[3],
            ),
            (Box::new(|m: &mut Seq2Seq| &mut m.b_out[2]), grads.b_out[2]),
            (
                Box::new(|m: &mut Seq2Seq| &mut m.encoder.v.data[5]),
                grads.encoder.v.data[5],
            ),
            (
                Box::new(|m: &mut Seq2Seq| &mut m.encoder.u.data[7]),
                grads.encoder.u.data[7],
            ),
            (
                Box::new(|m: &mut Seq2Seq| &mut m.decoder.v.data[11]),
                grads.decoder.v.data[11],
            ),
            (
                Box::new(|m: &mut Seq2Seq| &mut m.decoder.u.data[13]),
                grads.decoder.u.data[13],
            ),
            (
                Box::new(|m: &mut Seq2Seq| &mut m.attention.w_s.data[2]),
                grads.attention.w_s.data[2],
            ),
            (
                Box::new(|m: &mut Seq2Seq| &mut m.attention.w_h.data[4]),
                grads.attention.w_h.data[4],
            ),
            (
                Box::new(|m: &mut Seq2Seq| &mut m.attention.v_a[1]),
                grads.attention.v_a[1],
            ),
            (
                Box::new(|m: &mut Seq2Seq| &mut m.enc_embed.data[14]),
                grads.enc_embed.data[14],
            ),
            (
                Box::new(|m: &mut Seq2Seq| &mut m.dec_embed.data[22]),
                grads.dec_embed.data[22],
            ),
        ];
        for (i, (access, analytic)) in probes.into_iter().enumerate() {
            let orig = *access(&mut model);
            *access(&mut model) = orig + eps;
            let fp = loss_of(&model);
            *access(&mut model) = orig - eps;
            let fm = loss_of(&model);
            *access(&mut model) = orig;
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - analytic).abs() < 6e-3,
                "probe {i}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn pretrained_embeddings_are_frozen() {
        let config = tiny_config();
        let table = Matrix::uniform(
            config.output_vocab,
            config.decoder_embed_dim,
            0.5,
            &mut seeded_rng(9),
        );
        let mut model = Seq2Seq::new(config).with_pretrained_decoder_embeddings(table.clone());
        let mut grads = Seq2SeqGrads::zeros(&model);
        model.forward_backward(&[4, 5], &[6, 7], &mut grads);
        model.apply_gradients(&mut grads, 0.1, 5.0);
        assert_eq!(model.dec_embed, table, "frozen embeddings must not move");
    }

    #[test]
    fn shared_recurrent_weights_stay_tied() {
        let mut config = tiny_config();
        config.share_recurrent_weights = true;
        let mut model = Seq2Seq::new(config);
        assert_eq!(model.encoder.u, model.decoder.u);
        let mut grads = Seq2SeqGrads::zeros(&model);
        model.forward_backward(&[4, 5, 6], &[7, 8], &mut grads);
        model.apply_gradients(&mut grads, 0.1, 5.0);
        assert_eq!(model.encoder.u, model.decoder.u, "tied weights diverged");
    }

    #[test]
    fn empty_input_still_decodes() {
        let model = Seq2Seq::new(tiny_config());
        let (loss, _, total) = model.evaluate(&[], &[4]);
        assert!(loss.is_finite());
        assert_eq!(total, 2); // token + EOS

        // And still trains (the encoder is skipped, not the decoder).
        let mut grads = Seq2SeqGrads::zeros(&model);
        let (loss, _, _) = model.forward_backward(&[], &[4], &mut grads);
        assert!(loss.is_finite());
    }

    #[test]
    fn decode_step_scratch_matches_fresh_buffers() {
        let model = Seq2Seq::new(tiny_config());
        let enc = model.encode(&[4, 5, 6]);
        let st = model.decoder_init(&enc);
        let (logp_fresh, next_fresh) = model.decode_step(&enc, &st, BOS);
        let mut scratch = DecodeScratch::new();
        // Dirty the scratch with a first call, then decode the same
        // step again: reused buffers must not leak state.
        let _ = model.decode_step_scratch(&enc, &st, 5, &mut scratch);
        let (logp, next) = model.decode_step_scratch(&enc, &st, BOS, &mut scratch);
        assert_eq!(logp, logp_fresh);
        assert_eq!(next.state.h, next_fresh.state.h);
        assert_eq!(next.context, next_fresh.context);
    }

    #[test]
    fn batched_decode_step_matches_sequential() {
        // Three hypotheses with different states and previous tokens:
        // each row of the batched step must agree with its own
        // sequential decode step to float tolerance (the projections
        // are GEMMs instead of matvecs, so accumulation order may
        // differ in the last bits — argmax/ranking never does on real
        // gaps, which the beam-level token-identity test pins down).
        let model = Seq2Seq::new(tiny_config());
        let enc = model.encode(&[4, 5, 6]);
        let mut scratch = DecodeScratch::new();
        let s0 = model.decoder_init(&enc);
        let (_, s1) = model.decode_step_scratch(&enc, &s0, BOS, &mut scratch);
        let (_, s2) = model.decode_step_scratch(&enc, &s1, 5, &mut scratch);
        let states = [&s0, &s1, &s2];
        let prevs = [BOS, 5usize, 7];
        let (logp_all, next_all) = model.decode_step_batch(&enc, &states, &prevs, &mut scratch);
        assert_eq!(logp_all.rows, 3);
        for i in 0..3 {
            let (logp, next) = model.decode_step_scratch(&enc, states[i], prevs[i], &mut scratch);
            for (a, b) in logp.iter().zip(logp_all.row(i)) {
                assert!((a - b).abs() < 1e-4, "row {i}: {a} vs {b}");
            }
            for (a, b) in next.state.h.iter().zip(&next_all[i].state.h) {
                assert!((a - b).abs() < 1e-5, "row {i} h");
            }
            for (a, b) in next.context.iter().zip(&next_all[i].context) {
                assert!((a - b).abs() < 1e-5, "row {i} context");
            }
        }
    }

    #[test]
    fn parameter_count_components() {
        let model = Seq2Seq::new(tiny_config());
        let c = &model.config;
        let expected = c.input_vocab * c.encoder_embed_dim
            + 4 * c.hidden * (c.encoder_embed_dim + c.hidden)
            + 4 * c.hidden
            + c.output_vocab * c.decoder_embed_dim
            + 4 * c.hidden * (c.decoder_embed_dim + c.hidden + c.hidden)
            + 4 * c.hidden
            + 2 * c.attention_dim * c.hidden
            + c.attention_dim
            + c.output_vocab * 2 * c.hidden
            + c.output_vocab;
        assert_eq!(model.parameter_count(), expected);
    }
}
