//! Additive (Bahdanau) attention, paper §6.4.1 equations (8)–(10):
//!
//! ```text
//! g(s_t, h_i) = v_a^T tanh(W_s s_t + W_h h_i)
//! α_i = softmax_i(g(s_t, h_i))
//! a_t = Σ_i α_i h_i
//! ```

use crate::matrix::{dot, softmax, softmax_backward, Matrix};
use rand::rngs::StdRng;

/// Attention parameters.
#[derive(Debug, Clone)]
pub struct AdditiveAttention {
    /// `W_s`, `d_a x hidden`.
    pub w_s: Matrix,
    /// `W_h`, `d_a x hidden`.
    pub w_h: Matrix,
    /// `v_a`, `d_a`.
    pub v_a: Vec<f32>,
    /// Attention dimensionality.
    pub dim: usize,
}

/// Forward cache for one attention application.
#[derive(Debug, Clone)]
pub struct AttnCache {
    s: Vec<f32>,
    /// tanh pre-activations per encoder position.
    t: Vec<Vec<f32>>,
    /// attention weights.
    pub alpha: Vec<f32>,
}

/// Gradients for [`AdditiveAttention`].
#[derive(Debug, Clone)]
pub struct AttnGrads {
    /// d/dW_s.
    pub w_s: Matrix,
    /// d/dW_h.
    pub w_h: Matrix,
    /// d/dv_a.
    pub v_a: Vec<f32>,
}

impl AttnGrads {
    /// Zeroed gradients for `attn`.
    pub fn zeros(attn: &AdditiveAttention) -> Self {
        AttnGrads {
            w_s: Matrix::zeros(attn.w_s.rows, attn.w_s.cols),
            w_h: Matrix::zeros(attn.w_h.rows, attn.w_h.cols),
            v_a: vec![0.0; attn.v_a.len()],
        }
    }

    /// Reset to zero.
    pub fn clear(&mut self) {
        self.w_s.fill_zero();
        self.w_h.fill_zero();
        self.v_a.iter_mut().for_each(|v| *v = 0.0);
    }
}

impl AdditiveAttention {
    /// New attention module with uniform initialization.
    pub fn new(hidden: usize, dim: usize, scale: f32, rng: &mut StdRng) -> Self {
        AdditiveAttention {
            w_s: Matrix::uniform(dim, hidden, scale, rng),
            w_h: Matrix::uniform(dim, hidden, scale, rng),
            v_a: (0..dim).map(|_| rng.gen_range(-scale..=scale)).collect(),
            dim,
        }
    }

    /// Parameter count.
    pub fn parameter_count(&self) -> usize {
        self.w_s.len() + self.w_h.len() + self.v_a.len()
    }

    /// Compute the context vector for decoder state `s` over
    /// `encoder_states`; returns `(context, cache)`.
    pub fn forward(&self, s: &[f32], encoder_states: &[Vec<f32>]) -> (Vec<f32>, AttnCache) {
        let ws_s = self.w_s.matvec(s);
        let mut scores = Vec::with_capacity(encoder_states.len());
        let mut t_cache = Vec::with_capacity(encoder_states.len());
        for h in encoder_states {
            let mut pre = self.w_h.matvec(h);
            for (a, b) in pre.iter_mut().zip(&ws_s) {
                *a += b;
            }
            let t: Vec<f32> = pre.iter().map(|v| v.tanh()).collect();
            scores.push(dot(&self.v_a, &t));
            t_cache.push(t);
        }
        let alpha = softmax(&scores);
        let hidden = encoder_states[0].len();
        let mut context = vec![0.0f32; hidden];
        for (a, h) in alpha.iter().zip(encoder_states) {
            for (c, hv) in context.iter_mut().zip(h) {
                *c += a * hv;
            }
        }
        (
            context,
            AttnCache {
                s: s.to_vec(),
                t: t_cache,
                alpha,
            },
        )
    }

    /// Backward pass: given `d_context`, accumulate parameter
    /// gradients and return `(ds, d_encoder_states)`.
    pub fn backward(
        &self,
        cache: &AttnCache,
        encoder_states: &[Vec<f32>],
        d_context: &[f32],
        grads: &mut AttnGrads,
    ) -> (Vec<f32>, Vec<Vec<f32>>) {
        let n = encoder_states.len();
        let hidden = encoder_states[0].len();
        // dα_i = d_context · h_i ; dh_i += α_i d_context.
        let mut d_alpha = vec![0.0f32; n];
        let mut d_enc: Vec<Vec<f32>> = vec![vec![0.0; hidden]; n];
        for i in 0..n {
            d_alpha[i] = dot(d_context, &encoder_states[i]);
            for k in 0..hidden {
                d_enc[i][k] += cache.alpha[i] * d_context[k];
            }
        }
        let d_scores = softmax_backward(&cache.alpha, &d_alpha);
        let mut ds = vec![0.0f32; cache.s.len()];
        for i in 0..n {
            let dsc = d_scores[i];
            if dsc == 0.0 {
                continue;
            }
            // dv_a += dsc * t_i ; dt = dsc * v_a.
            let t = &cache.t[i];
            let mut dpre = vec![0.0f32; self.dim];
            for k in 0..self.dim {
                grads.v_a[k] += dsc * t[k];
                dpre[k] = dsc * self.v_a[k] * (1.0 - t[k] * t[k]);
            }
            grads.w_s.add_outer(&dpre, &cache.s);
            grads.w_h.add_outer(&dpre, &encoder_states[i]);
            let ds_part = self.w_s.matvec_t(&dpre);
            for (a, b) in ds.iter_mut().zip(&ds_part) {
                *a += b;
            }
            let dh_part = self.w_h.matvec_t(&dpre);
            for (a, b) in d_enc[i].iter_mut().zip(&dh_part) {
                *a += b;
            }
        }
        (ds, d_enc)
    }

    /// SGD update.
    pub fn apply_gradients(&mut self, grads: &AttnGrads, lr: f32) {
        self.w_s.add_scaled(&grads.w_s, -lr);
        self.w_h.add_scaled(&grads.w_h, -lr);
        for (p, g) in self.v_a.iter_mut().zip(&grads.v_a) {
            *p -= lr * g;
        }
    }
}

use rand::Rng;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::seeded_rng;

    #[test]
    fn weights_sum_to_one() {
        let mut rng = seeded_rng(1);
        let attn = AdditiveAttention::new(4, 3, 0.2, &mut rng);
        let enc = vec![vec![0.1; 4], vec![0.5; 4], vec![-0.3; 4]];
        let (ctx, cache) = attn.forward(&[0.2, -0.1, 0.4, 0.0], &enc);
        assert_eq!(ctx.len(), 4);
        let sum: f32 = cache.alpha.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
    }

    #[test]
    fn context_is_convex_combination() {
        let mut rng = seeded_rng(2);
        let attn = AdditiveAttention::new(2, 3, 0.2, &mut rng);
        let enc = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let (ctx, _) = attn.forward(&[0.3, 0.7], &enc);
        // Both components in [0, 1] and summing to 1.
        assert!((ctx[0] + ctx[1] - 1.0).abs() < 1e-5);
        assert!(ctx[0] >= 0.0 && ctx[1] >= 0.0);
    }

    #[test]
    fn gradient_check() {
        let mut rng = seeded_rng(3);
        let mut attn = AdditiveAttention::new(3, 2, 0.5, &mut rng);
        let enc = vec![
            vec![0.2, -0.1, 0.4],
            vec![-0.3, 0.5, 0.1],
            vec![0.0, 0.2, -0.2],
        ];
        let s = vec![0.1f32, -0.4, 0.3];
        // Loss = sum(context).
        let loss_of = |attn: &AdditiveAttention| {
            let (ctx, _) = attn.forward(&s, &enc);
            ctx.iter().sum::<f32>()
        };
        let (ctx, cache) = attn.forward(&s, &enc);
        let mut grads = AttnGrads::zeros(&attn);
        let d_ctx = vec![1.0f32; ctx.len()];
        let (ds, d_enc) = attn.backward(&cache, &enc, &d_ctx, &mut grads);

        let eps = 1e-2f32;
        // Parameter gradients.
        for idx in 0..attn.w_s.len() {
            let orig = attn.w_s.data[idx];
            attn.w_s.data[idx] = orig + eps;
            let fp = loss_of(&attn);
            attn.w_s.data[idx] = orig - eps;
            let fm = loss_of(&attn);
            attn.w_s.data[idx] = orig;
            let numeric = (fp - fm) / (2.0 * eps);
            assert!((numeric - grads.w_s.data[idx]).abs() < 5e-3, "w_s[{idx}]");
        }
        for idx in 0..attn.v_a.len() {
            let orig = attn.v_a[idx];
            attn.v_a[idx] = orig + eps;
            let fp = loss_of(&attn);
            attn.v_a[idx] = orig - eps;
            let fm = loss_of(&attn);
            attn.v_a[idx] = orig;
            let numeric = (fp - fm) / (2.0 * eps);
            assert!((numeric - grads.v_a[idx]).abs() < 5e-3, "v_a[{idx}]");
        }
        // Input gradients (s).
        for i in 0..s.len() {
            let mut sp = s.clone();
            sp[i] += eps;
            let mut sm = s.clone();
            sm[i] -= eps;
            let fp: f32 = attn.forward(&sp, &enc).0.iter().sum();
            let fm: f32 = attn.forward(&sm, &enc).0.iter().sum();
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - ds[i]).abs() < 5e-3,
                "ds[{i}]: {numeric} vs {}",
                ds[i]
            );
        }
        // Encoder-state gradients.
        for (i, h) in enc.iter().enumerate() {
            for k in 0..h.len() {
                let mut e2 = enc.clone();
                e2[i][k] += eps;
                let fp: f32 = attn.forward(&s, &e2).0.iter().sum();
                e2[i][k] -= 2.0 * eps;
                let fm: f32 = attn.forward(&s, &e2).0.iter().sum();
                let numeric = (fp - fm) / (2.0 * eps);
                assert!(
                    (numeric - d_enc[i][k]).abs() < 5e-3,
                    "d_enc[{i}][{k}]: {numeric} vs {}",
                    d_enc[i][k]
                );
            }
        }
    }
}
