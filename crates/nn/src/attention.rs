//! Additive (Bahdanau) attention, paper §6.4.1 equations (8)–(10):
//!
//! ```text
//! g(s_t, h_i) = v_a^T tanh(W_s s_t + W_h h_i)
//! α_i = softmax_i(g(s_t, h_i))
//! a_t = Σ_i α_i h_i
//! ```
//!
//! Encoder states are a row-major `[T × hidden]` [`Matrix`], and the
//! position-independent half of the score, `W_h h_i`, is precomputed
//! for the whole sequence by [`AdditiveAttention::project`] — one
//! blocked GEMM reused by every decoder step and beam hypothesis
//! instead of `T` fresh matvecs per step. Scores, the context, and
//! every backward product are batched GEMM/matvec calls on the kernel
//! layer.

use crate::kernel;
use crate::matrix::{softmax, softmax_backward, Matrix};
use rand::rngs::StdRng;
use rand::Rng;

/// Attention parameters.
#[derive(Debug, Clone)]
pub struct AdditiveAttention {
    /// `W_s`, `d_a x hidden`.
    pub w_s: Matrix,
    /// `W_h`, `d_a x hidden`.
    pub w_h: Matrix,
    /// `v_a`, `d_a`.
    pub v_a: Vec<f32>,
    /// Attention dimensionality.
    pub dim: usize,
}

/// Forward cache for one attention application. The query `s` is not
/// copied in — the caller keeps it and passes it back to
/// [`AdditiveAttention::backward`].
#[derive(Debug, Clone)]
pub struct AttnCache {
    /// tanh activations, one row per encoder position (`T x d_a`).
    t: Matrix,
    /// attention weights.
    pub alpha: Vec<f32>,
}

/// Reusable buffers for the inference-only [`AdditiveAttention::attend`]
/// path (no cache is built; nothing escapes but the context).
#[derive(Debug, Clone, Default)]
pub struct AttnScratch {
    ws_s: Vec<f32>,
    pre: Vec<f32>,
    scores: Vec<f32>,
}

/// Gradients for [`AdditiveAttention`].
#[derive(Debug, Clone)]
pub struct AttnGrads {
    /// d/dW_s.
    pub w_s: Matrix,
    /// d/dW_h.
    pub w_h: Matrix,
    /// d/dv_a.
    pub v_a: Vec<f32>,
}

impl AttnGrads {
    /// Zeroed gradients for `attn`.
    pub fn zeros(attn: &AdditiveAttention) -> Self {
        AttnGrads {
            w_s: Matrix::zeros(attn.w_s.rows, attn.w_s.cols),
            w_h: Matrix::zeros(attn.w_h.rows, attn.w_h.cols),
            v_a: vec![0.0; attn.v_a.len()],
        }
    }

    /// Reset to zero.
    pub fn clear(&mut self) {
        self.w_s.fill_zero();
        self.w_h.fill_zero();
        self.v_a.iter_mut().for_each(|v| *v = 0.0);
    }

    /// `self += other` (minibatch merge).
    pub fn merge(&mut self, other: &AttnGrads) {
        self.w_s.add_scaled(&other.w_s, 1.0);
        self.w_h.add_scaled(&other.w_h, 1.0);
        kernel::axpy(&mut self.v_a, 1.0, &other.v_a);
    }
}

impl AdditiveAttention {
    /// New attention module with uniform initialization.
    pub fn new(hidden: usize, dim: usize, scale: f32, rng: &mut StdRng) -> Self {
        AdditiveAttention {
            w_s: Matrix::uniform(dim, hidden, scale, rng),
            w_h: Matrix::uniform(dim, hidden, scale, rng),
            v_a: (0..dim).map(|_| rng.gen_range(-scale..=scale)).collect(),
            dim,
        }
    }

    /// Parameter count.
    pub fn parameter_count(&self) -> usize {
        self.w_s.len() + self.w_h.len() + self.v_a.len()
    }

    /// Precompute `W_h h_i` for every encoder position as one
    /// `[T×hidden] × [hidden×d_a]` GEMM. The result is reused by every
    /// subsequent [`AdditiveAttention::forward`]/
    /// [`AdditiveAttention::attend`] over the same states.
    pub fn project(&self, states: &Matrix) -> Matrix {
        kernel::matmul_t(states, &self.w_h)
    }

    /// Compute the context vector for decoder state `s` over encoder
    /// `states` (`T x hidden`) with their projection from
    /// [`AdditiveAttention::project`]; returns `(context, cache)`.
    pub fn forward(&self, s: &[f32], states: &Matrix, proj: &Matrix) -> (Vec<f32>, AttnCache) {
        let ws_s = self.w_s.matvec(s);
        let mut t = proj.clone();
        for i in 0..t.rows {
            let row = t.row_mut(i);
            for (v, b) in row.iter_mut().zip(&ws_s) {
                *v = (*v + b).tanh();
            }
        }
        let scores = t.matvec(&self.v_a);
        let alpha = softmax(&scores);
        let context = states.matvec_t(&alpha);
        (context, AttnCache { t, alpha })
    }

    /// Inference-only attention: same math as
    /// [`AdditiveAttention::forward`] but no backward cache, with all
    /// intermediates living in caller-owned `scratch`.
    pub fn attend(
        &self,
        s: &[f32],
        states: &Matrix,
        proj: &Matrix,
        scratch: &mut AttnScratch,
    ) -> Vec<f32> {
        scratch.ws_s.resize(self.dim, 0.0);
        self.w_s.matvec_into(s, &mut scratch.ws_s);
        let ws_s = std::mem::take(&mut scratch.ws_s);
        let context = self.attend_projected(&ws_s, states, proj, scratch);
        scratch.ws_s = ws_s;
        context
    }

    /// [`AdditiveAttention::attend`] with the query projection
    /// `W_s s_t` already computed — the batched decoder projects all
    /// `K` beam hypotheses' queries in one GEMM and hands each row
    /// here, so the score/softmax/context math (and its accumulation
    /// order) is shared with the sequential path.
    pub fn attend_projected(
        &self,
        ws_s: &[f32],
        states: &Matrix,
        proj: &Matrix,
        scratch: &mut AttnScratch,
    ) -> Vec<f32> {
        scratch.scores.clear();
        scratch.pre.resize(self.dim, 0.0);
        for i in 0..proj.rows {
            for ((p, v), b) in scratch.pre.iter_mut().zip(proj.row(i)).zip(ws_s) {
                *p = (v + b).tanh();
            }
            scratch.scores.push(kernel::dot(&self.v_a, &scratch.pre));
        }
        let alpha = softmax(&scratch.scores);
        states.matvec_t(&alpha)
    }

    /// Backward pass: given the forward query `s` and `d_context`,
    /// accumulate parameter gradients into `grads` and encoder-state
    /// gradients into `d_states` (`T x hidden`, caller-owned
    /// accumulator); returns `ds`.
    pub fn backward(
        &self,
        cache: &AttnCache,
        s: &[f32],
        states: &Matrix,
        d_context: &[f32],
        grads: &mut AttnGrads,
        d_states: &mut Matrix,
    ) -> Vec<f32> {
        let n = states.rows;
        // dα_i = d_context · h_i ; dh_i += α_i d_context.
        let mut d_alpha = vec![0.0f32; n];
        for (i, da) in d_alpha.iter_mut().enumerate() {
            *da = kernel::dot(d_context, states.row(i));
            kernel::axpy(d_states.row_mut(i), cache.alpha[i], d_context);
        }
        let d_scores = softmax_backward(&cache.alpha, &d_alpha);
        // dv_a += T^T d_scores ; dpre_i = d_scores_i * v_a ⊙ (1 - t_i²).
        kernel::axpy(&mut grads.v_a, 1.0, &cache.t.matvec_t(&d_scores));
        let mut d_pre = Matrix::zeros(n, self.dim);
        let mut d_pre_sum = vec![0.0f32; self.dim];
        for (i, &dsc) in d_scores.iter().enumerate() {
            let trow = cache.t.row(i);
            let drow = d_pre.row_mut(i);
            for (k, (d, t)) in drow.iter_mut().zip(trow).enumerate() {
                *d = dsc * self.v_a[k] * (1.0 - t * t);
            }
            kernel::axpy(&mut d_pre_sum, 1.0, drow);
        }
        // All positions share s: dW_s += (Σ_i dpre_i) ⊗ s.
        grads.w_s.add_outer(&d_pre_sum, s);
        kernel::add_matmul_tn(&mut grads.w_h, &d_pre, states);
        kernel::add_matmul(d_states, &d_pre, &self.w_h);
        self.w_s.matvec_t(&d_pre_sum)
    }

    /// SGD update.
    pub fn apply_gradients(&mut self, grads: &AttnGrads, lr: f32) {
        self.w_s.add_scaled(&grads.w_s, -lr);
        self.w_h.add_scaled(&grads.w_h, -lr);
        for (p, g) in self.v_a.iter_mut().zip(&grads.v_a) {
            *p -= lr * g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::seeded_rng;

    fn states_matrix(rows: &[Vec<f32>]) -> Matrix {
        let cols = rows[0].len();
        let data: Vec<f32> = rows.iter().flatten().cloned().collect();
        Matrix::from_flat(rows.len(), cols, data)
    }

    #[test]
    fn weights_sum_to_one() {
        let mut rng = seeded_rng(1);
        let attn = AdditiveAttention::new(4, 3, 0.2, &mut rng);
        let enc = states_matrix(&[vec![0.1; 4], vec![0.5; 4], vec![-0.3; 4]]);
        let proj = attn.project(&enc);
        let (ctx, cache) = attn.forward(&[0.2, -0.1, 0.4, 0.0], &enc, &proj);
        assert_eq!(ctx.len(), 4);
        let sum: f32 = cache.alpha.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
    }

    #[test]
    fn context_is_convex_combination() {
        let mut rng = seeded_rng(2);
        let attn = AdditiveAttention::new(2, 3, 0.2, &mut rng);
        let enc = states_matrix(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        let proj = attn.project(&enc);
        let (ctx, _) = attn.forward(&[0.3, 0.7], &enc, &proj);
        // Both components in [0, 1] and summing to 1.
        assert!((ctx[0] + ctx[1] - 1.0).abs() < 1e-5);
        assert!(ctx[0] >= 0.0 && ctx[1] >= 0.0);
    }

    #[test]
    fn attend_matches_forward() {
        let mut rng = seeded_rng(7);
        let attn = AdditiveAttention::new(5, 3, 0.3, &mut rng);
        let enc = Matrix::uniform(4, 5, 0.5, &mut rng);
        let proj = attn.project(&enc);
        let s = vec![0.2f32, -0.3, 0.1, 0.4, -0.2];
        let (ctx, _) = attn.forward(&s, &enc, &proj);
        let mut scratch = AttnScratch::default();
        let ctx2 = attn.attend(&s, &enc, &proj, &mut scratch);
        // Reuse the scratch: second call must agree too.
        let ctx3 = attn.attend(&s, &enc, &proj, &mut scratch);
        for ((a, b), c) in ctx.iter().zip(&ctx2).zip(&ctx3) {
            assert!((a - b).abs() < 1e-6 && (a - c).abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_check() {
        let mut rng = seeded_rng(3);
        let mut attn = AdditiveAttention::new(3, 2, 0.5, &mut rng);
        let enc = states_matrix(&[
            vec![0.2, -0.1, 0.4],
            vec![-0.3, 0.5, 0.1],
            vec![0.0, 0.2, -0.2],
        ]);
        let s = vec![0.1f32, -0.4, 0.3];
        // Loss = sum(context).
        let loss_of = |attn: &AdditiveAttention, enc: &Matrix| {
            let proj = attn.project(enc);
            let (ctx, _) = attn.forward(&s, enc, &proj);
            ctx.iter().sum::<f32>()
        };
        let proj = attn.project(&enc);
        let (ctx, cache) = attn.forward(&s, &enc, &proj);
        let mut grads = AttnGrads::zeros(&attn);
        let d_ctx = vec![1.0f32; ctx.len()];
        let mut d_enc = Matrix::zeros(enc.rows, enc.cols);
        let ds = attn.backward(&cache, &s, &enc, &d_ctx, &mut grads, &mut d_enc);

        let eps = 1e-2f32;
        // Parameter gradients (W_s, W_h, v_a).
        for idx in 0..attn.w_s.len() {
            let orig = attn.w_s.data[idx];
            attn.w_s.data[idx] = orig + eps;
            let fp = loss_of(&attn, &enc);
            attn.w_s.data[idx] = orig - eps;
            let fm = loss_of(&attn, &enc);
            attn.w_s.data[idx] = orig;
            let numeric = (fp - fm) / (2.0 * eps);
            assert!((numeric - grads.w_s.data[idx]).abs() < 5e-3, "w_s[{idx}]");
        }
        for idx in 0..attn.w_h.len() {
            let orig = attn.w_h.data[idx];
            attn.w_h.data[idx] = orig + eps;
            let fp = loss_of(&attn, &enc);
            attn.w_h.data[idx] = orig - eps;
            let fm = loss_of(&attn, &enc);
            attn.w_h.data[idx] = orig;
            let numeric = (fp - fm) / (2.0 * eps);
            assert!((numeric - grads.w_h.data[idx]).abs() < 5e-3, "w_h[{idx}]");
        }
        for idx in 0..attn.v_a.len() {
            let orig = attn.v_a[idx];
            attn.v_a[idx] = orig + eps;
            let fp = loss_of(&attn, &enc);
            attn.v_a[idx] = orig - eps;
            let fm = loss_of(&attn, &enc);
            attn.v_a[idx] = orig;
            let numeric = (fp - fm) / (2.0 * eps);
            assert!((numeric - grads.v_a[idx]).abs() < 5e-3, "v_a[{idx}]");
        }
        // Input gradients (s).
        for i in 0..s.len() {
            let mut sp = s.clone();
            sp[i] += eps;
            let mut sm = s.clone();
            sm[i] -= eps;
            let fp: f32 = attn.forward(&sp, &enc, &proj).0.iter().sum();
            let fm: f32 = attn.forward(&sm, &enc, &proj).0.iter().sum();
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - ds[i]).abs() < 5e-3,
                "ds[{i}]: {numeric} vs {}",
                ds[i]
            );
        }
        // Encoder-state gradients.
        for i in 0..enc.rows {
            for k in 0..enc.cols {
                let mut e2 = enc.clone();
                e2.set(i, k, enc.get(i, k) + eps);
                let fp = loss_of(&attn, &e2);
                e2.set(i, k, enc.get(i, k) - eps);
                let fm = loss_of(&attn, &e2);
                let numeric = (fp - fm) / (2.0 * eps);
                assert!(
                    (numeric - d_enc.get(i, k)).abs() < 5e-3,
                    "d_enc[{i}][{k}]: {numeric} vs {}",
                    d_enc.get(i, k)
                );
            }
        }
    }
}
