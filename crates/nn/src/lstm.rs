//! The LSTM cell of paper §6.4.1, equations (2)–(6):
//!
//! ```text
//! i_t = sigmoid(U_i h_{t-1} + V_i x_t)        [input gate]
//! f_t = sigmoid(U_f h_{t-1} + V_f x_t)        [forget gate]
//! o_t = sigmoid(U_o h_{t-1} + V_o x_t)        [output gate]
//! c_t = i_t ⊙ tanh(U_c h_{t-1} + V_c x_t) + f_t ⊙ c_{t-1}
//! h_t = o_t ⊙ tanh(c_t)
//! ```
//!
//! with a bias term per gate (the PyTorch/Keras convention the paper's
//! Table-3 parameter counts follow: `4h(in + h) + 4h` parameters).
//! Full backpropagation through time is implemented by hand and
//! verified against finite differences.

use crate::matrix::{sigmoid, Matrix};
use rand::rngs::StdRng;

/// Gate slab order inside the fused `4h` dimension.
const GATE_I: usize = 0;
const GATE_F: usize = 1;
const GATE_O: usize = 2;
const GATE_G: usize = 3;

/// LSTM parameters: fused gate matrices `V` (input, `4h x in`), `U`
/// (recurrent, `4h x h`), and bias `b` (`4h`).
#[derive(Debug, Clone)]
pub struct LstmCell {
    /// Input weights, `4h x input_dim`.
    pub v: Matrix,
    /// Recurrent weights, `4h x hidden_dim`.
    pub u: Matrix,
    /// Bias, `4h`.
    pub b: Vec<f32>,
    /// Hidden size.
    pub hidden: usize,
    /// Input size.
    pub input: usize,
}

/// Running state `(h, c)`.
#[derive(Debug, Clone)]
pub struct LstmState {
    /// Hidden vector.
    pub h: Vec<f32>,
    /// Cell vector.
    pub c: Vec<f32>,
}

impl LstmState {
    /// Zero state.
    pub fn zeros(hidden: usize) -> Self {
        LstmState {
            h: vec![0.0; hidden],
            c: vec![0.0; hidden],
        }
    }
}

/// Per-step cache for backprop.
#[derive(Debug, Clone)]
pub struct LstmStepCache {
    x: Vec<f32>,
    h_prev: Vec<f32>,
    c_prev: Vec<f32>,
    gates: Vec<f32>, // post-activation [i, f, o, g] fused
    tanh_c: Vec<f32>,
}

/// Gradient accumulators matching [`LstmCell`].
#[derive(Debug, Clone)]
pub struct LstmGrads {
    /// d/dV.
    pub v: Matrix,
    /// d/dU.
    pub u: Matrix,
    /// d/db.
    pub b: Vec<f32>,
}

impl LstmGrads {
    /// Zeroed gradients for `cell`.
    pub fn zeros(cell: &LstmCell) -> Self {
        LstmGrads {
            v: Matrix::zeros(cell.v.rows, cell.v.cols),
            u: Matrix::zeros(cell.u.rows, cell.u.cols),
            b: vec![0.0; cell.b.len()],
        }
    }

    /// Reset to zero.
    pub fn clear(&mut self) {
        self.v.fill_zero();
        self.u.fill_zero();
        self.b.iter_mut().for_each(|v| *v = 0.0);
    }
}

impl LstmCell {
    /// New cell with uniform `[-scale, scale]` initialization.
    pub fn new(input: usize, hidden: usize, scale: f32, rng: &mut StdRng) -> Self {
        LstmCell {
            v: Matrix::uniform(4 * hidden, input, scale, rng),
            u: Matrix::uniform(4 * hidden, hidden, scale, rng),
            b: vec![0.0; 4 * hidden],
            hidden,
            input,
        }
    }

    /// Parameter count: `4h(in + h) + 4h`.
    pub fn parameter_count(&self) -> usize {
        self.v.len() + self.u.len() + self.b.len()
    }

    /// One forward step; returns the new state and the cache needed by
    /// [`LstmCell::backward_step`].
    pub fn forward_step(&self, state: &LstmState, x: &[f32]) -> (LstmState, LstmStepCache) {
        let h = self.hidden;
        let mut z = self.v.matvec(x);
        let uz = self.u.matvec(&state.h);
        for (a, b) in z.iter_mut().zip(&uz) {
            *a += b;
        }
        for (a, b) in z.iter_mut().zip(&self.b) {
            *a += b;
        }
        let mut gates = vec![0.0f32; 4 * h];
        for k in 0..h {
            gates[GATE_I * h + k] = sigmoid(z[GATE_I * h + k]);
            gates[GATE_F * h + k] = sigmoid(z[GATE_F * h + k]);
            gates[GATE_O * h + k] = sigmoid(z[GATE_O * h + k]);
            gates[GATE_G * h + k] = z[GATE_G * h + k].tanh();
        }
        let mut c = vec![0.0f32; h];
        let mut hh = vec![0.0f32; h];
        let mut tanh_c = vec![0.0f32; h];
        for k in 0..h {
            c[k] =
                gates[GATE_I * h + k] * gates[GATE_G * h + k] + gates[GATE_F * h + k] * state.c[k];
            tanh_c[k] = c[k].tanh();
            hh[k] = gates[GATE_O * h + k] * tanh_c[k];
        }
        let cache = LstmStepCache {
            x: x.to_vec(),
            h_prev: state.h.clone(),
            c_prev: state.c.clone(),
            gates,
            tanh_c: tanh_c.clone(),
        };
        (LstmState { h: hh, c }, cache)
    }

    /// One backward step. `dh`/`dc` are the gradients flowing into
    /// `h_t`/`c_t`; returns `(dx, dh_prev, dc_prev)` and accumulates
    /// parameter gradients into `grads`.
    pub fn backward_step(
        &self,
        cache: &LstmStepCache,
        dh: &[f32],
        dc_in: &[f32],
        grads: &mut LstmGrads,
    ) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let h = self.hidden;
        let g = &cache.gates;
        let mut dz = vec![0.0f32; 4 * h];
        let mut dc_prev = vec![0.0f32; h];
        for k in 0..h {
            let o = g[GATE_O * h + k];
            let i = g[GATE_I * h + k];
            let f = g[GATE_F * h + k];
            let gg = g[GATE_G * h + k];
            let tc = cache.tanh_c[k];
            let dc = dc_in[k] + dh[k] * o * (1.0 - tc * tc);
            let do_ = dh[k] * tc;
            let di = dc * gg;
            let dg = dc * i;
            let df = dc * cache.c_prev[k];
            dc_prev[k] = dc * f;
            dz[GATE_I * h + k] = di * i * (1.0 - i);
            dz[GATE_F * h + k] = df * f * (1.0 - f);
            dz[GATE_O * h + k] = do_ * o * (1.0 - o);
            dz[GATE_G * h + k] = dg * (1.0 - gg * gg);
        }
        grads.v.add_outer(&dz, &cache.x);
        grads.u.add_outer(&dz, &cache.h_prev);
        for (a, b) in grads.b.iter_mut().zip(&dz) {
            *a += b;
        }
        let dx = self.v.matvec_t(&dz);
        let dh_prev = self.u.matvec_t(&dz);
        (dx, dh_prev, dc_prev)
    }

    /// SGD update: `θ -= lr * dθ`.
    pub fn apply_gradients(&mut self, grads: &LstmGrads, lr: f32) {
        self.v.add_scaled(&grads.v, -lr);
        self.u.add_scaled(&grads.u, -lr);
        for (p, g) in self.b.iter_mut().zip(&grads.b) {
            *p -= lr * g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::seeded_rng;

    /// Scalar loss for gradient checking: sum of final h.
    fn run_loss(cell: &LstmCell, xs: &[Vec<f32>]) -> f32 {
        let mut state = LstmState::zeros(cell.hidden);
        for x in xs {
            let (s, _) = cell.forward_step(&state, x);
            state = s;
        }
        state.h.iter().sum()
    }

    #[test]
    fn forward_shapes() {
        let mut rng = seeded_rng(1);
        let cell = LstmCell::new(3, 5, 0.1, &mut rng);
        let (s, _) = cell.forward_step(&LstmState::zeros(5), &[0.1, 0.2, 0.3]);
        assert_eq!(s.h.len(), 5);
        assert_eq!(s.c.len(), 5);
    }

    #[test]
    fn parameter_count_formula() {
        let mut rng = seeded_rng(1);
        // The paper's encoder: input 16, hidden 256 -> 279,552.
        let cell = LstmCell::new(16, 256, 0.1, &mut rng);
        assert_eq!(cell.parameter_count(), 279_552);
    }

    #[test]
    fn gates_bounded() {
        let mut rng = seeded_rng(2);
        let cell = LstmCell::new(2, 4, 0.1, &mut rng);
        let (s, cache) = cell.forward_step(&LstmState::zeros(4), &[10.0, -10.0]);
        for k in 0..12 {
            assert!(
                (0.0..=1.0).contains(&cache.gates[k]),
                "sigmoid gate out of range"
            );
        }
        for v in &s.h {
            assert!(v.abs() <= 1.0);
        }
    }

    #[test]
    fn gradient_check_parameters() {
        let mut rng = seeded_rng(3);
        let mut cell = LstmCell::new(2, 3, 0.5, &mut rng);
        let xs = vec![vec![0.3, -0.2], vec![0.1, 0.4], vec![-0.5, 0.2]];

        // Analytic gradients via BPTT (loss = sum of final h).
        let mut state = LstmState::zeros(3);
        let mut caches = Vec::new();
        for x in &xs {
            let (s, cache) = cell.forward_step(&state, x);
            caches.push(cache);
            state = s;
        }
        let mut grads = LstmGrads::zeros(&cell);
        let mut dh = vec![1.0f32; 3];
        let mut dc = vec![0.0f32; 3];
        for cache in caches.iter().rev() {
            let (_, dh_prev, dc_prev) = cell.backward_step(cache, &dh, &dc, &mut grads);
            dh = dh_prev;
            dc = dc_prev;
        }

        // Finite differences on a sample of parameters.
        let eps = 1e-2f32;
        let check = |cell: &mut LstmCell, grads_val: f32, which: usize, idx: usize| {
            let read = |c: &LstmCell| match which {
                0 => c.v.data[idx],
                1 => c.u.data[idx],
                _ => c.b[idx],
            };
            let write = |c: &mut LstmCell, v: f32| match which {
                0 => c.v.data[idx] = v,
                1 => c.u.data[idx] = v,
                _ => c.b[idx] = v,
            };
            let orig = read(cell);
            write(cell, orig + eps);
            let fp = run_loss(cell, &xs);
            write(cell, orig - eps);
            let fm = run_loss(cell, &xs);
            write(cell, orig);
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - grads_val).abs() < 2e-2,
                "which={which} idx={idx}: numeric {numeric} vs analytic {grads_val}"
            );
        };
        for idx in [0, 3, 7, 11, 17, 23] {
            let g = grads.v.data[idx];
            check(&mut cell, g, 0, idx);
        }
        for idx in [0, 5, 10, 20, 35] {
            let g = grads.u.data[idx];
            check(&mut cell, g, 1, idx);
        }
        for idx in [0, 4, 8, 11] {
            let g = grads.b[idx];
            check(&mut cell, g, 2, idx);
        }
    }

    #[test]
    fn gradient_check_input() {
        let mut rng = seeded_rng(4);
        let cell = LstmCell::new(2, 3, 0.5, &mut rng);
        let x = vec![0.3f32, -0.4];
        let state = LstmState::zeros(3);
        let (_, cache) = cell.forward_step(&state, &x);
        let mut grads = LstmGrads::zeros(&cell);
        let (dx, _, _) = cell.backward_step(&cache, &[1.0, 1.0, 1.0], &[0.0, 0.0, 0.0], &mut grads);
        let eps = 1e-2f32;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp[i] += eps;
            let mut xm = x.clone();
            xm[i] -= eps;
            let fp: f32 = cell.forward_step(&state, &xp).0.h.iter().sum();
            let fm: f32 = cell.forward_step(&state, &xm).0.h.iter().sum();
            let numeric = (fp - fm) / (2.0 * eps);
            assert!((numeric - dx[i]).abs() < 1e-2, "{numeric} vs {}", dx[i]);
        }
    }

    #[test]
    fn sgd_step_reduces_simple_loss() {
        // One-step regression: drive sum(h) toward 1.0.
        let mut rng = seeded_rng(5);
        let mut cell = LstmCell::new(2, 4, 0.1, &mut rng);
        let x = vec![0.5f32, -0.3];
        let loss_of = |c: &LstmCell| {
            let (s, _) = c.forward_step(&LstmState::zeros(4), &x);
            let sum: f32 = s.h.iter().sum();
            (sum - 1.0) * (sum - 1.0)
        };
        let initial = loss_of(&cell);
        for _ in 0..200 {
            let (s, cache) = cell.forward_step(&LstmState::zeros(4), &x);
            let sum: f32 = s.h.iter().sum();
            let dsum = 2.0 * (sum - 1.0);
            let dh = vec![dsum; 4];
            let mut grads = LstmGrads::zeros(&cell);
            cell.backward_step(&cache, &dh, &[0.0; 4], &mut grads);
            cell.apply_gradients(&grads, 0.05);
        }
        assert!(
            loss_of(&cell) < initial * 0.05,
            "{} -> {}",
            initial,
            loss_of(&cell)
        );
    }
}
