//! The LSTM cell of paper §6.4.1, equations (2)–(6):
//!
//! ```text
//! i_t = sigmoid(U_i h_{t-1} + V_i x_t)        [input gate]
//! f_t = sigmoid(U_f h_{t-1} + V_f x_t)        [forget gate]
//! o_t = sigmoid(U_o h_{t-1} + V_o x_t)        [output gate]
//! c_t = i_t ⊙ tanh(U_c h_{t-1} + V_c x_t) + f_t ⊙ c_{t-1}
//! h_t = o_t ⊙ tanh(c_t)
//! ```
//!
//! with a bias term per gate (the PyTorch/Keras convention the paper's
//! Table-3 parameter counts follow: `4h(in + h) + 4h` parameters).
//! Full backpropagation through time is implemented by hand and
//! verified against finite differences.
//!
//! Besides the step-at-a-time API ([`LstmCell::forward_step`], used by
//! the input-fed decoder and beam search), the cell has a batched
//! sequence API: [`LstmCell::forward_seq`]/[`LstmCell::forward_seq_cached`]
//! compute the input projection `X · Vᵀ` for *all* timesteps as one
//! `[T×in] × [in×4h]` GEMM before the sequential recurrence, and
//! [`LstmCell::backward_seq`] accumulates the whole sequence's weight
//! gradients as two `dZᵀ·X`-shaped GEMMs instead of `T` rank-1
//! updates.

use crate::kernel;
use crate::matrix::{sigmoid, Matrix};
use rand::rngs::StdRng;

/// Gate slab order inside the fused `4h` dimension.
const GATE_I: usize = 0;
const GATE_F: usize = 1;
const GATE_O: usize = 2;
const GATE_G: usize = 3;

/// LSTM parameters: fused gate matrices `V` (input, `4h x in`), `U`
/// (recurrent, `4h x h`), and bias `b` (`4h`).
#[derive(Debug, Clone)]
pub struct LstmCell {
    /// Input weights, `4h x input_dim`.
    pub v: Matrix,
    /// Recurrent weights, `4h x hidden_dim`.
    pub u: Matrix,
    /// Bias, `4h`.
    pub b: Vec<f32>,
    /// Hidden size.
    pub hidden: usize,
    /// Input size.
    pub input: usize,
}

/// Running state `(h, c)`.
#[derive(Debug, Clone)]
pub struct LstmState {
    /// Hidden vector.
    pub h: Vec<f32>,
    /// Cell vector.
    pub c: Vec<f32>,
}

impl LstmState {
    /// Zero state.
    pub fn zeros(hidden: usize) -> Self {
        LstmState {
            h: vec![0.0; hidden],
            c: vec![0.0; hidden],
        }
    }
}

/// Per-step cache for backprop.
#[derive(Debug, Clone)]
pub struct LstmStepCache {
    x: Vec<f32>,
    h_prev: Vec<f32>,
    c_prev: Vec<f32>,
    gates: Vec<f32>, // post-activation [i, f, o, g] fused
    tanh_c: Vec<f32>,
}

/// Whole-sequence cache for [`LstmCell::backward_seq`]: the same
/// quantities as [`LstmStepCache`], one row per timestep.
#[derive(Debug, Clone)]
pub struct LstmSeqCache {
    xs: Matrix,      // [T x input]
    h_prevs: Matrix, // [T x hidden]
    c_prevs: Matrix, // [T x hidden]
    gates: Matrix,   // [T x 4h], post-activation
    tanh_c: Matrix,  // [T x hidden]
}

/// Gradient accumulators matching [`LstmCell`].
#[derive(Debug, Clone)]
pub struct LstmGrads {
    /// d/dV.
    pub v: Matrix,
    /// d/dU.
    pub u: Matrix,
    /// d/db.
    pub b: Vec<f32>,
}

impl LstmGrads {
    /// Zeroed gradients for `cell`.
    pub fn zeros(cell: &LstmCell) -> Self {
        LstmGrads {
            v: Matrix::zeros(cell.v.rows, cell.v.cols),
            u: Matrix::zeros(cell.u.rows, cell.u.cols),
            b: vec![0.0; cell.b.len()],
        }
    }

    /// Reset to zero.
    pub fn clear(&mut self) {
        self.v.fill_zero();
        self.u.fill_zero();
        self.b.iter_mut().for_each(|v| *v = 0.0);
    }

    /// `self += other` (minibatch merge).
    pub fn merge(&mut self, other: &LstmGrads) {
        self.v.add_scaled(&other.v, 1.0);
        self.u.add_scaled(&other.u, 1.0);
        kernel::axpy(&mut self.b, 1.0, &other.b);
    }
}

impl LstmCell {
    /// New cell with uniform `[-scale, scale]` initialization.
    pub fn new(input: usize, hidden: usize, scale: f32, rng: &mut StdRng) -> Self {
        LstmCell {
            v: Matrix::uniform(4 * hidden, input, scale, rng),
            u: Matrix::uniform(4 * hidden, hidden, scale, rng),
            b: vec![0.0; 4 * hidden],
            hidden,
            input,
        }
    }

    /// Parameter count: `4h(in + h) + 4h`.
    pub fn parameter_count(&self) -> usize {
        self.v.len() + self.u.len() + self.b.len()
    }

    /// Elementwise gate update shared by the step and sequence paths:
    /// turn the pre-activation row `z` into post-activation gates,
    /// advance `(h, c)` in place, and write `tanh(c_t)`.
    #[inline]
    pub(crate) fn advance_gates(
        &self,
        z: &mut [f32],
        h_cur: &mut [f32],
        c_cur: &mut [f32],
        tanh_c: &mut [f32],
    ) {
        let h = self.hidden;
        for k in 0..h {
            z[GATE_I * h + k] = sigmoid(z[GATE_I * h + k]);
            z[GATE_F * h + k] = sigmoid(z[GATE_F * h + k]);
            z[GATE_O * h + k] = sigmoid(z[GATE_O * h + k]);
            z[GATE_G * h + k] = z[GATE_G * h + k].tanh();
        }
        for k in 0..h {
            c_cur[k] = z[GATE_I * h + k] * z[GATE_G * h + k] + z[GATE_F * h + k] * c_cur[k];
            tanh_c[k] = c_cur[k].tanh();
            h_cur[k] = z[GATE_O * h + k] * tanh_c[k];
        }
    }

    /// One forward step; returns the new state and the cache needed by
    /// [`LstmCell::backward_step`].
    pub fn forward_step(&self, state: &LstmState, x: &[f32]) -> (LstmState, LstmStepCache) {
        let mut z = self.v.matvec(x);
        let uz = self.u.matvec(&state.h);
        kernel::axpy(&mut z, 1.0, &uz);
        kernel::axpy(&mut z, 1.0, &self.b);
        let mut hh = state.h.clone();
        let mut c = state.c.clone();
        let mut tanh_c = vec![0.0f32; self.hidden];
        self.advance_gates(&mut z, &mut hh, &mut c, &mut tanh_c);
        let cache = LstmStepCache {
            x: x.to_vec(),
            h_prev: state.h.clone(),
            c_prev: state.c.clone(),
            gates: z,
            tanh_c,
        };
        (LstmState { h: hh, c }, cache)
    }

    /// Inference-only forward step: no backward cache is built.
    pub fn step(&self, state: &LstmState, x: &[f32]) -> LstmState {
        let mut z = self.v.matvec(x);
        let uz = self.u.matvec(&state.h);
        kernel::axpy(&mut z, 1.0, &uz);
        kernel::axpy(&mut z, 1.0, &self.b);
        let mut hh = state.h.clone();
        let mut c = state.c.clone();
        let mut tanh_c = vec![0.0f32; self.hidden];
        self.advance_gates(&mut z, &mut hh, &mut c, &mut tanh_c);
        LstmState { h: hh, c }
    }

    /// Forward over a whole input sequence `xs` (`T x input`): the
    /// input projections of all timesteps are one blocked GEMM, then
    /// the recurrence runs stepwise. Returns the hidden states
    /// (`T x hidden`) and the final state. Inference-only — no cache.
    pub fn forward_seq(&self, init: &LstmState, xs: &Matrix) -> (Matrix, LstmState) {
        debug_assert_eq!(xs.cols, self.input);
        let t_len = xs.rows;
        let h = self.hidden;
        let mut z_all = kernel::matmul_t(xs, &self.v); // [T x 4h]
        let mut states = Matrix::zeros(t_len, h);
        let mut h_cur = init.h.clone();
        let mut c_cur = init.c.clone();
        let mut tanh_c = vec![0.0f32; h];
        let mut uz = vec![0.0f32; 4 * h];
        for t in 0..t_len {
            let z = z_all.row_mut(t);
            self.u.matvec_into(&h_cur, &mut uz);
            kernel::axpy(z, 1.0, &uz);
            kernel::axpy(z, 1.0, &self.b);
            self.advance_gates(z, &mut h_cur, &mut c_cur, &mut tanh_c);
            states.row_mut(t).copy_from_slice(&h_cur);
        }
        (states, LstmState { h: h_cur, c: c_cur })
    }

    /// [`LstmCell::forward_seq`] keeping the whole-sequence cache for
    /// [`LstmCell::backward_seq`]. Takes ownership of `xs` (it becomes
    /// part of the cache).
    pub fn forward_seq_cached(
        &self,
        init: &LstmState,
        xs: Matrix,
    ) -> (Matrix, LstmState, LstmSeqCache) {
        debug_assert_eq!(xs.cols, self.input);
        let t_len = xs.rows;
        let h = self.hidden;
        let mut gates = kernel::matmul_t(&xs, &self.v); // pre-activations, activated in place
        let mut states = Matrix::zeros(t_len, h);
        let mut h_prevs = Matrix::zeros(t_len, h);
        let mut c_prevs = Matrix::zeros(t_len, h);
        let mut tanh_cs = Matrix::zeros(t_len, h);
        let mut h_cur = init.h.clone();
        let mut c_cur = init.c.clone();
        let mut uz = vec![0.0f32; 4 * h];
        for t in 0..t_len {
            h_prevs.row_mut(t).copy_from_slice(&h_cur);
            c_prevs.row_mut(t).copy_from_slice(&c_cur);
            let z = gates.row_mut(t);
            self.u.matvec_into(&h_cur, &mut uz);
            kernel::axpy(z, 1.0, &uz);
            kernel::axpy(z, 1.0, &self.b);
            self.advance_gates(z, &mut h_cur, &mut c_cur, tanh_cs.row_mut(t));
            states.row_mut(t).copy_from_slice(&h_cur);
        }
        let cache = LstmSeqCache {
            xs,
            h_prevs,
            c_prevs,
            gates,
            tanh_c: tanh_cs,
        };
        (states, LstmState { h: h_cur, c: c_cur }, cache)
    }

    /// Elementwise gate backward for one step: from the gradients
    /// flowing into `h_t` (`dh`) and `c_t` (`dc_in`), produce the
    /// pre-activation gradient `dz` and `dc_prev`. Shared by
    /// [`LstmCell::backward_step`] and the batched sequence backward;
    /// callers that batch their weight gradients use this directly and
    /// accumulate `dz` rows into one GEMM.
    #[inline]
    #[allow(clippy::too_many_arguments)] // per-step slices of one cache row
    pub(crate) fn backward_gates_into(
        &self,
        gates: &[f32],
        tanh_c: &[f32],
        c_prev: &[f32],
        dh: &[f32],
        dc_in: &[f32],
        dz: &mut [f32],
        dc_prev: &mut [f32],
    ) {
        let h = self.hidden;
        for k in 0..h {
            let o = gates[GATE_O * h + k];
            let i = gates[GATE_I * h + k];
            let f = gates[GATE_F * h + k];
            let gg = gates[GATE_G * h + k];
            let tc = tanh_c[k];
            let dc = dc_in[k] + dh[k] * o * (1.0 - tc * tc);
            let do_ = dh[k] * tc;
            let di = dc * gg;
            let dg = dc * i;
            let df = dc * c_prev[k];
            dc_prev[k] = dc * f;
            dz[GATE_I * h + k] = di * i * (1.0 - i);
            dz[GATE_F * h + k] = df * f * (1.0 - f);
            dz[GATE_O * h + k] = do_ * o * (1.0 - o);
            dz[GATE_G * h + k] = dg * (1.0 - gg * gg);
        }
    }

    /// Gate backward for a step cache: returns `(dz, dc_prev)` without
    /// touching parameter gradients — the caller batches those.
    pub fn backward_gates(
        &self,
        cache: &LstmStepCache,
        dh: &[f32],
        dc_in: &[f32],
    ) -> (Vec<f32>, Vec<f32>) {
        let mut dz = vec![0.0f32; 4 * self.hidden];
        let mut dc_prev = vec![0.0f32; self.hidden];
        self.backward_gates_into(
            &cache.gates,
            &cache.tanh_c,
            &cache.c_prev,
            dh,
            dc_in,
            &mut dz,
            &mut dc_prev,
        );
        (dz, dc_prev)
    }

    /// One backward step. `dh`/`dc` are the gradients flowing into
    /// `h_t`/`c_t`; returns `(dx, dh_prev, dc_prev)` and accumulates
    /// parameter gradients into `grads`.
    pub fn backward_step(
        &self,
        cache: &LstmStepCache,
        dh: &[f32],
        dc_in: &[f32],
        grads: &mut LstmGrads,
    ) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let (dz, dc_prev) = self.backward_gates(cache, dh, dc_in);
        grads.v.add_outer(&dz, &cache.x);
        grads.u.add_outer(&dz, &cache.h_prev);
        kernel::axpy(&mut grads.b, 1.0, &dz);
        let dx = self.v.matvec_t(&dz);
        let dh_prev = self.u.matvec_t(&dz);
        (dx, dh_prev, dc_prev)
    }

    /// Backward through a whole cached sequence. `d_hs` carries the
    /// per-step gradients flowing into each `h_t` from outside the
    /// recurrence (attention, output layer, the decoder-init path for
    /// the final step); `dc_last` flows into the final cell state.
    /// Parameter gradients accumulate as two batched GEMMs
    /// (`dZᵀ·X` and `dZᵀ·H_prev`); returns the input gradients
    /// (`T x input`, one `dZ·V` GEMM) and `(dh0, dc0)` flowing into
    /// the initial state.
    pub fn backward_seq(
        &self,
        cache: &LstmSeqCache,
        d_hs: &Matrix,
        dc_last: &[f32],
        grads: &mut LstmGrads,
    ) -> (Matrix, Vec<f32>, Vec<f32>) {
        let t_len = cache.xs.rows;
        debug_assert_eq!(d_hs.rows, t_len);
        let h = self.hidden;
        let mut dzs = Matrix::zeros(t_len, 4 * h);
        let mut dh_carry = vec![0.0f32; h];
        let mut dc_carry = dc_last.to_vec();
        let mut dc_prev = vec![0.0f32; h];
        let mut dh = vec![0.0f32; h];
        for t in (0..t_len).rev() {
            dh.copy_from_slice(d_hs.row(t));
            kernel::axpy(&mut dh, 1.0, &dh_carry);
            self.backward_gates_into(
                cache.gates.row(t),
                cache.tanh_c.row(t),
                cache.c_prevs.row(t),
                &dh,
                &dc_carry,
                dzs.row_mut(t),
                &mut dc_prev,
            );
            // The recurrent data gradient must flow step by step; the
            // weight gradients below do not, and are batched.
            dh_carry = self.u.matvec_t(dzs.row(t));
            std::mem::swap(&mut dc_carry, &mut dc_prev);
        }
        kernel::add_matmul_tn(&mut grads.v, &dzs, &cache.xs);
        kernel::add_matmul_tn(&mut grads.u, &dzs, &cache.h_prevs);
        for t in 0..t_len {
            kernel::axpy(&mut grads.b, 1.0, dzs.row(t));
        }
        let dxs = kernel::matmul(&dzs, &self.v);
        (dxs, dh_carry, dc_carry)
    }

    /// SGD update: `θ -= lr * dθ`.
    pub fn apply_gradients(&mut self, grads: &LstmGrads, lr: f32) {
        self.v.add_scaled(&grads.v, -lr);
        self.u.add_scaled(&grads.u, -lr);
        for (p, g) in self.b.iter_mut().zip(&grads.b) {
            *p -= lr * g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::seeded_rng;

    /// Scalar loss for gradient checking: sum of final h.
    fn run_loss(cell: &LstmCell, xs: &[Vec<f32>]) -> f32 {
        let mut state = LstmState::zeros(cell.hidden);
        for x in xs {
            let (s, _) = cell.forward_step(&state, x);
            state = s;
        }
        state.h.iter().sum()
    }

    fn rows_matrix(rows: &[Vec<f32>]) -> Matrix {
        let data: Vec<f32> = rows.iter().flatten().cloned().collect();
        Matrix::from_flat(rows.len(), rows[0].len(), data)
    }

    #[test]
    fn forward_shapes() {
        let mut rng = seeded_rng(1);
        let cell = LstmCell::new(3, 5, 0.1, &mut rng);
        let (s, _) = cell.forward_step(&LstmState::zeros(5), &[0.1, 0.2, 0.3]);
        assert_eq!(s.h.len(), 5);
        assert_eq!(s.c.len(), 5);
    }

    #[test]
    fn parameter_count_formula() {
        let mut rng = seeded_rng(1);
        // The paper's encoder: input 16, hidden 256 -> 279,552.
        let cell = LstmCell::new(16, 256, 0.1, &mut rng);
        assert_eq!(cell.parameter_count(), 279_552);
    }

    #[test]
    fn gates_bounded() {
        let mut rng = seeded_rng(2);
        let cell = LstmCell::new(2, 4, 0.1, &mut rng);
        let (s, cache) = cell.forward_step(&LstmState::zeros(4), &[10.0, -10.0]);
        for k in 0..12 {
            assert!(
                (0.0..=1.0).contains(&cache.gates[k]),
                "sigmoid gate out of range"
            );
        }
        for v in &s.h {
            assert!(v.abs() <= 1.0);
        }
    }

    #[test]
    fn forward_seq_matches_stepwise() {
        let mut rng = seeded_rng(8);
        let cell = LstmCell::new(3, 7, 0.3, &mut rng);
        let xs = vec![
            vec![0.3, -0.2, 0.5],
            vec![0.1, 0.4, -0.1],
            vec![-0.5, 0.2, 0.0],
            vec![0.2, 0.2, 0.2],
        ];
        let mut state = LstmState::zeros(7);
        let mut step_states = Vec::new();
        for x in &xs {
            let (s, _) = cell.forward_step(&state, x);
            state = s;
            step_states.push(state.h.clone());
        }
        let m = rows_matrix(&xs);
        let (seq_states, seq_final) = cell.forward_seq(&LstmState::zeros(7), &m);
        let (cached_states, cached_final, _) =
            cell.forward_seq_cached(&LstmState::zeros(7), m.clone());
        for (t, hs) in step_states.iter().enumerate() {
            for (k, v) in hs.iter().enumerate() {
                assert!((v - seq_states.get(t, k)).abs() < 1e-6, "seq h[{t}][{k}]");
                assert!(
                    (v - cached_states.get(t, k)).abs() < 1e-6,
                    "cached h[{t}][{k}]"
                );
            }
        }
        for k in 0..7 {
            assert!((state.h[k] - seq_final.h[k]).abs() < 1e-6);
            assert!((state.c[k] - cached_final.c[k]).abs() < 1e-6);
        }
    }

    #[test]
    fn backward_seq_matches_stepwise_backward() {
        let mut rng = seeded_rng(9);
        let cell = LstmCell::new(3, 5, 0.4, &mut rng);
        let xs = vec![
            vec![0.3, -0.2, 0.5],
            vec![0.1, 0.4, -0.1],
            vec![-0.5, 0.2, 0.0],
        ];
        let d_hs_rows = vec![
            vec![0.2, -0.1, 0.3, 0.0, 0.5],
            vec![-0.3, 0.2, 0.1, 0.4, -0.2],
            vec![0.1, 0.1, -0.4, 0.2, 0.3],
        ];
        let dc_last = vec![0.05f32, -0.1, 0.2, 0.0, 0.1];

        // Stepwise reference.
        let mut state = LstmState::zeros(5);
        let mut caches = Vec::new();
        for x in &xs {
            let (s, cache) = cell.forward_step(&state, x);
            caches.push(cache);
            state = s;
        }
        let mut ref_grads = LstmGrads::zeros(&cell);
        let mut dh_carry = vec![0.0f32; 5];
        let mut dc_carry = dc_last.clone();
        let mut ref_dxs = Vec::new();
        for t in (0..3).rev() {
            let mut dh = d_hs_rows[t].clone();
            kernel::axpy(&mut dh, 1.0, &dh_carry);
            let (dx, dh_prev, dc_prev) =
                cell.backward_step(&caches[t], &dh, &dc_carry, &mut ref_grads);
            ref_dxs.push(dx);
            dh_carry = dh_prev;
            dc_carry = dc_prev;
        }
        ref_dxs.reverse();

        // Batched sequence path.
        let (_, _, seq_cache) = cell.forward_seq_cached(&LstmState::zeros(5), rows_matrix(&xs));
        let mut seq_grads = LstmGrads::zeros(&cell);
        let (dxs, dh0, dc0) = cell.backward_seq(
            &seq_cache,
            &rows_matrix(&d_hs_rows),
            &dc_last,
            &mut seq_grads,
        );

        for (a, b) in seq_grads.v.data.iter().zip(&ref_grads.v.data) {
            assert!((a - b).abs() < 1e-5, "dV {a} vs {b}");
        }
        for (a, b) in seq_grads.u.data.iter().zip(&ref_grads.u.data) {
            assert!((a - b).abs() < 1e-5, "dU {a} vs {b}");
        }
        for (a, b) in seq_grads.b.iter().zip(&ref_grads.b) {
            assert!((a - b).abs() < 1e-5, "db {a} vs {b}");
        }
        for (t, dx) in ref_dxs.iter().enumerate() {
            for (k, v) in dx.iter().enumerate() {
                assert!((v - dxs.get(t, k)).abs() < 1e-5, "dX[{t}][{k}]");
            }
        }
        for (a, b) in dh0.iter().zip(&dh_carry) {
            assert!((a - b).abs() < 1e-5, "dh0");
        }
        for (a, b) in dc0.iter().zip(&dc_carry) {
            assert!((a - b).abs() < 1e-5, "dc0");
        }
    }

    #[test]
    fn gradient_check_parameters() {
        let mut rng = seeded_rng(3);
        let mut cell = LstmCell::new(2, 3, 0.5, &mut rng);
        let xs = vec![vec![0.3, -0.2], vec![0.1, 0.4], vec![-0.5, 0.2]];

        // Analytic gradients via BPTT (loss = sum of final h).
        let mut state = LstmState::zeros(3);
        let mut caches = Vec::new();
        for x in &xs {
            let (s, cache) = cell.forward_step(&state, x);
            caches.push(cache);
            state = s;
        }
        let mut grads = LstmGrads::zeros(&cell);
        let mut dh = vec![1.0f32; 3];
        let mut dc = vec![0.0f32; 3];
        for cache in caches.iter().rev() {
            let (_, dh_prev, dc_prev) = cell.backward_step(cache, &dh, &dc, &mut grads);
            dh = dh_prev;
            dc = dc_prev;
        }

        // Finite differences on a sample of parameters.
        let eps = 1e-2f32;
        let check = |cell: &mut LstmCell, grads_val: f32, which: usize, idx: usize| {
            let read = |c: &LstmCell| match which {
                0 => c.v.data[idx],
                1 => c.u.data[idx],
                _ => c.b[idx],
            };
            let write = |c: &mut LstmCell, v: f32| match which {
                0 => c.v.data[idx] = v,
                1 => c.u.data[idx] = v,
                _ => c.b[idx] = v,
            };
            let orig = read(cell);
            write(cell, orig + eps);
            let fp = run_loss(cell, &xs);
            write(cell, orig - eps);
            let fm = run_loss(cell, &xs);
            write(cell, orig);
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - grads_val).abs() < 2e-2,
                "which={which} idx={idx}: numeric {numeric} vs analytic {grads_val}"
            );
        };
        for idx in [0, 3, 7, 11, 17, 23] {
            let g = grads.v.data[idx];
            check(&mut cell, g, 0, idx);
        }
        for idx in [0, 5, 10, 20, 35] {
            let g = grads.u.data[idx];
            check(&mut cell, g, 1, idx);
        }
        for idx in [0, 4, 8, 11] {
            let g = grads.b[idx];
            check(&mut cell, g, 2, idx);
        }
    }

    #[test]
    fn gradient_check_input() {
        let mut rng = seeded_rng(4);
        let cell = LstmCell::new(2, 3, 0.5, &mut rng);
        let x = vec![0.3f32, -0.4];
        let state = LstmState::zeros(3);
        let (_, cache) = cell.forward_step(&state, &x);
        let mut grads = LstmGrads::zeros(&cell);
        let (dx, _, _) = cell.backward_step(&cache, &[1.0, 1.0, 1.0], &[0.0, 0.0, 0.0], &mut grads);
        let eps = 1e-2f32;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp[i] += eps;
            let mut xm = x.clone();
            xm[i] -= eps;
            let fp: f32 = cell.forward_step(&state, &xp).0.h.iter().sum();
            let fm: f32 = cell.forward_step(&state, &xm).0.h.iter().sum();
            let numeric = (fp - fm) / (2.0 * eps);
            assert!((numeric - dx[i]).abs() < 1e-2, "{numeric} vs {}", dx[i]);
        }
    }

    #[test]
    fn sgd_step_reduces_simple_loss() {
        // One-step regression: drive sum(h) toward 1.0.
        let mut rng = seeded_rng(5);
        let mut cell = LstmCell::new(2, 4, 0.1, &mut rng);
        let x = vec![0.5f32, -0.3];
        let loss_of = |c: &LstmCell| {
            let (s, _) = c.forward_step(&LstmState::zeros(4), &x);
            let sum: f32 = s.h.iter().sum();
            (sum - 1.0) * (sum - 1.0)
        };
        let initial = loss_of(&cell);
        for _ in 0..200 {
            let (s, cache) = cell.forward_step(&LstmState::zeros(4), &x);
            let sum: f32 = s.h.iter().sum();
            let dsum = 2.0 * (sum - 1.0);
            let dh = vec![dsum; 4];
            let mut grads = LstmGrads::zeros(&cell);
            cell.backward_step(&cache, &dh, &[0.0; 4], &mut grads);
            cell.apply_gradients(&grads, 0.05);
        }
        assert!(
            loss_of(&cell) < initial * 0.05,
            "{} -> {}",
            initial,
            loss_of(&cell)
        );
    }
}
