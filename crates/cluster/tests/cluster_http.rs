//! Socket-level coordinator tests: stats aggregation across replicas
//! (including a dead one), catalog broadcast with cache-key rollover,
//! and a lagging replica catching up from the statement log after a
//! restart.

use lantern_cache::{CacheConfig, CachedTranslator};
use lantern_cluster::{serve_cluster, ClusterConfig, ClusterHandle};
use lantern_core::RuleTranslator;
use lantern_pool::{default_pg_store, PoemStore};
use lantern_serve::{
    reusable_listener, serve_on_listener, CatalogApplied, CatalogApplyError, CatalogControl,
    HttpClient, ServeConfig, ServerHandle,
};
use lantern_text::json::JsonValue;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Replica-side catalog surface over a fresh store: mirrors the
/// workspace facade's semantics (gap check, idempotent skip, failing
/// statements consume their sequence number).
struct TestCatalog {
    store: PoemStore,
    seq: AtomicU64,
    lock: Mutex<()>,
}

impl TestCatalog {
    fn new(store: PoemStore) -> Self {
        TestCatalog {
            store,
            seq: AtomicU64::new(0),
            lock: Mutex::new(()),
        }
    }
}

impl CatalogControl for TestCatalog {
    fn catalog_version(&self) -> u64 {
        self.store.version()
    }

    fn catalog_seq(&self) -> u64 {
        self.seq.load(Ordering::SeqCst)
    }

    fn catalog_apply(
        &self,
        from_seq: u64,
        statements: &[String],
    ) -> Result<CatalogApplied, CatalogApplyError> {
        let _guard = self.lock.lock().unwrap_or_else(|p| p.into_inner());
        let mut seq = self.seq.load(Ordering::SeqCst);
        if from_seq > seq + 1 {
            return Err(CatalogApplyError::SequenceGap {
                expected: seq + 1,
                got: from_seq,
            });
        }
        let mut applied = 0u64;
        let mut skipped = 0u64;
        let mut errors = Vec::new();
        for (offset, statement) in statements.iter().enumerate() {
            let statement_seq = from_seq + offset as u64;
            if statement_seq <= seq {
                skipped += 1;
                continue;
            }
            if let Err(e) = lantern_pool::execute(statement, &self.store) {
                errors.push(format!("seq {statement_seq}: {e}"));
            }
            seq = statement_seq;
            applied += 1;
        }
        self.seq.store(seq, Ordering::SeqCst);
        Ok(CatalogApplied {
            applied,
            skipped,
            applied_seq: seq,
            version: self.store.version(),
            errors,
        })
    }
}

/// One booted replica: cached rule translator over its own store, cache
/// generation keyed on the store version so catalog mutations roll every
/// cache key at once.
fn boot_replica_on(listener: std::net::TcpListener) -> ServerHandle {
    let store = default_pg_store();
    let generation_store = store.clone();
    let cached = Arc::new(
        CachedTranslator::new(
            RuleTranslator::new(store.clone()),
            CacheConfig {
                max_entries: 512,
                ..CacheConfig::default()
            },
        )
        .with_generation(move || generation_store.version()),
    );
    let catalog = Arc::new(TestCatalog::new(store));
    serve_on_listener(
        Arc::clone(&cached),
        Some(cached),
        None,
        Some(catalog),
        listener,
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
    )
    .expect("replica boots")
}

fn boot_replica() -> ServerHandle {
    boot_replica_on(std::net::TcpListener::bind("127.0.0.1:0").expect("bind"))
}

fn boot_coordinator(replicas: Vec<SocketAddr>) -> ClusterHandle {
    serve_cluster(
        ClusterConfig {
            replicas,
            workers: 2,
            connect_timeout: Duration::from_millis(250),
            read_timeout: Duration::from_millis(2000),
            retry_backoff: Duration::from_millis(5),
            probe_interval: Duration::from_millis(50),
            ..ClusterConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("coordinator boots")
}

fn plan_doc(relation: &str) -> String {
    format!(r#"{{"Plan": {{"Node Type": "Seq Scan", "Relation Name": "{relation}"}}}}"#)
}

fn get_json(client: &mut HttpClient, path: &str) -> JsonValue {
    let resp = client.get(path).expect("GET");
    assert_eq!(resp.status, 200, "{path}: {}", resp.body);
    resp.json().expect("JSON body")
}

fn num(value: &JsonValue, key: &str) -> f64 {
    value
        .get(key)
        .and_then(JsonValue::as_f64)
        .unwrap_or_else(|| panic!("missing numeric {key} in {}", value.to_string_compact()))
}

fn cache_counters(stats: &JsonValue) -> (f64, f64) {
    let cache = stats.get("cache").expect("aggregated cache section");
    (num(cache, "hits"), num(cache, "misses"))
}

/// Wait until `check` passes or the deadline hits (probe loops and
/// replays are asynchronous).
fn wait_for(what: &str, mut check: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if check() {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("timed out waiting for {what}");
}

#[test]
fn stats_aggregate_sums_replicas_and_reports_a_dead_one_without_erroring() {
    let mut replicas: Vec<ServerHandle> = (0..3).map(|_| boot_replica()).collect();
    let addrs: Vec<SocketAddr> = replicas.iter().map(|r| r.addr()).collect();
    let coordinator = boot_coordinator(addrs.clone());
    let mut client = HttpClient::connect(coordinator.addr()).expect("connect");

    // Duplicate-heavy traffic: 8 distinct plans, 4 passes.
    let docs: Vec<String> = (0..8).map(|i| plan_doc(&format!("table_{i}"))).collect();
    for _ in 0..4 {
        for doc in &docs {
            let resp = client.post("/narrate", doc).expect("narrate");
            assert_eq!(resp.status, 200, "{}", resp.body);
        }
    }

    let stats = get_json(&mut client, "/stats");
    // Replica counters sum at the top level: 32 narrations total.
    assert_eq!(num(&stats, "narrate_requests"), 32.0);
    // Queue/shed gauges aggregate too (zero here, but present — the
    // soak tooling reads them off the coordinator exactly like off a
    // single node).
    assert_eq!(num(&stats, "shed_requests"), 0.0);
    assert!(stats.get("queue_depth").is_some(), "queue_depth missing");
    assert!(
        stats.get("uptime_ms").is_none(),
        "uptimes must not be summed across replicas"
    );
    // Shard affinity: every duplicate hit its owner's warm cache, so
    // the aggregate sees 8 misses and 24 hits.
    let (hits, misses) = cache_counters(&stats);
    assert_eq!(misses, 8.0);
    assert_eq!(hits, 24.0);
    // Per-replica breakdown covers every configured replica.
    let breakdown = stats.get("replicas").and_then(|r| r.as_array()).unwrap();
    assert_eq!(breakdown.len(), 3);
    assert!(breakdown
        .iter()
        .all(|r| r.get("healthy").and_then(JsonValue::as_bool) == Some(true)));

    // Kill one replica: /stats must stay 200, with the dead replica
    // reported (not silently dropped, not an error).
    let victim_addr = addrs[0].to_string();
    replicas.remove(0).shutdown().unwrap();
    let stats = get_json(&mut client, "/stats");
    let breakdown = stats.get("replicas").and_then(|r| r.as_array()).unwrap();
    assert_eq!(breakdown.len(), 3);
    let dead: Vec<&JsonValue> = breakdown
        .iter()
        .filter(|r| r.get("healthy").and_then(JsonValue::as_bool) == Some(false))
        .collect();
    assert_eq!(dead.len(), 1, "{}", stats.to_string_compact());
    assert_eq!(
        dead[0].get("addr").and_then(JsonValue::as_str),
        Some(victim_addr.as_str())
    );
    // The survivors' counters still aggregate.
    assert!(num(&stats, "narrate_requests") > 0.0);

    coordinator.shutdown().unwrap();
    for replica in replicas {
        replica.shutdown().unwrap();
    }
}

#[test]
fn batch_splits_across_shards_and_stitches_in_order() {
    let replicas: Vec<ServerHandle> = (0..3).map(|_| boot_replica()).collect();
    let addrs: Vec<SocketAddr> = replicas.iter().map(|r| r.addr()).collect();
    let coordinator = boot_coordinator(addrs);
    let mut client = HttpClient::connect(coordinator.addr()).expect("connect");

    // Enough distinct plans to hit all three shards, plus a non-string
    // entry and an unparseable document mixed in at known positions.
    let mut items: Vec<JsonValue> = (0..12)
        .map(|i| JsonValue::String(plan_doc(&format!("batch_{i}"))))
        .collect();
    items.insert(3, JsonValue::Number(7.0));
    items.insert(9, JsonValue::String("not a plan at all".to_string()));
    let body = JsonValue::Array(items.clone()).to_string_compact();

    let resp = client.post("/narrate/batch", &body).expect("batch");
    assert_eq!(resp.status, 200, "{}", resp.body);
    let out = resp.json().expect("json");
    let out = out.as_array().expect("array response");
    assert_eq!(out.len(), items.len(), "stitched length");
    for (i, item) in out.iter().enumerate() {
        let is_error = item.get("error").is_some();
        match i {
            3 | 9 => assert!(is_error, "entry {i} should fail: {item:?}"),
            _ => {
                assert!(!is_error, "entry {i} should narrate: {item:?}");
                let text = item.get("text").and_then(JsonValue::as_str).unwrap();
                assert!(!text.is_empty());
            }
        }
    }

    // The same batch again answers from warm shard caches: aggregate
    // hits grow by the number of valid entries.
    let before = get_json(&mut client, "/stats");
    let resp = client.post("/narrate/batch", &body).expect("batch");
    assert_eq!(resp.status, 200);
    let after = get_json(&mut client, "/stats");
    let (hits_before, _) = cache_counters(&before);
    let (hits_after, misses_after) = cache_counters(&after);
    assert_eq!(hits_after - hits_before, 12.0);
    let (_, misses_before) = cache_counters(&before);
    assert_eq!(misses_after, misses_before, "repeat batch added no misses");

    coordinator.shutdown().unwrap();
    for replica in replicas {
        replica.shutdown().unwrap();
    }
}

#[test]
fn catalog_mutation_broadcasts_rolls_cache_keys_and_changes_narration() {
    let replicas: Vec<ServerHandle> = (0..3).map(|_| boot_replica()).collect();
    let addrs: Vec<SocketAddr> = replicas.iter().map(|r| r.addr()).collect();
    let coordinator = boot_coordinator(addrs);
    let mut client = HttpClient::connect(coordinator.addr()).expect("connect");

    // Warm the owning shard's cache for one plan.
    let doc = plan_doc("orders");
    for _ in 0..2 {
        let resp = client.post("/narrate", &doc).expect("narrate");
        assert_eq!(resp.status, 200);
    }
    let warm = get_json(&mut client, "/stats");
    let (warm_hits, warm_misses) = cache_counters(&warm);
    assert_eq!((warm_hits, warm_misses), (1.0, 1.0));

    // A statement that won't parse is refused locally — nothing
    // reaches the log or the replicas.
    let resp = client
        .post("/catalog/apply", "FROBNICATE EVERYTHING")
        .expect("apply");
    assert_eq!(resp.status, 400, "{}", resp.body);

    // Mutate the seqscan wording through the coordinator.
    let resp = client
        .post(
            "/catalog/apply",
            "UPDATE pg SET desc = 'carefully walk table' WHERE name = 'seqscan'",
        )
        .expect("apply");
    assert_eq!(resp.status, 200, "{}", resp.body);
    let ack = resp.json().expect("json");
    assert_eq!(num(&ack, "seq"), 1.0);
    let legs = ack.get("replicas").and_then(|r| r.as_array()).unwrap();
    assert_eq!(legs.len(), 3);
    for leg in legs {
        assert_eq!(
            leg.get("status").and_then(JsonValue::as_str),
            Some("applied")
        );
        assert_eq!(num(leg, "applied_seq"), 1.0);
    }
    // Every replica converged on the same catalog version.
    let versions: Vec<f64> = legs.iter().map(|l| num(l, "version")).collect();
    assert!(versions.windows(2).all(|w| w[0] == w[1]), "{versions:?}");

    // The store version rolled, so the warmed key is stale: first
    // narration after the mutation is a cold miss with the *new*
    // wording, the second is a warm hit.
    let resp = client.post("/narrate", &doc).expect("narrate");
    assert_eq!(resp.status, 200);
    let narration = resp.json().expect("json");
    let text = narration.get("text").and_then(JsonValue::as_str).unwrap();
    assert!(text.contains("carefully walk table"), "{text}");
    let cold = get_json(&mut client, "/stats");
    let (cold_hits, cold_misses) = cache_counters(&cold);
    assert_eq!((cold_hits, cold_misses), (warm_hits, warm_misses + 1.0));

    let resp = client.post("/narrate", &doc).expect("narrate");
    assert_eq!(resp.status, 200);
    let rewarmed = get_json(&mut client, "/stats");
    let (rewarm_hits, rewarm_misses) = cache_counters(&rewarmed);
    assert_eq!((rewarm_hits, rewarm_misses), (cold_hits + 1.0, cold_misses));

    coordinator.shutdown().unwrap();
    for replica in replicas {
        replica.shutdown().unwrap();
    }
}

#[test]
fn coordinator_metrics_merge_replicas_bucket_wise_and_request_ids_round_trip() {
    use lantern_obs::{
        parse_exposition, snapshot_from_samples, METRIC_REQUEST_SECONDS, METRIC_STAGE_SECONDS,
    };
    use lantern_serve::http::REQUEST_ID_HEADER;

    let replicas: Vec<ServerHandle> = (0..3).map(|_| boot_replica()).collect();
    let addrs: Vec<SocketAddr> = replicas.iter().map(|r| r.addr()).collect();
    let coordinator = boot_coordinator(addrs.clone());
    let mut client = HttpClient::connect(coordinator.addr()).expect("connect");

    // A request with a caller-supplied ID: the same ID must come back
    // on the coordinator's response (the replica echoes it, the
    // coordinator preserves it) and land in the owning replica's slow
    // log — one stable ID across both hops.
    let supplied = "e2e-test-0000abcd";
    let resp = client
        .try_request_with(
            "POST",
            "/narrate",
            &[(REQUEST_ID_HEADER, supplied)],
            Some(&plan_doc("traced_table")),
        )
        .expect("narrate with id");
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert_eq!(resp.header(REQUEST_ID_HEADER), Some(supplied));
    let mut seen_on_replica = 0usize;
    for addr in &addrs {
        let mut direct = HttpClient::connect(*addr).expect("connect replica");
        let slow = get_json(&mut direct, "/debug/slow?threshold_ms=0");
        let entries = slow.get("entries").and_then(|e| e.as_array()).unwrap();
        seen_on_replica += entries
            .iter()
            .filter(|e| e.get("id").and_then(JsonValue::as_str) == Some(supplied))
            .count();
    }
    assert_eq!(seen_on_replica, 1, "supplied ID on exactly one replica");

    // Without a header the coordinator mints one and it still
    // propagates to the response.
    let resp = client
        .post("/narrate", &plan_doc("minted_table"))
        .expect("narrate");
    assert_eq!(resp.status, 200);
    let minted = resp
        .header(REQUEST_ID_HEADER)
        .expect("minted id")
        .to_string();
    assert!(!minted.is_empty());

    // Spread more traffic so every shard has recorded something.
    for i in 0..12 {
        let resp = client
            .post("/narrate", &plan_doc(&format!("merge_{i}")))
            .expect("narrate");
        assert_eq!(resp.status, 200);
    }

    // Scrape each replica directly and merge its narrate-stage
    // histogram by hand; the coordinator's unlabeled series must equal
    // that merge bucket-for-bucket, and its per-replica labeled series
    // must equal each individual scrape. The narrate stage is the
    // comparison target because only narrate traffic moves it — probe
    // loops and the scrapes themselves only touch read/write and the
    // request histogram, which would race this equality check.
    let stage = &[("stage", "narrate")][..];
    let mut expected = lantern_obs::HistogramSnapshot::default();
    let mut per_replica = Vec::new();
    for addr in &addrs {
        let mut direct = HttpClient::connect(*addr).expect("connect replica");
        let page = direct.get("/metrics").expect("replica metrics");
        assert_eq!(page.status, 200);
        let parsed = parse_exposition(&page.body);
        let snap = snapshot_from_samples(&parsed.samples, METRIC_STAGE_SECONDS, stage)
            .expect("replica narrate-stage histogram");
        expected.merge(&snap);
        per_replica.push((addr.to_string(), snap));
    }
    assert!(expected.count >= 14, "replicas recorded the traffic");

    let page = client.get("/metrics").expect("coordinator metrics");
    assert_eq!(page.status, 200, "{}", page.body);
    assert!(
        page.body
            .contains(&format!("# TYPE {METRIC_STAGE_SECONDS} histogram")),
        "TYPE line present"
    );
    let parsed = parse_exposition(&page.body);
    let fleet = snapshot_from_samples(&parsed.samples, METRIC_STAGE_SECONDS, stage)
        .expect("fleet narrate-stage histogram");
    assert_eq!(fleet.buckets, expected.buckets, "bucket-wise merge");
    assert_eq!(fleet.count, expected.count);
    for (addr, snap) in &per_replica {
        let labeled = snapshot_from_samples(
            &parsed.samples,
            METRIC_STAGE_SECONDS,
            &[("replica", addr), ("stage", "narrate")],
        )
        .unwrap_or_else(|| panic!("labeled series for {addr}"));
        assert_eq!(labeled.buckets, snap.buckets, "per-replica series {addr}");
    }
    // The coordinator's own request histogram rides along under its
    // node label and is excluded from the fleet merge.
    let own = snapshot_from_samples(
        &parsed.samples,
        METRIC_REQUEST_SECONDS,
        &[("node", "coordinator")],
    )
    .expect("coordinator's own histogram");
    assert!(own.count >= 14, "coordinator traced its own requests");

    coordinator.shutdown().unwrap();
    for replica in replicas {
        replica.shutdown().unwrap();
    }
}

#[test]
fn lagging_replica_catches_up_from_the_log_after_restart() {
    let mut replicas: Vec<ServerHandle> = (0..3).map(|_| boot_replica()).collect();
    let addrs: Vec<SocketAddr> = replicas.iter().map(|r| r.addr()).collect();
    let coordinator = boot_coordinator(addrs.clone());
    let mut client = HttpClient::connect(coordinator.addr()).expect("connect");

    // Kill replica 2, then mutate while it is down: the broadcast can
    // only reach two replicas.
    let victim_addr = addrs[2];
    replicas.pop().unwrap().shutdown().unwrap();
    let resp = client
        .post(
            "/catalog/apply",
            "UPDATE pg SET desc = 'walk rows in order' WHERE name = 'seqscan'",
        )
        .expect("apply");
    assert_eq!(resp.status, 200, "{}", resp.body);
    let ack = resp.json().expect("json");
    let applied = ack
        .get("replicas")
        .and_then(|r| r.as_array())
        .unwrap()
        .iter()
        .filter(|l| l.get("status").and_then(JsonValue::as_str) == Some("applied"))
        .count();
    assert_eq!(applied, 2, "{}", resp.body);

    let resp = client
        .post(
            "/catalog/apply",
            "UPDATE pg SET defn = 'full scan reads all rows' WHERE name = 'seqscan'",
        )
        .expect("apply");
    assert_eq!(resp.status, 200);

    // Restart the victim on the same address with a *fresh* store —
    // an empty log position. The probe loop must notice it is behind
    // and replay both missed statements.
    let listener = reusable_listener(victim_addr).expect("rebind victim address");
    let revived = boot_replica_on(listener);
    wait_for("replayed catalog on the revived replica", || {
        let catalog = get_json(&mut client, "/catalog");
        let entries = catalog.get("replicas").and_then(|r| r.as_array()).unwrap();
        entries.iter().all(|e| {
            e.get("applied_seq").and_then(JsonValue::as_f64) == Some(2.0)
                && e.get("healthy").and_then(JsonValue::as_bool) == Some(true)
        })
    });

    // Direct check against the revived replica: it reports the full
    // sequence even though it never saw the original broadcasts.
    let mut direct = HttpClient::connect(victim_addr).expect("connect revived");
    let catalog = get_json(&mut direct, "/catalog");
    assert_eq!(num(&catalog, "applied_seq"), 2.0);

    coordinator.shutdown().unwrap();
    revived.shutdown().unwrap();
    for replica in replicas {
        replica.shutdown().unwrap();
    }
}
