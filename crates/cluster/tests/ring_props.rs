//! Property tests for the consistent-hash ring: the stability contracts
//! the coordinator's shard affinity is built on, checked across random
//! cluster sizes and membership changes rather than one hand-picked
//! topology.

use lantern_cache::Hasher128;
use lantern_cluster::HashRing;
use proptest::prelude::*;

const VNODES: usize = 64;

fn node_names(count: usize) -> Vec<String> {
    (0..count)
        .map(|i| format!("10.0.0.{}:9{:03}", i + 1, i))
        .collect()
}

/// Deterministic key stream spread over the u128 space.
fn sample_keys(seed: u64, count: usize) -> Vec<u128> {
    (0..count)
        .map(|i| {
            let mut h = Hasher128::new("lantern/ring-prop-keys");
            h.write_u64(seed);
            h.write_u64(i as u64);
            h.finish().0
        })
        .collect()
}

/// Owner *name* for a key — names survive membership changes, indices
/// don't.
fn owner(ring: &HashRing, key: u128) -> &str {
    &ring.nodes()[ring.route(key).expect("non-empty ring")]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Two coordinators configured with the same replica list build
    /// byte-identical routing tables: every key routes the same, and
    /// fails over the same.
    #[test]
    fn independent_builds_route_identically(
        raw_nodes in any::<u8>(),
        seed in any::<u64>(),
    ) {
        let count = 1 + (raw_nodes as usize) % 8;
        let names = node_names(count);
        let a = HashRing::new(&names, VNODES);
        let b = HashRing::new(&names, VNODES);
        for key in sample_keys(seed, 256) {
            prop_assert_eq!(a.route(key), b.route(key));
            prop_assert_eq!(a.successors(key), b.successors(key));
        }
    }

    /// Removing one node moves exactly that node's keys (everyone
    /// else's stay put), and the moved share is on the order of 1/N —
    /// not a rehash-everything event.
    #[test]
    fn leave_moves_only_the_left_nodes_keys(
        raw_nodes in any::<u8>(),
        raw_victim in any::<u8>(),
        seed in any::<u64>(),
    ) {
        let count = 2 + (raw_nodes as usize) % 7; // 2..=8 nodes
        let names = node_names(count);
        let victim = (raw_victim as usize) % count;
        let survivors: Vec<String> = names
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != victim)
            .map(|(_, n)| n.clone())
            .collect();
        let full = HashRing::new(&names, VNODES);
        let reduced = HashRing::new(&survivors, VNODES);

        let keys = sample_keys(seed, 2000);
        let mut moved = 0usize;
        for &key in &keys {
            let before = owner(&full, key);
            let after = owner(&reduced, key);
            if before == names[victim] {
                moved += 1;
                // The stranded keys fall to the ring successor, not to
                // an arbitrary node: failover order predicts the new
                // owner exactly.
                let successor = full
                    .successors(key)
                    .into_iter()
                    .map(|n| full.nodes()[n].as_str())
                    .find(|n| *n != names[victim])
                    .expect("at least two nodes");
                prop_assert_eq!(after, successor);
            } else {
                prop_assert_eq!(before, after);
            }
        }
        // The victim owned roughly keys/count of the space; allow wide
        // slack for vnode placement variance, but rule out any
        // collapse toward "most keys moved".
        let fair = keys.len() / count;
        prop_assert!(
            moved <= fair * 2 + fair / 2,
            "{moved} of {} keys moved on one leave from {count} nodes (fair ~{fair})",
            keys.len()
        );
    }

    /// Adding a node only *steals* keys: every key either keeps its
    /// owner or moves to the new node, and the steal is bounded like a
    /// 1/(N+1) share.
    #[test]
    fn join_steals_bounded_keys_and_disturbs_no_one_else(
        raw_nodes in any::<u8>(),
        seed in any::<u64>(),
    ) {
        let count = 1 + (raw_nodes as usize) % 7; // 1..=7 before join
        let names = node_names(count + 1);
        let (joined, original) = (names[count].clone(), &names[..count]);
        let before = HashRing::new(original, VNODES);
        let after = HashRing::new(&names, VNODES);

        let keys = sample_keys(seed, 2000);
        let mut stolen = 0usize;
        for &key in &keys {
            let old = owner(&before, key);
            let new = owner(&after, key);
            if new == joined {
                stolen += 1;
            } else {
                prop_assert_eq!(old, new);
            }
        }
        let fair = keys.len() / (count + 1);
        prop_assert!(
            stolen <= fair * 2 + fair / 2,
            "join stole {stolen} of {} keys across {count}+1 nodes (fair ~{fair})",
            keys.len()
        );
    }
}
