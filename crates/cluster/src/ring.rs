//! Consistent-hash ring with virtual nodes over the 128-bit plan
//! fingerprint space.
//!
//! Every replica is hashed onto the ring at `virtual_nodes` points
//! (domain-separated [`Hasher128`] over the replica's name and the
//! vnode index); a key routes to the owner of the first ring point at
//! or after it, wrapping at the top. The properties a serving tier
//! leans on:
//!
//! * **Determinism** — two rings built from the same node list are
//!   identical, so any coordinator (or test) reconstructs the same
//!   routing table from configuration alone.
//! * **Minimal disruption** — removing a node only remaps the keys it
//!   owned (each range falls to its ring successor); adding one back
//!   restores the original routing exactly. With V vnodes over N
//!   nodes, a single join/leave moves ~1/N of the keyspace.
//! * **Failover order** — [`HashRing::successors`] yields the owner
//!   first, then each distinct next node in ring order: the retry
//!   sequence that keeps a dead node's keys concentrated on one
//!   successor (warming one cache, not all of them).

use lantern_cache::Hasher128;

/// Domain tag for ring point hashing — bump the suffix if the point
/// derivation ever changes, so mixed-version coordinators can't
/// silently disagree about ownership.
const RING_DOMAIN: &str = "lantern/ring/v1";

/// A consistent-hash ring mapping `u128` keys to node indices.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Node names, in the order given at construction; ring results
    /// are indices into this list.
    nodes: Vec<String>,
    /// `(point, node index)` sorted by point.
    points: Vec<(u128, usize)>,
    virtual_nodes: usize,
}

impl HashRing {
    /// Build a ring over `nodes` with `virtual_nodes` points each
    /// (clamped to at least 1). Node names must be distinct — equal
    /// names would hash to identical points and shadow each other.
    pub fn new<S: AsRef<str>>(nodes: &[S], virtual_nodes: usize) -> HashRing {
        let virtual_nodes = virtual_nodes.max(1);
        let nodes: Vec<String> = nodes.iter().map(|n| n.as_ref().to_string()).collect();
        let mut points = Vec::with_capacity(nodes.len() * virtual_nodes);
        for (index, name) in nodes.iter().enumerate() {
            for vnode in 0..virtual_nodes {
                points.push((ring_point(name, vnode), index));
            }
        }
        // Sort by point; a (vanishingly unlikely) point collision
        // between two nodes resolves by node order, deterministically.
        points.sort_unstable();
        HashRing {
            nodes,
            points,
            virtual_nodes,
        }
    }

    /// Node names, in construction order.
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// Number of nodes on the ring.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the ring has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Virtual nodes per node.
    pub fn virtual_nodes(&self) -> usize {
        self.virtual_nodes
    }

    /// The node index owning `key`: the first ring point at or after
    /// it, wrapping around the top of the space. `None` on an empty
    /// ring.
    pub fn route(&self, key: u128) -> Option<usize> {
        let points = &self.points;
        if points.is_empty() {
            return None;
        }
        let key = spread(key);
        let at = points.partition_point(|(point, _)| *point < key);
        Some(points[at % points.len()].1)
    }

    /// The owner of `key` followed by every other node, each appearing
    /// once, in ring order from the key. Element 0 is
    /// [`HashRing::route`]; element 1 is where the keys fail over if
    /// the owner dies.
    pub fn successors(&self, key: u128) -> Vec<usize> {
        let points = &self.points;
        let mut order = Vec::with_capacity(self.nodes.len());
        if points.is_empty() {
            return order;
        }
        let mut seen = vec![false; self.nodes.len()];
        let key = spread(key);
        let start = points.partition_point(|(point, _)| *point < key);
        for offset in 0..points.len() {
            let (_, node) = points[(start + offset) % points.len()];
            if !seen[node] {
                seen[node] = true;
                order.push(node);
                if order.len() == self.nodes.len() {
                    break;
                }
            }
        }
        order
    }
}

/// The ring point for one virtual node.
fn ring_point(name: &str, vnode: usize) -> u128 {
    let mut h = Hasher128::new(RING_DOMAIN);
    h.write_str(name);
    h.write_u64(vnode as u64);
    spread(h.finish().0)
}

/// Finalizer spreading values across the full `u128` space. FNV-1a
/// mixes too weakly over short inputs (a name plus a vnode counter, or
/// a small plan's fingerprint) for ring arithmetic: raw digests cluster,
/// and clustered points make some nodes own far more arc than others.
/// Both ring points and lookup keys pass through this, so placement
/// stays deterministic while ownership arcs come out near-uniform.
fn spread(x: u128) -> u128 {
    // murmur3's 64-bit finalizer on each half, cross-feeding the low
    // half into the high so the halves can't stay correlated.
    fn fmix64(mut x: u64) -> u64 {
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 33;
        x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        x ^= x >> 33;
        x
    }
    let lo = fmix64(x as u64);
    let hi = fmix64((x >> 64) as u64 ^ lo);
    ((hi as u128) << 64) | (lo as u128)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_keys(count: usize) -> Vec<u128> {
        // A cheap deterministic key stream spread over the space: the
        // same hasher the ring itself uses, different domain.
        (0..count)
            .map(|i| {
                let mut h = Hasher128::new("lantern/ring-test-keys");
                h.write_u64(i as u64);
                h.finish().0
            })
            .collect()
    }

    #[test]
    fn routes_are_deterministic_across_independent_builds() {
        let names = ["10.0.0.1:9001", "10.0.0.2:9001", "10.0.0.3:9001"];
        let a = HashRing::new(&names, 64);
        let b = HashRing::new(&names, 64);
        for key in sample_keys(500) {
            assert_eq!(a.route(key), b.route(key));
            assert_eq!(a.successors(key), b.successors(key));
        }
    }

    #[test]
    fn single_node_leave_remaps_only_that_nodes_keys_to_its_successor() {
        let names = ["a", "b", "c"];
        let full = HashRing::new(&names, 64);
        // The shrunken ring keeps the surviving nodes under their
        // original indices (drop "b" == index 1).
        let survivors = ["a", "c"];
        let reduced = HashRing::new(&survivors, 64);
        // Map a full-ring index (a=0, c=2) to its reduced-ring index.
        let reindex = |i: usize| match i {
            0 => 0usize, // a
            2 => 1usize, // c
            _ => unreachable!(),
        };
        for key in sample_keys(2000) {
            let before = full.route(key).unwrap();
            let after = reduced.route(key).unwrap();
            if before == 1 {
                // b's keys fall to b's ring successor for that key.
                let successor = *full
                    .successors(key)
                    .iter()
                    .find(|&&n| n != 1)
                    .expect("two survivors");
                assert_eq!(after, reindex(successor), "key {key:#034x}");
            } else {
                // Everyone else's keys must not move at all.
                let expected = match before {
                    0 => 0, // a stays a
                    2 => 1, // c is index 1 in the reduced ring
                    _ => unreachable!(),
                };
                assert_eq!(after, expected, "key {key:#034x} moved needlessly");
            }
        }
    }

    #[test]
    fn load_spreads_roughly_evenly_with_enough_vnodes() {
        let names = ["a", "b", "c", "d"];
        let ring = HashRing::new(&names, 128);
        let mut counts = [0usize; 4];
        let keys = sample_keys(8000);
        for key in &keys {
            counts[ring.route(*key).unwrap()] += 1;
        }
        let expected = keys.len() / names.len();
        for (node, count) in counts.iter().enumerate() {
            assert!(
                (*count as f64) > expected as f64 * 0.5 && (*count as f64) < expected as f64 * 1.5,
                "node {node} owns {count} of {} keys (expected ~{expected})",
                keys.len()
            );
        }
    }

    #[test]
    fn successors_cover_every_node_once_owner_first() {
        let ring = HashRing::new(&["a", "b", "c"], 16);
        for key in sample_keys(200) {
            let order = ring.successors(key);
            assert_eq!(order.len(), 3);
            assert_eq!(order[0], ring.route(key).unwrap());
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2]);
        }
    }

    #[test]
    fn empty_and_single_node_rings() {
        let empty: [&str; 0] = [];
        let ring = HashRing::new(&empty, 8);
        assert!(ring.is_empty());
        assert_eq!(ring.route(42), None);
        assert!(ring.successors(42).is_empty());

        let solo = HashRing::new(&["only"], 8);
        for key in sample_keys(50) {
            assert_eq!(solo.route(key), Some(0));
            assert_eq!(solo.successors(key), vec![0]);
        }
    }
}
