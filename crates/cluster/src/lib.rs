//! Sharded multi-replica serving tier for plan narration.
//!
//! A single `lantern-serve` node already pipelines, sheds load, and
//! caches narrations by plan fingerprint. This crate scales that node
//! horizontally without giving up the cache economics: a **coordinator**
//! fronts N replicas and routes every request by the *canonical plan
//! fingerprint* of its document over a consistent-hash ring. The same
//! plan — however it is re-serialized — always lands on the same
//! replica, so N small per-replica LRUs partition the keyspace and
//! behave like one dedicated cache per shard instead of N overlapping
//! copies.
//!
//! The pieces:
//!
//! * [`ring`] — the consistent-hash ring ([`HashRing`]): virtual-node
//!   placement, deterministic across independently built coordinators,
//!   minimal key movement on join/leave, and a successor order that
//!   doubles as the failover sequence.
//! * [`shard`] — request body → ring key ([`shard_key`]): canonical
//!   fingerprint for parseable plans, exact-text digest (under a
//!   routing-only domain) for everything else.
//! * [`coordinator`] — the HTTP tier itself ([`serve_cluster`]):
//!   forwarding with pooled keep-alive connections, health probing,
//!   retry-with-backoff failover to ring successors, per-shard batch
//!   splitting with in-order re-stitching, ordered catalog-mutation
//!   broadcast with gap-triggered replay, and aggregated `/stats`.
//!
//! The coordinator holds no narration state: replicas can restart
//! freely (rebuilding their caches and catalogs from traffic and
//! replay), and killing the coordinator loses only connection pools and
//! the in-memory catalog log.

pub mod coordinator;
pub mod ring;
pub mod shard;

pub use coordinator::{serve_cluster, ClusterConfig, ClusterHandle, ClusterStats};
pub use ring::HashRing;
pub use shard::{document_key, group_by_node, item_key, shard_key};
