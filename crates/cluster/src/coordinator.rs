//! The cluster coordinator: a thin HTTP tier that owns no translator,
//! no cache, and no catalog state beyond the mutation log — it routes.
//!
//! Request lifecycle:
//!
//! 1. a worker parses the request with the same `lantern-serve` HTTP
//!    layer the replicas use;
//! 2. the body is reduced to a **shard key** (canonical plan
//!    fingerprint, memoized by exact text — see [`crate::shard`]);
//! 3. the key picks an owner on the consistent-hash ring, and the
//!    request is forwarded over a pooled keep-alive connection;
//! 4. on connect failure, timeout, or mid-exchange close, the
//!    coordinator backs off briefly and retries the ring **successor**
//!    — the dead node's key range fails over to one neighbour, keeping
//!    the affinity story intact — until `max_attempts` candidates are
//!    exhausted and the client gets a `503` with `Retry-After`;
//! 5. batches are split per owning shard, forwarded concurrently, and
//!    re-stitched in request order, so a caller cannot tell one replica
//!    from N except by throughput.
//!
//! Catalog mutations (`POST /catalog/apply` with one raw POOL
//! statement) append to an ordered statement log and broadcast to every
//! replica as `{from_seq, statements}`; replicas apply idempotently and
//! reject gaps, and the probe loop replays the missing suffix to any
//! replica that restarted or missed a broadcast. Since POOL execution
//! is deterministic, identical logs converge every replica to the same
//! `PoemStore` version.

use crate::ring::HashRing;
use crate::shard::{document_key, group_by_node, item_key, shard_key};
use lantern_cache::ShardedLru;
use lantern_obs::{bucket_index, parse_exposition, Recorder, RecorderConfig, BOUNDS, BUCKETS};
use lantern_pool::parse_pool;
use lantern_serve::http::{read_request, write_response, Request, Response, REQUEST_ID_HEADER};
use lantern_serve::router::error_body_raw;
use lantern_serve::{ClientConfig, ClientError, ClientErrorKind, ClientResponse, HttpClient};
use lantern_text::json::JsonValue;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One sub-batch's original item positions paired with the replica's
/// response (or the transport failure that exhausted its retries).
type SubBatchResult = (Vec<usize>, Result<ClientResponse, Option<ClientError>>);

/// Tunables for [`serve_cluster`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Replica addresses. Order is identity: the ring hashes each
    /// replica under its address string, so the same list always builds
    /// the same ring.
    pub replicas: Vec<SocketAddr>,
    /// Virtual nodes per replica on the ring.
    pub virtual_nodes: usize,
    /// Coordinator worker threads. `0` means `available_parallelism`
    /// (min 2).
    pub workers: usize,
    /// Accepted connections that may queue for a worker before new
    /// arrivals are shed with `503`.
    pub queue_depth: usize,
    /// Largest accepted request body, in bytes.
    pub max_body_bytes: usize,
    /// Idle read timeout on client keep-alive connections.
    pub idle_timeout: Duration,
    /// TCP connect bound per forwarding attempt.
    pub connect_timeout: Duration,
    /// Read bound per forwarding attempt — the failover trigger for a
    /// replica that accepts but never answers.
    pub read_timeout: Duration,
    /// Sleep between failover attempts.
    pub retry_backoff: Duration,
    /// Forwarding attempts per request (owner + successors).
    pub max_attempts: usize,
    /// Health/catalog probe period.
    pub probe_interval: Duration,
    /// Entries in the shard-key memo (exact request text → ring key);
    /// sized like a replica cache so duplicate traffic skips re-parsing.
    pub route_memo_entries: usize,
    /// Record request latency and serve `GET /metrics` (the
    /// coordinator's own histograms plus a bucket-wise merge of every
    /// replica's scrape). Off, `/metrics` answers 404.
    pub metrics: bool,
    /// Capture threshold for the coordinator's slow-request ring
    /// (`GET /debug/slow`), milliseconds. `0` captures every request.
    pub slow_log_ms: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            replicas: Vec::new(),
            virtual_nodes: 64,
            workers: 0,
            queue_depth: 64,
            max_body_bytes: 4 * 1024 * 1024,
            idle_timeout: Duration::from_secs(5),
            connect_timeout: Duration::from_millis(500),
            read_timeout: Duration::from_secs(5),
            retry_backoff: Duration::from_millis(25),
            max_attempts: 3,
            probe_interval: Duration::from_millis(500),
            route_memo_entries: 4096,
            metrics: true,
            slow_log_ms: 0,
        }
    }
}

impl ClusterConfig {
    fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .max(2)
    }
}

/// Coordinator-side counters (replica counters live on the replicas and
/// are merged by `GET /stats`).
#[derive(Debug, Default)]
pub struct ClusterStats {
    /// TCP connections accepted by the coordinator.
    pub connections: AtomicU64,
    /// Requests routed (any endpoint, any outcome).
    pub requests_total: AtomicU64,
    /// `POST /narrate` requests.
    pub narrate_requests: AtomicU64,
    /// `POST /narrate/batch` requests.
    pub batch_requests: AtomicU64,
    /// Entries inside batch envelopes.
    pub batch_items: AtomicU64,
    /// `POST /narrate/diff` requests.
    pub diff_requests: AtomicU64,
    /// `POST /narrate/diff/batch` requests.
    pub diff_batch_requests: AtomicU64,
    /// Forwarding attempts that went to a ring successor instead of the
    /// key's owner (each retry counts once).
    pub failovers: AtomicU64,
    /// Requests answered `503` because every candidate replica failed.
    pub unavailable_responses: AtomicU64,
    /// Connections shed because the worker queue was full.
    pub shed_requests: AtomicU64,
    /// Requests for unknown paths.
    pub not_found: AtomicU64,
    /// Responses with status ≥ 400.
    pub error_responses: AtomicU64,
    /// Catalog mutations accepted into the statement log.
    pub catalog_mutations: AtomicU64,
    /// Log-suffix replays pushed to lagging replicas (rejoin path).
    pub catalog_replays: AtomicU64,
    /// Broadcast legs that failed to reach a replica (the probe loop
    /// owes that replica a replay).
    pub catalog_broadcast_errors: AtomicU64,
    /// Completed probe sweeps over all replicas.
    pub probe_cycles: AtomicU64,
}

impl ClusterStats {
    fn to_json_value(&self) -> JsonValue {
        let mut obj = BTreeMap::new();
        for (key, value) in [
            ("connections", &self.connections),
            ("requests_total", &self.requests_total),
            ("narrate_requests", &self.narrate_requests),
            ("batch_requests", &self.batch_requests),
            ("batch_items", &self.batch_items),
            ("diff_requests", &self.diff_requests),
            ("diff_batch_requests", &self.diff_batch_requests),
            ("failovers", &self.failovers),
            ("unavailable_responses", &self.unavailable_responses),
            ("shed_requests", &self.shed_requests),
            ("not_found", &self.not_found),
            ("error_responses", &self.error_responses),
            ("catalog_mutations", &self.catalog_mutations),
            ("catalog_replays", &self.catalog_replays),
            ("catalog_broadcast_errors", &self.catalog_broadcast_errors),
            ("probe_cycles", &self.probe_cycles),
        ] {
            obj.insert(
                key.to_string(),
                JsonValue::Number(value.load(Ordering::Relaxed) as f64),
            );
        }
        JsonValue::Object(obj)
    }
}

/// Per-replica connection pool cap. Keep-alive connections beyond this
/// are closed instead of parked.
const POOL_CAP: usize = 8;

struct Replica {
    addr: SocketAddr,
    /// Optimistic until proven otherwise; the probe loop and every
    /// forwarding attempt keep it current. An unhealthy replica is
    /// deprioritized, never excluded — forwarding is the liveness
    /// detector of last resort when the whole ring looks down.
    healthy: AtomicBool,
    catalog_version: AtomicU64,
    catalog_seq: AtomicU64,
    pool: Mutex<Vec<HttpClient>>,
}

struct Coordinator {
    config: ClusterConfig,
    ring: HashRing,
    replicas: Vec<Replica>,
    stats: Arc<ClusterStats>,
    /// Exact request text → shard key, so the 75%-duplicate classroom
    /// workload parses each distinct plan once at the routing tier.
    route_memo: ShardedLru<u128>,
    /// The ordered catalog mutation log; `log[i]` carries sequence
    /// number `i + 1`.
    catalog_log: Mutex<Vec<String>>,
    client_config: ClientConfig,
    started: Instant,
    /// Request latency + slow-ring recorder for the coordinator's own
    /// hop (replica-side time is scraped, not re-measured here).
    obs: Arc<Recorder>,
}

thread_local! {
    /// The id of the request this worker thread is currently serving,
    /// stamped onto every replica exchange it performs — this is what
    /// carries one `x-lantern-request-id` coordinator → replica →
    /// response. Probe/broadcast threads have no active id and send no
    /// header.
    static ACTIVE_REQUEST_ID: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// Poison-tolerant lock: a worker that panicked mid-exchange must not
/// wedge every future request behind a poisoned mutex.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn json_error(kind: &str, message: &str, status: u16) -> Response {
    Response::json(
        status,
        error_body_raw(kind, message, status).to_string_compact(),
    )
}

/// Re-encode decoded query parameters for the forwarded request line.
fn encode_query(query: &[(String, String)]) -> String {
    fn push_encoded(out: &mut String, s: &str) {
        for b in s.bytes() {
            match b {
                b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                    out.push(b as char)
                }
                _ => {
                    out.push('%');
                    out.push(
                        char::from_digit((b >> 4) as u32, 16)
                            .unwrap()
                            .to_ascii_uppercase(),
                    );
                    out.push(
                        char::from_digit((b & 0xf) as u32, 16)
                            .unwrap()
                            .to_ascii_uppercase(),
                    );
                }
            }
        }
    }
    let mut out = String::new();
    for (i, (key, value)) in query.iter().enumerate() {
        out.push(if i == 0 { '?' } else { '&' });
        push_encoded(&mut out, key);
        if !value.is_empty() {
            out.push('=');
            push_encoded(&mut out, value);
        }
    }
    out
}

impl Coordinator {
    fn new(config: ClusterConfig) -> Coordinator {
        let names: Vec<String> = config.replicas.iter().map(|a| a.to_string()).collect();
        let ring = HashRing::new(&names, config.virtual_nodes);
        let replicas = config
            .replicas
            .iter()
            .map(|&addr| Replica {
                addr,
                healthy: AtomicBool::new(true),
                catalog_version: AtomicU64::new(0),
                catalog_seq: AtomicU64::new(0),
                pool: Mutex::new(Vec::new()),
            })
            .collect();
        let client_config = ClientConfig {
            connect_timeout: Some(config.connect_timeout),
            read_timeout: Some(config.read_timeout),
        };
        let route_memo = ShardedLru::new(
            8,
            config.route_memo_entries.max(1),
            // Entries are 16-byte values; bound by entries, not bytes.
            u64::MAX,
        );
        let obs = Arc::new(Recorder::new(RecorderConfig {
            enabled: config.metrics,
            slow_log_ms: config.slow_log_ms,
            ..RecorderConfig::default()
        }));
        Coordinator {
            ring,
            replicas,
            stats: Arc::new(ClusterStats::default()),
            route_memo,
            catalog_log: Mutex::new(Vec::new()),
            client_config,
            started: Instant::now(),
            obs,
            config,
        }
    }

    /// One request/response exchange with a replica: pooled keep-alive
    /// connection first, one fresh connection on a stale-pool failure.
    /// Updates the replica's health from the outcome.
    fn exchange(
        &self,
        node: usize,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<ClientResponse, ClientError> {
        let replica = &self.replicas[node];
        // The serving worker's request id rides every hop to a replica,
        // so one id names the request across the whole cluster.
        let id = ACTIVE_REQUEST_ID.with(|cell| cell.borrow().clone());
        let headers: Vec<(&str, &str)> = match &id {
            Some(id) => vec![(REQUEST_ID_HEADER, id.as_str())],
            None => Vec::new(),
        };
        // Take the pooled client in its own statement: an `if let`
        // scrutinee would keep the pool guard alive through the body,
        // where `park` re-locks the same mutex.
        let pooled = lock(&replica.pool).pop();
        if let Some(mut client) = pooled {
            match client.try_request_with(method, path, &headers, body) {
                Ok(resp) => {
                    replica.healthy.store(true, Ordering::Relaxed);
                    self.park(node, client);
                    return Ok(resp);
                }
                Err(e) if e.kind == ClientErrorKind::Protocol => return Err(e),
                // Any transport failure on a pooled connection may just
                // be a keep-alive the replica already closed; fall
                // through and judge the replica on a fresh connect.
                Err(_) => {}
            }
        }
        let fresh =
            HttpClient::connect_with(replica.addr, &self.client_config).and_then(|mut client| {
                client
                    .try_request_with(method, path, &headers, body)
                    .map(|resp| (client, resp))
            });
        match fresh {
            Ok((client, resp)) => {
                replica.healthy.store(true, Ordering::Relaxed);
                self.park(node, client);
                Ok(resp)
            }
            Err(e) => {
                if matches!(
                    e.kind,
                    ClientErrorKind::Connect | ClientErrorKind::Timeout | ClientErrorKind::Closed
                ) {
                    replica.healthy.store(false, Ordering::Relaxed);
                }
                Err(e)
            }
        }
    }

    fn park(&self, node: usize, client: HttpClient) {
        let mut pool = lock(&self.replicas[node].pool);
        if pool.len() < POOL_CAP {
            pool.push(client);
        }
    }

    /// Candidate nodes for a key: the ring's successor order, healthy
    /// nodes first (unhealthy ones stay as last-resort probes), capped
    /// at `max_attempts`.
    fn candidates(&self, key: u128) -> Vec<usize> {
        let order = self.ring.successors(key);
        let mut out: Vec<usize> = order
            .iter()
            .copied()
            .filter(|&n| self.replicas[n].healthy.load(Ordering::Relaxed))
            .collect();
        out.extend(
            order
                .iter()
                .copied()
                .filter(|&n| !self.replicas[n].healthy.load(Ordering::Relaxed)),
        );
        out.truncate(self.config.max_attempts.max(1));
        out
    }

    /// Forward to the key's owner with successor failover. `Err` means
    /// every candidate failed (carrying the last transport error).
    fn forward(
        &self,
        key: u128,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<ClientResponse, Option<ClientError>> {
        let mut last = None;
        for (attempt, node) in self.candidates(key).into_iter().enumerate() {
            if attempt > 0 {
                self.stats.failovers.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(self.config.retry_backoff);
            }
            match self.exchange(node, method, path, body) {
                Ok(resp) => return Ok(resp),
                Err(e) => {
                    let fatal = !e.kind.is_retriable();
                    last = Some(e);
                    if fatal {
                        break;
                    }
                }
            }
        }
        Err(last)
    }

    /// [`Coordinator::forward`], rendered as the client-facing response
    /// (pass-through on success, `503` + `Retry-After` on exhaustion).
    fn forward_response(
        &self,
        key: u128,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Response {
        match self.forward(key, method, path, body) {
            Ok(resp) => passthrough(resp),
            Err(err) => self.unavailable(err),
        }
    }

    fn unavailable(&self, err: Option<ClientError>) -> Response {
        self.stats
            .unavailable_responses
            .fetch_add(1, Ordering::Relaxed);
        let message = match err {
            Some(e) => format!("no replica could serve the request: {e}"),
            None => "no replica could serve the request".to_string(),
        };
        json_error("unavailable", &message, 503).with_header("Retry-After", "1")
    }

    /// Shard key for a document, memoized by exact text.
    fn route_key(&self, doc: &str) -> u128 {
        let memo_key = document_key(doc);
        if let Some(key) = self.route_memo.get(memo_key) {
            return key;
        }
        let key = shard_key(doc);
        self.route_memo.insert(memo_key, key, 16);
        key
    }

    /// Dispatch one parsed request. Mirrors the replica router's
    /// observability contract: one `x-lantern-request-id` per request
    /// (kept when the client sent one, minted otherwise), installed as
    /// the thread's active id so [`Coordinator::exchange`] propagates
    /// it to replicas, echoed on the response, and traced into the
    /// coordinator's own latency histograms and slow ring.
    fn handle(&self, req: &Request) -> Response {
        self.stats.requests_total.fetch_add(1, Ordering::Relaxed);
        let id = match req.header(REQUEST_ID_HEADER) {
            Some(id) if !id.is_empty() => id.to_string(),
            _ => self.obs.mint_id(),
        };
        ACTIVE_REQUEST_ID.with(|cell| *cell.borrow_mut() = Some(id.clone()));
        let trace = self.obs.begin(id, &req.path);
        let response = self.dispatch(req);
        ACTIVE_REQUEST_ID.with(|cell| *cell.borrow_mut() = None);
        let response = response.with_request_id(trace.id());
        trace.finish(response.status);
        response
    }

    fn dispatch(&self, req: &Request) -> Response {
        let response = match (req.method.as_str(), req.path.as_str()) {
            ("POST", "/narrate") => self.narrate(req),
            ("POST", "/narrate/batch") => self.narrate_batch(req),
            ("POST", "/narrate/diff") => self.narrate_diff(req, false),
            ("POST", "/narrate/diff/batch") => self.narrate_diff(req, true),
            ("GET", "/healthz") => self.healthz(),
            ("GET", "/stats") => self.aggregate_stats(),
            ("GET", "/metrics") if self.obs.enabled() => self.metrics(),
            ("GET", "/debug/slow") => self.debug_slow(req),
            ("GET", "/catalog") => self.catalog_info(),
            ("POST", "/catalog/apply") => self.catalog_apply(req),
            ("POST", "/cache/clear") => self.cache_clear(),
            (_, "/metrics") if self.obs.enabled() => json_error(
                "http",
                &format!("method {} not allowed on {}", req.method, req.path),
                405,
            ),
            (
                _,
                "/narrate"
                | "/narrate/batch"
                | "/narrate/diff"
                | "/narrate/diff/batch"
                | "/healthz"
                | "/stats"
                | "/debug/slow"
                | "/catalog"
                | "/catalog/apply"
                | "/cache/clear",
            ) => json_error(
                "http",
                &format!("method {} not allowed on {}", req.method, req.path),
                405,
            ),
            _ => {
                self.stats.not_found.fetch_add(1, Ordering::Relaxed);
                json_error("http", &format!("no route for {}", req.path), 404)
            }
        };
        if response.status >= 400 {
            self.stats.error_responses.fetch_add(1, Ordering::Relaxed);
        }
        response
    }

    fn narrate(&self, req: &Request) -> Response {
        self.stats.narrate_requests.fetch_add(1, Ordering::Relaxed);
        let Some(doc) = req.body_utf8() else {
            // The replica would answer this 400 itself; answering it
            // here saves shipping bytes that cannot narrate.
            return json_error("parse", "request body is not valid UTF-8", 400);
        };
        let path = format!("/narrate{}", encode_query(&req.query));
        self.forward_response(self.route_key(doc), "POST", &path, Some(doc))
    }

    /// `POST /narrate/batch`: validate the envelope like a replica
    /// would, split entries by owning shard, forward sub-batches
    /// concurrently, and re-stitch responses in request order.
    fn narrate_batch(&self, req: &Request) -> Response {
        self.stats.batch_requests.fetch_add(1, Ordering::Relaxed);
        let Some(body) = req.body_utf8() else {
            return json_error("parse", "request body is not valid UTF-8", 400);
        };
        let items = match JsonValue::parse(body) {
            Ok(JsonValue::Array(items)) if items.is_empty() => {
                return json_error(
                    "parse",
                    "batch body must be a non-empty JSON array of plan document strings",
                    400,
                )
            }
            Ok(JsonValue::Array(items)) => items,
            Ok(_) => {
                return json_error(
                    "parse",
                    "batch body must be a JSON array of plan document strings",
                    400,
                )
            }
            Err(e) => return json_error("parse", &format!("batch body is not JSON: {e}"), 400),
        };
        self.stats
            .batch_items
            .fetch_add(items.len() as u64, Ordering::Relaxed);
        let keys: Vec<u128> = items
            .iter()
            .map(|item| match item.as_str() {
                Some(doc) => self.route_key(doc),
                None => item_key(item),
            })
            .collect();
        let groups = group_by_node(&keys, &self.ring);
        let path = format!("/narrate/batch{}", encode_query(&req.query));

        // Whole batch owned by one shard: forward the original body.
        if groups.len() == 1 {
            let key = keys[0];
            return self.forward_response(key, "POST", &path, Some(body));
        }

        let mut slots: Vec<Option<JsonValue>> = vec![None; items.len()];
        let group_results: Vec<SubBatchResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = groups
                .into_values()
                .map(|indices| {
                    let sub_body =
                        JsonValue::Array(indices.iter().map(|&i| items[i].clone()).collect())
                            .to_string_compact();
                    // Failover for the sub-batch follows the first
                    // entry's successor chain — one group, one
                    // shard, one chain.
                    let key = keys[indices[0]];
                    let path = &path;
                    let handle =
                        scope.spawn(move || self.forward(key, "POST", path, Some(&sub_body)));
                    (indices, handle)
                })
                .collect();
            handles
                .into_iter()
                .map(|(indices, handle)| {
                    let result = handle.join().unwrap_or(Err(None));
                    (indices, result)
                })
                .collect()
        });
        for (indices, result) in group_results {
            match result {
                Ok(resp) if resp.status == 200 => {
                    let values = match resp.json() {
                        Ok(JsonValue::Array(values)) if values.len() == indices.len() => values,
                        _ => {
                            let err = error_body_raw(
                                "backend",
                                "replica returned a malformed batch response",
                                502,
                            );
                            indices.iter().for_each(|&i| slots[i] = Some(err.clone()));
                            continue;
                        }
                    };
                    for (&index, value) in indices.iter().zip(values) {
                        slots[index] = Some(value);
                    }
                }
                Ok(resp) => {
                    // The replica rejected the sub-batch wholesale
                    // (can't normally happen for a coordinator-built
                    // envelope): surface its error per item.
                    let err = resp
                        .json()
                        .ok()
                        .and_then(|v| v.get("error").cloned())
                        .map(|inner| {
                            let mut obj = BTreeMap::new();
                            obj.insert("error".to_string(), inner);
                            JsonValue::Object(obj)
                        })
                        .unwrap_or_else(|| {
                            error_body_raw("backend", "replica rejected the sub-batch", 502)
                        });
                    indices.iter().for_each(|&i| slots[i] = Some(err.clone()));
                }
                Err(err) => {
                    self.stats
                        .unavailable_responses
                        .fetch_add(1, Ordering::Relaxed);
                    let message = match err {
                        Some(e) => format!("shard unavailable: {e}"),
                        None => "shard unavailable".to_string(),
                    };
                    let err = error_body_raw("unavailable", &message, 503);
                    indices.iter().for_each(|&i| slots[i] = Some(err.clone()));
                }
            }
        }
        let out: Vec<JsonValue> = slots
            .into_iter()
            .map(|slot| {
                slot.unwrap_or_else(|| {
                    error_body_raw("backend", "batch entry was not stitched", 500)
                })
            })
            .collect();
        Response::json(200, JsonValue::Array(out).to_string_compact())
    }

    /// `/narrate/diff[/batch]`: a comparison is routed whole, keyed by
    /// its base plan so repeat comparisons of the same base warm one
    /// replica's plan cache. Bodies that don't parse as a diff envelope
    /// are still forwarded (keyed by exact text) — the replica owns the
    /// structured 400.
    fn narrate_diff(&self, req: &Request, batch: bool) -> Response {
        let counter = if batch {
            &self.stats.diff_batch_requests
        } else {
            &self.stats.diff_requests
        };
        counter.fetch_add(1, Ordering::Relaxed);
        let Some(body) = req.body_utf8() else {
            return json_error("parse", "request body is not valid UTF-8", 400);
        };
        let key = JsonValue::parse(body)
            .ok()
            .and_then(|envelope| {
                envelope
                    .get("base")
                    .and_then(JsonValue::as_str)
                    .map(|base| self.route_key(base))
            })
            .unwrap_or_else(|| document_key(body).0);
        let path = format!(
            "/narrate/diff{}{}",
            if batch { "/batch" } else { "" },
            encode_query(&req.query)
        );
        self.forward_response(key, "POST", &path, Some(body))
    }

    fn healthz(&self) -> Response {
        let replicas: Vec<JsonValue> = self
            .replicas
            .iter()
            .map(|replica| {
                let mut obj = BTreeMap::new();
                obj.insert(
                    "addr".to_string(),
                    JsonValue::String(replica.addr.to_string()),
                );
                obj.insert(
                    "healthy".to_string(),
                    JsonValue::Bool(replica.healthy.load(Ordering::Relaxed)),
                );
                JsonValue::Object(obj)
            })
            .collect();
        let mut obj = BTreeMap::new();
        obj.insert("status".to_string(), JsonValue::String("ok".to_string()));
        obj.insert(
            "role".to_string(),
            JsonValue::String("coordinator".to_string()),
        );
        obj.insert(
            "ring_nodes".to_string(),
            JsonValue::Number(self.ring.len() as f64),
        );
        obj.insert("replicas".to_string(), JsonValue::Array(replicas));
        obj.insert(
            "uptime_ms".to_string(),
            JsonValue::Number(self.started.elapsed().as_millis() as f64),
        );
        Response::json(200, JsonValue::Object(obj).to_string_compact())
    }

    /// `GET /stats`: every reachable replica's counters summed (cache
    /// counters summed under `"cache"`), the per-replica breakdown
    /// under `"replicas"`, and the coordinator's own counters under
    /// `"coordinator"`. The top-level shape matches a single replica's
    /// `/stats`, so soak tooling pointed at the coordinator keeps
    /// working; a replica that is down appears as `"healthy": false` in
    /// the breakdown rather than failing the request.
    fn aggregate_stats(&self) -> Response {
        let mut totals: BTreeMap<String, f64> = BTreeMap::new();
        let mut cache_totals: BTreeMap<String, f64> = BTreeMap::new();
        let mut any_cache = false;
        let mut replicas = Vec::with_capacity(self.replicas.len());
        for node in 0..self.replicas.len() {
            let addr = self.replicas[node].addr.to_string();
            let snapshot = match self.exchange(node, "GET", "/stats", None) {
                Ok(resp) if resp.status == 200 => resp.json().ok(),
                _ => None,
            };
            let Some(JsonValue::Object(obj)) = snapshot else {
                let mut down = BTreeMap::new();
                down.insert("addr".to_string(), JsonValue::String(addr));
                down.insert("healthy".to_string(), JsonValue::Bool(false));
                replicas.push(JsonValue::Object(down));
                continue;
            };
            for (key, value) in &obj {
                match (key.as_str(), value) {
                    ("cache", JsonValue::Object(cache)) => {
                        any_cache = true;
                        for (ck, cv) in cache {
                            if let JsonValue::Number(n) = cv {
                                *cache_totals.entry(ck.clone()).or_insert(0.0) += n;
                            }
                        }
                    }
                    // Uptimes don't sum to anything meaningful.
                    (k, JsonValue::Number(n)) if !k.starts_with("uptime_") => {
                        *totals.entry(key.clone()).or_insert(0.0) += n;
                    }
                    _ => {}
                }
            }
            let mut up = BTreeMap::new();
            up.insert("addr".to_string(), JsonValue::String(addr));
            up.insert("healthy".to_string(), JsonValue::Bool(true));
            up.insert("stats".to_string(), JsonValue::Object(obj));
            replicas.push(JsonValue::Object(up));
        }
        // Requests the coordinator refused never reached a replica;
        // fold them into the aggregate shed count so "sent - answered"
        // adds up from the client's point of view.
        let coordinator_shed = self.stats.shed_requests.load(Ordering::Relaxed)
            + self.stats.unavailable_responses.load(Ordering::Relaxed);
        *totals.entry("shed_requests".to_string()).or_insert(0.0) += coordinator_shed as f64;
        let mut body: BTreeMap<String, JsonValue> = totals
            .into_iter()
            .map(|(k, v)| (k, JsonValue::Number(v)))
            .collect();
        if any_cache {
            body.insert(
                "cache".to_string(),
                JsonValue::Object(
                    cache_totals
                        .into_iter()
                        .map(|(k, v)| (k, JsonValue::Number(v)))
                        .collect(),
                ),
            );
        }
        let mut coordinator = self.stats.to_json_value();
        if let JsonValue::Object(obj) = &mut coordinator {
            let memo = self.route_memo.stats();
            let mut route = BTreeMap::new();
            route.insert("hits".to_string(), JsonValue::Number(memo.hits as f64));
            route.insert("misses".to_string(), JsonValue::Number(memo.misses as f64));
            route.insert(
                "entries".to_string(),
                JsonValue::Number(memo.entries as f64),
            );
            obj.insert("route_memo".to_string(), JsonValue::Object(route));
            obj.insert(
                "uptime_ms".to_string(),
                JsonValue::Number(self.started.elapsed().as_millis() as f64),
            );
        }
        body.insert("coordinator".to_string(), coordinator);
        body.insert("replicas".to_string(), JsonValue::Array(replicas));
        Response::json(200, JsonValue::Object(body).to_string_compact())
    }

    /// `GET /metrics` — the fleet's Prometheus page. Every replica's
    /// own `/metrics` is scraped and re-emitted twice: once **merged**
    /// across replicas (every producer renders cumulative histogram
    /// buckets on the shared `le` grid, so bucket-wise addition is
    /// exact) and once under a `replica="host:port"` label. The
    /// coordinator's own request histograms and `lantern_cluster_*`
    /// counters ride along under `node="coordinator"`, so nothing
    /// collides with the replica merge. A replica that is down (or
    /// running with metrics off) degrades the page, never fails it.
    fn metrics(&self) -> Response {
        let mut merge = MetricsMerge::default();
        for (node, replica) in self.replicas.iter().enumerate() {
            let scrape = match self.exchange(node, "GET", "/metrics", None) {
                Ok(resp) if resp.status == 200 => resp.body,
                _ => continue,
            };
            let addr = replica.addr.to_string();
            merge.fold(&scrape, &[]);
            merge.fold(&scrape, &[("replica", addr.as_str())]);
        }
        let registry = self.obs.registry();
        if let JsonValue::Object(obj) = self.stats.to_json_value() {
            for (key, value) in &obj {
                let JsonValue::Number(n) = value else {
                    continue;
                };
                registry.set_counter(
                    &format!("lantern_cluster_{key}"),
                    &[("node", "coordinator")],
                    *n as u64,
                );
            }
        }
        registry.set_gauge(
            "lantern_cluster_uptime_seconds",
            &[("node", "coordinator")],
            self.started.elapsed().as_secs(),
        );
        merge.fold(&self.obs.render_prometheus(&[("node", "coordinator")]), &[]);
        Response::text(200, merge.render())
    }

    /// `GET /debug/slow?threshold_ms=N` — the coordinator's own
    /// slow-request ring. Entries carry the same request ids the
    /// replicas logged, so a slow request here can be chased into the
    /// owning replica's `/debug/slow`.
    fn debug_slow(&self, req: &Request) -> Response {
        let threshold_ms = req
            .query_param("threshold_ms")
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0);
        Response::json(
            200,
            lantern_serve::router::slow_log_value(&self.obs, threshold_ms).to_string_compact(),
        )
    }

    fn catalog_info(&self) -> Response {
        let seq = lock(&self.catalog_log).len() as u64;
        let replicas: Vec<JsonValue> = self
            .replicas
            .iter()
            .map(|replica| {
                let mut obj = BTreeMap::new();
                obj.insert(
                    "addr".to_string(),
                    JsonValue::String(replica.addr.to_string()),
                );
                obj.insert(
                    "healthy".to_string(),
                    JsonValue::Bool(replica.healthy.load(Ordering::Relaxed)),
                );
                obj.insert(
                    "version".to_string(),
                    JsonValue::Number(replica.catalog_version.load(Ordering::Relaxed) as f64),
                );
                obj.insert(
                    "applied_seq".to_string(),
                    JsonValue::Number(replica.catalog_seq.load(Ordering::Relaxed) as f64),
                );
                JsonValue::Object(obj)
            })
            .collect();
        let mut obj = BTreeMap::new();
        obj.insert("seq".to_string(), JsonValue::Number(seq as f64));
        obj.insert("replicas".to_string(), JsonValue::Array(replicas));
        Response::json(200, JsonValue::Object(obj).to_string_compact())
    }

    /// `POST /catalog/apply` at the coordinator: the body is **one raw
    /// POOL statement** (the student-facing form), not the replicated
    /// `{from_seq, statements}` envelope — the coordinator assigns the
    /// sequence number. The statement is parse-checked here so a typo
    /// is a clean 400 instead of N replica-side failures, appended to
    /// the log, and broadcast to every replica.
    fn catalog_apply(&self, req: &Request) -> Response {
        let Some(statement) = req.body_utf8() else {
            return json_error("parse", "request body is not valid UTF-8", 400);
        };
        let statement = statement.trim();
        if statement.is_empty() {
            return json_error("pool", "request body must be one POOL statement", 400);
        }
        if let Err(e) = parse_pool(statement) {
            return json_error("pool", &format!("statement does not parse: {e}"), 400);
        }
        self.stats.catalog_mutations.fetch_add(1, Ordering::Relaxed);
        let seq = {
            let mut log = lock(&self.catalog_log);
            log.push(statement.to_string());
            log.len() as u64
        };
        let outcomes = self.broadcast_statement(seq, statement);
        let mut obj = BTreeMap::new();
        obj.insert("seq".to_string(), JsonValue::Number(seq as f64));
        obj.insert("replicas".to_string(), JsonValue::Array(outcomes));
        Response::json(200, JsonValue::Object(obj).to_string_compact())
    }

    /// Push one logged statement to every replica concurrently,
    /// returning a per-replica outcome object. A replica that answers
    /// `409` is behind the log (it restarted, or missed a broadcast):
    /// the leg immediately replays the missing suffix instead of
    /// waiting for the next probe sweep.
    fn broadcast_statement(&self, seq: u64, statement: &str) -> Vec<JsonValue> {
        let envelope = apply_envelope(seq, std::slice::from_ref(&statement.to_string()));
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.replicas.len())
                .map(|node| {
                    let envelope = &envelope;
                    scope.spawn(move || self.push_catalog(node, seq, envelope))
                })
                .collect();
            handles
                .into_iter()
                .enumerate()
                .map(|(node, handle)| {
                    let status = handle
                        .join()
                        .unwrap_or_else(|_| "broadcast thread panicked".to_string());
                    let replica = &self.replicas[node];
                    let mut obj = BTreeMap::new();
                    obj.insert(
                        "addr".to_string(),
                        JsonValue::String(replica.addr.to_string()),
                    );
                    obj.insert("status".to_string(), JsonValue::String(status));
                    obj.insert(
                        "version".to_string(),
                        JsonValue::Number(replica.catalog_version.load(Ordering::Relaxed) as f64),
                    );
                    obj.insert(
                        "applied_seq".to_string(),
                        JsonValue::Number(replica.catalog_seq.load(Ordering::Relaxed) as f64),
                    );
                    JsonValue::Object(obj)
                })
                .collect()
        })
    }

    /// One broadcast leg; returns a short status word for the response.
    fn push_catalog(&self, node: usize, seq: u64, envelope: &str) -> String {
        match self.exchange(node, "POST", "/catalog/apply", Some(envelope)) {
            Ok(resp) if resp.status == 200 => {
                self.record_catalog_ack(node, &resp);
                "applied".to_string()
            }
            Ok(resp) if resp.status == 409 => {
                // The replica is behind this statement's predecessor:
                // replay everything it is missing, which includes seq.
                match self.replay_suffix(node) {
                    Ok(()) => "replayed".to_string(),
                    Err(message) => {
                        self.stats
                            .catalog_broadcast_errors
                            .fetch_add(1, Ordering::Relaxed);
                        message
                    }
                }
            }
            Ok(resp) => {
                self.stats
                    .catalog_broadcast_errors
                    .fetch_add(1, Ordering::Relaxed);
                format!("rejected with status {} at seq {seq}", resp.status)
            }
            Err(e) => {
                self.stats
                    .catalog_broadcast_errors
                    .fetch_add(1, Ordering::Relaxed);
                format!("unreachable: {e}")
            }
        }
    }

    /// Read a replica's `applied`/`version` out of a `/catalog/apply`
    /// acknowledgment.
    fn record_catalog_ack(&self, node: usize, resp: &ClientResponse) {
        if let Ok(body) = resp.json() {
            if let Some(seq) = body.get("applied_seq").and_then(JsonValue::as_f64) {
                self.replicas[node]
                    .catalog_seq
                    .store(seq as u64, Ordering::Relaxed);
            }
            if let Some(version) = body.get("version").and_then(JsonValue::as_f64) {
                self.replicas[node]
                    .catalog_version
                    .store(version as u64, Ordering::Relaxed);
            }
        }
    }

    /// Bring one replica up to the head of the statement log: ask where
    /// it is, then send everything after that in one envelope. The
    /// rejoin path for a restarted (empty-catalog) replica, and the
    /// catch-up path for one that missed broadcasts while partitioned.
    fn replay_suffix(&self, node: usize) -> Result<(), String> {
        let log: Vec<String> = lock(&self.catalog_log).clone();
        let applied = match self.exchange(node, "GET", "/catalog", None) {
            Ok(resp) if resp.status == 200 => resp
                .json()
                .ok()
                .and_then(|v| v.get("applied_seq").and_then(JsonValue::as_f64))
                .map(|n| n as u64)
                .ok_or_else(|| "replica /catalog answered without applied_seq".to_string())?,
            Ok(resp) => return Err(format!("replica /catalog answered {}", resp.status)),
            Err(e) => return Err(format!("unreachable: {e}")),
        };
        let applied = applied.min(log.len() as u64);
        if applied as usize >= log.len() {
            return Ok(());
        }
        let suffix = &log[applied as usize..];
        let envelope = apply_envelope(applied + 1, suffix);
        match self.exchange(node, "POST", "/catalog/apply", Some(&envelope)) {
            Ok(resp) if resp.status == 200 => {
                self.stats.catalog_replays.fetch_add(1, Ordering::Relaxed);
                self.record_catalog_ack(node, &resp);
                Ok(())
            }
            Ok(resp) => Err(format!("replay rejected with status {}", resp.status)),
            Err(e) => Err(format!("unreachable during replay: {e}")),
        }
    }

    fn cache_clear(&self) -> Response {
        let mut cleared = 0.0;
        for node in 0..self.replicas.len() {
            if let Ok(resp) = self.exchange(node, "POST", "/cache/clear", Some("")) {
                if resp.status == 200 {
                    if let Ok(body) = resp.json() {
                        cleared += body
                            .get("cleared")
                            .and_then(JsonValue::as_f64)
                            .unwrap_or(0.0);
                    }
                }
            }
        }
        self.route_memo.clear();
        let mut obj = BTreeMap::new();
        obj.insert("cleared".to_string(), JsonValue::Number(cleared));
        Response::json(200, JsonValue::Object(obj).to_string_compact())
    }

    /// One probe sweep: `GET /catalog` against every replica (any HTTP
    /// answer flips it healthy; transport failure flips it unhealthy —
    /// both via [`Coordinator::exchange`]), recording version/seq and
    /// replaying the log suffix to any replica that is behind.
    fn probe_once(&self) {
        let log_len = lock(&self.catalog_log).len() as u64;
        for node in 0..self.replicas.len() {
            match self.exchange(node, "GET", "/catalog", None) {
                Ok(resp) if resp.status == 200 => {
                    let applied = resp
                        .json()
                        .ok()
                        .and_then(|v| {
                            if let Some(version) = v.get("version").and_then(JsonValue::as_f64) {
                                self.replicas[node]
                                    .catalog_version
                                    .store(version as u64, Ordering::Relaxed);
                            }
                            v.get("applied_seq").and_then(JsonValue::as_f64)
                        })
                        .map(|n| n as u64);
                    if let Some(applied) = applied {
                        self.replicas[node]
                            .catalog_seq
                            .store(applied, Ordering::Relaxed);
                        if applied < log_len {
                            let _ = self.replay_suffix(node);
                        }
                    }
                }
                // Any parsed HTTP answer proves liveness (`exchange`
                // already marked it healthy); a replica without a
                // catalog surface just doesn't replicate.
                Ok(_) => {}
                Err(_) => {}
            }
        }
        self.stats.probe_cycles.fetch_add(1, Ordering::Relaxed);
    }
}

/// The replicated `/catalog/apply` envelope for `statements` starting
/// at sequence number `from_seq`.
fn apply_envelope(from_seq: u64, statements: &[String]) -> String {
    let mut obj = BTreeMap::new();
    obj.insert("from_seq".to_string(), JsonValue::Number(from_seq as f64));
    obj.insert(
        "statements".to_string(),
        JsonValue::Array(
            statements
                .iter()
                .map(|s| JsonValue::String(s.clone()))
                .collect(),
        ),
    );
    JsonValue::Object(obj).to_string_compact()
}

/// One scraped histogram series being merged: cumulative bucket values
/// summed across sources, keyed by bucket index with the source's `le`
/// strings preserved verbatim (every producer renders from the shared
/// [`BOUNDS`] grid, so the strings agree across the fleet).
#[derive(Default)]
struct HistAcc {
    buckets: BTreeMap<usize, (String, f64)>,
    sum: f64,
    count: f64,
}

/// Accumulates parsed Prometheus pages into merged families and
/// re-renders them as one page: scalar series sum value-wise, histogram
/// series sum bucket-wise (cumulative counts on an identical `le` grid
/// add exactly), and each `fold` can stamp extra labels so the same
/// scrape lands both in the fleet-wide merge and under its
/// per-replica label.
#[derive(Default)]
struct MetricsMerge {
    /// family name → `counter` / `gauge` / `histogram`.
    types: BTreeMap<String, String>,
    /// scalar series: name → label block → summed value.
    scalars: BTreeMap<String, BTreeMap<String, f64>>,
    /// histogram families: name → label block (sans `le`) → accumulator.
    histograms: BTreeMap<String, BTreeMap<String, HistAcc>>,
}

impl MetricsMerge {
    fn fold(&mut self, text: &str, extra: &[(&str, &str)]) {
        let parsed = parse_exposition(text);
        for (name, kind) in &parsed.types {
            self.types
                .entry(name.clone())
                .or_insert_with(|| kind.clone());
        }
        let is_histogram =
            |family: &str| self.types.get(family).map(String::as_str) == Some("histogram");
        for sample in &parsed.samples {
            if let Some(family) = sample
                .name
                .strip_suffix("_bucket")
                .filter(|f| is_histogram(f))
            {
                let Some(le) = sample.label("le") else {
                    continue;
                };
                let Some(idx) = bucket_of_le(le) else {
                    continue;
                };
                let block = merged_label_block(&sample.labels, extra, true);
                let acc = self
                    .histograms
                    .entry(family.to_string())
                    .or_default()
                    .entry(block)
                    .or_default();
                acc.buckets
                    .entry(idx)
                    .or_insert_with(|| (le.to_string(), 0.0))
                    .1 += sample.value;
                continue;
            }
            let tail =
                [("_sum", true), ("_count", false)]
                    .into_iter()
                    .find_map(|(suffix, is_sum)| {
                        sample
                            .name
                            .strip_suffix(suffix)
                            .filter(|f| is_histogram(f))
                            .map(|f| (f.to_string(), is_sum))
                    });
            let block = merged_label_block(&sample.labels, extra, false);
            if let Some((family, is_sum)) = tail {
                let acc = self
                    .histograms
                    .entry(family)
                    .or_default()
                    .entry(block)
                    .or_default();
                if is_sum {
                    acc.sum += sample.value;
                } else {
                    acc.count += sample.value;
                }
                continue;
            }
            *self
                .scalars
                .entry(sample.name.clone())
                .or_default()
                .entry(block)
                .or_insert(0.0) += sample.value;
        }
    }

    fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, blocks) in &self.scalars {
            if let Some(kind) = self.types.get(name) {
                let _ = writeln!(out, "# TYPE {name} {kind}");
            }
            for (block, value) in blocks {
                let _ = writeln!(out, "{name}{block} {value}");
            }
        }
        for (name, blocks) in &self.histograms {
            let _ = writeln!(out, "# TYPE {name} histogram");
            for (block, acc) in blocks {
                // BTreeMap order = bucket-index order, so cumulative
                // counts stay monotone in the output.
                for (le, value) in acc.buckets.values() {
                    if block.is_empty() {
                        let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {value}");
                    } else {
                        let inner = &block[1..block.len() - 1];
                        let _ = writeln!(out, "{name}_bucket{{{inner},le=\"{le}\"}} {value}");
                    }
                }
                let _ = writeln!(out, "{name}_sum{block} {}", acc.sum);
                let _ = writeln!(out, "{name}_count{block} {}", acc.count);
            }
        }
        out
    }
}

/// Bucket index of an `le` label on the shared [`BOUNDS`] grid.
fn bucket_of_le(le: &str) -> Option<usize> {
    if le == "+Inf" {
        return Some(BUCKETS - 1);
    }
    let seconds: f64 = le.parse().ok()?;
    let ns = (seconds * 1e9).round() as u64;
    Some(
        BOUNDS
            .iter()
            .position(|bound| *bound == ns)
            .unwrap_or_else(|| bucket_index(ns)),
    )
}

/// Rebuild a sorted, escaped `{a="b",…}` label block from parsed labels
/// plus extra stamped pairs, optionally dropping `le` (bucket lines
/// key their series by the non-`le` labels).
fn merged_label_block(
    labels: &[(String, String)],
    extra: &[(&str, &str)],
    skip_le: bool,
) -> String {
    let mut pairs: Vec<(&str, &str)> = labels
        .iter()
        .filter(|(n, _)| !(skip_le && n == "le"))
        .map(|(n, v)| (n.as_str(), v.as_str()))
        .collect();
    pairs.extend_from_slice(extra);
    pairs.sort_unstable();
    if pairs.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (name, value)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let escaped = value
            .replace('\\', "\\\\")
            .replace('"', "\\\"")
            .replace('\n', "\\n");
        out.push_str(name);
        out.push_str("=\"");
        out.push_str(&escaped);
        out.push('"');
    }
    out.push('}');
    out
}

/// Render a replica's response back to the coordinator's client.
/// Status and body pass through; `Retry-After` survives so a shedding
/// replica's backpressure reaches the real client, and the replica's
/// `x-lantern-request-id` echo survives so the client sees the same id
/// the replica logged ([`Response::with_request_id`] in
/// [`Coordinator::handle`] only adds the header when absent).
fn passthrough(resp: ClientResponse) -> Response {
    let retry = resp.header("retry-after").map(str::to_string);
    let request_id = resp.header(REQUEST_ID_HEADER).map(str::to_string);
    let mut out = Response::json(resp.status, resp.body);
    if let Some(retry) = retry {
        out = out.with_header("Retry-After", retry);
    }
    if let Some(id) = request_id {
        out = out.with_request_id(&id);
    }
    out
}

/// Handle to a running coordinator. Dropping it shuts the cluster tier
/// down (the replicas are not owned and keep running).
pub struct ClusterHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ClusterStats>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    probe_thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ClusterHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterHandle")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl ClusterHandle {
    /// The bound coordinator address (port 0 resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The coordinator's own counters (live, not a snapshot).
    pub fn stats(&self) -> &ClusterStats {
        &self.stats
    }

    /// Stop accepting, drain, and join every coordinator thread.
    pub fn shutdown(mut self) -> io::Result<()> {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> io::Result<()> {
        if self.accept_thread.is_none() {
            return Ok(());
        }
        self.shutdown.store(true, Ordering::SeqCst);
        let mut poke_addr = self.addr;
        if poke_addr.ip().is_unspecified() {
            poke_addr.set_ip(match poke_addr {
                SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect_timeout(&poke_addr, Duration::from_secs(1));
        if let Some(t) = self.accept_thread.take() {
            t.join()
                .map_err(|_| io::Error::other("accept thread panicked"))?;
        }
        for worker in self.workers.drain(..) {
            worker
                .join()
                .map_err(|_| io::Error::other("worker thread panicked"))?;
        }
        if let Some(t) = self.probe_thread.take() {
            t.join()
                .map_err(|_| io::Error::other("probe thread panicked"))?;
        }
        Ok(())
    }
}

impl Drop for ClusterHandle {
    fn drop(&mut self) {
        let _ = self.shutdown_inner();
    }
}

/// Boot a coordinator on `addr` fronting `config.replicas`.
///
/// Returns once the listener, worker pool, and probe loop are up. The
/// replicas are expected to be `lantern-serve` nodes (narrate + stats
/// surfaces; catalog and cache surfaces optional — probing degrades
/// gracefully without them).
pub fn serve_cluster(config: ClusterConfig, addr: impl ToSocketAddrs) -> io::Result<ClusterHandle> {
    if config.replicas.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "a cluster needs at least one replica address",
        ));
    }
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    let workers = config.effective_workers();
    let queue_depth = config.queue_depth.max(1);
    let probe_interval = config.probe_interval;
    let coordinator = Arc::new(Coordinator::new(config));
    let stats = Arc::clone(&coordinator.stats);
    let shutdown = Arc::new(AtomicBool::new(false));

    let (sender, receiver) = sync_channel::<TcpStream>(queue_depth);
    let receiver = Arc::new(Mutex::new(receiver));
    let mut worker_handles = Vec::with_capacity(workers);
    for _ in 0..workers {
        let receiver: Arc<Mutex<Receiver<TcpStream>>> = Arc::clone(&receiver);
        let coordinator = Arc::clone(&coordinator);
        worker_handles.push(std::thread::spawn(move || loop {
            let stream = match lock(&receiver).recv() {
                Ok(stream) => stream,
                Err(_) => break,
            };
            serve_connection(&coordinator, stream);
        }));
    }

    let accept_thread = {
        let shutdown = Arc::clone(&shutdown);
        let stats = Arc::clone(&stats);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                stats.connections.fetch_add(1, Ordering::Relaxed);
                match sender.try_send(stream) {
                    Ok(()) => {}
                    Err(TrySendError::Full(mut stream)) => {
                        // Shed at the door: a bounded queue plus an
                        // immediate 503 beats parking connections the
                        // workers may never reach.
                        stats.shed_requests.fetch_add(1, Ordering::Relaxed);
                        let resp = json_error("unavailable", "coordinator is saturated", 503)
                            .with_header("Retry-After", "1");
                        let _ = write_response(&mut stream, &resp, false);
                    }
                    Err(TrySendError::Disconnected(_)) => break,
                }
            }
            // Dropping the sender lets the workers drain and exit.
        })
    };

    let probe_thread = {
        let shutdown = Arc::clone(&shutdown);
        let coordinator = Arc::clone(&coordinator);
        std::thread::spawn(move || {
            while !shutdown.load(Ordering::SeqCst) {
                coordinator.probe_once();
                // Sleep in short slices so shutdown isn't gated on the
                // probe period.
                let mut remaining = probe_interval;
                while !remaining.is_zero() && !shutdown.load(Ordering::SeqCst) {
                    let slice = remaining.min(Duration::from_millis(20));
                    std::thread::sleep(slice);
                    remaining = remaining.saturating_sub(slice);
                }
            }
        })
    };

    Ok(ClusterHandle {
        addr: local_addr,
        shutdown,
        stats,
        accept_thread: Some(accept_thread),
        workers: worker_handles,
        probe_thread: Some(probe_thread),
    })
}

/// One client connection: keep-alive request loop in the same wire
/// dialect the replicas speak.
fn serve_connection(coordinator: &Coordinator, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(coordinator.config.idle_timeout));
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    loop {
        match read_request(&mut reader, coordinator.config.max_body_bytes) {
            Ok(req) => {
                let response = coordinator.handle(&req);
                let keep_alive = req.keep_alive;
                if write_response(&mut stream, &response, keep_alive).is_err() || !keep_alive {
                    break;
                }
            }
            Err(err) => {
                if let Some(status) = err.status() {
                    let response = json_error("http", &err.message(), status);
                    let _ = write_response(&mut stream, &response, false);
                }
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_reencoding_round_trips_through_the_wire_decoder() {
        let query = vec![
            ("style".to_string(), "bulleted ".to_string()),
            ("q".to_string(), "a+b&c=d".to_string()),
            ("flag".to_string(), String::new()),
        ];
        let encoded = encode_query(&query);
        assert!(encoded.starts_with('?'));
        // Feed the re-encoded form back through the server-side parser.
        let raw = format!("GET /narrate{encoded} HTTP/1.1\r\n\r\n");
        let req = read_request(&mut BufReader::new(raw.as_bytes()), 1024).unwrap();
        assert_eq!(req.query, query);
        assert_eq!(encode_query(&[]), "");
    }

    #[test]
    fn empty_replica_list_refuses_to_boot() {
        let err = serve_cluster(ClusterConfig::default(), "127.0.0.1:0").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn apply_envelope_is_the_replica_wire_form() {
        let envelope = apply_envelope(3, &["SHOW VERSION".to_string()]);
        let value = JsonValue::parse(&envelope).unwrap();
        assert_eq!(value.get("from_seq").and_then(JsonValue::as_f64), Some(3.0));
        let statements = value
            .get("statements")
            .and_then(|s| s.as_array())
            .expect("statements array");
        assert_eq!(statements.len(), 1);
        assert_eq!(statements[0].as_str(), Some("SHOW VERSION"));
    }

    #[test]
    fn passthrough_preserves_status_body_and_retry_after() {
        let resp = passthrough(ClientResponse {
            status: 503,
            headers: vec![("retry-after".to_string(), "2".to_string())],
            body: "{\"x\":1}".to_string(),
        });
        assert_eq!(resp.status, 503);
        assert_eq!(resp.body, b"{\"x\":1}");
        assert_eq!(resp.headers, vec![("Retry-After", "2".to_string())]);
    }
}
