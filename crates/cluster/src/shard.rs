//! Shard-key derivation: the bridge from an opaque request body to a
//! point on the [`HashRing`].
//!
//! The routing key for a plan document is its **canonical lax
//! fingerprint** ([`fingerprint_tree`]) — the same digest the replica's
//! narration cache keys on. That identity is the whole point of shard
//! affinity: every re-submission of a plan (re-`EXPLAIN`ed with
//! different whitespace, key order, or cost jitter) lands on the same
//! replica, so N per-replica LRUs behave like one dedicated cache per
//! key range instead of N overlapping ones.
//!
//! A document that fails to detect or parse still needs a home — the
//! replica is the one that owns producing the structured 4xx for it —
//! so unparseable bodies fall back to an exact-text digest under a
//! routing-only domain tag. Deterministic either way: the same body
//! always routes to the same node.

use crate::ring::HashRing;
use lantern_cache::{fingerprint_document, fingerprint_tree, Fingerprint, FingerprintOptions};
use lantern_core::PlanSource;
use lantern_text::json::JsonValue;
use std::collections::BTreeMap;

/// Format tag for the routing-only document digest. Distinct from the
/// vendor tags the narration cache feeds [`fingerprint_document`], so a
/// routing key can never alias a cache key.
const ROUTE_DOC_TAG: u8 = 0xC1;

/// Exact-text digest of a request body under the routing-only domain.
/// The memoization key for [`shard_key`] results, and the fallback
/// routing key for bodies that are not parseable plans.
pub fn document_key(doc: &str) -> Fingerprint {
    fingerprint_document(ROUTE_DOC_TAG, doc)
}

/// The ring key for one plan document: canonical lax fingerprint when
/// the document parses, exact-text digest otherwise.
pub fn shard_key(doc: &str) -> u128 {
    match PlanSource::auto(doc).and_then(|source| source.resolve()) {
        Ok(tree) => fingerprint_tree(&tree, FingerprintOptions::default()).0,
        Err(_) => document_key(doc).0,
    }
}

/// The ring key for one `/narrate/batch` entry. String entries key like
/// single documents; non-string entries (which the replica answers with
/// a per-item error) key off their compact JSON rendering so they still
/// route deterministically.
pub fn item_key(item: &JsonValue) -> u128 {
    match item.as_str() {
        Some(doc) => shard_key(doc),
        None => document_key(&item.to_string_compact()).0,
    }
}

/// Group batch-entry indices by owning node: `keys[i]` is the ring key
/// of entry `i`, and the result maps each routed node to the entry
/// indices it owns, in input order. Entries always land somewhere on a
/// non-empty ring, so the groups partition `0..keys.len()`.
pub fn group_by_node(keys: &[u128], ring: &HashRing) -> BTreeMap<usize, Vec<usize>> {
    let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (index, &key) in keys.iter().enumerate() {
        if let Some(node) = ring.route(key) {
            groups.entry(node).or_default().push(index);
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    const PG_DOC: &str = r#"{"Plan": {"Node Type": "Seq Scan", "Relation Name": "orders"}}"#;

    #[test]
    fn reformatted_documents_share_a_shard_key() {
        // Same plan, different whitespace and key order: the canonical
        // fingerprint ignores the serialization, so both route alike.
        let reformatted =
            "  {\"Plan\":\n  {\"Relation Name\": \"orders\", \"Node Type\": \"Seq Scan\"}}\n";
        assert_eq!(shard_key(PG_DOC), shard_key(reformatted));
        // But their exact-text digests differ — the memo key sees the
        // bytes, the ring key sees the plan.
        assert_ne!(document_key(PG_DOC), document_key(reformatted));
    }

    #[test]
    fn unparseable_documents_still_key_deterministically() {
        let a = shard_key("EXPLAIN SELECT 1");
        let b = shard_key("EXPLAIN SELECT 1");
        assert_eq!(a, b);
        assert_ne!(a, shard_key("EXPLAIN SELECT 2"));
        // Truncated JSON detects as pg but fails to parse: falls back
        // to the text digest rather than erroring.
        let broken = r#"{"Plan": {"Node Type"#;
        assert_eq!(shard_key(broken), document_key(broken).0);
    }

    #[test]
    fn routing_keys_never_alias_cache_document_keys() {
        // Tag separation: the same text under the routing domain and
        // under a vendor cache domain digests differently.
        for vendor_tag in [0u8, 1, 2] {
            assert_ne!(
                document_key(PG_DOC),
                fingerprint_document(vendor_tag, PG_DOC)
            );
        }
    }

    #[test]
    fn non_string_batch_items_route_deterministically() {
        let item = JsonValue::Number(42.0);
        assert_eq!(item_key(&item), item_key(&JsonValue::Number(42.0)));
        assert_eq!(
            item_key(&JsonValue::String(PG_DOC.to_string())),
            shard_key(PG_DOC)
        );
    }

    #[test]
    fn grouping_partitions_every_index_in_order() {
        let ring = HashRing::new(&["a", "b", "c"], 32);
        let keys: Vec<u128> = (0..200).map(|i| shard_key(&format!("doc {i}"))).collect();
        let groups = group_by_node(&keys, &ring);
        let mut seen: Vec<usize> = groups.values().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..keys.len()).collect::<Vec<_>>());
        for indices in groups.values() {
            assert!(indices.windows(2).all(|w| w[0] < w[1]), "input order kept");
        }
        // Three nodes at 32 vnodes over 200 keys: each should own some.
        assert_eq!(groups.len(), 3);
    }
}
