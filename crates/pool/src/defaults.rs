//! Default operator catalogs: the POEM store contents two subject-
//! matter experts would author with POOL for PostgreSQL (`pg`) and SQL
//! Server (`mssql`) — the two systems the paper deploys LANTERN on.
//!
//! Every operator the `lantern-engine` planner can emit has an entry;
//! several carry multiple descriptions (the paper's multi-`DESC`
//! feature) and learner-friendly aliases. Auxiliary operators (`Hash`,
//! `Sort`, `Hash Build`) carry `target` edges to their critical
//! operators; `Sort` uses the comma-separated multi-target extension
//! documented in [`crate::object::PoemObject`].

use crate::lang::execute;
use crate::store::PoemStore;

/// Statements a PostgreSQL SME would run to label the `pg` source.
pub const PG_POOL_STATEMENTS: &[&str] = &[
    "CREATE POPERATOR seqscan FOR pg (ALIAS = 'sequential scan', TYPE = 'unary', \
     DEFN = 'reads the entire relation from beginning to end, checking every row', \
     DESC = 'perform sequential scan', COND = 'false', TARGET = null)",
    "CREATE POPERATOR indexscan FOR pg (ALIAS = 'index scan', TYPE = 'unary', \
     DEFN = 'uses a secondary index to fetch only the rows satisfying an indexed predicate', \
     DESC = 'perform index scan', COND = 'false', TARGET = null)",
    "CREATE POPERATOR bitmapheapscan FOR pg (ALIAS = 'bitmap heap scan', TYPE = 'unary', \
     DEFN = 'fetches rows identified by a bitmap of matching tuple locations', \
     DESC = 'perform bitmap heap scan', COND = 'false', TARGET = null)",
    "CREATE POPERATOR hashjoin FOR pg (ALIAS = 'hash join', TYPE = 'binary', \
     DEFN = 'a type of join algorithm that uses hashing to create subsets of tuples', \
     DESC = 'perform hash join', COND = 'true', TARGET = null)",
    "CREATE POPERATOR hash FOR pg (TYPE = 'unary', \
     DEFN = 'builds an in-memory hash table over its input relation', \
     DESC = 'hash', COND = 'false', TARGET = 'hashjoin')",
    "CREATE POPERATOR mergejoin FOR pg (ALIAS = 'merge join', TYPE = 'binary', \
     DEFN = 'joins two relations sorted on the join key by scanning them in lockstep', \
     DESC = 'perform merge join', COND = 'true', TARGET = null)",
    "CREATE POPERATOR nestedloop FOR pg (ALIAS = 'nested loop join', TYPE = 'binary', \
     DEFN = 'for every row of the outer relation, scans the inner relation for matches', \
     DESC = 'perform nested loop join', COND = 'true', TARGET = null)",
    "CREATE POPERATOR sort FOR pg (TYPE = 'unary', \
     DEFN = 'orders its input rows on one or more sort keys', \
     DESC = 'sort', COND = 'false', TARGET = 'mergejoin,aggregate,unique')",
    "CREATE POPERATOR aggregate FOR pg (ALIAS = 'aggregate', TYPE = 'unary', \
     DEFN = 'computes aggregate functions, optionally grouping rows on the grouping keys', \
     DESC = 'perform aggregate', COND = 'false', TARGET = null)",
    "CREATE POPERATOR hashaggregate FOR pg (ALIAS = 'hash aggregate', TYPE = 'unary', \
     DEFN = 'computes grouped aggregates using an in-memory hash table of groups', \
     DESC = 'perform hash aggregate', COND = 'false', TARGET = null)",
    "CREATE POPERATOR unique FOR pg (ALIAS = 'duplicate removal', TYPE = 'unary', \
     DEFN = 'removes duplicate rows from its sorted input', \
     DESC = 'perform duplicate removal', COND = 'false', TARGET = null)",
    "CREATE POPERATOR limit FOR pg (TYPE = 'unary', \
     DEFN = 'returns only the first rows of its input', \
     DESC = 'keep only the requested number of rows of $R1$', COND = 'false', TARGET = null)",
    "CREATE POPERATOR materialize FOR pg (TYPE = 'unary', \
     DEFN = 'stores its input rows in memory for repeated rescans', \
     DESC = 'materialize', COND = 'false', TARGET = null)",
    "CREATE POPERATOR gather FOR pg (ALIAS = 'gather parallel results', TYPE = 'unary', \
     DEFN = 'collects rows produced by parallel worker processes', \
     DESC = 'gather the results of the parallel workers', COND = 'false', TARGET = null)",
];

/// Statements an SQL Server SME would run to label the `mssql` source.
/// Several reuse the pg wording via the paper's cross-source `UPDATE
/// ... SET desc = (SELECT ...)` transfer idiom.
pub const MSSQL_POOL_STATEMENTS: &[&str] = &[
    "CREATE POPERATOR tablescan FOR mssql (ALIAS = 'table scan', TYPE = 'unary', \
     DEFN = 'reads every row of the table', \
     DESC = 'perform table scan', COND = 'false', TARGET = null)",
    "CREATE POPERATOR indexseek FOR mssql (ALIAS = 'index seek', TYPE = 'unary', \
     DEFN = 'navigates a B-tree index directly to the qualifying rows', \
     DESC = 'perform index seek', COND = 'false', TARGET = null)",
    "CREATE POPERATOR hashmatch FOR mssql (ALIAS = 'hash match join', TYPE = 'binary', \
     DEFN = 'a type of join algorithm that uses hashing to create subsets of tuples', \
     DESC = 'perform hash match join', COND = 'true', TARGET = null)",
    "CREATE POPERATOR hashbuild FOR mssql (TYPE = 'unary', \
     DEFN = 'builds the hash table for a hash match', \
     DESC = 'hash', COND = 'false', TARGET = 'hashmatch')",
    "CREATE POPERATOR mergejoin FOR mssql (ALIAS = 'merge join', TYPE = 'binary', \
     DEFN = 'joins two sorted inputs by scanning them in lockstep', \
     DESC = 'perform merge join', COND = 'true', TARGET = null)",
    "CREATE POPERATOR nestedloops FOR mssql (ALIAS = 'nested loops join', TYPE = 'binary', \
     DEFN = 'for each outer row, searches the inner input for matches', \
     DESC = 'perform nested loops join', COND = 'true', TARGET = null)",
    "CREATE POPERATOR sort FOR mssql (TYPE = 'unary', \
     DEFN = 'orders its input rows on the sort keys', \
     DESC = 'sort', COND = 'false', TARGET = 'mergejoin,streamaggregate,distinctsort')",
    "CREATE POPERATOR streamaggregate FOR mssql (ALIAS = 'stream aggregate', TYPE = 'unary', \
     DEFN = 'computes grouped aggregates over input sorted on the grouping keys', \
     DESC = 'perform stream aggregate', COND = 'false', TARGET = null)",
    "CREATE POPERATOR hashmatchaggregate FOR mssql (ALIAS = 'hash aggregate', TYPE = 'unary', \
     DEFN = 'computes grouped aggregates using a hash table of groups', \
     DESC = 'perform hash aggregate', COND = 'false', TARGET = null)",
    "CREATE POPERATOR distinctsort FOR mssql (ALIAS = 'distinct sort', TYPE = 'unary', \
     DEFN = 'sorts its input and removes duplicate rows', \
     DESC = 'perform duplicate removal', COND = 'false', TARGET = null)",
    "CREATE POPERATOR top FOR mssql (ALIAS = 'top', TYPE = 'unary', \
     DEFN = 'returns only the first rows of its input', \
     DESC = 'keep only the requested number of rows of $R1$', COND = 'false', TARGET = null)",
    "CREATE POPERATOR tablespool FOR mssql (ALIAS = 'table spool', TYPE = 'unary', \
     DEFN = 'caches its input rows for repeated rescans', \
     DESC = 'materialize', COND = 'false', TARGET = null)",
    "CREATE POPERATOR parallelism FOR mssql (ALIAS = 'parallelism exchange', TYPE = 'unary', \
     DEFN = 'coordinates rows across parallel threads', \
     DESC = 'gather the results of the parallel workers', COND = 'false', TARGET = null)",
];

/// Extra descriptions SMEs added to showcase the multi-`DESC` feature
/// (paper §4.2: "pool does not prevent one from describing several
/// descriptions for a single operator").
const PG_EXTRA_DESCS: &[(&str, &str)] = &[
    ("hashjoin", "execute hash join"),
    ("seqscan", "scan sequentially"),
    ("aggregate", "compute the aggregate"),
];

/// A POEM store with the PostgreSQL catalog loaded.
pub fn default_pg_store() -> PoemStore {
    let store = PoemStore::new();
    for stmt in PG_POOL_STATEMENTS {
        execute(stmt, &store).expect("default pg statement must execute");
    }
    for (name, desc) in PG_EXTRA_DESCS {
        store.add_desc("pg", name, desc);
    }
    store
}

/// A POEM store with both the PostgreSQL and SQL Server catalogs
/// loaded (the cross-RDBMS configuration of the paper's §7.1).
pub fn default_mssql_store() -> PoemStore {
    let store = default_pg_store();
    for stmt in MSSQL_POOL_STATEMENTS {
        execute(stmt, &store).expect("default mssql statement must execute");
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::{execute, PoolValue};

    #[test]
    fn pg_store_loads_all_operators() {
        let s = default_pg_store();
        assert_eq!(s.operators_of("pg").len(), PG_POOL_STATEMENTS.len());
        for op in [
            "Seq Scan",
            "Hash Join",
            "Hash",
            "Merge Join",
            "Nested Loop",
            "Sort",
            "Aggregate",
            "HashAggregate",
            "Unique",
            "Limit",
            "Materialize",
            "Gather",
        ] {
            assert!(s.find("pg", op).is_some(), "missing {op}");
        }
    }

    #[test]
    fn mssql_store_has_both_sources() {
        let s = default_mssql_store();
        assert_eq!(s.sources(), vec!["mssql", "pg"]);
        for op in [
            "Table Scan",
            "Index Seek",
            "Hash Match",
            "Hash Build",
            "Stream Aggregate",
            "Distinct Sort",
            "Top",
        ] {
            assert!(s.find("mssql", op).is_some(), "missing {op}");
        }
    }

    #[test]
    fn hash_targets_hashjoin_in_both_sources() {
        let s = default_mssql_store();
        assert!(s.find("pg", "Hash").unwrap().targets_op("Hash Join"));
        assert!(s
            .find("mssql", "Hash Build")
            .unwrap()
            .targets_op("Hash Match"));
    }

    #[test]
    fn sort_multi_targets() {
        let s = default_pg_store();
        let sort = s.find("pg", "Sort").unwrap();
        assert!(sort.targets_op("Merge Join"));
        assert!(sort.targets_op("Aggregate"));
        assert!(sort.targets_op("Unique"));
        assert!(!sort.targets_op("Seq Scan"));
    }

    #[test]
    fn compose_hashjoin_template_matches_paper() {
        let s = default_pg_store();
        let r = execute(
            "COMPOSE hash, hashjoin FROM pg USING hashjoin.desc = 'perform hash join'",
            &s,
        )
        .unwrap();
        assert_eq!(
            r,
            PoolValue::Template(
                "hash $R1$ and perform hash join on $R2$ and $R1$ on condition $cond$".into()
            )
        );
    }

    #[test]
    fn multiple_descriptions_present() {
        let s = default_pg_store();
        assert!(s.find("pg", "hashjoin").unwrap().descs.len() >= 2);
    }

    #[test]
    fn aliases_are_learner_friendly() {
        let s = default_pg_store();
        assert_eq!(
            s.find("pg", "seqscan").unwrap().display_name(),
            "sequential scan"
        );
        assert_eq!(
            s.find("pg", "unique").unwrap().display_name(),
            "duplicate removal"
        );
    }
}
