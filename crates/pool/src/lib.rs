//! # lantern-pool
//!
//! POOL (Physical Operator Object Language) and POEM (Physical Operator
//! ObjEct Model) — the paper's declarative framework (§4) with which
//! subject-matter experts create and maintain natural-language labels
//! of physical operators.
//!
//! * [`PoemObject`] — an operator object with `source`, `name`,
//!   `alias`, `type`, `defn`, `desc` (multi-valued), `cond`, `target`.
//! * [`PoemStore`] — the object store, backed by two relations
//!   (`POperators`, `PDesc`) exactly as the paper's implementation
//!   section describes.
//! * [`PoemSnapshot`] / [`PoemLookup`] — immutable indexed snapshots
//!   taken with one lock acquisition, for lock-free lookups on
//!   narration hot paths and across batch worker threads.
//! * [`PoolStatement`] / [`execute`] — the POOL language: `CREATE
//!   POPERATOR`, `SELECT-FROM-WHERE` (with `LIKE` and cross-source
//!   subqueries), `COMPOSE ... FROM ... USING`, and `UPDATE ... SET`
//!   with `REPLACE(...)` and scalar subqueries.
//!
//! Ships default operator catalogs for the `pg` (PostgreSQL-style) and
//! `mssql` (SQL Server-style) sources.
//!
//! # Example
//!
//! POOL is how subject-matter experts maintain the catalog without
//! touching translator code:
//!
//! ```
//! use lantern_pool::{default_pg_store, execute, PoolValue};
//!
//! let store = default_pg_store();
//! let result = execute("SELECT desc FROM pg WHERE name = 'hashjoin'", &store).unwrap();
//! let PoolValue::Rows { rows, .. } = result else { panic!("projected SELECT") };
//! assert!(rows[0][0].as_deref().unwrap().contains("hash join"));
//!
//! // Narration hot paths never query the live store; they read an
//! // immutable indexed snapshot taken with one lock acquisition:
//! let snapshot = store.snapshot();
//! assert!(snapshot.len() > 0);
//! ```

pub mod defaults;
pub mod lang;
pub mod object;
pub mod snapshot;
pub mod store;

pub use defaults::{default_mssql_store, default_pg_store};
pub use lang::{execute, parse_pool, PoolError, PoolStatement, PoolValue};
pub use object::{OperatorArity, PoemObject};
pub use snapshot::{PoemLookup, PoemSnapshot};
pub use store::PoemStore;
