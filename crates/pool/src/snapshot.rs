//! Immutable, indexed snapshots of a [`PoemStore`].
//!
//! The store itself is shared behind an `RwLock`, so every lookup pays
//! a lock acquisition plus a linear scan of the two relations. On the
//! narration hot path that cost repeats per plan node, and under
//! concurrent narration (the millions-of-users target) the lock becomes
//! a contention point. A [`PoemSnapshot`] is taken with a *single* read
//! acquisition, assembles every object once, and indexes them by
//! `(source, normalized name)` — after that, lookups are lock-free
//! `O(1)` and the snapshot can be shared freely across threads.
//!
//! Writers are never blocked by outstanding snapshots (copy-on-write
//! semantics at the granularity of the whole catalog: a snapshot keeps
//! the state it saw; later store mutations are invisible to it).
//!
//! [`PoemLookup`] abstracts over "something operators can be resolved
//! from" so LOT construction can run against either a live store or a
//! snapshot.

use crate::object::{normalize_op_name, PoemObject};
use crate::store::PoemStore;
use std::collections::HashMap;

/// Anything a POEM object can be looked up from: the live, locked
/// [`PoemStore`] or an immutable [`PoemSnapshot`].
pub trait PoemLookup {
    /// Fetch one operator by source and (vendor) name. `name` is
    /// normalized before the lookup.
    fn find(&self, source: &str, name: &str) -> Option<PoemObject>;

    /// Fetch an operator together with its default description
    /// template (`COMPOSE <op> FROM <source>` with no `USING` pick).
    /// The default derives the template on the fly; [`PoemSnapshot`]
    /// overrides it with templates precomputed at snapshot time, so
    /// repeated LOT construction over a shared snapshot does no
    /// template work at all.
    fn find_labeled(&self, source: &str, name: &str) -> Option<(PoemObject, String)> {
        self.find(source, name).map(|o| {
            let label = o.template(None);
            (o, label)
        })
    }
}

impl PoemLookup for PoemStore {
    fn find(&self, source: &str, name: &str) -> Option<PoemObject> {
        PoemStore::find(self, source, name)
    }
}

impl<L: PoemLookup + ?Sized> PoemLookup for std::sync::Arc<L> {
    fn find(&self, source: &str, name: &str) -> Option<PoemObject> {
        (**self).find(source, name)
    }

    fn find_labeled(&self, source: &str, name: &str) -> Option<(PoemObject, String)> {
        (**self).find_labeled(source, name)
    }
}

/// An immutable, fully-assembled, indexed view of a [`PoemStore`] at
/// one instant. Cheap to share (`Clone` clones the index by value only
/// when asked; prefer passing `&PoemSnapshot`).
///
/// The snapshot is a *lookup* view: it keeps exactly one object per
/// `(source, name)` — the first matching row, the same one
/// [`PoemStore::find`]'s linear scan resolves to. If a store holds
/// duplicate-named operators (POOL's `CREATE` does not forbid it),
/// [`PoemSnapshot::len`] / [`PoemSnapshot::operators_of`] report the
/// deduplicated view, unlike their store counterparts which report
/// raw rows; `find` agrees between the two everywhere.
#[derive(Debug, Clone)]
pub struct PoemSnapshot {
    /// source → normalized name → (assembled object, default
    /// description template). Nested so lookups probe with borrowed
    /// `&str` keys (no per-find key allocation beyond the normalization
    /// the store pays too). Templates are precomputed so LOT
    /// construction over a snapshot is pure lookup.
    by_source: HashMap<String, HashMap<String, (PoemObject, String)>>,
    /// Sorted, deduplicated source names present at snapshot time.
    sources: Vec<String>,
}

impl PoemSnapshot {
    pub(crate) fn from_objects(objects: Vec<PoemObject>) -> Self {
        let mut sources: Vec<String> = objects.iter().map(|o| o.source.clone()).collect();
        sources.sort();
        sources.dedup();
        let mut by_source: HashMap<String, HashMap<String, (PoemObject, String)>> = HashMap::new();
        for o in objects {
            let label = o.template(None);
            // `or_insert`-style: keep the *first* object per name, the
            // same row `PoemStore::find`'s linear scan would return.
            by_source
                .entry(o.source.clone())
                .or_default()
                .entry(o.name.clone())
                .or_insert((o, label));
        }
        PoemSnapshot { by_source, sources }
    }

    /// All operators of a source, in arbitrary order.
    pub fn operators_of(&self, source: &str) -> Vec<PoemObject> {
        self.by_source
            .get(source)
            .map(|m| m.values().map(|(o, _)| o.clone()).collect())
            .unwrap_or_default()
    }

    /// All sources present in the snapshot (sorted).
    pub fn sources(&self) -> &[String] {
        &self.sources
    }

    /// Number of operator objects captured.
    pub fn len(&self) -> usize {
        self.by_source.values().map(HashMap::len).sum()
    }

    /// True when the snapshot holds no operators.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl PoemLookup for PoemSnapshot {
    fn find(&self, source: &str, name: &str) -> Option<PoemObject> {
        self.by_source
            .get(source)
            .and_then(|m| m.get(&normalize_op_name(name)))
            .map(|(o, _)| o.clone())
    }

    fn find_labeled(&self, source: &str, name: &str) -> Option<(PoemObject, String)> {
        self.by_source
            .get(source)
            .and_then(|m| m.get(&normalize_op_name(name)))
            .cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defaults::default_pg_store;
    use crate::object::OperatorArity;

    #[test]
    fn snapshot_captures_all_operators() {
        let store = default_pg_store();
        let snap = store.snapshot();
        assert_eq!(snap.len(), store.len());
        assert_eq!(snap.sources(), &["pg".to_string()]);
        assert!(!snap.is_empty());
    }

    #[test]
    fn snapshot_lookup_matches_store_lookup() {
        let store = default_pg_store();
        let snap = store.snapshot();
        for name in ["Hash Join", "Seq Scan", "Sort", "Unique"] {
            assert_eq!(snap.find("pg", name), store.find("pg", name), "{name}");
        }
        assert!(snap.find("pg", "Quantum Scan").is_none());
        assert!(snap.find("db2", "Hash Join").is_none());
    }

    #[test]
    fn snapshot_is_isolated_from_later_writes() {
        let store = default_pg_store();
        let snap = store.snapshot();
        store.create(
            "pg",
            "quantumscan",
            None,
            OperatorArity::Unary,
            None,
            &["perform quantum scan"],
            false,
            None,
        );
        store.delete("pg", "hashjoin");
        // The snapshot still sees the state at capture time.
        assert!(snap.find("pg", "quantumscan").is_none());
        assert!(snap.find("pg", "Hash Join").is_some());
        // The live store sees the new state.
        assert!(store.find("pg", "quantumscan").is_some());
        assert!(store.find("pg", "Hash Join").is_none());
    }

    #[test]
    fn snapshot_cache_hits_until_a_write_invalidates() {
        let store = default_pg_store();
        let a = store.snapshot();
        let b = store.snapshot();
        // Unchanged catalog: the same assembled snapshot is shared.
        assert!(std::sync::Arc::ptr_eq(&a, &b));
        // Any POOL mutation starts a new catalog generation.
        let before = a.find("pg", "hashjoin").unwrap().descs.len();
        store.add_desc("pg", "hashjoin", "another wording");
        let c = store.snapshot();
        assert!(!std::sync::Arc::ptr_eq(&a, &c));
        assert_eq!(c.find("pg", "hashjoin").unwrap().descs.len(), before + 1);
        // And the new generation is cached again.
        assert!(std::sync::Arc::ptr_eq(&c, &store.snapshot()));
    }

    #[test]
    fn operators_of_filters_by_source() {
        let store = crate::defaults::default_mssql_store();
        let snap = store.snapshot();
        let pg_ops = snap.operators_of("pg");
        let ms_ops = snap.operators_of("mssql");
        assert!(!pg_ops.is_empty());
        assert!(!ms_ops.is_empty());
        assert_eq!(pg_ops.len() + ms_ops.len(), snap.len());
    }
}
