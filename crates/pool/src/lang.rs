//! The POOL language (paper §4.2): lexer, parser, and interpreter for
//! `CREATE POPERATOR`, `SELECT-FROM-WHERE`, `COMPOSE ... FROM ...
//! USING`, and `UPDATE ... SET ...` (with `REPLACE` and scalar
//! subqueries). Every example statement in the paper parses and
//! executes against a [`PoemStore`].

use crate::object::{normalize_op_name, OperatorArity, PoemObject};
use crate::store::PoemStore;
use std::fmt;

/// POOL error (parse or execution).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolError {
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "POOL error: {}", self.message)
    }
}

impl std::error::Error for PoolError {}

fn err(m: impl Into<String>) -> PoolError {
    PoolError { message: m.into() }
}

/// A `WHERE` conjunct: `attr = 'v'` or `attr LIKE 'pattern'`
/// (qualifiers such as `pg.name` are accepted and checked against the
/// statement's source/alias).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolCond {
    pub attr: String,
    pub like: bool,
    pub value: String,
}

/// A value expression on the right-hand side of `SET attr = ...`.
#[derive(Debug, Clone, PartialEq)]
pub enum PoolValueExpr {
    /// `'literal'` or `NULL`.
    Literal(Option<String>),
    /// `(SELECT attr FROM source [AS alias] WHERE ...)` — scalar.
    Subquery {
        attr: String,
        source: String,
        conds: Vec<PoolCond>,
    },
    /// `REPLACE(<expr>, 'old', 'new')`.
    Replace {
        inner: Box<PoolValueExpr>,
        from: String,
        to: String,
    },
}

/// A parsed POOL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum PoolStatement {
    /// `CREATE POPERATOR <name> FOR <source> (ATTR = value, ...)`.
    Create {
        name: String,
        source: String,
        attrs: Vec<(String, Option<String>)>,
    },
    /// `SELECT <attrs|*> FROM <source> [WHERE ...]`.
    Select {
        attrs: Vec<String>,
        source: String,
        conds: Vec<PoolCond>,
    },
    /// `COMPOSE <op>[, <op2>] FROM <source> [USING <op>.desc = '...']`.
    Compose {
        ops: Vec<String>,
        source: String,
        using: Option<(String, String)>,
    },
    /// `UPDATE <source> SET attr = <expr>[, ...] [WHERE ...]`.
    Update {
        source: String,
        sets: Vec<(String, PoolValueExpr)>,
        conds: Vec<PoolCond>,
    },
}

/// Result of executing a POOL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum PoolValue {
    /// `CREATE`: the new object's oid.
    Created(u64),
    /// `SELECT *`: full objects.
    Objects(Vec<PoemObject>),
    /// Projected `SELECT`: header + string rows (NULLs as `None`).
    Rows {
        attrs: Vec<String>,
        rows: Vec<Vec<Option<String>>>,
    },
    /// `COMPOSE`: a natural-language description template.
    Template(String),
    /// `UPDATE`: number of objects changed.
    Updated(usize),
}

// ---------------------------------------------------------------- lexer

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Word(String),
    Str(String),
    LParen,
    RParen,
    Comma,
    Eq,
    Dot,
    Star,
    Eof,
}

fn lex(input: &str) -> Result<Vec<Tok>, PoolError> {
    let mut out = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            ',' => {
                out.push(Tok::Comma);
                i += 1;
            }
            '=' => {
                out.push(Tok::Eq);
                i += 1;
            }
            '.' => {
                out.push(Tok::Dot);
                i += 1;
            }
            '*' => {
                out.push(Tok::Star);
                i += 1;
            }
            ';' => i += 1,
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= chars.len() {
                        return Err(err("unterminated string"));
                    }
                    if chars[i] == '\'' {
                        if chars.get(i + 1) == Some(&'\'') {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        s.push(chars[i]);
                        i += 1;
                    }
                }
                out.push(Tok::Str(s));
            }
            c if c.is_alphanumeric() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Tok::Word(chars[start..i].iter().collect()));
            }
            other => return Err(err(format!("unexpected character '{other}'"))),
        }
    }
    out.push(Tok::Eof);
    Ok(out)
}

// --------------------------------------------------------------- parser

struct P {
    toks: Vec<Tok>,
    pos: usize,
}

impl P {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos]
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Word(w) if w.eq_ignore_ascii_case(kw))
    }

    fn accept_kw(&mut self, kw: &str) -> bool {
        if self.is_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), PoolError> {
        if self.accept_kw(kw) {
            Ok(())
        } else {
            Err(err(format!("expected {kw}, found {:?}", self.peek())))
        }
    }

    fn expect_tok(&mut self, t: Tok, what: &str) -> Result<(), PoolError> {
        if *self.peek() == t {
            self.bump();
            Ok(())
        } else {
            Err(err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn word(&mut self) -> Result<String, PoolError> {
        match self.bump() {
            Tok::Word(w) => Ok(w),
            other => Err(err(format!("expected identifier, found {other:?}"))),
        }
    }

    /// Operator names may contain spaces (`nested loop join`): take
    /// consecutive words.
    fn multi_word(&mut self, stop_keywords: &[&str]) -> Result<String, PoolError> {
        let mut parts = vec![self.word()?];
        while let Tok::Word(w) = self.peek() {
            if stop_keywords.iter().any(|k| w.eq_ignore_ascii_case(k)) {
                break;
            }
            parts.push(self.word()?);
        }
        Ok(parts.join(" "))
    }

    fn string(&mut self) -> Result<String, PoolError> {
        match self.bump() {
            Tok::Str(s) => Ok(s),
            other => Err(err(format!("expected string literal, found {other:?}"))),
        }
    }

    fn conds(&mut self) -> Result<Vec<PoolCond>, PoolError> {
        let mut conds = Vec::new();
        loop {
            // attr or qualifier.attr
            let first = self.word()?;
            let attr = if *self.peek() == Tok::Dot {
                self.bump();
                self.word()? // qualifier dropped (single-source queries)
            } else {
                first
            };
            let like = if self.accept_kw("LIKE") {
                true
            } else {
                self.expect_tok(Tok::Eq, "'='")?;
                false
            };
            let value = match self.bump() {
                Tok::Str(s) => s,
                Tok::Word(w) => w,
                other => return Err(err(format!("expected value, found {other:?}"))),
            };
            conds.push(PoolCond {
                attr: attr.to_ascii_lowercase(),
                like,
                value,
            });
            if !self.accept_kw("AND") {
                return Ok(conds);
            }
        }
    }

    fn value_expr(&mut self) -> Result<PoolValueExpr, PoolError> {
        if self.accept_kw("REPLACE") {
            self.expect_tok(Tok::LParen, "'('")?;
            let inner = self.value_expr()?;
            self.expect_tok(Tok::Comma, "','")?;
            let from = self.string()?;
            self.expect_tok(Tok::Comma, "','")?;
            let to = self.string()?;
            self.expect_tok(Tok::RParen, "')'")?;
            return Ok(PoolValueExpr::Replace {
                inner: Box::new(inner),
                from,
                to,
            });
        }
        if *self.peek() == Tok::LParen {
            self.bump();
            self.expect_kw("SELECT")?;
            let attr = self.word()?.to_ascii_lowercase();
            self.expect_kw("FROM")?;
            let source = self.word()?;
            if self.accept_kw("AS") {
                self.word()?; // alias ignored
            }
            let conds = if self.accept_kw("WHERE") {
                self.conds()?
            } else {
                Vec::new()
            };
            self.expect_tok(Tok::RParen, "')'")?;
            return Ok(PoolValueExpr::Subquery {
                attr,
                source,
                conds,
            });
        }
        match self.bump() {
            Tok::Str(s) => Ok(PoolValueExpr::Literal(Some(s))),
            Tok::Word(w) if w.eq_ignore_ascii_case("null") => Ok(PoolValueExpr::Literal(None)),
            other => Err(err(format!("expected value expression, found {other:?}"))),
        }
    }
}

/// Parse one POOL statement.
pub fn parse_pool(input: &str) -> Result<PoolStatement, PoolError> {
    let mut p = P {
        toks: lex(input)?,
        pos: 0,
    };
    let stmt = if p.accept_kw("CREATE") {
        p.expect_kw("POPERATOR")?;
        let name = p.multi_word(&["FOR"])?;
        p.expect_kw("FOR")?;
        let source = p.word()?;
        p.expect_tok(Tok::LParen, "'('")?;
        let mut attrs = Vec::new();
        loop {
            let attr = p.word()?.to_ascii_lowercase();
            p.expect_tok(Tok::Eq, "'='")?;
            let value = match p.bump() {
                Tok::Str(s) => Some(s),
                Tok::Word(w) if w.eq_ignore_ascii_case("null") => None,
                other => return Err(err(format!("bad attribute value {other:?}"))),
            };
            attrs.push((attr, value));
            match p.bump() {
                Tok::Comma => continue,
                Tok::RParen => break,
                other => return Err(err(format!("expected ',' or ')', found {other:?}"))),
            }
        }
        PoolStatement::Create {
            name,
            source,
            attrs,
        }
    } else if p.accept_kw("SELECT") {
        let mut attrs = Vec::new();
        if *p.peek() == Tok::Star {
            p.bump();
            attrs.push("*".to_string());
        } else {
            loop {
                attrs.push(p.word()?.to_ascii_lowercase());
                if *p.peek() == Tok::Comma {
                    p.bump();
                } else {
                    break;
                }
            }
        }
        p.expect_kw("FROM")?;
        let source = p.word()?;
        if p.accept_kw("AS") {
            p.word()?;
        }
        let conds = if p.accept_kw("WHERE") {
            p.conds()?
        } else {
            Vec::new()
        };
        PoolStatement::Select {
            attrs,
            source,
            conds,
        }
    } else if p.accept_kw("COMPOSE") {
        let mut ops = vec![p.multi_word(&["FROM"])?];
        while *p.peek() == Tok::Comma {
            p.bump();
            ops.push(p.multi_word(&["FROM"])?);
        }
        p.expect_kw("FROM")?;
        let source = p.word()?;
        let using = if p.accept_kw("USING") {
            let op = p.word()?;
            p.expect_tok(Tok::Dot, "'.'")?;
            p.expect_kw("desc")?;
            p.expect_tok(Tok::Eq, "'='")?;
            let desc = p.string()?;
            Some((normalize_op_name(&op), desc))
        } else {
            None
        };
        PoolStatement::Compose { ops, source, using }
    } else if p.accept_kw("UPDATE") {
        let source = p.word()?;
        p.expect_kw("SET")?;
        let mut sets = Vec::new();
        loop {
            let attr = p.word()?.to_ascii_lowercase();
            p.expect_tok(Tok::Eq, "'='")?;
            let value = p.value_expr()?;
            sets.push((attr, value));
            if *p.peek() == Tok::Comma {
                p.bump();
            } else {
                break;
            }
        }
        let conds = if p.accept_kw("WHERE") {
            p.conds()?
        } else {
            Vec::new()
        };
        PoolStatement::Update {
            source,
            sets,
            conds,
        }
    } else {
        return Err(err(format!("unknown statement start {:?}", p.peek())));
    };
    if *p.peek() != Tok::Eof {
        return Err(err(format!("trailing tokens: {:?}", p.peek())));
    }
    Ok(stmt)
}

// ------------------------------------------------------------ execution

/// Parse and execute one POOL statement against `store`.
pub fn execute(input: &str, store: &PoemStore) -> Result<PoolValue, PoolError> {
    execute_stmt(&parse_pool(input)?, store)
}

/// Execute a parsed statement.
pub fn execute_stmt(stmt: &PoolStatement, store: &PoemStore) -> Result<PoolValue, PoolError> {
    match stmt {
        PoolStatement::Create {
            name,
            source,
            attrs,
        } => {
            let mut alias = None;
            let mut arity = None;
            let mut defn = None;
            let mut descs: Vec<String> = Vec::new();
            let mut cond = false;
            let mut target = None;
            for (attr, value) in attrs {
                match attr.as_str() {
                    "alias" => alias = value.clone(),
                    "type" => {
                        arity = match value.as_deref() {
                            Some(v) if v.eq_ignore_ascii_case("unary") => {
                                Some(OperatorArity::Unary)
                            }
                            Some(v) if v.eq_ignore_ascii_case("binary") => {
                                Some(OperatorArity::Binary)
                            }
                            other => {
                                return Err(err(format!(
                                    "TYPE must be 'unary' or 'binary', got {other:?}"
                                )))
                            }
                        }
                    }
                    "defn" => defn = value.clone(),
                    "desc" => {
                        if let Some(v) = value {
                            descs.push(v.clone());
                        }
                    }
                    "cond" => {
                        cond = matches!(value.as_deref(), Some(v) if v.eq_ignore_ascii_case("true"))
                    }
                    "target" => target = value.clone(),
                    other => return Err(err(format!("unknown attribute {other}"))),
                }
            }
            let arity = arity.ok_or_else(|| err("TYPE is a mandatory attribute"))?;
            if descs.is_empty() {
                return Err(err("DESC is a mandatory attribute"));
            }
            let oid = store.create(
                source,
                name,
                alias.as_deref(),
                arity,
                defn.as_deref(),
                &descs.iter().map(String::as_str).collect::<Vec<_>>(),
                cond,
                target.as_deref(),
            );
            Ok(PoolValue::Created(oid))
        }
        PoolStatement::Select {
            attrs,
            source,
            conds,
        } => {
            let objects: Vec<PoemObject> = store
                .operators_of(source)
                .into_iter()
                .filter(|o| conds.iter().all(|c| cond_matches(o, c)))
                .collect();
            if attrs.len() == 1 && attrs[0] == "*" {
                return Ok(PoolValue::Objects(objects));
            }
            let rows = objects
                .iter()
                .map(|o| attrs.iter().map(|a| attr_value(o, a)).collect())
                .collect();
            Ok(PoolValue::Rows {
                attrs: attrs.clone(),
                rows,
            })
        }
        PoolStatement::Compose { ops, source, using } => {
            let lookup = |name: &str| -> Result<PoemObject, PoolError> {
                store
                    .find(source, name)
                    .ok_or_else(|| err(format!("operator '{name}' not found in source {source}")))
            };
            match ops.len() {
                1 => {
                    let o = lookup(&ops[0])?;
                    let pick = using
                        .as_ref()
                        .filter(|(n, _)| *n == o.name)
                        .map(|(_, d)| d.as_str());
                    Ok(PoolValue::Template(o.template(pick)))
                }
                2 => {
                    let aux = lookup(&ops[0])?;
                    let critical = lookup(&ops[1])?;
                    if !aux.targets_op(&critical.name) {
                        return Err(err(format!(
                            "COMPOSE pair must be (auxiliary, critical): '{}' does not target '{}'",
                            aux.name, critical.name
                        )));
                    }
                    let pick = using
                        .as_ref()
                        .filter(|(n, _)| *n == critical.name)
                        .map(|(_, d)| d.as_str());
                    Ok(PoolValue::Template(aux.compose_with(&critical, pick)))
                }
                n => Err(err(format!("COMPOSE takes one or two operators, got {n}"))),
            }
        }
        PoolStatement::Update {
            source,
            sets,
            conds,
        } => {
            // Find matching names first.
            let matching: Vec<String> = store
                .operators_of(source)
                .into_iter()
                .filter(|o| conds.iter().all(|c| cond_matches(o, c)))
                .map(|o| o.name)
                .collect();
            let mut updated = 0;
            for name in &matching {
                let mut alias = None;
                let mut defn = None;
                let mut descs = None;
                let mut cond = None;
                let mut target = None;
                for (attr, vexpr) in sets {
                    let value = eval_value(vexpr, store)?;
                    match attr.as_str() {
                        "alias" => alias = Some(value),
                        "defn" => defn = Some(value),
                        "desc" => descs = Some(value.into_iter().collect::<Vec<_>>()),
                        "cond" => cond = Some(matches!(value.as_deref(), Some("true"))),
                        "target" => target = Some(value),
                        other => return Err(err(format!("cannot SET attribute {other}"))),
                    }
                }
                updated += store.update(source, name, alias, defn, descs, cond, target);
            }
            Ok(PoolValue::Updated(updated))
        }
    }
}

fn eval_value(expr: &PoolValueExpr, store: &PoemStore) -> Result<Option<String>, PoolError> {
    match expr {
        PoolValueExpr::Literal(v) => Ok(v.clone()),
        PoolValueExpr::Subquery {
            attr,
            source,
            conds,
        } => {
            let objects: Vec<PoemObject> = store
                .operators_of(source)
                .into_iter()
                .filter(|o| conds.iter().all(|c| cond_matches(o, c)))
                .collect();
            let first = objects
                .first()
                .ok_or_else(|| err("scalar subquery returned no objects"))?;
            Ok(attr_value(first, attr))
        }
        PoolValueExpr::Replace { inner, from, to } => {
            let v = eval_value(inner, store)?;
            Ok(v.map(|s| s.replace(from.as_str(), to.as_str())))
        }
    }
}

fn attr_value(o: &PoemObject, attr: &str) -> Option<String> {
    match attr {
        "oid" => Some(o.oid.to_string()),
        "source" => Some(o.source.clone()),
        "name" => Some(o.name.clone()),
        "alias" => o.alias.clone(),
        "type" => Some(
            match o.arity {
                OperatorArity::Unary => "unary",
                OperatorArity::Binary => "binary",
            }
            .to_string(),
        ),
        "defn" => o.defn.clone(),
        "desc" => o.descs.first().cloned(),
        "cond" => Some(o.cond.to_string()),
        "target" => {
            if o.targets.is_empty() {
                None
            } else {
                Some(o.targets.join(","))
            }
        }
        _ => None,
    }
}

fn cond_matches(o: &PoemObject, c: &PoolCond) -> bool {
    let lhs = match c.attr.as_str() {
        // `name` comparisons are normalized so `'nested loop join'`
        // matches the stored `nestedloopjoin`.
        "name" => Some(normalize_op_name(&o.name)),
        "desc" => {
            // Any of the descriptions may match.
            return o.descs.iter().any(|d| {
                if c.like {
                    like_match(d, &c.value)
                } else {
                    d.trim() == c.value.trim()
                }
            });
        }
        other => attr_value(o, other),
    };
    let rhs = if c.attr == "name" {
        if c.like {
            // Normalize the pattern but keep the wildcards.
            c.value
                .chars()
                .filter(|ch| ch.is_alphanumeric() || *ch == '%' || *ch == '_')
                .flat_map(char::to_lowercase)
                .collect()
        } else {
            normalize_op_name(&c.value)
        }
    } else {
        c.value.clone()
    };
    match lhs {
        Some(v) => {
            if c.like {
                like_match(&v, &rhs)
            } else {
                v == rhs
            }
        }
        None => false,
    }
}

/// SQL-style `LIKE` with `%` and `_`.
fn like_match(s: &str, pattern: &str) -> bool {
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let (mut si, mut pi) = (0usize, 0usize);
    let (mut star, mut star_si) = (None::<usize>, 0usize);
    while si < s.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == s[si]) {
            si += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = Some(pi);
            star_si = si;
            pi += 1;
        } else if let Some(sp) = star {
            pi = sp + 1;
            star_si += 1;
            si = star_si;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seed_store() -> PoemStore {
        let s = PoemStore::new();
        execute(
            "CREATE POPERATOR hashjoin FOR pg (ALIAS = null, TYPE = 'binary', DEFN = null, \
             DESC = 'perform hash join', COND = 'true', TARGET = null)",
            &s,
        )
        .unwrap();
        execute(
            "CREATE POPERATOR hash FOR pg (TYPE = 'unary', DESC = 'hash', COND = 'false', \
             TARGET = 'hashjoin')",
            &s,
        )
        .unwrap();
        s
    }

    #[test]
    fn create_statement_from_paper() {
        let s = seed_store();
        let o = s.find("pg", "hashjoin").unwrap();
        assert_eq!(o.descs, vec!["perform hash join"]);
        assert!(o.cond);
        assert_eq!(o.arity, OperatorArity::Binary);
    }

    #[test]
    fn create_requires_type_and_desc() {
        let s = PoemStore::new();
        assert!(execute("CREATE POPERATOR x FOR pg (DESC = 'd')", &s).is_err());
        assert!(execute("CREATE POPERATOR x FOR pg (TYPE = 'unary')", &s).is_err());
    }

    #[test]
    fn select_single_attribute() {
        let s = seed_store();
        let r = execute("SELECT defn FROM pg WHERE name = 'hashjoin'", &s).unwrap();
        match r {
            PoolValue::Rows { attrs, rows } => {
                assert_eq!(attrs, vec!["defn"]);
                assert_eq!(rows, vec![vec![None]]); // defn is null
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn select_star_with_like() {
        // Paper: SELECT * FROM pg WHERE name LIKE '%join'.
        let s = seed_store();
        let r = execute("SELECT * FROM pg WHERE name LIKE '%join'", &s).unwrap();
        match r {
            PoolValue::Objects(objs) => {
                assert_eq!(objs.len(), 1);
                assert_eq!(objs[0].name, "hashjoin");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn compose_single_operator() {
        // Paper: COMPOSE hash FROM pg -> "hash $R1$".
        let s = seed_store();
        let r = execute("COMPOSE hash FROM pg", &s).unwrap();
        assert_eq!(r, PoolValue::Template("hash $R1$".into()));
    }

    #[test]
    fn compose_pair_with_using() {
        let s = seed_store();
        let r = execute(
            "COMPOSE hash, hashjoin FROM pg USING hashjoin.desc = 'perform hash join'",
            &s,
        )
        .unwrap();
        assert_eq!(
            r,
            PoolValue::Template(
                "hash $R1$ and perform hash join on $R2$ and $R1$ on condition $cond$".into()
            )
        );
    }

    #[test]
    fn compose_pair_requires_aux_critical_order() {
        let s = seed_store();
        // Wrong order: hashjoin is not auxiliary to hash.
        assert!(execute("COMPOSE hashjoin, hash FROM pg", &s).is_err());
    }

    #[test]
    fn compose_unknown_operator_fails() {
        let s = seed_store();
        assert!(execute("COMPOSE zzjoin FROM pg", &s).is_err());
    }

    #[test]
    fn update_defn_from_paper() {
        let s = seed_store();
        let r = execute(
            "UPDATE pg SET defn = 'a type of join algorithm...' WHERE name = 'hashjoin'",
            &s,
        )
        .unwrap();
        assert_eq!(r, PoolValue::Updated(1));
        assert_eq!(
            s.find("pg", "hashjoin").unwrap().defn.as_deref(),
            Some("a type of join algorithm...")
        );
    }

    #[test]
    fn cross_source_transfer_from_paper() {
        // Paper: transfer hash join description from pg to db2's hsjoin.
        let s = seed_store();
        execute(
            "CREATE POPERATOR hsjoin FOR db2 (TYPE = 'binary', DESC = 'join', COND = 'true')",
            &s,
        )
        .unwrap();
        let r = execute(
            "UPDATE db2 SET desc = (SELECT desc FROM pg WHERE pg.name = 'hashjoin') \
             WHERE db2.name = 'hsjoin'",
            &s,
        )
        .unwrap();
        assert_eq!(r, PoolValue::Updated(1));
        assert_eq!(
            s.find("db2", "hsjoin").unwrap().descs,
            vec!["perform hash join"]
        );
    }

    #[test]
    fn replace_transfer_from_paper() {
        // Paper: derive nested-loop join description from hash join.
        let s = seed_store();
        execute(
            "CREATE POPERATOR nestedloopjoin FOR pg (TYPE = 'binary', DESC = 'x', COND = 'true')",
            &s,
        )
        .unwrap();
        let r = execute(
            "UPDATE pg SET desc = REPLACE((SELECT desc FROM pg AS pg2 \
             WHERE pg2.name = 'hashjoin'), 'hash', 'nested loop') \
             WHERE pg.name = 'nested loop join'",
            &s,
        )
        .unwrap();
        assert_eq!(r, PoolValue::Updated(1));
        assert_eq!(
            s.find("pg", "nestedloopjoin").unwrap().descs,
            vec!["perform nested loop join"]
        );
    }

    #[test]
    fn update_alias_gives_zzjoin_a_friendly_name() {
        let s = seed_store();
        execute(
            "CREATE POPERATOR zzjoin FOR db2 (TYPE = 'binary', DESC = 'perform zigzag join', \
             COND = 'true')",
            &s,
        )
        .unwrap();
        execute(
            "UPDATE db2 SET alias = 'zigzag join' WHERE name = 'zzjoin'",
            &s,
        )
        .unwrap();
        assert_eq!(
            s.find("db2", "zzjoin").unwrap().display_name(),
            "zigzag join"
        );
    }

    #[test]
    fn scalar_subquery_empty_errors() {
        let s = seed_store();
        let r = execute(
            "UPDATE pg SET desc = (SELECT desc FROM pg WHERE name = 'missing') \
             WHERE name = 'hashjoin'",
            &s,
        );
        assert!(r.is_err());
    }

    #[test]
    fn multiple_desc_values_allowed() {
        let s = seed_store();
        s.add_desc("pg", "hashjoin", "execute hash join");
        let r = execute(
            "COMPOSE hash, hashjoin FROM pg USING hashjoin.desc = 'execute hash join'",
            &s,
        )
        .unwrap();
        match r {
            PoolValue::Template(t) => assert!(t.contains("execute hash join"), "{t}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_pool("CREATE SOMETHING x").is_err());
        assert!(parse_pool("SELECT FROM pg").is_err());
        assert!(parse_pool("UPDATE pg SET").is_err());
        assert!(parse_pool("SELECT * FROM pg WHERE name = 'x' trailing").is_err());
    }

    #[test]
    fn desc_condition_matches_any_description() {
        let s = seed_store();
        s.add_desc("pg", "hashjoin", "execute hash join");
        let r = execute("SELECT name FROM pg WHERE desc = 'execute hash join'", &s).unwrap();
        match r {
            PoolValue::Rows { rows, .. } => assert_eq!(rows.len(), 1),
            other => panic!("{other:?}"),
        }
    }
}
