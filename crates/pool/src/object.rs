//! POEM (Physical Operator ObjEct Model), paper §4.2: every physical
//! operator of a relational engine is an object with a fixed attribute
//! set; auxiliary operators carry a `target` edge to their critical
//! operator.

/// Whether an operator consumes one or two input streams (`TYPE`
/// attribute).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OperatorArity {
    Unary,
    Binary,
}

/// A POEM object.
///
/// Attributes follow the paper: `source` (engine the operator belongs
/// to), `name`, optional `alias`, `type`, optional `defn`, one or more
/// `desc` values, `cond` (whether a condition is appended to the
/// description), and optional `target` (the critical operator this
/// auxiliary operator composes into).
///
/// **Extension over the paper:** `target` may name several critical
/// operators separated by commas (`"mergejoin,aggregate,unique"`),
/// because `Sort` is auxiliary to all three in PostgreSQL. The paper's
/// single-target examples remain valid syntax.
#[derive(Debug, Clone, PartialEq)]
pub struct PoemObject {
    /// Object identifier (unique within a store).
    pub oid: u64,
    /// Source engine (`pg`, `mssql`, `db2`, ...).
    pub source: String,
    /// Normalized operator name (see [`normalize_op_name`]).
    pub name: String,
    /// Learner-friendly alternative name.
    pub alias: Option<String>,
    /// Unary or binary.
    pub arity: OperatorArity,
    /// Natural-language definition of the operator.
    pub defn: Option<String>,
    /// Natural-language descriptions of the operation (multi-valued;
    /// the paper stores these in the `PDesc` relation).
    pub descs: Vec<String>,
    /// Whether a condition placeholder is appended to the template.
    pub cond: bool,
    /// Normalized name(s) of the critical operator(s) this auxiliary
    /// operator targets; empty for critical operators.
    pub targets: Vec<String>,
}

impl PoemObject {
    /// True when this object is an auxiliary operator (has a target).
    pub fn is_auxiliary(&self) -> bool {
        !self.targets.is_empty()
    }

    /// Whether this auxiliary operator targets `critical` (normalized
    /// comparison).
    pub fn targets_op(&self, critical: &str) -> bool {
        let c = normalize_op_name(critical);
        self.targets.contains(&c)
    }

    /// The learner-visible name: alias when set, else the operator
    /// name (paper §5.3: `n.name` is set to the alias value, falling
    /// back to the object's name).
    pub fn display_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }

    /// Generate the natural-language description template for this
    /// operator (the `COMPOSE <op> FROM <source>` semantics).
    ///
    /// Placeholders are added automatically from `TYPE` and `COND`
    /// (paper §4.2):
    /// * binary: `{desc} on $R2$ and $R1$`
    /// * unary auxiliary: `{desc} $R1$` (e.g. `hash $R1$`)
    /// * unary critical: `{desc} on $R1$` (e.g. `perform sequential
    ///   scan on $R1$`)
    /// * `cond = true` appends ` on condition $cond$`
    ///
    /// A desc that already contains `$R1$` is used verbatim. `desc_pick`
    /// selects among multiple descriptions (`USING` clause); `None`
    /// uses the first.
    pub fn template(&self, desc_pick: Option<&str>) -> String {
        let desc = match desc_pick {
            Some(want) => self
                .descs
                .iter()
                .find(|d| d.trim() == want.trim())
                .map(String::as_str)
                .unwrap_or_else(|| self.descs.first().map(String::as_str).unwrap_or("")),
            None => self.descs.first().map(String::as_str).unwrap_or(""),
        };
        let mut t = if desc.contains("$R1$") {
            desc.trim().to_string()
        } else {
            match self.arity {
                OperatorArity::Binary => format!("{} on $R2$ and $R1$", desc.trim()),
                OperatorArity::Unary if self.is_auxiliary() => format!("{} $R1$", desc.trim()),
                OperatorArity::Unary => format!("{} on $R1$", desc.trim()),
            }
        };
        if self.cond {
            t.push_str(" on condition $cond$");
        }
        t
    }

    /// Compose this auxiliary operator with its critical operator
    /// (paper §5.4, the `∘` operator): `aux.label ∧ critical.label`.
    /// The left operand must be the auxiliary node; the composition is
    /// neither associative nor commutative.
    pub fn compose_with(&self, critical: &PoemObject, desc_pick: Option<&str>) -> String {
        debug_assert!(self.is_auxiliary(), "left operand of ∘ must be auxiliary");
        format!(
            "{} and {}",
            self.template(None),
            critical.template(desc_pick)
        )
    }
}

/// Normalize a vendor operator name for POEM lookup: lowercase with
/// all non-alphanumeric characters removed, so `Hash Join`,
/// `hash join`, and `hashjoin` coincide.
pub fn normalize_op_name(name: &str) -> String {
    name.chars()
        .filter(|c| c.is_alphanumeric())
        .flat_map(char::to_lowercase)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hashjoin() -> PoemObject {
        PoemObject {
            oid: 1,
            source: "pg".into(),
            name: "hashjoin".into(),
            alias: None,
            arity: OperatorArity::Binary,
            defn: Some("a type of join algorithm that uses hashing".into()),
            descs: vec!["perform hash join".into()],
            cond: true,
            targets: vec![],
        }
    }

    fn hash() -> PoemObject {
        PoemObject {
            oid: 2,
            source: "pg".into(),
            name: "hash".into(),
            alias: None,
            arity: OperatorArity::Unary,
            defn: None,
            descs: vec!["hash".into()],
            cond: false,
            targets: vec!["hashjoin".into()],
        }
    }

    #[test]
    fn normalization() {
        assert_eq!(normalize_op_name("Hash Join"), "hashjoin");
        assert_eq!(normalize_op_name("SEQ SCAN"), "seqscan");
        assert_eq!(normalize_op_name("Nested-Loop"), "nestedloop");
    }

    #[test]
    fn binary_template_matches_paper() {
        // Paper §4.2: COMPOSE hashjoin FROM pg.
        assert_eq!(
            hashjoin().template(None),
            "perform hash join on $R2$ and $R1$ on condition $cond$"
        );
    }

    #[test]
    fn auxiliary_unary_template_matches_paper() {
        // Paper §4.2: COMPOSE hash FROM pg -> "hash $R1$".
        assert_eq!(hash().template(None), "hash $R1$");
    }

    #[test]
    fn critical_unary_template_uses_on() {
        let seqscan = PoemObject {
            oid: 3,
            source: "pg".into(),
            name: "seqscan".into(),
            alias: None,
            arity: OperatorArity::Unary,
            defn: None,
            descs: vec!["perform sequential scan".into()],
            cond: false,
            targets: vec![],
        };
        assert_eq!(seqscan.template(None), "perform sequential scan on $R1$");
    }

    #[test]
    fn composition_matches_paper_example() {
        // Paper §4.2: COMPOSE hash, hashjoin FROM pg USING
        // hashjoin.desc = 'perform hash join'.
        let composed = hash().compose_with(&hashjoin(), Some("perform hash join"));
        assert_eq!(
            composed,
            "hash $R1$ and perform hash join on $R2$ and $R1$ on condition $cond$"
        );
    }

    #[test]
    fn using_clause_selects_description() {
        let mut hj = hashjoin();
        hj.descs.push("execute hash join".into());
        assert!(hj
            .template(Some("execute hash join"))
            .starts_with("execute hash join"));
        // Unknown pick falls back to the first description.
        assert!(hj
            .template(Some("missing"))
            .starts_with("perform hash join"));
    }

    #[test]
    fn multi_target_extension() {
        let sort = PoemObject {
            oid: 4,
            source: "pg".into(),
            name: "sort".into(),
            alias: None,
            arity: OperatorArity::Unary,
            defn: None,
            descs: vec!["sort".into()],
            cond: false,
            targets: vec!["mergejoin".into(), "aggregate".into(), "unique".into()],
        };
        assert!(sort.targets_op("Merge Join"));
        assert!(sort.targets_op("Aggregate"));
        assert!(!sort.targets_op("Hash Join"));
    }

    #[test]
    fn display_name_prefers_alias() {
        let mut o = hashjoin();
        assert_eq!(o.display_name(), "hashjoin");
        o.alias = Some("hash join".into());
        assert_eq!(o.display_name(), "hash join");
    }

    #[test]
    fn verbatim_template_with_embedded_placeholder() {
        let o = PoemObject {
            oid: 9,
            source: "pg".into(),
            name: "limit".into(),
            alias: None,
            arity: OperatorArity::Unary,
            defn: None,
            descs: vec!["keep only the first rows of $R1$".into()],
            cond: false,
            targets: vec![],
        };
        assert_eq!(o.template(None), "keep only the first rows of $R1$");
    }
}
