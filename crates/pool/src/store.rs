//! The POEM store, backed by two relations exactly as the paper's
//! implementation section describes: `POperators(oid, source, name,
//! alias, type, defn, cond, targetid)` and `PDesc(oid, desc)` (an
//! object may have multiple descriptions). The object view is
//! reconstructed by joining the two relations on `oid`.

use crate::object::{normalize_op_name, OperatorArity, PoemObject};
use parking_lot::RwLock;
use std::sync::Arc;

/// One row of the `POperators` relation.
#[derive(Debug, Clone, PartialEq)]
pub struct POperatorRow {
    pub oid: u64,
    pub source: String,
    pub name: String,
    pub alias: Option<String>,
    pub arity: OperatorArity,
    pub defn: Option<String>,
    pub cond: bool,
    /// Comma-separated normalized target names (see
    /// [`PoemObject::targets`]).
    pub target: Option<String>,
}

/// One row of the `PDesc` relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PDescRow {
    pub oid: u64,
    pub desc: String,
}

#[derive(Debug, Default)]
struct Inner {
    poperators: Vec<POperatorRow>,
    pdesc: Vec<PDescRow>,
    next_oid: u64,
    /// Bumped by every mutation; versions the snapshot cache.
    version: u64,
}

/// The snapshot cache cell: the catalog version a snapshot was
/// assembled at, and the shared snapshot itself.
type SnapshotCache = Arc<RwLock<Option<(u64, Arc<crate::snapshot::PoemSnapshot>)>>>;

/// The shared, thread-safe POEM store. Cloning is cheap (the relations
/// are shared) so the facade, the rule translator, and benchmark
/// pipelines can all hold handles.
#[derive(Debug, Clone, Default)]
pub struct PoemStore {
    inner: Arc<RwLock<Inner>>,
    /// Copy-on-write snapshot cache: rebuilt lazily after a mutation;
    /// shared by all clones of the store, so repeated narration pays
    /// one catalog assembly per *generation* of the catalog, not per
    /// call.
    snapshot_cache: SnapshotCache,
}

impl PoemStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// A store preloaded with the PostgreSQL operator catalog (see
    /// `defaults`).
    pub fn with_default_pg_operators() -> Self {
        crate::defaults::default_pg_store()
    }

    /// Insert a new operator object; returns its oid. `name` and
    /// `target` are normalized.
    #[allow(clippy::too_many_arguments)]
    pub fn create(
        &self,
        source: &str,
        name: &str,
        alias: Option<&str>,
        arity: OperatorArity,
        defn: Option<&str>,
        descs: &[&str],
        cond: bool,
        target: Option<&str>,
    ) -> u64 {
        let mut inner = self.inner.write();
        inner.version += 1;
        inner.next_oid += 1;
        let oid = inner.next_oid;
        inner.poperators.push(POperatorRow {
            oid,
            source: source.to_string(),
            name: normalize_op_name(name),
            alias: alias.map(str::to_string),
            arity,
            defn: defn.map(str::to_string),
            cond,
            target: target.map(|t| {
                t.split(',')
                    .map(normalize_op_name)
                    .collect::<Vec<_>>()
                    .join(",")
            }),
        });
        for d in descs {
            inner.pdesc.push(PDescRow {
                oid,
                desc: (*d).to_string(),
            });
        }
        oid
    }

    /// The one place a `POperators` row (plus its `PDesc` values)
    /// becomes a [`PoemObject`] — shared by per-lookup assembly and
    /// snapshot assembly so the two views can never drift.
    fn row_to_object(row: &POperatorRow, descs: Vec<String>) -> PoemObject {
        PoemObject {
            oid: row.oid,
            source: row.source.clone(),
            name: row.name.clone(),
            alias: row.alias.clone(),
            arity: row.arity,
            defn: row.defn.clone(),
            descs,
            cond: row.cond,
            targets: row
                .target
                .as_deref()
                .map(|t| t.split(',').map(str::to_string).collect())
                .unwrap_or_default(),
        }
    }

    fn assemble(inner: &Inner, row: &POperatorRow) -> PoemObject {
        Self::row_to_object(
            row,
            inner
                .pdesc
                .iter()
                .filter(|d| d.oid == row.oid)
                .map(|d| d.desc.clone())
                .collect(),
        )
    }

    /// The current catalog generation: bumped by every POOL mutation.
    /// Consumers that key derived state off the catalog — the snapshot
    /// cache internally, the narration cache externally — fold this in
    /// so a mutation invalidates them implicitly.
    pub fn version(&self) -> u64 {
        self.inner.read().version
    }

    /// Take an immutable, indexed snapshot of the whole catalog (see
    /// [`crate::snapshot`]). Use this on narration hot paths and when
    /// fanning a batch out across threads: lookups against the
    /// snapshot are lock-free.
    ///
    /// Copy-on-write: the assembled snapshot is cached per catalog
    /// *version* (every POOL mutation bumps it), so repeated calls on
    /// an unchanged store return a shared `Arc` after one read-lock
    /// acquisition — a mutation only pays for reassembly at the next
    /// snapshot.
    pub fn snapshot(&self) -> Arc<crate::snapshot::PoemSnapshot> {
        let inner = self.inner.read();
        if let Some((version, snapshot)) = self.snapshot_cache.read().as_ref() {
            if *version == inner.version {
                return Arc::clone(snapshot);
            }
        }
        let snapshot = Arc::new(self.assemble_snapshot(&inner));
        *self.snapshot_cache.write() = Some((inner.version, Arc::clone(&snapshot)));
        snapshot
    }

    fn assemble_snapshot(&self, inner: &Inner) -> crate::snapshot::PoemSnapshot {
        // Group descriptions by oid in one pass so assembly is
        // O(|POperators| + |PDesc|) rather than the per-lookup
        // O(|POperators| * |PDesc|) scan `find` pays.
        let mut descs: std::collections::HashMap<u64, Vec<String>> =
            std::collections::HashMap::new();
        for d in &inner.pdesc {
            descs.entry(d.oid).or_default().push(d.desc.clone());
        }
        let objects = inner
            .poperators
            .iter()
            .map(|row| Self::row_to_object(row, descs.remove(&row.oid).unwrap_or_default()))
            .collect();
        crate::snapshot::PoemSnapshot::from_objects(objects)
    }

    /// Fetch one operator by source and (vendor) name.
    pub fn find(&self, source: &str, name: &str) -> Option<PoemObject> {
        let key = normalize_op_name(name);
        let inner = self.inner.read();
        inner
            .poperators
            .iter()
            .find(|r| r.source == source && r.name == key)
            .map(|r| Self::assemble(&inner, r))
    }

    /// All operators of a source.
    pub fn operators_of(&self, source: &str) -> Vec<PoemObject> {
        let inner = self.inner.read();
        inner
            .poperators
            .iter()
            .filter(|r| r.source == source)
            .map(|r| Self::assemble(&inner, r))
            .collect()
    }

    /// All sources present in the store.
    pub fn sources(&self) -> Vec<String> {
        let inner = self.inner.read();
        let mut s: Vec<String> = inner.poperators.iter().map(|r| r.source.clone()).collect();
        s.sort();
        s.dedup();
        s
    }

    /// Update attributes of operators matching `(source, name)`;
    /// returns the number of objects changed. `None` arguments leave
    /// the attribute untouched; descriptions, when given, replace the
    /// existing `PDesc` rows.
    // One optional parameter per POEM attribute, mirroring the POOL
    // UPDATE statement's SET clause.
    #[allow(clippy::too_many_arguments)]
    pub fn update(
        &self,
        source: &str,
        name: &str,
        alias: Option<Option<String>>,
        defn: Option<Option<String>>,
        descs: Option<Vec<String>>,
        cond: Option<bool>,
        target: Option<Option<String>>,
    ) -> usize {
        let key = normalize_op_name(name);
        let mut inner = self.inner.write();
        let oids: Vec<u64> = inner
            .poperators
            .iter()
            .filter(|r| r.source == source && r.name == key)
            .map(|r| r.oid)
            .collect();
        if !oids.is_empty() {
            inner.version += 1;
        }
        for row in inner
            .poperators
            .iter_mut()
            .filter(|r| r.source == source && r.name == key)
        {
            if let Some(a) = &alias {
                row.alias = a.clone();
            }
            if let Some(d) = &defn {
                row.defn = d.clone();
            }
            if let Some(c) = cond {
                row.cond = c;
            }
            if let Some(t) = &target {
                row.target = t.as_deref().map(|t| {
                    t.split(',')
                        .map(normalize_op_name)
                        .collect::<Vec<_>>()
                        .join(",")
                });
            }
        }
        if let Some(new_descs) = descs {
            for &oid in &oids {
                inner.pdesc.retain(|d| d.oid != oid);
                for d in &new_descs {
                    inner.pdesc.push(PDescRow {
                        oid,
                        desc: d.clone(),
                    });
                }
            }
        }
        oids.len()
    }

    /// Append an additional description to an operator (the paper
    /// allows several `DESC` values per object).
    pub fn add_desc(&self, source: &str, name: &str, desc: &str) -> bool {
        let key = normalize_op_name(name);
        let mut inner = self.inner.write();
        let oid = inner
            .poperators
            .iter()
            .find(|r| r.source == source && r.name == key)
            .map(|r| r.oid);
        match oid {
            Some(oid) => {
                inner.version += 1;
                inner.pdesc.push(PDescRow {
                    oid,
                    desc: desc.to_string(),
                });
                true
            }
            None => false,
        }
    }

    /// Delete operators matching `(source, name)`; returns count.
    pub fn delete(&self, source: &str, name: &str) -> usize {
        let key = normalize_op_name(name);
        let mut inner = self.inner.write();
        let oids: Vec<u64> = inner
            .poperators
            .iter()
            .filter(|r| r.source == source && r.name == key)
            .map(|r| r.oid)
            .collect();
        if !oids.is_empty() {
            inner.version += 1;
        }
        inner
            .poperators
            .retain(|r| !(r.source == source && r.name == key));
        inner.pdesc.retain(|d| !oids.contains(&d.oid));
        oids.len()
    }

    /// Number of operator objects in the store.
    pub fn len(&self) -> usize {
        self.inner.read().poperators.len()
    }

    /// True when the store holds no operators.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with_hashjoin() -> PoemStore {
        let s = PoemStore::new();
        s.create(
            "pg",
            "hashjoin",
            None,
            OperatorArity::Binary,
            Some("a join using hashing"),
            &["perform hash join"],
            true,
            None,
        );
        s.create(
            "pg",
            "hash",
            None,
            OperatorArity::Unary,
            None,
            &["hash"],
            false,
            Some("hashjoin"),
        );
        s
    }

    #[test]
    fn create_and_find() {
        let s = store_with_hashjoin();
        let o = s.find("pg", "Hash Join").expect("normalized lookup");
        assert_eq!(o.name, "hashjoin");
        assert_eq!(o.descs, vec!["perform hash join"]);
        assert!(s.find("pg", "zzjoin").is_none());
        assert!(s.find("db2", "hashjoin").is_none());
    }

    #[test]
    fn multiple_descriptions_join_from_pdesc() {
        let s = store_with_hashjoin();
        assert!(s.add_desc("pg", "hashjoin", "execute hash join"));
        let o = s.find("pg", "hashjoin").unwrap();
        assert_eq!(o.descs.len(), 2);
        assert!(!s.add_desc("pg", "nope", "x"));
    }

    #[test]
    fn update_alias_and_defn() {
        let s = store_with_hashjoin();
        let n = s.update(
            "pg",
            "hashjoin",
            Some(Some("hash-based join".into())),
            Some(Some("new defn".into())),
            None,
            None,
            None,
        );
        assert_eq!(n, 1);
        let o = s.find("pg", "hashjoin").unwrap();
        assert_eq!(o.alias.as_deref(), Some("hash-based join"));
        assert_eq!(o.defn.as_deref(), Some("new defn"));
        // Descriptions untouched.
        assert_eq!(o.descs, vec!["perform hash join"]);
    }

    #[test]
    fn update_replaces_descs() {
        let s = store_with_hashjoin();
        s.update(
            "pg",
            "hashjoin",
            None,
            None,
            Some(vec!["do the join".into()]),
            None,
            None,
        );
        let o = s.find("pg", "hashjoin").unwrap();
        assert_eq!(o.descs, vec!["do the join"]);
    }

    #[test]
    fn delete_removes_descriptions_too() {
        let s = store_with_hashjoin();
        assert_eq!(s.delete("pg", "hashjoin"), 1);
        assert!(s.find("pg", "hashjoin").is_none());
        assert_eq!(s.len(), 1); // hash remains
    }

    #[test]
    fn target_edge_assembles() {
        let s = store_with_hashjoin();
        let hash = s.find("pg", "hash").unwrap();
        assert!(hash.is_auxiliary());
        assert!(hash.targets_op("Hash Join"));
    }

    #[test]
    fn sources_listing() {
        let s = store_with_hashjoin();
        s.create(
            "mssql",
            "tablescan",
            None,
            OperatorArity::Unary,
            None,
            &["scan"],
            false,
            None,
        );
        assert_eq!(s.sources(), vec!["mssql", "pg"]);
    }

    #[test]
    fn clone_shares_state() {
        let s = store_with_hashjoin();
        let s2 = s.clone();
        s2.add_desc("pg", "hashjoin", "another");
        assert_eq!(s.find("pg", "hashjoin").unwrap().descs.len(), 2);
    }
}
