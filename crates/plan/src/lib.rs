//! # lantern-plan
//!
//! RDBMS-agnostic query execution plan (QEP) model and parsers.
//!
//! A QEP is abstractly a *physical operator tree* (paper §3): nodes are
//! physical operators, edges are data flow. This crate provides:
//!
//! * [`PlanTree`] / [`PlanNode`] — the operator-tree model every other
//!   LANTERN component consumes,
//! * [`parse_pg_json_plan`] — reader for PostgreSQL-style
//!   `EXPLAIN (FORMAT JSON)` documents,
//! * [`parse_sqlserver_xml_plan`] — reader for SQL Server-style XML
//!   showplans,
//! * traversal utilities (post-order walks, parent maps, subtree
//!   extraction) used by RULE-LANTERN and the act decomposition.

pub mod node;
pub mod pg_json;
pub mod sqlserver_xml;
pub mod traverse;

pub use node::{PlanNode, PlanTree};
pub use pg_json::{parse_pg_json_plan, plan_to_pg_json};
pub use sqlserver_xml::{parse_sqlserver_xml_plan, plan_to_sqlserver_xml};
pub use traverse::{post_order, PostOrderItem};
