//! PostgreSQL-style `EXPLAIN (FORMAT JSON)` reader and writer.
//!
//! The document shape follows PostgreSQL: a one-element array whose
//! element has a `"Plan"` key holding the root node; nodes carry
//! `"Node Type"`, `"Relation Name"`, `"Alias"`, `"Filter"`,
//! `"Hash Cond"` / `"Merge Cond"` / `"Join Filter"` / `"Index Cond"`,
//! `"Sort Key"`, `"Group Key"`, `"Strategy"`, `"Plan Rows"`,
//! `"Total Cost"`, and `"Plans"` (children).

use crate::node::{PlanNode, PlanTree};
use lantern_text::json::{JsonError, JsonValue};
use std::collections::BTreeMap;

/// Keys recognised as join conditions, in the order PostgreSQL uses
/// them for the respective join operators.
const JOIN_COND_KEYS: &[&str] = &["Hash Cond", "Merge Cond", "Join Filter", "Index Cond"];

/// Parse a PostgreSQL-style JSON plan document into a [`PlanTree`]
/// tagged with source `pg`.
pub fn parse_pg_json_plan(doc: &str) -> Result<PlanTree, JsonError> {
    let value = JsonValue::parse(doc)?;
    // PostgreSQL wraps the plan in a single-element array; also accept
    // the bare object.
    let obj = match &value {
        JsonValue::Array(items) if !items.is_empty() => &items[0],
        other => other,
    };
    let plan = obj.get("Plan").ok_or(JsonError {
        offset: 0,
        message: "missing 'Plan' key".to_string(),
    })?;
    Ok(PlanTree::new("pg", parse_node(plan)?))
}

fn parse_node(v: &JsonValue) -> Result<PlanNode, JsonError> {
    let op = v
        .get("Node Type")
        .and_then(JsonValue::as_str)
        .ok_or(JsonError {
            offset: 0,
            message: "missing 'Node Type'".to_string(),
        })?
        .to_string();
    let mut node = PlanNode::new(op);
    node.relation = v
        .get("Relation Name")
        .and_then(JsonValue::as_str)
        .map(str::to_string);
    node.alias = v
        .get("Alias")
        .and_then(JsonValue::as_str)
        .map(str::to_string);
    node.index_name = v
        .get("Index Name")
        .and_then(JsonValue::as_str)
        .map(str::to_string);
    node.filter = v
        .get("Filter")
        .and_then(JsonValue::as_str)
        .map(str::to_string);
    for key in JOIN_COND_KEYS {
        if let Some(c) = v.get(key).and_then(JsonValue::as_str) {
            node.join_cond = Some(c.to_string());
            break;
        }
    }
    if let Some(keys) = v.get("Sort Key").and_then(JsonValue::as_array) {
        node.sort_keys = keys
            .iter()
            .filter_map(|k| k.as_str().map(str::to_string))
            .collect();
    }
    if let Some(keys) = v.get("Group Key").and_then(JsonValue::as_array) {
        node.group_keys = keys
            .iter()
            .filter_map(|k| k.as_str().map(str::to_string))
            .collect();
    }
    node.strategy = v
        .get("Strategy")
        .and_then(JsonValue::as_str)
        .map(str::to_string);
    node.estimated_rows = v
        .get("Plan Rows")
        .and_then(JsonValue::as_f64)
        .unwrap_or(0.0);
    node.estimated_cost = v
        .get("Total Cost")
        .and_then(JsonValue::as_f64)
        .unwrap_or(0.0);
    if let Some(children) = v.get("Plans").and_then(JsonValue::as_array) {
        for c in children {
            node.children.push(parse_node(c)?);
        }
    }
    Ok(node)
}

/// Serialize a plan back into the PostgreSQL JSON document shape.
pub fn plan_to_pg_json(tree: &PlanTree) -> String {
    let mut top = BTreeMap::new();
    top.insert("Plan".to_string(), node_to_json(&tree.root));
    JsonValue::Array(vec![JsonValue::Object(top)]).to_string_pretty()
}

fn node_to_json(node: &PlanNode) -> JsonValue {
    let mut m = BTreeMap::new();
    m.insert("Node Type".into(), JsonValue::String(node.op.clone()));
    if let Some(r) = &node.relation {
        m.insert("Relation Name".into(), JsonValue::String(r.clone()));
    }
    if let Some(a) = &node.alias {
        m.insert("Alias".into(), JsonValue::String(a.clone()));
    }
    if let Some(i) = &node.index_name {
        m.insert("Index Name".into(), JsonValue::String(i.clone()));
    }
    if let Some(f) = &node.filter {
        m.insert("Filter".into(), JsonValue::String(f.clone()));
    }
    if let Some(c) = &node.join_cond {
        let key = match node.op.as_str() {
            "Hash Join" => "Hash Cond",
            "Merge Join" => "Merge Cond",
            "Index Scan" => "Index Cond",
            _ => "Join Filter",
        };
        m.insert(key.into(), JsonValue::String(c.clone()));
    }
    if !node.sort_keys.is_empty() {
        m.insert(
            "Sort Key".into(),
            JsonValue::Array(
                node.sort_keys
                    .iter()
                    .cloned()
                    .map(JsonValue::String)
                    .collect(),
            ),
        );
    }
    if !node.group_keys.is_empty() {
        m.insert(
            "Group Key".into(),
            JsonValue::Array(
                node.group_keys
                    .iter()
                    .cloned()
                    .map(JsonValue::String)
                    .collect(),
            ),
        );
    }
    if let Some(s) = &node.strategy {
        m.insert("Strategy".into(), JsonValue::String(s.clone()));
    }
    m.insert("Plan Rows".into(), JsonValue::Number(node.estimated_rows));
    m.insert("Total Cost".into(), JsonValue::Number(node.estimated_cost));
    if !node.children.is_empty() {
        m.insert(
            "Plans".into(),
            JsonValue::Array(node.children.iter().map(node_to_json).collect()),
        );
    }
    for (k, v) in &node.extra {
        m.entry(k.clone())
            .or_insert_with(|| JsonValue::String(v.clone()));
    }
    JsonValue::Object(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIGURE_1_DOC: &str = r#"[{"Plan": {
        "Node Type": "Unique",
        "Plan Rows": 50, "Total Cost": 910.0,
        "Plans": [{
            "Node Type": "Aggregate", "Strategy": "Sorted",
            "Group Key": ["i.proceeding_key"],
            "Filter": "count(*) > 200",
            "Plan Rows": 50, "Total Cost": 900.0,
            "Plans": [{
                "Node Type": "Sort", "Sort Key": ["i.proceeding_key"],
                "Plan Rows": 1200, "Total Cost": 850.0,
                "Plans": [{
                    "Node Type": "Hash Join",
                    "Hash Cond": "(i.proceeding_key) = (p.pub_key)",
                    "Plan Rows": 1200, "Total Cost": 700.0,
                    "Plans": [
                        {"Node Type": "Seq Scan", "Relation Name": "inproceedings",
                         "Alias": "i", "Plan Rows": 3000, "Total Cost": 100.0},
                        {"Node Type": "Hash", "Plan Rows": 400, "Total Cost": 220.0,
                         "Plans": [{"Node Type": "Seq Scan", "Relation Name": "publication",
                                    "Alias": "p", "Filter": "title ~~ '%July%'",
                                    "Plan Rows": 400, "Total Cost": 200.0}]}
                    ]
                }]
            }]
        }]
    }}]"#;

    #[test]
    fn parses_figure_1_style_document() {
        let tree = parse_pg_json_plan(FIGURE_1_DOC).unwrap();
        assert_eq!(tree.source, "pg");
        assert_eq!(tree.size(), 7);
        assert_eq!(tree.root.op, "Unique");
        let agg = &tree.root.children[0];
        assert_eq!(agg.group_keys, vec!["i.proceeding_key"]);
        let join = &agg.children[0].children[0];
        assert_eq!(
            join.join_cond.as_deref(),
            Some("(i.proceeding_key) = (p.pub_key)")
        );
        assert_eq!(tree.root.relations(), vec!["inproceedings", "publication"]);
    }

    #[test]
    fn accepts_bare_object() {
        let doc = r#"{"Plan": {"Node Type": "Seq Scan", "Relation Name": "t"}}"#;
        let tree = parse_pg_json_plan(doc).unwrap();
        assert_eq!(tree.root.op, "Seq Scan");
    }

    #[test]
    fn missing_plan_key_is_error() {
        assert!(parse_pg_json_plan(r#"{"NotPlan": 1}"#).is_err());
    }

    #[test]
    fn missing_node_type_is_error() {
        assert!(parse_pg_json_plan(r#"{"Plan": {"Relation Name": "t"}}"#).is_err());
    }

    #[test]
    fn round_trip_preserves_tree() {
        let tree = parse_pg_json_plan(FIGURE_1_DOC).unwrap();
        let text = plan_to_pg_json(&tree);
        let tree2 = parse_pg_json_plan(&text).unwrap();
        assert_eq!(tree, tree2);
    }

    #[test]
    fn join_cond_key_depends_on_operator() {
        let mut tree = parse_pg_json_plan(FIGURE_1_DOC).unwrap();
        // Rename join to Merge Join; the writer must emit "Merge Cond".
        tree.root.children[0].children[0].children[0].op = "Merge Join".to_string();
        let text = plan_to_pg_json(&tree);
        assert!(text.contains("Merge Cond"));
    }
}
