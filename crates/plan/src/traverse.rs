//! Tree traversal utilities: post-order walks (the order Algorithm 1
//! narrates in) with parent context, and subtree addressing by path.

use crate::node::PlanNode;

/// One item of a post-order walk.
#[derive(Debug, Clone, Copy)]
pub struct PostOrderItem<'a> {
    /// The visited node.
    pub node: &'a PlanNode,
    /// Its parent (`None` for the root).
    pub parent: Option<&'a PlanNode>,
    /// Depth from the root (root = 0).
    pub depth: usize,
    /// Index among siblings.
    pub child_index: usize,
}

/// Post-order (children before parent) traversal with parent links.
pub fn post_order(root: &PlanNode) -> Vec<PostOrderItem<'_>> {
    let mut out = Vec::with_capacity(root.size());
    walk(root, None, 0, 0, &mut out);
    out
}

fn walk<'a>(
    node: &'a PlanNode,
    parent: Option<&'a PlanNode>,
    depth: usize,
    child_index: usize,
    out: &mut Vec<PostOrderItem<'a>>,
) {
    for (i, c) in node.children.iter().enumerate() {
        walk(c, Some(node), depth + 1, i, out);
    }
    out.push(PostOrderItem {
        node,
        parent,
        depth,
        child_index,
    });
}

/// Fetch a node by its child-index path from the root (empty path =
/// root).
pub fn node_at_path<'a>(root: &'a PlanNode, path: &[usize]) -> Option<&'a PlanNode> {
    let mut cur = root;
    for &i in path {
        cur = cur.children.get(i)?;
    }
    Some(cur)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree() -> PlanNode {
        PlanNode::new("Unique").with_child(
            PlanNode::new("Hash Join")
                .with_child(PlanNode::new("Seq Scan").on_relation("a"))
                .with_child(
                    PlanNode::new("Hash").with_child(PlanNode::new("Seq Scan").on_relation("b")),
                ),
        )
    }

    #[test]
    fn post_order_children_before_parents() {
        let t = tree();
        let ops: Vec<&str> = post_order(&t).iter().map(|i| i.node.op.as_str()).collect();
        assert_eq!(
            ops,
            vec!["Seq Scan", "Seq Scan", "Hash", "Hash Join", "Unique"]
        );
    }

    #[test]
    fn parent_links_correct() {
        let t = tree();
        let walk = post_order(&t);
        // First Seq Scan's parent is the Hash Join.
        assert_eq!(walk[0].parent.unwrap().op, "Hash Join");
        // Second Seq Scan's parent is the Hash.
        assert_eq!(walk[1].parent.unwrap().op, "Hash");
        // Root has no parent.
        assert!(walk.last().unwrap().parent.is_none());
    }

    #[test]
    fn depths_and_child_indices() {
        let t = tree();
        let walk = post_order(&t);
        let hash = walk.iter().find(|i| i.node.op == "Hash").unwrap();
        assert_eq!(hash.depth, 2);
        assert_eq!(hash.child_index, 1);
    }

    #[test]
    fn path_addressing() {
        let t = tree();
        assert_eq!(node_at_path(&t, &[]).unwrap().op, "Unique");
        assert_eq!(
            node_at_path(&t, &[0, 1, 0]).unwrap().relation.as_deref(),
            Some("b")
        );
        assert!(node_at_path(&t, &[3]).is_none());
    }
}
