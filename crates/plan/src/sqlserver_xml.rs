//! SQL Server-style XML showplan reader and writer.
//!
//! The document shape follows SQL Server's `ShowPlanXML`:
//!
//! ```xml
//! <ShowPlanXML Version="1.5">
//!   <BatchSequence><Batch><Statements>
//!     <StmtSimple StatementText="SELECT ...">
//!       <QueryPlan>
//!         <RelOp PhysicalOp="Hash Match" LogicalOp="Inner Join" ...>
//!           <Predicate>...</Predicate>
//!           <RelOp .../> ...
//!         </RelOp>
//!       </QueryPlan>
//!     </StmtSimple>
//!   </Statements></Batch></BatchSequence>
//! </ShowPlanXML>
//! ```
//!
//! Operator names use SQL Server vocabulary (`Table Scan`,
//! `Index Seek`, `Hash Match`, `Nested Loops`, `Stream Aggregate`,
//! `Distinct Sort`, `Top`, …). The writer maps from PostgreSQL-style
//! names when exporting a `pg` tree so the same logical plan can be
//! rendered for either source — mirroring how the paper runs LANTERN on
//! both PostgreSQL and SQL Server.

use crate::node::{PlanNode, PlanTree};
use lantern_text::xml::{XmlError, XmlNode};

/// PostgreSQL-name -> SQL Server-name operator mapping used when a
/// `pg`-sourced tree is exported as a showplan. (Auxiliary `Hash`
/// nodes are kept: our mssql dialect models the build side explicitly,
/// which preserves the auxiliary/critical structure the clustering
/// step needs.)
pub const PG_TO_MSSQL_OPS: &[(&str, &str)] = &[
    ("Seq Scan", "Table Scan"),
    ("Index Scan", "Index Seek"),
    ("Bitmap Heap Scan", "Index Seek"),
    ("Hash Join", "Hash Match"),
    ("Merge Join", "Merge Join"),
    ("Nested Loop", "Nested Loops"),
    ("Hash", "Hash Build"),
    ("Sort", "Sort"),
    ("Aggregate", "Stream Aggregate"),
    ("HashAggregate", "Hash Match Aggregate"),
    ("Unique", "Distinct Sort"),
    ("Limit", "Top"),
    ("Materialize", "Table Spool"),
    ("Gather", "Parallelism"),
];

/// Translate one PostgreSQL operator name to SQL Server vocabulary
/// (returns the input unchanged when no mapping exists).
pub fn pg_op_to_mssql(op: &str) -> &str {
    PG_TO_MSSQL_OPS
        .iter()
        .find(|(pg, _)| op.eq_ignore_ascii_case(pg))
        .map(|(_, ms)| *ms)
        .unwrap_or(op)
}

/// Parse an XML showplan into a [`PlanTree`] tagged with source
/// `mssql`. Vendor operator names are preserved verbatim.
pub fn parse_sqlserver_xml_plan(doc: &str) -> Result<PlanTree, XmlError> {
    let root = XmlNode::parse(doc)?;
    let relop = find_first_relop(&root).ok_or(XmlError {
        offset: 0,
        message: "no RelOp element found in showplan".to_string(),
    })?;
    Ok(PlanTree::new("mssql", parse_relop(relop)))
}

fn find_first_relop(node: &XmlNode) -> Option<&XmlNode> {
    if node.local_name() == "RelOp" {
        return Some(node);
    }
    node.children.iter().find_map(find_first_relop)
}

fn parse_relop(el: &XmlNode) -> PlanNode {
    let mut node = PlanNode::new(el.attr("PhysicalOp").unwrap_or("Unknown"));
    node.estimated_rows = el
        .attr("EstimateRows")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.0);
    node.estimated_cost = el
        .attr("EstimatedTotalSubtreeCost")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.0);
    if let Some(logical) = el.attr("LogicalOp") {
        node.extra
            .insert("LogicalOp".to_string(), logical.to_string());
    }
    if let Some(strategy) = el.attr("Strategy") {
        node.strategy = Some(strategy.to_string());
    }
    for child in &el.children {
        match child.local_name() {
            "Object" => {
                node.relation = child.attr("Table").map(str::to_string);
                node.alias = child.attr("Alias").map(str::to_string);
                node.index_name = child.attr("Index").map(str::to_string);
            }
            "Predicate" => node.filter = Some(child.text.clone()),
            "JoinPredicate" => node.join_cond = Some(child.text.clone()),
            "OrderBy" => {
                for col in child.children_named("ColumnReference") {
                    if let Some(c) = col.attr("Column") {
                        let dir = if col.attr("Descending") == Some("true") {
                            " DESC"
                        } else {
                            ""
                        };
                        node.sort_keys.push(format!("{c}{dir}"));
                    }
                }
            }
            "GroupBy" => {
                for col in child.children_named("ColumnReference") {
                    if let Some(c) = col.attr("Column") {
                        node.group_keys.push(c.to_string());
                    }
                }
            }
            "RelOp" => node.children.push(parse_relop(child)),
            _ => {}
        }
    }
    node
}

/// Serialize a plan as an XML showplan. If the tree's source is `pg`,
/// operator names are translated to SQL Server vocabulary first.
pub fn plan_to_sqlserver_xml(tree: &PlanTree) -> String {
    let translate = tree.source == "pg";
    let plan = XmlNode::new("QueryPlan").with_child(relop_to_xml(&tree.root, translate));
    let stmt = XmlNode::new("StmtSimple").with_child(plan);
    let doc = XmlNode::new("ShowPlanXML")
        .with_attr("Version", "1.5")
        .with_child(XmlNode::new("BatchSequence").with_child(
            XmlNode::new("Batch").with_child(XmlNode::new("Statements").with_child(stmt)),
        ));
    doc.to_string_pretty()
}

fn relop_to_xml(node: &PlanNode, translate: bool) -> XmlNode {
    let op = if translate {
        pg_op_to_mssql(&node.op).to_string()
    } else {
        node.op.clone()
    };
    let mut el = XmlNode::new("RelOp")
        .with_attr("PhysicalOp", op)
        .with_attr("EstimateRows", format!("{}", node.estimated_rows))
        .with_attr(
            "EstimatedTotalSubtreeCost",
            format!("{}", node.estimated_cost),
        );
    if let Some(s) = &node.strategy {
        el = el.with_attr("Strategy", s.clone());
    }
    if node.relation.is_some() || node.index_name.is_some() {
        let mut obj = XmlNode::new("Object");
        if let Some(r) = &node.relation {
            obj = obj.with_attr("Table", r.clone());
        }
        if let Some(a) = &node.alias {
            obj = obj.with_attr("Alias", a.clone());
        }
        if let Some(i) = &node.index_name {
            obj = obj.with_attr("Index", i.clone());
        }
        el = el.with_child(obj);
    }
    if let Some(f) = &node.filter {
        let mut p = XmlNode::new("Predicate");
        p.text = f.clone();
        el = el.with_child(p);
    }
    if let Some(c) = &node.join_cond {
        let mut p = XmlNode::new("JoinPredicate");
        p.text = c.clone();
        el = el.with_child(p);
    }
    if !node.sort_keys.is_empty() {
        let mut ob = XmlNode::new("OrderBy");
        for key in &node.sort_keys {
            let (col, desc) = match key.strip_suffix(" DESC") {
                Some(c) => (c, true),
                None => (key.as_str(), false),
            };
            let mut cr = XmlNode::new("ColumnReference").with_attr("Column", col);
            if desc {
                cr = cr.with_attr("Descending", "true");
            }
            ob = ob.with_child(cr);
        }
        el = el.with_child(ob);
    }
    if !node.group_keys.is_empty() {
        let mut gb = XmlNode::new("GroupBy");
        for key in &node.group_keys {
            gb = gb.with_child(XmlNode::new("ColumnReference").with_attr("Column", key.clone()));
        }
        el = el.with_child(gb);
    }
    for child in &node.children {
        el = el.with_child(relop_to_xml(child, translate));
    }
    el
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pg_json::parse_pg_json_plan;

    const SHOWPLAN: &str = r#"<?xml version="1.0"?>
<ShowPlanXML Version="1.5">
 <BatchSequence><Batch><Statements>
  <StmtSimple StatementText="SELECT ...">
   <QueryPlan>
    <RelOp PhysicalOp="Hash Match" LogicalOp="Inner Join" EstimateRows="120" EstimatedTotalSubtreeCost="3.5">
      <JoinPredicate>(s.bestobjid) = (p.objid)</JoinPredicate>
      <RelOp PhysicalOp="Table Scan" EstimateRows="5000" EstimatedTotalSubtreeCost="1.0">
        <Object Table="photoobj" Alias="p"/>
      </RelOp>
      <RelOp PhysicalOp="Table Scan" EstimateRows="800" EstimatedTotalSubtreeCost="0.8">
        <Object Table="specobj" Alias="s"/>
        <Predicate>class = 'QSO'</Predicate>
      </RelOp>
    </RelOp>
   </QueryPlan>
  </StmtSimple>
 </Statements></Batch></BatchSequence>
</ShowPlanXML>"#;

    #[test]
    fn parses_showplan() {
        let tree = parse_sqlserver_xml_plan(SHOWPLAN).unwrap();
        assert_eq!(tree.source, "mssql");
        assert_eq!(tree.root.op, "Hash Match");
        assert_eq!(
            tree.root.join_cond.as_deref(),
            Some("(s.bestobjid) = (p.objid)")
        );
        assert_eq!(tree.root.children.len(), 2);
        assert_eq!(
            tree.root.children[1].filter.as_deref(),
            Some("class = 'QSO'")
        );
        assert_eq!(tree.root.relations(), vec!["photoobj", "specobj"]);
    }

    #[test]
    fn rejects_document_without_relop() {
        assert!(parse_sqlserver_xml_plan("<ShowPlanXML/>").is_err());
    }

    #[test]
    fn round_trip_mssql_tree() {
        let tree = parse_sqlserver_xml_plan(SHOWPLAN).unwrap();
        let text = plan_to_sqlserver_xml(&tree);
        let tree2 = parse_sqlserver_xml_plan(&text).unwrap();
        assert_eq!(tree.root.op, tree2.root.op);
        assert_eq!(tree.root.children.len(), tree2.root.children.len());
        assert_eq!(tree.root.join_cond, tree2.root.join_cond);
    }

    #[test]
    fn pg_tree_exports_with_translated_names() {
        let pg_doc = r#"{"Plan": {"Node Type": "Hash Join",
            "Hash Cond": "(a.x) = (b.y)", "Plan Rows": 10, "Total Cost": 1.0,
            "Plans": [
              {"Node Type": "Seq Scan", "Relation Name": "a", "Plan Rows": 100, "Total Cost": 0.5},
              {"Node Type": "Hash", "Plan Rows": 10, "Total Cost": 0.4,
               "Plans": [{"Node Type": "Seq Scan", "Relation Name": "b", "Plan Rows": 10, "Total Cost": 0.3}]}
            ]}}"#;
        let pg_tree = parse_pg_json_plan(pg_doc).unwrap();
        let xml = plan_to_sqlserver_xml(&pg_tree);
        assert!(xml.contains("Hash Match"));
        assert!(xml.contains("Table Scan"));
        assert!(xml.contains("Hash Build"));
        assert!(!xml.contains("Seq Scan"));
        let back = parse_sqlserver_xml_plan(&xml).unwrap();
        assert_eq!(back.root.op, "Hash Match");
    }

    #[test]
    fn op_mapping_total_for_engine_vocabulary() {
        // Every operator our engine can emit has an entry in the
        // mapping table ("Merge Join" and "Sort" happen to share names
        // across the two systems, which is fine — the entry exists).
        for op in [
            "Seq Scan",
            "Index Scan",
            "Hash Join",
            "Merge Join",
            "Nested Loop",
            "Hash",
            "Sort",
            "Aggregate",
            "Unique",
            "Limit",
            "Materialize",
        ] {
            assert!(
                PG_TO_MSSQL_OPS
                    .iter()
                    .any(|(pg, _)| pg.eq_ignore_ascii_case(op)),
                "{op} missing from PG_TO_MSSQL_OPS"
            );
        }
        assert_eq!(pg_op_to_mssql("Seq Scan"), "Table Scan");
        assert_eq!(pg_op_to_mssql("SomethingNew"), "SomethingNew");
    }

    #[test]
    fn sort_keys_round_trip_with_direction() {
        let mut node = PlanNode::new("Sort");
        node.sort_keys = vec!["revenue DESC".to_string(), "o_orderdate".to_string()];
        let tree = PlanTree::new("mssql", node);
        let xml = plan_to_sqlserver_xml(&tree);
        let back = parse_sqlserver_xml_plan(&xml).unwrap();
        assert_eq!(back.root.sort_keys, vec!["revenue DESC", "o_orderdate"]);
    }
}
