//! The RDBMS-agnostic physical operator tree (paper §3): the abstract
//! representation of a query execution plan that every LANTERN
//! component consumes.

use std::collections::BTreeMap;
use std::fmt;

/// One physical operator node. `op` carries the *vendor* operator name
/// ("Seq Scan" in PostgreSQL, "Table Scan" in SQL Server) — mapping
/// vendor names to narration text is exactly the job of the POEM store,
/// so the tree preserves them verbatim.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PlanNode {
    /// Vendor operator name, e.g. `Seq Scan`, `Hash Join`, `Sort`.
    pub op: String,
    /// Scanned relation, for leaf operators.
    pub relation: Option<String>,
    /// Relation alias used by the query.
    pub alias: Option<String>,
    /// Index used, for index scans.
    pub index_name: Option<String>,
    /// Filter predicate text (`title LIKE '%July%'`).
    pub filter: Option<String>,
    /// Join condition text (`(i.proceeding_key) = (p.pub_key)`).
    pub join_cond: Option<String>,
    /// Sort keys, for Sort operators (`revenue DESC`).
    pub sort_keys: Vec<String>,
    /// Grouping keys, for Aggregate operators.
    pub group_keys: Vec<String>,
    /// Aggregate strategy (`Sorted`/`Hashed`), when applicable.
    pub strategy: Option<String>,
    /// Optimizer cardinality estimate.
    pub estimated_rows: f64,
    /// Optimizer cost estimate.
    pub estimated_cost: f64,
    /// Child operators (data flows children -> parent).
    pub children: Vec<PlanNode>,
    /// Vendor-specific extras preserved for round-tripping.
    pub extra: BTreeMap<String, String>,
}

impl PlanNode {
    /// Leaf/internal constructor with just an operator name.
    pub fn new(op: impl Into<String>) -> Self {
        PlanNode {
            op: op.into(),
            ..Default::default()
        }
    }

    /// Builder: attach a child.
    pub fn with_child(mut self, child: PlanNode) -> Self {
        self.children.push(child);
        self
    }

    /// Clone this node's own attributes without cloning the subtree
    /// below it (`children` comes back empty). Consumers that keep
    /// structure separately — like LOT construction, which would
    /// otherwise deep-clone every subtree once per node, O(n²) — use
    /// this on their hot path.
    pub fn clone_shallow(&self) -> PlanNode {
        PlanNode {
            op: self.op.clone(),
            relation: self.relation.clone(),
            alias: self.alias.clone(),
            index_name: self.index_name.clone(),
            filter: self.filter.clone(),
            join_cond: self.join_cond.clone(),
            sort_keys: self.sort_keys.clone(),
            group_keys: self.group_keys.clone(),
            strategy: self.strategy.clone(),
            estimated_rows: self.estimated_rows,
            estimated_cost: self.estimated_cost,
            children: Vec::new(),
            extra: self.extra.clone(),
        }
    }

    /// Builder: set the scanned relation.
    pub fn on_relation(mut self, rel: impl Into<String>) -> Self {
        self.relation = Some(rel.into());
        self
    }

    /// Builder: set the filter text.
    pub fn with_filter(mut self, f: impl Into<String>) -> Self {
        self.filter = Some(f.into());
        self
    }

    /// Builder: set the join condition text.
    pub fn with_join_cond(mut self, c: impl Into<String>) -> Self {
        self.join_cond = Some(c.into());
        self
    }

    /// Number of nodes in this subtree.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(PlanNode::size).sum::<usize>()
    }

    /// Depth of this subtree (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(PlanNode::depth).max().unwrap_or(0)
    }

    /// All relations scanned in this subtree, in leaf order.
    pub fn relations(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_relations(&mut out);
        out
    }

    fn collect_relations<'a>(&'a self, out: &mut Vec<&'a str>) {
        for c in &self.children {
            c.collect_relations(out);
        }
        if let Some(r) = &self.relation {
            out.push(r);
        }
    }

    /// Case-insensitive operator-name comparison (vendors differ in
    /// capitalization conventions).
    pub fn op_is(&self, name: &str) -> bool {
        self.op.eq_ignore_ascii_case(name)
    }
}

/// A complete plan: the operator tree plus its source system tag
/// (`pg` or `mssql`) — the POEM store entry point (paper §4.2).
#[derive(Debug, Clone, PartialEq)]
pub struct PlanTree {
    /// Source RDBMS identifier (`pg`, `mssql`).
    pub source: String,
    /// Root operator.
    pub root: PlanNode,
}

impl PlanTree {
    /// Wrap a root node with its source tag.
    pub fn new(source: impl Into<String>, root: PlanNode) -> Self {
        PlanTree {
            source: source.into(),
            root,
        }
    }

    /// Total node count.
    pub fn size(&self) -> usize {
        self.root.size()
    }
}

impl fmt::Display for PlanNode {
    /// Indented text rendering, similar to `EXPLAIN` text output.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn render(node: &PlanNode, depth: usize, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            for _ in 0..depth {
                write!(f, "  ")?;
            }
            if depth > 0 {
                write!(f, "-> ")?;
            }
            write!(f, "{}", node.op)?;
            if let Some(r) = &node.relation {
                write!(f, " on {r}")?;
                if let Some(a) = &node.alias {
                    if a != r {
                        write!(f, " {a}")?;
                    }
                }
            }
            write!(
                f,
                "  (rows={:.0} cost={:.2})",
                node.estimated_rows, node.estimated_cost
            )?;
            if let Some(c) = &node.join_cond {
                writeln!(f)?;
                for _ in 0..depth + 1 {
                    write!(f, "  ")?;
                }
                write!(f, "Cond: {c}")?;
            }
            if let Some(fil) = &node.filter {
                writeln!(f)?;
                for _ in 0..depth + 1 {
                    write!(f, "  ")?;
                }
                write!(f, "Filter: {fil}")?;
            }
            if !node.sort_keys.is_empty() {
                writeln!(f)?;
                for _ in 0..depth + 1 {
                    write!(f, "  ")?;
                }
                write!(f, "Sort Key: {}", node.sort_keys.join(", "))?;
            }
            if !node.group_keys.is_empty() {
                writeln!(f)?;
                for _ in 0..depth + 1 {
                    write!(f, "  ")?;
                }
                write!(f, "Group Key: {}", node.group_keys.join(", "))?;
            }
            for child in &node.children {
                writeln!(f)?;
                render(child, depth + 1, f)?;
            }
            Ok(())
        }
        render(self, 0, f)
    }
}

impl fmt::Display for PlanTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_tree() -> PlanNode {
        // The paper's Figure 4 tree.
        PlanNode::new("Unique").with_child(
            PlanNode::new("Aggregate").with_child(
                PlanNode::new("Sort").with_child(
                    PlanNode::new("Hash Join")
                        .with_join_cond("(i.proceeding_key) = (p.pub_key)")
                        .with_child(PlanNode::new("Seq Scan").on_relation("inproceedings"))
                        .with_child(
                            PlanNode::new("Hash").with_child(
                                PlanNode::new("Seq Scan")
                                    .on_relation("publication")
                                    .with_filter("title LIKE '%July%'"),
                            ),
                        ),
                ),
            ),
        )
    }

    #[test]
    fn size_and_depth() {
        let t = example_tree();
        assert_eq!(t.size(), 7);
        assert_eq!(t.depth(), 6);
    }

    #[test]
    fn relations_in_leaf_order() {
        let t = example_tree();
        assert_eq!(t.relations(), vec!["inproceedings", "publication"]);
    }

    #[test]
    fn display_contains_structure() {
        let text = example_tree().to_string();
        assert!(text.contains("Hash Join"));
        assert!(text.contains("Filter: title LIKE '%July%'"));
        assert!(text.contains("-> Seq Scan on publication"));
    }

    #[test]
    fn op_is_case_insensitive() {
        assert!(PlanNode::new("HASH JOIN").op_is("Hash Join"));
    }

    #[test]
    fn plan_tree_wraps_source() {
        let t = PlanTree::new("pg", example_tree());
        assert_eq!(t.source, "pg");
        assert_eq!(t.size(), 7);
    }
}
