//! NEURAL-LANTERN, the user-facing translator: decompose a plan into
//! acts, translate each act with the trained QEP2Seq model (beam 4),
//! substitute the concrete values back, and assemble the narration.
//!
//! [`Translator::narrate_batch`] is a real batched implementation, not
//! the default per-request loop: every request's acts are flattened
//! into one work list, fanned out across scoped worker threads behind
//! an atomic work-stealing index (model inference dominates and act
//! sizes are skewed, so stealing beats fixed chunking), and each
//! worker reuses one [`DecodeScratch`] arena for all the beam-search
//! decoding it performs.

use crate::dataset::{DatasetBuilder, TrainingSet};
use crate::model::{Qep2Seq, Qep2SeqConfig};
use lantern_core::{
    decompose_acts, work_steal_map, Act, LanternError, Narration, NarrationRequest,
    NarrationResponse, RenderStyle, Translator,
};
use lantern_engine::Database;
use lantern_nn::DecodeScratch;
use lantern_plan::PlanTree;
use lantern_pool::PoemStore;

/// A trained NEURAL-LANTERN translator.
pub struct NeuralLantern {
    model: Qep2Seq,
    store: PoemStore,
    /// Beam width used at inference (paper: 4).
    pub beam: usize,
}

impl NeuralLantern {
    /// Wrap an already-trained model.
    pub fn from_model(model: Qep2Seq, store: PoemStore) -> Self {
        NeuralLantern {
            model,
            store,
            beam: 4,
        }
    }

    /// End-to-end convenience constructor: generate training data from
    /// `n_queries` random queries over `db`, train, and return the
    /// translator plus its training set.
    pub fn train_on(
        db: &Database,
        store: &PoemStore,
        n_queries: usize,
        config: Qep2SeqConfig,
        seed: u64,
    ) -> (Self, TrainingSet) {
        let ts = DatasetBuilder::new(db, store)
            .with_random_queries(n_queries, seed)
            .paraphrase(true)
            .build();
        let mut model = Qep2Seq::new(&ts, config);
        model.train(&ts);
        (
            NeuralLantern {
                model,
                store: store.clone(),
                beam: 4,
            },
            ts,
        )
    }

    /// Translate a plan into narration steps (one per act). Failures
    /// surface as the unified API's structured [`LanternError`]
    /// variants (e.g. [`LanternError::UnknownOperator`]), not stringly
    /// core errors.
    pub fn describe(&self, tree: &PlanTree) -> Result<Vec<String>, LanternError> {
        let acts = decompose_acts(tree, &self.store).map_err(LanternError::from)?;
        Ok(self.model.translate_acts(&acts, self.beam))
    }

    /// Document-style numbered narration (structured errors, like
    /// [`NeuralLantern::describe`]).
    pub fn describe_text(&self, tree: &PlanTree) -> Result<String, LanternError> {
        Ok(self
            .describe(tree)?
            .iter()
            .enumerate()
            .map(|(i, s)| format!("{}. {}", i + 1, s))
            .collect::<Vec<_>>()
            .join("\n"))
    }

    /// Access the underlying model (benchmarks).
    pub fn model(&self) -> &Qep2Seq {
        &self.model
    }

    /// Translate a flat act work list: [`work_steal_map`] fan-out
    /// across scoped workers (skewed act sizes would straggle fixed
    /// chunks), one scratch arena per worker, results in input order.
    fn translate_all(&self, acts: &[Act]) -> Vec<String> {
        work_steal_map(acts, DecodeScratch::new, |scratch, act| {
            self.model.translate_act_scratch(act, self.beam, scratch)
        })
    }
}

impl Translator for NeuralLantern {
    fn backend(&self) -> &str {
        "neural"
    }

    /// Unified-pipeline entry point: resolve the plan from any
    /// [`lantern_core::PlanSource`], decompose into acts, translate
    /// each act with the trained model.
    fn narrate(&self, req: &NarrationRequest) -> Result<NarrationResponse, LanternError> {
        let tree = req.resolve_tree()?;
        let steps = self.describe(&tree)?;
        Ok(NarrationResponse::new(
            self.backend(),
            Narration::from_sentences(steps),
            req.effective_style(RenderStyle::default()),
        ))
    }

    /// Batched narration: resolve and decompose every request up
    /// front, flatten all acts into one work list, decode them with
    /// work-stealing workers sharing per-worker scratch arenas, and
    /// reassemble per-request responses in order. Per-request failures
    /// (parse errors, unknown operators) stay per-request.
    fn narrate_batch(
        &self,
        reqs: &[NarrationRequest],
    ) -> Vec<Result<NarrationResponse, LanternError>> {
        // Phase 1: cheap, sequential — parse plans and decompose acts.
        let mut acts: Vec<Act> = Vec::new();
        let preps: Vec<Result<(usize, usize), LanternError>> = reqs
            .iter()
            .map(|req| {
                let tree = req.resolve_tree()?;
                let req_acts = decompose_acts(&tree, &self.store).map_err(LanternError::from)?;
                let span = (acts.len(), req_acts.len());
                acts.extend(req_acts);
                Ok(span)
            })
            .collect();
        // Phase 2: the expensive part — model inference over all acts.
        let steps = self.translate_all(&acts);
        // Phase 3: reassemble responses in request order.
        preps
            .into_iter()
            .zip(reqs)
            .map(|(prep, req)| {
                let (start, count) = prep?;
                Ok(NarrationResponse::new(
                    self.backend(),
                    Narration::from_sentences(steps[start..start + count].to_vec()),
                    req.effective_style(RenderStyle::default()),
                ))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lantern_catalog::dblp_catalog;
    use lantern_plan::PlanNode;
    use lantern_pool::default_pg_store;

    #[test]
    #[ignore = "22-epoch training on a 50-query workload (~5 min) — run with --include-ignored"]
    fn end_to_end_translation_has_variety_and_substance() {
        let db = Database::generate(&dblp_catalog(), 0.0003, 5);
        let store = default_pg_store();
        let mut config = Qep2SeqConfig::default();
        config.train.epochs = 22;
        let (nl, ts) = NeuralLantern::train_on(&db, &store, 50, config, 9);
        assert!(ts.examples.len() > 100);

        // The paper's Figure 4 tree.
        let tree = PlanTree::new(
            "pg",
            PlanNode::new("Hash Join")
                .with_join_cond("((i.proceeding_key) = (p.pub_key))")
                .with_child(PlanNode::new("Seq Scan").on_relation("inproceedings"))
                .with_child(
                    PlanNode::new("Hash").with_child(
                        PlanNode::new("Seq Scan")
                            .on_relation("publication")
                            .with_filter("title LIKE '%July%'"),
                    ),
                ),
        );
        let steps = nl.describe(&tree).unwrap();
        assert_eq!(steps.len(), 3);
        // Concrete values restored somewhere in the narration.
        let all = steps.join(" ");
        assert!(
            all.contains("inproceedings") || all.contains("publication"),
            "{all}"
        );
        // No leftover tags.
        assert!(!all.contains("<T>") && !all.contains("<TN>"), "{all}");
        let text = nl.describe_text(&tree).unwrap();
        assert!(text.starts_with("1. "));
    }

    #[test]
    fn unknown_operator_propagates_error() {
        let db = Database::generate(&dblp_catalog(), 0.0003, 5);
        let store = default_pg_store();
        let mut config = Qep2SeqConfig::default();
        config.train.epochs = 2;
        let (nl, _) = NeuralLantern::train_on(&db, &store, 10, config, 9);
        let tree = PlanTree::new("pg", PlanNode::new("Quantum Scan"));
        assert!(nl.describe(&tree).is_err());
    }

    #[test]
    fn batched_narration_matches_sequential_and_keeps_errors_per_request() {
        let db = Database::generate(&dblp_catalog(), 0.0003, 5);
        let store = default_pg_store();
        let mut config = Qep2SeqConfig {
            hidden: 16,
            ..Default::default()
        };
        config.train.epochs = 2;
        let (nl, _) = NeuralLantern::train_on(&db, &store, 10, config, 9);
        let ok_tree = |rel: &str| {
            PlanTree::new(
                "pg",
                PlanNode::new("Sort")
                    .with_child(PlanNode::new("Seq Scan").on_relation(rel.to_string())),
            )
        };
        let reqs = vec![
            NarrationRequest::from_tree(ok_tree("publication")),
            NarrationRequest::from_tree(PlanTree::new("pg", PlanNode::new("Quantum Scan"))),
            NarrationRequest::from_tree(ok_tree("inproceedings")),
            NarrationRequest::pg_json("not json"),
        ];
        let batched = nl.narrate_batch(&reqs);
        let sequential: Vec<_> = reqs.iter().map(|r| nl.narrate(r)).collect();
        assert_eq!(batched.len(), 4);
        for (b, s) in batched.iter().zip(&sequential) {
            match (b, s) {
                (Ok(b), Ok(s)) => assert_eq!(b.narration, s.narration),
                (Err(b), Err(s)) => assert_eq!(b, s),
                other => panic!("batch/sequential disagree: {other:?}"),
            }
        }
        assert!(matches!(
            batched[1],
            Err(LanternError::UnknownOperator { .. })
        ));
        assert!(matches!(batched[3], Err(LanternError::Parse { .. })));
    }

    #[test]
    fn neural_serves_the_unified_api() {
        let db = Database::generate(&dblp_catalog(), 0.0003, 5);
        let store = default_pg_store();
        let mut config = Qep2SeqConfig {
            hidden: 16,
            ..Default::default()
        };
        config.train.epochs = 2;
        let (nl, _) = NeuralLantern::train_on(&db, &store, 10, config, 9);
        let resp = nl
            .narrate(
                &NarrationRequest::auto(
                    r#"{"Plan": {"Node Type": "Seq Scan", "Relation Name": "orders"}}"#,
                )
                .unwrap(),
            )
            .unwrap();
        assert_eq!(resp.backend, "neural");
        assert_eq!(resp.narration.steps().len(), 1);
        assert!(resp.text.starts_with("1. "), "{}", resp.text);
        // Structured errors flow through the same pipeline.
        let err = nl
            .narrate(&NarrationRequest::from_tree(PlanTree::new(
                "pg",
                PlanNode::new("Quantum Scan"),
            )))
            .unwrap_err();
        assert!(matches!(err, LanternError::UnknownOperator { .. }));
    }
}
